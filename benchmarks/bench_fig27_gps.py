"""Figure 27: GPS comparison.

Paper: GRIT +15% over GPS on average; GPS replicates every touched page
in every subscriber and suffers ~34% more oversubscription (evictions),
losing on the shared-write-heavy apps (MM, BS, ST).
"""

from benchmarks.conftest import regenerate


def test_fig27_gps_comparison(benchmark):
    figure = regenerate(benchmark, "fig27")
    assert figure.cell("geomean", "grit_vs_gps") > 1.0  # paper 1.15
    # GPS pressure: more evictions than GRIT overall.
    assert figure.rows["gps_eviction_ratio"][0] > 1.0  # paper ~1.34
    # GRIT's wins concentrate where the paper says: BS and ST.
    assert figure.cell("bs", "grit_vs_gps") > 1.5
    assert figure.cell("st", "grit_vs_gps") > 1.0

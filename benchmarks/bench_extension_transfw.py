"""Extension study: GRIT stacked with Trans-FW.

Beyond the paper's Figure 28 (which stacks Trans-FW on Griffin-DPC):
the same fault-service acceleration is orthogonal to GRIT too.
"""

from benchmarks.conftest import regenerate


def test_extension_grit_transfw(benchmark):
    figure = regenerate(benchmark, "extension_grit_transfw")
    # Stacking Trans-FW on GRIT yields additional gains.
    assert figure.cell("geomean", "stack_gain") > 1.0
    assert figure.cell("geomean", "grit_transfw") > figure.cell(
        "geomean", "grit"
    )

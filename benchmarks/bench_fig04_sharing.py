"""Figure 4: private vs shared pages and accesses per application.

Paper: FIR/SC are almost all private; BFS/ST almost all shared (with
BFS's accesses still going mostly to private pages); C2D/MM mixed.
"""

from benchmarks.conftest import regenerate


def test_fig04_sharing(benchmark):
    figure = regenerate(benchmark, "fig04")
    assert figure.cell("fir", "private_pages") > 0.85
    assert figure.cell("sc", "private_pages") > 0.85
    assert figure.cell("st", "shared_pages") > 0.85
    assert figure.cell("bfs", "shared_pages") > 0.5
    # BFS: many shared pages but most accesses go to private ones.
    assert figure.cell("bfs", "private_accesses") > 0.5
    for app in ("c2d", "mm"):
        assert 0.2 < figure.cell(app, "shared_pages") < 0.8

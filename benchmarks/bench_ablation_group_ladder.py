"""Extra ablation (DESIGN.md section 6): the NAP group-size ladder.

Sweeps GRIT's maximum group size (1 disables neighbor propagation, 512
is the paper's choice — one 2 MB page-table page) to show how much of
Neighboring-Aware Prediction's benefit each rung contributes.
"""

from benchmarks.conftest import regenerate


def test_ablation_group_ladder(benchmark):
    figure = regenerate(benchmark, "ablation_group_ladder")
    no_nap = figure.cell("geomean", "group_1")
    full = figure.cell("geomean", "group_512")
    # Enabling the ladder never hurts on average.
    assert full >= no_nap * 0.99
    # Every configuration still beats on-touch overall.
    for column in figure.columns:
        assert figure.cell("geomean", column) > 1.0

"""Figure 17: GRIT vs the three uniform schemes — the headline result.

Paper: GRIT averages +60%/+49%/+29% over on-touch, access-counter, and
duplication respectively, tracking the best uniform scheme per app
(within 2% of duplication on BFS) and winning outright on ST.
"""

from benchmarks.conftest import regenerate


def test_fig17_overall_performance(benchmark):
    figure = regenerate(benchmark, "fig17")
    grit = figure.cell("geomean", "grit")
    # GRIT beats every uniform scheme on average.
    assert grit > figure.cell("geomean", "access_counter")
    assert grit > figure.cell("geomean", "duplication")
    assert grit > 1.3  # paper: 1.60 over on-touch
    # GRIT tracks the per-app best uniform scheme.
    for app in ("bfs", "bs", "c2d", "fir", "gemm", "mm", "sc", "st"):
        best = max(
            figure.cell(app, policy)
            for policy in ("on_touch", "access_counter", "duplication")
        )
        assert figure.cell(app, "grit") > best * 0.8, app
    # GRIT wins outright on stencil (largest ideal gap in the paper).
    st_best = max(
        figure.cell("st", policy)
        for policy in ("on_touch", "access_counter", "duplication")
    )
    assert figure.cell("st", "grit") > st_best
    # But stays well below Ideal.
    assert figure.cell("geomean", "grit") < figure.cell("geomean", "ideal")

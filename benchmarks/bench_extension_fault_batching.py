"""Extension study: batched UVM fault servicing.

Not a paper figure — the paper services one fault at a time.  This
sweep quantifies what the staged fault-service pipeline adds: batching
amortizes the host round trip across a drain, and coalescing removes
duplicate (gpu, vpn) faults entirely (see docs/architecture.md).  The
batching model's invariants are locked in here so the benchmark doubles
as an extension-level regression check.
"""

import os

from repro.config import SystemConfig
from repro.policies import make_policy
from repro.sim import Engine
from repro.workloads import make_workload

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))

BATCH_SIZES = (1, 8, 32)


def _run(batch_size: int, workload: str = "bfs", policy: str = "grit"):
    config = SystemConfig(fault_batch_size=batch_size)
    trace = make_workload(workload, scale=BENCH_SCALE)
    return Engine(config, trace, make_policy(policy)).run()


def test_fault_batching_sweep(benchmark):
    """Simulated-cycle and wall-clock cost across batch sizes."""

    def sweep():
        return {size: _run(size) for size in BATCH_SIZES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    inline = results[1]
    print()
    header = (
        f"{'batch':>5}  {'cycles':>12}  {'speedup':>7}  "
        f"{'batches':>8}  {'coalesced':>9}"
    )
    print(header)
    for size in BATCH_SIZES:
        result = results[size]
        counters = result.counters
        print(
            f"{size:>5}  {result.total_cycles:>12}  "
            f"{inline.total_cycles / result.total_cycles:>7.2f}  "
            f"{counters.fault_batches:>8}  {counters.coalesced_faults:>9}"
        )
    # Inline mode never forms batches; batched modes must.
    assert inline.counters.fault_batches == 0
    for size in BATCH_SIZES[1:]:
        assert results[size].counters.fault_batches > 0
        # Amortizing the host round trip can only help total cycles.
        assert results[size].total_cycles < inline.total_cycles
    # All modes replay every access exactly once.
    accesses = {r.counters.accesses for r in results.values()}
    assert len(accesses) == 1


def test_batched_drain_throughput(benchmark):
    """Wall-clock cost of the batched path itself (batch 32, GRIT)."""
    result = benchmark.pedantic(
        lambda: _run(32, workload="sc"), rounds=3, iterations=1
    )
    assert result.counters.fault_batches > 0
    assert result.counters.coalesced_faults > 0

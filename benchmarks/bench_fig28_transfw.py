"""Figure 28: GRIT vs Griffin-DPC combined with Trans-FW.

Paper: the combination reduces both migrations (DPC) and fault-handling
latency (Trans-FW), yet GRIT still wins by +18% on average because it
enables more local accesses outright.
"""

from benchmarks.conftest import regenerate


def test_fig28_transfw_combination(benchmark):
    figure = regenerate(benchmark, "fig28")
    assert figure.cell("geomean", "grit_vs_dpc_transfw") > 0.9
    # GRIT's biggest wins are on the write-shared apps.
    assert figure.cell("bs", "grit_vs_dpc_transfw") > 1.2

"""Figure 19: placement-scheme usage under GRIT per application.

Paper: duplication dominates BFS/GEMM/MM, on-touch dominates C2D/FIR/SC,
access-counter dominates BS, and ST mixes duplication with on-touch.
"""

from benchmarks.conftest import regenerate


def test_fig19_scheme_breakdown(benchmark):
    figure = regenerate(benchmark, "fig19")
    # Read-shared apps converge on duplication.
    for app in ("bfs", "gemm"):
        assert figure.cell(app, "D") > 0.3
    # Private-heavy apps keep the on-touch start.
    for app in ("fir", "sc"):
        assert figure.cell(app, "OT") > 0.5
    # BS uses access-counter more than any other app.
    bs_ac = figure.cell("bs", "AC")
    for app in ("bfs", "c2d", "fir", "gemm", "mm", "sc", "st"):
        assert bs_ac >= figure.cell(app, "AC")
    # Usage fractions are a proper distribution.
    for app in ("bfs", "bs", "c2d", "fir", "gemm", "mm", "sc", "st"):
        assert abs(sum(figure.rows[app]) - 1.0) < 1e-9

"""Figure 29: GRIT vs first-touch migration.

Paper: +54% on average — marginal on the private-heavy apps (FIR, SC)
where first-touch already pins pages correctly, large on the
shared-access-heavy apps (MM, GEMM, BS).
"""

from benchmarks.conftest import regenerate


def test_fig29_first_touch(benchmark):
    figure = regenerate(benchmark, "fig29")
    # Marginal difference on private-heavy apps.
    for app in ("fir", "sc"):
        assert 0.85 < figure.cell(app, "grit_vs_first_touch") < 1.25
    # Clear wins where shared accesses dominate.
    assert figure.cell("bs", "grit_vs_first_touch") > 1.5
    assert figure.cell("st", "grit_vs_first_touch") > 1.0

"""Shared benchmark fixtures.

Each benchmark regenerates one paper figure end to end (workload
generation + simulation sweep + aggregation) and prints the regenerated
rows so the run log doubles as the reproduction report.  Scale is
controlled with REPRO_BENCH_SCALE (default 0.2: every mechanism is
exercised, a full `pytest benchmarks/` finishes in minutes).
"""

from __future__ import annotations

import os

import pytest

from repro.harness.experiment import ExperimentRunner
from repro.harness.figures import run_figure
from repro.harness.report import format_figure

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))


@pytest.fixture
def fresh_runner() -> ExperimentRunner:
    """Uncached runner so the benchmark times real simulation work."""
    return ExperimentRunner(scale=BENCH_SCALE)


def regenerate(benchmark, name: str) -> "FigureData":
    """Benchmark one figure regeneration and print its rows."""
    figure = benchmark.pedantic(
        lambda: run_figure(name, ExperimentRunner(scale=BENCH_SCALE)),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_figure(figure))
    return figure

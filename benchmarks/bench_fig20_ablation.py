"""Figure 20: GRIT component ablation.

Paper: PA-Table only +31%, +PA-Cache +47%, +NAP +44%, full GRIT +60% —
each component contributes and they compose.
"""

from benchmarks.conftest import regenerate


def test_fig20_component_ablation(benchmark):
    figure = regenerate(benchmark, "fig20")
    pa_only = figure.cell("geomean", "pa_table_only")
    pa_cache = figure.cell("geomean", "pa_table_pa_cache")
    pa_nap = figure.cell("geomean", "pa_table_nap")
    full = figure.cell("geomean", "full_grit")
    # Paper ordering: PA-Table only is the weakest, full GRIT strongest,
    # and each added component helps over PA-Table alone.
    assert pa_only < full
    assert pa_cache > pa_only
    assert pa_nap > pa_only
    assert full >= max(pa_cache, pa_nap) * 0.98

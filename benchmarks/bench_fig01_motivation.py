"""Figure 1: uniform scheme performance relative to on-touch migration.

Paper: no one-size-fits-all scheme — on-touch wins FIR/SC/C2D,
duplication wins BFS/GEMM/MM, access-counter wins BS, and Ideal sits far
above everything.
"""

from benchmarks.conftest import regenerate


def test_fig01_motivation(benchmark):
    figure = regenerate(benchmark, "fig01")
    # On-touch is the normalization baseline.
    for app in ("fir", "sc", "c2d"):
        assert figure.cell(app, "on_touch") == 1.0
        # OT wins (or effectively ties) the private/PC-shared apps.
        assert figure.cell(app, "access_counter") < 1.05
    # Duplication wins the read-shared apps.
    for app in ("bfs", "gemm"):
        assert figure.cell(app, "duplication") > max(
            1.0, figure.cell(app, "access_counter") * 0.9
        )
    # Access-counter wins bitonic sort.
    assert figure.cell("bs", "access_counter") > figure.cell(
        "bs", "duplication"
    )
    # Ideal dominates everywhere.
    for app in ("bfs", "bs", "c2d", "fir", "gemm", "mm", "sc", "st"):
        row = figure.rows[app]
        assert figure.cell(app, "ideal") == max(row)

"""Extra sensitivity studies: eviction policy and counter threshold.

Both extend the paper's fixed substrate choices (LRU eviction, Volta's
256-access counter threshold) to show the reproduction's conclusions do
not hinge on them.
"""

from benchmarks.conftest import regenerate


def test_extension_eviction_policy(benchmark):
    figure = regenerate(benchmark, "extension_eviction_policy")
    # GRIT beats on-touch under every replacement policy.
    for row in ("lru", "fifo", "random"):
        assert figure.cell(row, "grit") > 1.0
        # ... and stays at or above uniform duplication.
        assert figure.cell(row, "grit") > figure.cell(row, "duplication") * 0.9


def test_sensitivity_counter_threshold(benchmark):
    figure = regenerate(benchmark, "sensitivity_counter_threshold")
    for row in figure.rows:
        assert figure.cell(row, "grit") > 1.0
    # Very low thresholds make AC migrate eagerly (on-touch-like);
    # its behaviour must move monotonically-ish with the threshold
    # somewhere in the sweep rather than being flat.
    values = [figure.cell(row, "access_counter") for row in figure.rows]
    assert max(values) - min(values) > 0.01

"""Figure 26: Griffin comparison.

Paper: GRIT +27% over Griffin-DPC; ACUD is orthogonal — GRIT+ACUD gains
another +9% over GRIT and beats full Griffin (DPC+ACUD) by +16%.
"""

from benchmarks.conftest import regenerate


def test_fig26_griffin_comparison(benchmark):
    figure = regenerate(benchmark, "fig26")
    grit = figure.cell("geomean", "grit")
    dpc = figure.cell("geomean", "griffin_dpc")
    griffin = figure.cell("geomean", "griffin")
    grit_acud = figure.cell("geomean", "grit_acud")
    assert dpc == 1.0  # normalization baseline
    assert grit > dpc  # paper +27%
    assert grit_acud > grit  # paper +9%
    assert grit_acud > griffin  # paper +16%

"""Figure 9: accesses to read-only pages vs read-write pages.

Paper: BFS/GEMM/MM are read-dominated (duplication-friendly);
BS/C2D/SC's outputs/ST are read-write intensive (collapse-prone).
"""

from benchmarks.conftest import regenerate


def test_fig09_read_write_split(benchmark):
    figure = regenerate(benchmark, "fig09")
    for app in ("bfs", "mm"):
        assert figure.cell(app, "read_accesses") > 0.7
    assert figure.cell("gemm", "read_accesses") > 0.5
    for app in ("bs", "st"):
        assert figure.cell(app, "read_write_accesses") > 0.5

"""Extension study: DRAM capacity (oversubscription) sensitivity.

Table I pins GPU DRAM at 70% of the application footprint; this sweep
shows how the scheme tradeoffs move with that knob.
"""

from benchmarks.conftest import regenerate


def test_extension_oversubscription(benchmark):
    figure = regenerate(benchmark, "extension_oversubscription")
    # Duplication is the scheme most hurt by shrinking capacity: its
    # replicas are what overflow the frames.
    dup_tight = figure.cell("dram_50pct", "duplication")
    dup_roomy = figure.cell("dram_90pct", "duplication")
    assert dup_roomy > dup_tight
    # GRIT stays ahead of on-touch at every capacity point.
    for row in ("dram_50pct", "dram_70pct", "dram_90pct"):
        assert figure.cell(row, "grit") > 1.0

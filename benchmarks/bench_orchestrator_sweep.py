"""Sweep-orchestrator throughput: inline vs worker processes.

Times the same headline slice of the Figure 17 sweep executed inline
(workers=1) and through the process pool (workers=2), and asserts the
two produce bit-identical result digests — the orchestrator must never
buy wall-clock speed with divergent results.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SCALE
from repro.harness.experiment import ExperimentRunner
from repro.harness.orchestrator import result_digest, run_sweep

WORKLOADS = ("fir", "st", "bfs", "gemm")
POLICIES = ("on_touch", "grit")


def _keys():
    runner = ExperimentRunner(scale=BENCH_SCALE)
    return [
        runner.key(workload, policy)
        for workload in WORKLOADS
        for policy in POLICIES
    ]


def _digests(summary):
    return {
        key: result_digest(result)
        for key, result in summary.results.items()
    }


def test_sweep_inline(benchmark):
    summary = benchmark.pedantic(
        lambda: run_sweep(_keys(), workers=1),
        rounds=1,
        iterations=1,
    )
    assert summary.failures == 0
    test_sweep_inline.digests = _digests(summary)


def test_sweep_two_workers_matches_inline(benchmark):
    summary = benchmark.pedantic(
        lambda: run_sweep(_keys(), workers=2),
        rounds=1,
        iterations=1,
    )
    assert summary.failures == 0
    print()
    print(summary.render())
    inline = getattr(test_sweep_inline, "digests", None)
    if inline is not None:  # benchmarks may be filtered individually
        assert _digests(summary) == inline

"""Figure 31: DNN model-parallel training (VGG16 and ResNet18).

Paper: GRIT improves VGG16 by +15% and ResNet18 by +18% over their
on-touch baselines — it also works for multi-GPU DNN training.
"""

from benchmarks.conftest import regenerate


def test_fig31_dnn_workloads(benchmark):
    figure = regenerate(benchmark, "fig31")
    assert figure.cell("vgg16", "grit_vs_ot") > 1.05
    assert figure.cell("resnet18", "grit_vs_ot") > 1.05

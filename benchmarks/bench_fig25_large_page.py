"""Figure 25: large pages with enlarged inputs.

Paper: with 2 MB pages GRIT's average gain shrinks to +23% because
false sharing mixes the attributes within each large page.  We model
large pages as 16x the base page on 4x-scaled inputs; the adjacency
apps land near the paper's +23% while the random-access apps diverge
(their false sharing at our trace density is far more punishing for the
on-touch baseline — see EXPERIMENTS.md).
"""

from benchmarks.conftest import regenerate


def test_fig25_large_pages(benchmark):
    figure = regenerate(benchmark, "fig25")
    # GRIT still helps on average with large pages.
    assert figure.cell("geomean_all", "speedup_vs_ot_large_pages") > 1.0
    # The adjacency apps show the paper's modest-gain regime.
    adjacent = figure.cell("geomean_adjacent", "speedup_vs_ot_large_pages")
    assert 0.8 < adjacent < 2.5

"""Extra ablation (DESIGN.md section 6): per-app PA-Cache contribution.

Complements Figure 20 by showing where the PA-Cache's
bandwidth-contention savings land per application.
"""

from benchmarks.conftest import regenerate


def test_ablation_pa_cache(benchmark):
    figure = regenerate(benchmark, "ablation_pa_cache")
    ratios = [
        figure.cell(app, "ratio")
        for app in ("bfs", "bs", "c2d", "fir", "gemm", "mm", "sc", "st")
    ]
    # The PA-Cache never hurts much and helps the fault-heavy apps.
    assert all(ratio > 0.9 for ratio in ratios)
    assert max(ratios) > 1.0

"""Figure 30: GRIT combined with tree-based neighborhood prefetching.

Paper: GRIT-with-prefetching beats on-touch-with-prefetching by +23% —
placement-scheme selection is complementary to prefetching.
"""

from benchmarks.conftest import regenerate


def test_fig30_prefetch_combination(benchmark):
    figure = regenerate(benchmark, "fig30")
    assert figure.cell("geomean", "grit_vs_ot_with_prefetch") > 1.1
    # The prefetcher actually fired during the GRIT runs.
    total_prefetches = sum(
        values[1]
        for label, values in figure.rows.items()
        if label != "geomean"
    )
    assert total_prefetches > 0

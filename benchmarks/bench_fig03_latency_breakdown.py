"""Figure 3: page-handling latency breakdown per placement scheme.

Paper: on-touch is dominated by page-migration latency; access-counter
trades it for remote-access latency; duplication eliminates both but
pays page-duplication and write-collapse.
"""

from benchmarks.conftest import regenerate


def test_fig03_latency_breakdown(benchmark):
    figure = regenerate(benchmark, "fig03")
    apps = ("bfs", "bs", "c2d", "fir", "gemm", "mm", "sc", "st")
    for app in apps:
        ot = figure.rows[f"{app}/on_touch"]
        ac = figure.rows[f"{app}/access_counter"]
        dup = figure.rows[f"{app}/duplication"]
        columns = figure.columns
        # OT has no remote access/duplication/collapse latency at all.
        assert ot[columns.index("Remote-access")] == 0.0
        assert ot[columns.index("Write-collapse")] == 0.0
        # AC shifts page handling toward remote accesses.
        assert ac[columns.index("Remote-access")] > 0.0
        assert ac[columns.index("Page-migration")] <= (
            ot[columns.index("Page-migration")]
        )
        # Duplication shows its two unique categories instead.
        assert dup[columns.index("Page-duplication")] > 0.0
        assert dup[columns.index("Remote-access")] == 0.0
    # Write collapse shows up in the read-write intensive apps.
    for app in ("bs", "c2d", "st"):
        dup = figure.rows[f"{app}/duplication"]
        assert dup[figure.columns.index("Write-collapse")] > 0.0

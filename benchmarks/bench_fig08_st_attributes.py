"""Figure 8: ST page attributes over time.

Paper: even though ST page attributes change over time, neighbouring
pages change *together* — the basis for Neighboring-Aware Prediction.
"""

from benchmarks.conftest import regenerate


def test_fig08_st_attribute_map(benchmark):
    figure = regenerate(benchmark, "fig08")
    assert figure.cell("sharing", "neighbor_agreement") > 0.85
    assert figure.cell("read_write", "neighbor_agreement") > 0.8

"""Microbenchmarks of the simulator's hot structures.

Unlike the figure benchmarks (one-shot regenerations), these use
pytest-benchmark's statistical timing to track the per-operation cost of
the structures the engine hits on every access: TLB lookups, PA-Cache
accesses, DRAM installs, and the end-to-end engine loop.
"""

import numpy as np

from repro.config import SystemConfig, TLBConfig
from repro.core.pa_cache import PACache
from repro.core.pa_table import PATable
from repro.memsys.dram import DramDirectory
from repro.memsys.page_table import LocalPTE
from repro.memsys.tlb import SetAssociativeTLB
from repro.policies import make_policy
from repro.sim import Engine
from repro.workloads import make_workload


def test_tlb_lookup_throughput(benchmark):
    tlb = SetAssociativeTLB(TLBConfig(entries=512, ways=16, lookup_latency=10))
    for vpn in range(512):
        tlb.insert(vpn, LocalPTE(location=0, writable=True))
    vpns = list(range(0, 512, 7)) * 20

    def lookups():
        for vpn in vpns:
            tlb.lookup(vpn)

    benchmark(lookups)


def test_pa_cache_access_throughput(benchmark):
    cache = PACache(PATable(), entries=64, ways=4)
    vpns = list(np.random.default_rng(0).integers(0, 400, size=1000))

    def accesses():
        for vpn in vpns:
            entry, _ = cache.access(int(vpn))
            entry.record_fault(False)

    benchmark(accesses)


def test_dram_install_throughput(benchmark):
    vpns = list(np.random.default_rng(1).integers(0, 600, size=1000))

    def installs():
        dram = DramDirectory(gpu_id=0, capacity_frames=256)
        for vpn in vpns:
            dram.install(int(vpn))

    benchmark(installs)


def test_engine_accesses_per_second(benchmark):
    """End-to-end simulation throughput on the ST workload under GRIT."""
    config = SystemConfig()

    def run():
        trace = make_workload("st", scale=0.1)
        return Engine(config, trace, make_policy("grit")).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.counters.accesses > 0

"""Figures 22-24: GRIT with 2, 8 and 16 GPUs (same input size).

Paper: GRIT stays effective at every GPU count (+40%/+38%/+27% over
on-touch with 2/8/16 GPUs) with fault reductions around 30-34%.
"""

from benchmarks.conftest import regenerate


def test_fig22_24_gpu_scaling(benchmark):
    figure = regenerate(benchmark, "fig22_24")
    for row in ("2_gpus", "8_gpus", "16_gpus"):
        assert figure.cell(row, "speedup_vs_ot") > 1.15
        assert figure.cell(row, "fault_reduction_vs_ot") > 0.0

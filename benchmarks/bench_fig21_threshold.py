"""Figure 21: fault-threshold sensitivity (2/4/8/16).

Paper: +53%/+60%/+59%/+48% over on-touch — gains saturate at a threshold
of 4, which is why 4 is the default.
"""

from benchmarks.conftest import regenerate


def test_fig21_fault_threshold(benchmark):
    figure = regenerate(benchmark, "fig21")
    t2 = figure.cell("geomean", "threshold_2")
    t4 = figure.cell("geomean", "threshold_4")
    t8 = figure.cell("geomean", "threshold_8")
    t16 = figure.cell("geomean", "threshold_16")
    # 4 is at (or within noise of) the peak, and 16 clearly lags.
    assert t4 >= max(t2, t8) * 0.97
    assert t4 > t16
    assert all(value > 1.0 for value in (t2, t4, t8, t16))

"""Figure 5: shared-page access patterns over time.

Paper: C2D's shared pages are producer-consumer (one GPU dominates each
interval, the dominating GPU changes over time); ST's are all-shared.
"""

from benchmarks.conftest import regenerate


def test_fig05_shared_page_timeline(benchmark):
    figure = regenerate(benchmark, "fig05")
    c2d_pc = figure.cell("c2d", "pc_fraction")
    st_pc = figure.cell("st", "pc_fraction")
    # C2D's shared pages skew PC-shared far more than ST's.
    assert c2d_pc > st_pc
    assert c2d_pc > 0.5
    assert figure.cell("st", "all_shared_pages") > 0

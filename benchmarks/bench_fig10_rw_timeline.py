"""Figure 10: read/write mix over time for one ST read-write page.

Paper: there are intervals with only read accesses followed by intervals
with both reads and writes — duplication suits the page early, not late.
"""

from benchmarks.conftest import regenerate


def test_fig10_rw_timeline(benchmark):
    figure = regenerate(benchmark, "fig10")
    # The sampled page has a read-only prefix before writes start.
    assert figure.rows["read_only_intervals"][0] >= 1
    # And it does see writes eventually.
    total_writes = sum(
        values[1]
        for label, values in figure.rows.items()
        if label.startswith("interval_")
    )
    assert total_writes > 0

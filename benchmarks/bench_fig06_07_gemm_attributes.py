"""Figures 6-7: GEMM page attributes over time.

Paper: at any interval, consecutive GEMM pages exhibit the same
private/shared and read/read-write attributes (the input and output
matrices are separately consecutive memory segments).
"""

from benchmarks.conftest import regenerate


def test_fig06_07_gemm_attribute_maps(benchmark):
    figure = regenerate(benchmark, "fig06_07")
    # Neighbouring pages agree on both attribute axes almost always.
    assert figure.cell("sharing", "neighbor_agreement") > 0.85
    assert figure.cell("read_write", "neighbor_agreement") > 0.8
    assert figure.cell("sharing", "intervals") > 10

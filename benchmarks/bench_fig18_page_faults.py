"""Figure 18: total GPU page faults normalized to on-touch.

Paper: GRIT cuts faults by 39%/55%/16% vs OT/AC/duplication.  In this
reproduction the OT and duplication reductions hold; the AC comparison
flips sign because our sparse traces let AC's remote mappings stay
stable (see EXPERIMENTS.md).
"""

from benchmarks.conftest import regenerate


def test_fig18_page_faults(benchmark):
    figure = regenerate(benchmark, "fig18")
    assert figure.cell("mean", "grit") < 0.85  # paper 0.61 vs OT
    assert figure.cell("mean", "grit") < figure.cell("mean", "duplication")
    for app in ("bfs", "bs", "c2d", "fir", "gemm", "mm", "sc", "st"):
        assert figure.cell(app, "on_touch") == 1.0

"""Fault-Aware Initiator: threshold detection and PA-path latency."""

import pytest

from repro.config import GritConfig, LatencyModel
from repro.constants import FaultKind
from repro.core.initiator import FaultAwareInitiator


def make_initiator(threshold=4, use_pa_cache=True):
    return FaultAwareInitiator(
        GritConfig(fault_threshold=threshold, use_pa_cache=use_pa_cache),
        LatencyModel(),
    )


class TestThreshold:
    def test_threshold_fires_on_nth_fault(self):
        initiator = make_initiator(threshold=4)
        for _ in range(3):
            outcome = initiator.observe_fault(7, FaultKind.LOCAL_PAGE_FAULT)
            assert not outcome.threshold_reached
        outcome = initiator.observe_fault(7, FaultKind.LOCAL_PAGE_FAULT)
        assert outcome.threshold_reached
        assert initiator.thresholds_fired == 1

    def test_entry_deleted_after_firing(self):
        initiator = make_initiator(threshold=2)
        initiator.observe_fault(7, FaultKind.LOCAL_PAGE_FAULT)
        initiator.observe_fault(7, FaultKind.LOCAL_PAGE_FAULT)
        # Counting restarts from zero.
        outcome = initiator.observe_fault(7, FaultKind.LOCAL_PAGE_FAULT)
        assert not outcome.threshold_reached

    def test_rw_bit_from_protection_fault(self):
        initiator = make_initiator(threshold=2)
        initiator.observe_fault(7, FaultKind.LOCAL_PAGE_FAULT)
        outcome = initiator.observe_fault(7, FaultKind.PAGE_PROTECTION_FAULT)
        assert outcome.threshold_reached
        assert outcome.rw_bit == 1

    def test_rw_bit_from_access_type_overrides_kind(self):
        initiator = make_initiator(threshold=2)
        initiator.observe_fault(7, FaultKind.LOCAL_PAGE_FAULT, is_write=True)
        outcome = initiator.observe_fault(
            7, FaultKind.LOCAL_PAGE_FAULT, is_write=False
        )
        assert outcome.threshold_reached
        assert outcome.rw_bit == 1  # sticky from the earlier write

    def test_read_only_page_reports_rw_zero(self):
        initiator = make_initiator(threshold=2)
        initiator.observe_fault(7, FaultKind.LOCAL_PAGE_FAULT, is_write=False)
        outcome = initiator.observe_fault(
            7, FaultKind.LOCAL_PAGE_FAULT, is_write=False
        )
        assert outcome.rw_bit == 0

    def test_pages_counted_independently(self):
        initiator = make_initiator(threshold=2)
        initiator.observe_fault(1, FaultKind.LOCAL_PAGE_FAULT)
        outcome = initiator.observe_fault(2, FaultKind.LOCAL_PAGE_FAULT)
        assert not outcome.threshold_reached


class TestPAPathLatency:
    def test_pa_cache_hides_latency_on_hits(self):
        initiator = make_initiator()
        initiator.observe_fault(7, FaultKind.LOCAL_PAGE_FAULT)
        outcome = initiator.observe_fault(7, FaultKind.LOCAL_PAGE_FAULT)
        assert outcome.extra_latency == 0

    def test_without_pa_cache_every_fault_pays_memory_access(self):
        initiator = make_initiator(use_pa_cache=False)
        latency = LatencyModel().pa_table_memory_access
        for _ in range(3):
            outcome = initiator.observe_fault(7, FaultKind.LOCAL_PAGE_FAULT)
            assert outcome.extra_latency == latency

    def test_without_pa_cache_state_persists(self):
        initiator = make_initiator(threshold=3, use_pa_cache=False)
        initiator.observe_fault(7, FaultKind.LOCAL_PAGE_FAULT)
        initiator.observe_fault(7, FaultKind.PAGE_PROTECTION_FAULT)
        outcome = initiator.observe_fault(7, FaultKind.LOCAL_PAGE_FAULT)
        assert outcome.threshold_reached
        assert outcome.rw_bit == 1

    def test_entries_survive_cache_eviction(self):
        initiator = make_initiator(threshold=3)
        initiator.observe_fault(0, FaultKind.LOCAL_PAGE_FAULT)
        initiator.observe_fault(0, FaultKind.LOCAL_PAGE_FAULT)
        # Evict set 0 (VPNs congruent mod 16) past 4 ways.
        for vpn in (16, 32, 48, 64):
            initiator.observe_fault(vpn, FaultKind.LOCAL_PAGE_FAULT)
        outcome = initiator.observe_fault(0, FaultKind.LOCAL_PAGE_FAULT)
        assert outcome.threshold_reached

    def test_fault_observation_counter(self):
        initiator = make_initiator()
        for vpn in range(5):
            initiator.observe_fault(vpn, FaultKind.LOCAL_PAGE_FAULT)
        assert initiator.faults_observed == 5

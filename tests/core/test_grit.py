"""The assembled GRIT mechanism (Figure 16 pipeline)."""

import pytest

from repro.config import GritConfig, LatencyModel
from repro.constants import FaultKind, Scheme
from repro.core.grit import GritMechanism
from repro.memsys.page_table import CentralPageTable


def make_mechanism(**config_kwargs) -> GritMechanism:
    pt = CentralPageTable(default_scheme=Scheme.ON_TOUCH)
    return GritMechanism(
        GritConfig(**config_kwargs), LatencyModel(), pt
    )


class TestObserveFault:
    def test_below_threshold_makes_no_decision(self):
        grit = make_mechanism()
        for _ in range(3):
            change = grit.observe_fault(5, FaultKind.LOCAL_PAGE_FAULT)
            assert not change.decision_made
        assert grit.page_table.get(5).scheme is Scheme.ON_TOUCH

    def test_read_page_switches_to_duplication(self):
        grit = make_mechanism(fault_threshold=2)
        grit.observe_fault(5, FaultKind.LOCAL_PAGE_FAULT, is_write=False)
        change = grit.observe_fault(
            5, FaultKind.LOCAL_PAGE_FAULT, is_write=False
        )
        assert change.decision_made
        assert change.new_scheme is Scheme.DUPLICATION
        assert change.scheme_changed
        assert grit.page_table.get(5).scheme is Scheme.DUPLICATION
        assert grit.scheme_changes == 1

    def test_written_page_switches_to_access_counter(self):
        grit = make_mechanism(fault_threshold=2)
        grit.observe_fault(5, FaultKind.LOCAL_PAGE_FAULT, is_write=True)
        change = grit.observe_fault(
            5, FaultKind.PAGE_PROTECTION_FAULT, is_write=True
        )
        assert change.new_scheme is Scheme.ACCESS_COUNTER

    def test_repeated_same_decision_reports_unchanged(self):
        grit = make_mechanism(fault_threshold=1)
        first = grit.observe_fault(5, FaultKind.LOCAL_PAGE_FAULT, True)
        assert first.scheme_changed
        second = grit.observe_fault(5, FaultKind.LOCAL_PAGE_FAULT, True)
        assert second.decision_made
        assert not second.scheme_changed
        assert grit.scheme_changes == 1

    def test_neighbor_propagation_surfaces_in_change(self):
        grit = make_mechanism(fault_threshold=1)
        pt = grit.page_table
        for vpn in range(5):
            pt.get(vpn).scheme = Scheme.DUPLICATION
        # Page 6 never read; its decision to duplicate promotes the
        # group and propagates duplication to pages 5-7.
        change = grit.observe_fault(6, FaultKind.LOCAL_PAGE_FAULT, False)
        assert change.promotions == 1
        propagated_vpns = {vpn for vpn, _ in change.propagated}
        assert propagated_vpns == {5, 7}

    def test_no_neighbor_prediction_when_disabled(self):
        grit = make_mechanism(
            fault_threshold=1, use_neighbor_prediction=False
        )
        for vpn in range(5):
            grit.page_table.get(vpn).scheme = Scheme.DUPLICATION
        change = grit.observe_fault(6, FaultKind.LOCAL_PAGE_FAULT, False)
        assert change.promotions == 0
        assert change.propagated == ()

    def test_extra_latency_without_pa_cache(self):
        grit = make_mechanism(use_pa_cache=False)
        change = grit.observe_fault(5, FaultKind.LOCAL_PAGE_FAULT)
        assert change.extra_latency == LatencyModel().pa_table_memory_access

    @pytest.mark.parametrize("threshold", [1, 2, 4, 8, 16])
    def test_decision_happens_exactly_at_threshold(self, threshold):
        grit = make_mechanism(fault_threshold=threshold)
        for i in range(threshold - 1):
            assert not grit.observe_fault(
                9, FaultKind.LOCAL_PAGE_FAULT
            ).decision_made
        assert grit.observe_fault(9, FaultKind.LOCAL_PAGE_FAULT).decision_made

"""Paper-text scenarios replayed verbatim against the GRIT mechanism.

Each test scripts a worked example from Section V of the paper and
checks the implementation does exactly what the text describes.
"""

from repro.config import GritConfig, LatencyModel
from repro.constants import FaultKind, GroupBits, Scheme
from repro.core.grit import GritMechanism
from repro.core.neighbor import NeighboringAwarePredictor
from repro.memsys.page_table import CentralPageTable


def make_grit(threshold=4):
    pt = CentralPageTable(default_scheme=Scheme.ON_TOUCH)
    return GritMechanism(
        GritConfig(fault_threshold=threshold), LatencyModel(), pt
    )


class TestFigure15Flow:
    """Figure 15: threshold -> 8-group promotion -> 64-group promotion."""

    def test_steps_one_through_four(self):
        grit = make_grit(threshold=4)
        pt = grit.page_table

        # Step 1: page 3 reaches the fault threshold with read faults.
        for _ in range(3):
            change = grit.observe_fault(3, FaultKind.LOCAL_PAGE_FAULT, False)
            assert not change.decision_made
        # Pre-set the neighbourhood the way the figure draws it: more
        # than half of pages 0-7 already carry the new scheme.
        for vpn in (0, 1, 2, 4, 5):
            pt.get(vpn).scheme = Scheme.DUPLICATION
        change = grit.observe_fault(3, FaultKind.LOCAL_PAGE_FAULT, False)
        assert change.decision_made
        assert change.new_scheme is Scheme.DUPLICATION

        # Steps 2-3: all eight pages adopt the scheme, the base page's
        # group bits become "01".
        assert pt.get(0).group is GroupBits.GROUP_8
        for vpn in range(8):
            assert pt.get(vpn).scheme is Scheme.DUPLICATION
        assert change.promotions >= 1

        # Step 4: with the seven sibling 8-groups already intact and
        # using the scheme, the next decision promotes to "10" (64).
        for sub in range(1, 8):
            base = sub * 8
            for vpn in range(base, base + 8):
                pt.get(vpn).scheme = Scheme.DUPLICATION
            pt.get(base).group = GroupBits.GROUP_8
        predictor = grit.predictor
        outcome = predictor.on_scheme_change(
            3, Scheme.DUPLICATION, Scheme.ON_TOUCH
        )
        assert pt.get(0).group is GroupBits.GROUP_64
        assert outcome.promotions >= 1


class TestSectionVDDegradation:
    """'if the group bits are initially 10 ... the 64-page group is
    degraded into eight 8-page groups' with the affected one at 00."""

    def test_64_group_degrades_exactly_as_described(self):
        pt = CentralPageTable(default_scheme=Scheme.DUPLICATION)
        predictor = NeighboringAwarePredictor(pt)
        for vpn in range(64):
            pt.get(vpn).scheme = Scheme.DUPLICATION
        pt.get(0).group = GroupBits.GROUP_64

        # One page inside the third subgroup changes scheme.
        pt.get(20).scheme = Scheme.ACCESS_COUNTER
        predictor.on_scheme_change(
            20, Scheme.ACCESS_COUNTER, Scheme.DUPLICATION
        )

        # The affected subgroup (pages 16-23) has group bits 00 ...
        assert pt.get(16).group is GroupBits.SINGLE
        # ... and the other seven 8-page groups keep bits 01.
        for sub_base in (0, 8, 24, 32, 40, 48, 56):
            assert pt.get(sub_base).group is GroupBits.GROUP_8


class TestSectionVDSkipRule:
    """The paper's three-duplication-pages example: a repeated
    access-counter decision must NOT re-run the group check, or the
    three duplication pages would be flipped back."""

    def test_repeated_ac_decision_leaves_duplication_pages_alone(self):
        pt = CentralPageTable(default_scheme=Scheme.ACCESS_COUNTER)
        predictor = NeighboringAwarePredictor(pt)
        # Eight pages all on access-counter; three flip to duplication
        # one by one (each time, 3 < majority, so no promotion).
        for vpn in range(8):
            pt.get(vpn).scheme = Scheme.ACCESS_COUNTER
        for vpn in (0, 1, 2):
            pt.get(vpn).scheme = Scheme.DUPLICATION
            outcome = predictor.on_scheme_change(
                vpn, Scheme.DUPLICATION, Scheme.ACCESS_COUNTER
            )
            assert outcome.promotions == 0

        # A fourth page re-decides access-counter (same as its current
        # scheme): the group check is skipped entirely.
        outcome = predictor.on_scheme_change(
            4, Scheme.ACCESS_COUNTER, Scheme.ACCESS_COUNTER
        )
        assert outcome.promotions == 0
        assert outcome.degradations == 0
        # The three duplication pages were not flipped back.
        for vpn in (0, 1, 2):
            assert pt.get(vpn).scheme is Scheme.DUPLICATION


class TestPrivatePageClaim:
    """Section V-C: 'private pages do not trigger any updates ... and
    page placement scheme changes are not initiated for such pages'."""

    def test_single_fault_never_changes_scheme(self):
        grit = make_grit(threshold=4)
        # A private page faults exactly once (first touch) and then is
        # local forever: no decision can ever fire.
        change = grit.observe_fault(42, FaultKind.LOCAL_PAGE_FAULT, False)
        assert not change.decision_made
        assert grit.page_table.get(42).scheme is Scheme.ON_TOUCH
        assert grit.scheme_changes == 0

"""Scheme decision mechanism (Table III / Figure 13)."""

from repro.constants import Scheme
from repro.core.decision import POLICY_PREFERENCE, decide_scheme


class TestDecideScheme:
    def test_read_only_pages_duplicate(self):
        assert decide_scheme(rw_bit=0) is Scheme.DUPLICATION

    def test_written_pages_use_access_counter(self):
        assert decide_scheme(rw_bit=1) is Scheme.ACCESS_COUNTER


class TestPolicyPreferenceTable:
    def test_covers_all_six_classes(self):
        assert set(POLICY_PREFERENCE) == {
            (rw, sharing)
            for rw in ("read", "read-write")
            for sharing in ("private", "pc-shared", "all-shared")
        }

    def test_all_shared_read_prefers_duplication(self):
        assert POLICY_PREFERENCE[("read", "all-shared")] == (
            Scheme.DUPLICATION,
        )

    def test_all_shared_read_write_prefers_access_counter(self):
        assert POLICY_PREFERENCE[("read-write", "all-shared")] == (
            Scheme.ACCESS_COUNTER,
        )

    def test_private_read_write_prefers_on_touch_only(self):
        assert POLICY_PREFERENCE[("read-write", "private")] == (
            Scheme.ON_TOUCH,
        )

    def test_decision_consistent_with_table_for_shared_pages(self):
        # The collapsed mechanism decides for *shared* pages only; its
        # outputs must be acceptable per Table III's shared columns.
        assert decide_scheme(0) in POLICY_PREFERENCE[("read", "all-shared")]
        assert decide_scheme(1) in POLICY_PREFERENCE[
            ("read-write", "all-shared")
        ]

"""Neighboring-Aware Prediction: promotion, propagation, degradation."""

import pytest

from repro.constants import GroupBits, Scheme
from repro.core.neighbor import NeighboringAwarePredictor
from repro.memsys.page_table import CentralPageTable


@pytest.fixture
def pt() -> CentralPageTable:
    return CentralPageTable(default_scheme=Scheme.ON_TOUCH)


@pytest.fixture
def predictor(pt: CentralPageTable) -> NeighboringAwarePredictor:
    return NeighboringAwarePredictor(pt)


def set_schemes(pt, vpns, scheme):
    for vpn in vpns:
        pt.get(vpn).scheme = scheme


class TestPromotion:
    def test_majority_promotes_8_group(self, pt, predictor):
        # Pages 0-4 already duplication; page 5 changes to duplication.
        set_schemes(pt, range(5), Scheme.DUPLICATION)
        pt.get(5).scheme = Scheme.DUPLICATION
        outcome = predictor.on_scheme_change(
            5, Scheme.DUPLICATION, Scheme.ON_TOUCH
        )
        assert outcome.promotions == 1
        assert pt.get(0).group is GroupBits.GROUP_8
        # All eight pages now carry the scheme.
        for vpn in range(8):
            assert pt.get(vpn).scheme is Scheme.DUPLICATION

    def test_propagated_pages_report_old_scheme(self, pt, predictor):
        set_schemes(pt, range(5), Scheme.DUPLICATION)
        pt.get(6).scheme = Scheme.ACCESS_COUNTER
        pt.get(5).scheme = Scheme.DUPLICATION
        outcome = predictor.on_scheme_change(
            5, Scheme.DUPLICATION, Scheme.ON_TOUCH
        )
        changed = dict(outcome.propagated)
        assert changed[6] is Scheme.ACCESS_COUNTER

    def test_minority_does_not_promote(self, pt, predictor):
        set_schemes(pt, range(3), Scheme.DUPLICATION)  # 3+self = 4, not >4
        pt.get(5).scheme = Scheme.DUPLICATION
        outcome = predictor.on_scheme_change(
            5, Scheme.DUPLICATION, Scheme.ON_TOUCH
        )
        assert outcome.promotions == 0
        assert pt.get(0).group is GroupBits.SINGLE

    def test_unmaterialized_neighbors_count_as_mismatch(self, pt, predictor):
        pt.get(5).scheme = Scheme.DUPLICATION
        outcome = predictor.on_scheme_change(
            5, Scheme.DUPLICATION, Scheme.ON_TOUCH
        )
        assert outcome.promotions == 0

    def test_recursive_promotion_to_64(self, pt, predictor):
        # Seven intact 8-groups with duplication plus one majority-8
        # neighborhood around the changing page.
        for sub in range(1, 8):
            base = sub * 8
            set_schemes(pt, range(base, base + 8), Scheme.DUPLICATION)
            pt.get(base).group = GroupBits.GROUP_8
        set_schemes(pt, range(0, 7), Scheme.DUPLICATION)
        pt.get(7).scheme = Scheme.DUPLICATION
        outcome = predictor.on_scheme_change(
            7, Scheme.DUPLICATION, Scheme.ON_TOUCH
        )
        assert outcome.promotions == 2
        assert pt.get(0).group is GroupBits.GROUP_64
        # Former sub-group bases are cleared (bits live on one base only).
        assert pt.get(8).group is GroupBits.SINGLE

    def test_same_scheme_skips_group_check(self, pt, predictor):
        set_schemes(pt, range(8), Scheme.ACCESS_COUNTER)
        outcome = predictor.on_scheme_change(
            3, Scheme.ACCESS_COUNTER, Scheme.ACCESS_COUNTER
        )
        assert outcome.promotions == 0
        assert outcome.degradations == 0
        assert pt.get(0).group is GroupBits.SINGLE

    def test_max_group_pages_caps_promotion(self, pt):
        predictor = NeighboringAwarePredictor(pt, max_group_pages=8)
        for sub in range(8):
            set_schemes(pt, range(sub * 8, sub * 8 + 8), Scheme.DUPLICATION)
            if sub:
                pt.get(sub * 8).group = GroupBits.GROUP_8
        outcome = predictor.on_scheme_change(
            0, Scheme.DUPLICATION, Scheme.ON_TOUCH
        )
        assert outcome.promotions == 1
        assert pt.get(0).group is GroupBits.GROUP_8

    def test_disabled_predictor_with_single_pages(self, pt):
        predictor = NeighboringAwarePredictor(pt, max_group_pages=1)
        set_schemes(pt, range(8), Scheme.DUPLICATION)
        outcome = predictor.on_scheme_change(
            0, Scheme.DUPLICATION, Scheme.ON_TOUCH
        )
        assert outcome.promotions == 0


class TestDegradation:
    def _build_64_group(self, pt, scheme=Scheme.DUPLICATION):
        set_schemes(pt, range(64), scheme)
        pt.get(0).group = GroupBits.GROUP_64

    def test_divergence_degrades_64_group(self, pt, predictor):
        self._build_64_group(pt)
        pt.get(20).scheme = Scheme.ACCESS_COUNTER
        outcome = predictor.on_scheme_change(
            20, Scheme.ACCESS_COUNTER, Scheme.DUPLICATION
        )
        # 64 -> 8x8, then the affected 8-group -> singles
        assert outcome.degradations == 2
        # The affected 8-group (pages 16-23) becomes singles.
        assert pt.get(16).group is GroupBits.SINGLE
        # Other subgroups stay intact 8-groups.
        assert pt.get(0).group is GroupBits.GROUP_8
        assert pt.get(8).group is GroupBits.GROUP_8
        assert pt.get(24).group is GroupBits.GROUP_8

    def test_degradation_preserves_other_pages_schemes(self, pt, predictor):
        self._build_64_group(pt)
        pt.get(20).scheme = Scheme.ACCESS_COUNTER
        predictor.on_scheme_change(
            20, Scheme.ACCESS_COUNTER, Scheme.DUPLICATION
        )
        assert pt.get(21).scheme is Scheme.DUPLICATION
        assert pt.get(0).scheme is Scheme.DUPLICATION

    def test_divergence_in_8_group(self, pt, predictor):
        set_schemes(pt, range(8), Scheme.DUPLICATION)
        pt.get(0).group = GroupBits.GROUP_8
        pt.get(3).scheme = Scheme.ACCESS_COUNTER
        outcome = predictor.on_scheme_change(
            3, Scheme.ACCESS_COUNTER, Scheme.DUPLICATION
        )
        assert outcome.degradations == 1
        assert pt.get(0).group is GroupBits.SINGLE

    def test_containing_group_lookup(self, pt, predictor):
        self._build_64_group(pt)
        assert predictor.containing_group(40) == (0, GroupBits.GROUP_64)
        assert predictor.containing_group(100) == (100, GroupBits.SINGLE)

    def test_group_scheme_of(self, pt, predictor):
        self._build_64_group(pt, scheme=Scheme.DUPLICATION)
        assert predictor.group_scheme_of(33) is Scheme.DUPLICATION
        assert predictor.group_scheme_of(100) is None


class TestPromotionAfterDegradation:
    def test_scheme_flip_can_rebuild_group(self, pt, predictor):
        set_schemes(pt, range(8), Scheme.DUPLICATION)
        pt.get(0).group = GroupBits.GROUP_8
        # Five pages flip to AC one by one; the fifth flip sees a
        # majority and promotes the group to AC.
        for vpn in range(4):
            pt.get(vpn).scheme = Scheme.ACCESS_COUNTER
            predictor.on_scheme_change(
                vpn, Scheme.ACCESS_COUNTER, Scheme.DUPLICATION
            )
        pt.get(4).scheme = Scheme.ACCESS_COUNTER
        outcome = predictor.on_scheme_change(
            4, Scheme.ACCESS_COUNTER, Scheme.DUPLICATION
        )
        assert outcome.promotions == 1
        for vpn in range(8):
            assert pt.get(vpn).scheme is Scheme.ACCESS_COUNTER

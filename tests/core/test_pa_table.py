"""PA-Table: entry lifecycle and footprint accounting (Section V-C)."""

from repro.core.pa_table import ENTRY_BITS, PAEntry, PATable


class TestPAEntry:
    def test_fresh_entry_matches_paper_init(self):
        entry = PAEntry(vpn=5)
        assert entry.rw_bit == 0
        assert entry.fault_counter == 0

    def test_record_read_fault(self):
        entry = PAEntry(vpn=5)
        entry.record_fault(is_write=False)
        assert entry.fault_counter == 1
        assert entry.rw_bit == 0

    def test_rw_bit_is_sticky(self):
        entry = PAEntry(vpn=5)
        entry.record_fault(is_write=True)
        entry.record_fault(is_write=False)
        assert entry.rw_bit == 1
        assert entry.fault_counter == 2


class TestPATable:
    def test_lookup_miss(self):
        table = PATable()
        assert table.lookup(3) is None
        assert table.lookups == 1

    def test_insert_and_lookup(self):
        table = PATable()
        table.insert(PAEntry(vpn=3, rw_bit=1, fault_counter=2))
        entry = table.lookup(3)
        assert entry.rw_bit == 1
        assert entry.fault_counter == 2
        assert 3 in table

    def test_remove_counts_deletion(self):
        table = PATable()
        table.insert(PAEntry(vpn=3))
        assert table.remove(3) is not None
        assert table.deletions == 1
        assert table.remove(3) is None
        assert table.deletions == 1

    def test_take_does_not_count_deletion(self):
        table = PATable()
        table.insert(PAEntry(vpn=3))
        assert table.take(3) is not None
        assert table.deletions == 0
        assert 3 not in table

    def test_entry_is_48_bits(self):
        # 45-bit VPN + 2-bit counter + 1-bit RW (Section V-F).
        assert ENTRY_BITS == 48

    def test_footprint_tracks_entries(self):
        table = PATable()
        for vpn in range(10):
            table.insert(PAEntry(vpn=vpn))
        assert table.footprint_bits() == 10 * 48
        assert len(table) == 10

    def test_footprint_fraction_matches_paper_overhead(self):
        # 48 bits per 4 KB page = 0.15% of the footprint (Section V-F).
        page_bits = 4096 * 8
        assert ENTRY_BITS / page_bits == 0.00146484375  # ~0.15%


class TestPAEntryPacking:
    def test_round_trip(self):
        entry = PAEntry(vpn=(1 << 45) - 7, rw_bit=1, fault_counter=2)
        assert PAEntry.decode(entry.encode()) == entry

    def test_word_fits_48_bits(self):
        entry = PAEntry(vpn=(1 << 45) - 1, rw_bit=1, fault_counter=3)
        assert entry.encode() < (1 << ENTRY_BITS)

    def test_counter_saturates_in_hardware_word(self):
        entry = PAEntry(vpn=5, fault_counter=9)
        decoded = PAEntry.decode(entry.encode())
        assert decoded.fault_counter == 3  # 2-bit field maximum

    def test_fields_do_not_alias(self):
        entry = PAEntry(vpn=(1 << 45) - 1, rw_bit=0, fault_counter=0)
        decoded = PAEntry.decode(entry.encode())
        assert decoded.rw_bit == 0
        assert decoded.fault_counter == 0
        assert decoded.vpn == (1 << 45) - 1

"""PA-Cache: 4-way sets indexed by low VPN bits, LRU, write-back."""

import pytest

from repro.core.pa_cache import PACache
from repro.core.pa_table import PAEntry, PATable
from repro.errors import ConfigError


@pytest.fixture
def table() -> PATable:
    return PATable()


@pytest.fixture
def cache(table: PATable) -> PACache:
    return PACache(table, entries=64, ways=4)


class TestPACacheAccess:
    def test_cold_access_registers_fresh_entry(self, cache):
        entry, hit = cache.access(5)
        assert not hit
        assert entry.vpn == 5
        assert entry.fault_counter == 0

    def test_second_access_hits(self, cache):
        cache.access(5)
        entry, hit = cache.access(5)
        assert hit
        assert cache.hits == 1
        assert cache.misses == 1

    def test_updates_stay_in_cache_not_table(self, cache, table):
        entry, _ = cache.access(5)
        entry.record_fault(True)
        # Write-allocate + write-back: nothing reaches the table yet.
        assert 5 not in table

    def test_miss_fills_from_table(self, cache, table):
        table.insert(PAEntry(vpn=9, rw_bit=1, fault_counter=2))
        entry, hit = cache.access(9)
        assert not hit
        assert entry.fault_counter == 2
        assert cache.table_fills == 1
        # Moved into the cache (write-allocate).
        assert 9 not in table

    def test_low_4_bits_index_sets(self, cache):
        # 64 entries / 4 ways = 16 sets; VPNs 0, 16, 32, 48, 64 collide.
        for vpn in (0, 16, 32, 48):
            entry, _ = cache.access(vpn)
            entry.record_fault(False)
        cache.access(64)  # evicts LRU (vpn 0) to the table
        assert cache.writebacks == 1

    def test_eviction_writes_back_to_table(self, cache, table):
        entries = [cache.access(vpn)[0] for vpn in (0, 16, 32, 48)]
        entries[0].record_fault(True)
        cache.access(64)
        victim = table.lookup(0)
        assert victim is not None
        assert victim.rw_bit == 1

    def test_lru_within_set(self, cache, table):
        for vpn in (0, 16, 32, 48):
            cache.access(vpn)
        cache.access(0)  # refresh 0; LRU is now 16
        cache.access(64)
        assert table.lookup(16) is not None
        assert table.lookup(0) is None  # still cached


class TestWritebackAccounting:
    """Write-allocate + write-back: only modified entries write back."""

    def test_clean_eviction_is_not_a_writeback(self, cache, table):
        for vpn in (0, 16, 32, 48):
            cache.access(vpn)  # never modified after fill
        cache.access(64)
        assert cache.writebacks == 0
        # The victim still reaches the table (its state is preserved).
        assert table.lookup(0) is not None

    def test_dirty_eviction_counts_once(self, cache):
        entry, _ = cache.access(0)
        entry.record_fault(True)
        for vpn in (16, 32, 48, 64):
            cache.access(vpn)
        assert cache.writebacks == 1

    def test_clean_fill_from_table_stays_clean(self, cache, table):
        table.insert(PAEntry(vpn=0, rw_bit=1, fault_counter=2))
        cache.access(0)  # fill without modifying
        for vpn in (16, 32, 48, 64):
            cache.access(vpn)
        assert cache.writebacks == 0
        # Round-tripped through the cache unchanged.
        restored = table.lookup(0)
        assert restored is not None
        assert restored.fault_counter == 2

    def test_flush_counts_only_dirty_entries(self, cache):
        dirty_entry, _ = cache.access(3)
        dirty_entry.record_fault(False)
        cache.access(4)
        cache.access(5)
        cache.flush_to_table()
        assert cache.writebacks == 1

    def test_writeback_clears_dirty_bit(self, cache, table):
        entry, _ = cache.access(0)
        entry.record_fault(False)
        for vpn in (16, 32, 48, 64):
            cache.access(vpn)
        assert cache.writebacks == 1
        # Re-fill the written-back entry and evict it unmodified: the
        # dirty bit must not survive the round trip.
        cache.access(0)  # set is now [32, 48, 64, 0]
        for vpn in (16, 80, 96, 112):  # four evictions push 0 out
            cache.access(vpn)
        assert cache.writebacks == 1


class TestPACacheDelete:
    def test_delete_removes_from_both_levels(self, cache, table):
        cache.access(5)
        table.insert(PAEntry(vpn=6))
        cache.delete(5)
        cache.delete(6)
        _, hit = cache.access(5)
        assert not hit
        assert table.lookup(6) is None

    def test_delete_is_counted(self, cache, table):
        cache.access(5)
        table.insert(PAEntry(vpn=6))
        cache.delete(5)
        cache.delete(6)
        assert cache.deletes == 2

    def test_delete_of_absent_entry_not_counted(self, cache):
        cache.delete(99)
        assert cache.deletes == 0

    def test_flush_to_table(self, cache, table):
        for vpn in range(8):
            cache.access(vpn)
        cache.flush_to_table()
        assert len(cache) == 0
        assert len(table) == 8


class TestPACacheGeometry:
    def test_rejects_bad_geometry(self, table):
        with pytest.raises(ConfigError):
            PACache(table, entries=10, ways=4)

    def test_rejects_non_power_of_two_sets(self, table):
        with pytest.raises(ConfigError):
            PACache(table, entries=12, ways=4)

    def test_capacity_bounded(self, cache):
        for vpn in range(1000):
            cache.access(vpn)
        assert len(cache) <= 64

"""Time-resolved scheme occupancy from event logs."""

import pytest

from repro.analysis.scheme_timeline import (
    flip_counts,
    scheme_occupancy_timeline,
)
from repro.constants import Scheme
from repro.stats.events import EventKind, EventLog


def log_with_changes(changes):
    log = EventLog()
    for vpn, scheme in changes:
        log.emit(EventKind.SCHEME_CHANGE, vpn=vpn, gpu=0, detail=int(scheme))
    return log


class TestSchemeOccupancy:
    def test_empty_log_gives_empty_timeline(self):
        assert scheme_occupancy_timeline(EventLog()) == []

    def test_single_change_counts_page_under_new_scheme(self):
        log = log_with_changes([(5, Scheme.DUPLICATION)])
        timeline = scheme_occupancy_timeline(log)
        final = timeline[-1]
        assert final.counts[Scheme.DUPLICATION] == 1
        assert final.counts[Scheme.ON_TOUCH] == 0
        assert final.fraction(Scheme.DUPLICATION) == 1.0

    def test_page_moves_between_schemes(self):
        log = log_with_changes(
            [(5, Scheme.DUPLICATION), (5, Scheme.ACCESS_COUNTER)]
        )
        final = scheme_occupancy_timeline(log)[-1]
        assert final.counts[Scheme.DUPLICATION] == 0
        assert final.counts[Scheme.ACCESS_COUNTER] == 1

    def test_population_counts_distinct_pages(self):
        log = log_with_changes(
            [(1, Scheme.DUPLICATION), (2, Scheme.DUPLICATION),
             (3, Scheme.ACCESS_COUNTER)]
        )
        final = scheme_occupancy_timeline(log)[-1]
        assert sum(final.counts.values()) == 3
        assert final.fraction(Scheme.DUPLICATION) == pytest.approx(2 / 3)

    def test_sampling_bounds_timeline_length(self):
        log = log_with_changes(
            [(vpn, Scheme.DUPLICATION) for vpn in range(200)]
        )
        timeline = scheme_occupancy_timeline(log, samples=10)
        assert len(timeline) <= 12
        assert timeline[-1].event_index == 199

    def test_rejects_bad_samples(self):
        with pytest.raises(ValueError):
            scheme_occupancy_timeline(EventLog(), samples=0)


class TestFlipCounts:
    def test_counts_changes_per_page(self):
        log = log_with_changes(
            [
                (1, Scheme.DUPLICATION),
                (1, Scheme.ACCESS_COUNTER),
                (2, Scheme.DUPLICATION),
            ]
        )
        assert flip_counts(log) == {1: 2, 2: 1}


class TestEndToEnd:
    def test_grit_run_produces_converging_timeline(self):
        from repro.config import SystemConfig
        from repro.policies import make_policy
        from repro.sim import Engine
        from repro.workloads import make_workload

        log = EventLog()
        Engine(
            SystemConfig(),
            make_workload("st", scale=0.1),
            make_policy("grit"),
            event_log=log,
        ).run()
        timeline = scheme_occupancy_timeline(log)
        assert timeline
        # GRIT acted on a meaningful set of pages and the population is
        # internally consistent at every sample.
        for sample in timeline:
            assert all(count >= 0 for count in sample.counts.values())
        assert sum(timeline[-1].counts.values()) > 10

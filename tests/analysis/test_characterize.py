"""Trace characterization: timelines and shared-page classification."""

import pytest

from repro.analysis.characterize import (
    build_timeline,
    classify_shared_pages,
    page_interval_profile,
    sharing_summary,
)
from tests.conftest import build_trace
from repro.workloads import make_workload


class TestSharingSummary:
    def test_counts_match_hand_built_trace(self, two_gpu_trace):
        summary = sharing_summary(two_gpu_trace)
        # Pages: 0 (shared RW), 1 and 2 (private RW).
        assert summary.total_pages == 3
        assert summary.shared_page_fraction == pytest.approx(1 / 3)
        assert summary.read_write_page_fraction == 1.0


class TestBuildTimeline:
    def test_interval_count_close_to_requested(self, two_gpu_trace):
        timeline = build_timeline(two_gpu_trace, num_intervals=4)
        assert 1 <= timeline.num_intervals <= 4

    def test_all_accesses_recorded(self, two_gpu_trace):
        timeline = build_timeline(two_gpu_trace, num_intervals=4)
        recorded = sum(
            timeline.sample(i, vpn).reads + timeline.sample(i, vpn).writes
            for i in range(timeline.num_intervals)
            for vpn in timeline.pages_in_interval(i)
        )
        assert recorded == two_gpu_trace.total_accesses

    def test_rejects_zero_intervals(self, two_gpu_trace):
        with pytest.raises(ValueError):
            build_timeline(two_gpu_trace, num_intervals=0)


class TestPageIntervalProfile:
    def test_profile_shares_sum_to_one(self, two_gpu_trace):
        timeline = build_timeline(two_gpu_trace, num_intervals=2)
        rows = page_interval_profile(timeline, 0)
        for row in rows:
            if row["accesses"]:
                assert sum(row["per_gpu"]) == pytest.approx(1.0)

    def test_untouched_intervals_are_zero(self):
        trace = build_trace(
            [[(0, False)] * 4 + [(1, False)] * 4], footprint_pages=4
        )
        timeline = build_timeline(trace, num_intervals=2)
        rows = page_interval_profile(timeline, 1)
        assert rows[0]["accesses"] == 0
        assert rows[1]["accesses"] == 4


class TestClassifySharedPages:
    def test_pc_shared_page_detected(self):
        # Page 0: GPU 0 exclusively early, GPU 1 exclusively late.
        trace = build_trace(
            [
                [(0, True)] * 8 + [(1, False)] * 8,
                [(1, False)] * 8 + [(0, False)] * 8,
            ],
            footprint_pages=4,
        )
        timeline = build_timeline(trace, num_intervals=2)
        classes = classify_shared_pages(timeline)
        assert 0 in classes["pc_shared"]

    def test_all_shared_page_detected(self):
        # Both GPUs hammer page 0 in every interval.
        trace = build_trace(
            [[(0, False)] * 16, [(0, True)] * 16], footprint_pages=4
        )
        timeline = build_timeline(trace, num_intervals=4)
        classes = classify_shared_pages(timeline)
        assert 0 in classes["all_shared"]

    def test_private_pages_excluded(self):
        trace = build_trace(
            [[(0, False)] * 4, [(1, False)] * 4], footprint_pages=4
        )
        timeline = build_timeline(trace, num_intervals=2)
        classes = classify_shared_pages(timeline)
        assert classes["pc_shared"] == []
        assert classes["all_shared"] == []

    def test_paper_contrast_c2d_vs_st(self):
        """C2D's shared pages skew PC-shared; ST's skew all-shared."""
        c2d = build_timeline(make_workload("c2d", scale=0.15), 32)
        st = build_timeline(make_workload("st", scale=0.15), 32)
        c2d_classes = classify_shared_pages(c2d)
        st_classes = classify_shared_pages(st)

        def pc_fraction(classes):
            total = len(classes["pc_shared"]) + len(classes["all_shared"])
            return len(classes["pc_shared"]) / total if total else 0.0

        assert pc_fraction(c2d_classes) > pc_fraction(st_classes)

"""Attribute maps (Figures 6-8) and neighbor agreement."""

import numpy as np

from repro.analysis.attributes import (
    PRIVATE,
    READ,
    READ_WRITE,
    SHARED,
    UNTOUCHED,
    AttributeMap,
    attribute_map,
)
from repro.workloads import make_workload
from tests.conftest import build_trace


class TestAttributeMap:
    def test_codes_for_hand_built_trace(self):
        trace = build_trace(
            [
                [(0, False), (1, True)],
                [(0, False)],
            ],
            footprint_pages=3,
        )
        amap = attribute_map(trace, num_intervals=1)
        assert amap.sharing[0, 0] == SHARED
        assert amap.sharing[0, 1] == PRIVATE
        assert amap.sharing[0, 2] == UNTOUCHED
        assert amap.read_write[0, 0] == READ
        assert amap.read_write[0, 1] == READ_WRITE

    def test_max_pages_caps_columns(self):
        trace = make_workload("gemm", scale=0.1)
        amap = attribute_map(trace, num_intervals=10, max_pages=50)
        assert amap.sharing.shape[1] == 50

    def test_neighbor_agreement_bounds(self):
        matrix = np.array([[PRIVATE, PRIVATE, SHARED]], dtype=np.int8)
        amap = AttributeMap(
            pages=np.arange(3), sharing=matrix, read_write=matrix
        )
        assert amap.neighbor_agreement(matrix) == 0.5

    def test_neighbor_agreement_ignores_untouched(self):
        matrix = np.array([[PRIVATE, UNTOUCHED, PRIVATE]], dtype=np.int8)
        amap = AttributeMap(
            pages=np.arange(3), sharing=matrix, read_write=matrix
        )
        # No adjacent pair has both cells touched.
        assert amap.neighbor_agreement(matrix) == 0.0


class TestPaperObservation:
    def test_neighbors_agree_in_gemm_and_st(self):
        """Section IV-C: consecutive pages share attributes, which is
        what justifies Neighboring-Aware Prediction."""
        for app in ("gemm", "st"):
            amap = attribute_map(
                make_workload(app, scale=0.15), num_intervals=20
            )
            assert amap.neighbor_agreement(amap.sharing) > 0.85
            assert amap.neighbor_agreement(amap.read_write) > 0.80

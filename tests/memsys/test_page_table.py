"""Local and centralized page tables."""

from repro.constants import Scheme
from repro.memsys.page_table import CentralPageTable, LocalPageTable


class TestLocalPageTable:
    def test_lookup_miss_is_none(self):
        pt = LocalPageTable(gpu_id=0)
        assert pt.lookup(5) is None
        assert 5 not in pt

    def test_map_and_lookup(self):
        pt = LocalPageTable(gpu_id=0)
        pt.map(5, location=2, writable=False)
        entry = pt.lookup(5)
        assert entry.location == 2
        assert not entry.writable
        assert len(pt) == 1

    def test_remap_overwrites(self):
        pt = LocalPageTable(gpu_id=0)
        pt.map(5, location=2, writable=False)
        pt.map(5, location=0, writable=True)
        assert pt.lookup(5).location == 0
        assert len(pt) == 1

    def test_invalidate(self):
        pt = LocalPageTable(gpu_id=0)
        pt.map(5, location=0, writable=True)
        assert pt.invalidate(5)
        assert not pt.invalidate(5)
        assert pt.lookup(5) is None

    def test_mapped_vpns(self):
        pt = LocalPageTable(gpu_id=0)
        for vpn in (3, 1, 2):
            pt.map(vpn, location=0, writable=True)
        assert sorted(pt.mapped_vpns()) == [1, 2, 3]


class TestCentralPageTable:
    def test_get_materializes_with_default_scheme(self):
        pt = CentralPageTable(default_scheme=Scheme.DUPLICATION)
        page = pt.get(9)
        assert page.vpn == 9
        assert page.scheme is Scheme.DUPLICATION
        assert 9 in pt

    def test_get_returns_same_object(self):
        pt = CentralPageTable()
        assert pt.get(1) is pt.get(1)

    def test_peek_does_not_materialize(self):
        pt = CentralPageTable()
        assert pt.peek(4) is None
        assert 4 not in pt
        assert len(pt) == 0

    def test_pages_iterates_materialized(self):
        pt = CentralPageTable()
        pt.get(1)
        pt.get(2)
        assert {page.vpn for page in pt.pages()} == {1, 2}

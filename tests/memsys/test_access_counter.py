"""Access counters: 64 KB grouping, thresholds, resets."""

import pytest

from repro.memsys.access_counter import AccessCounterFile


class TestAccessCounterFile:
    def test_threshold_fires_and_resets(self):
        counters = AccessCounterFile(threshold=3, pages_per_group=16)
        assert not counters.record_remote_access(0, 5)
        assert not counters.record_remote_access(0, 5)
        assert counters.record_remote_access(0, 5)
        # Counter cleared after firing.
        assert counters.count(0, 5) == 0
        assert counters.migrations_triggered == 1

    def test_group_granularity(self):
        counters = AccessCounterFile(threshold=3, pages_per_group=16)
        counters.record_remote_access(0, 0)
        counters.record_remote_access(0, 15)  # same 64 KB group
        assert counters.record_remote_access(0, 7)
        assert counters.count(0, 16) == 0  # next group untouched

    def test_per_gpu_counters_are_independent(self):
        counters = AccessCounterFile(threshold=3, pages_per_group=16)
        counters.record_remote_access(0, 0)
        counters.record_remote_access(1, 0)
        assert counters.count(0, 0) == 1
        assert counters.count(1, 0) == 1

    def test_reset_group_clears_all_gpus(self):
        counters = AccessCounterFile(threshold=10, pages_per_group=16)
        counters.record_remote_access(0, 3)
        counters.record_remote_access(1, 3)
        counters.reset_group(3)
        assert counters.count(0, 3) == 0
        assert counters.count(1, 3) == 0

    def test_threshold_one_fires_immediately(self):
        counters = AccessCounterFile(threshold=1, pages_per_group=1)
        assert counters.record_remote_access(0, 0)

    def test_len_counts_live_groups(self):
        counters = AccessCounterFile(threshold=5, pages_per_group=16)
        counters.record_remote_access(0, 0)
        counters.record_remote_access(0, 100)
        assert len(counters) == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AccessCounterFile(threshold=0, pages_per_group=16)
        with pytest.raises(ValueError):
            AccessCounterFile(threshold=1, pages_per_group=0)

"""PageInfo: ownership, replicas, locality."""

from repro.constants import HOST_NODE, GroupBits, Scheme
from repro.memsys.page import PageInfo


class TestPageInfo:
    def test_starts_at_host_unplaced(self):
        page = PageInfo(vpn=7)
        assert page.owner == HOST_NODE
        assert not page.placed
        assert page.holders() == set()

    def test_defaults(self):
        page = PageInfo(vpn=0)
        assert page.scheme is Scheme.ON_TOUCH
        assert page.group is GroupBits.SINGLE
        assert not page.ever_written
        assert not page.dirty

    def test_holders_includes_owner_and_replicas(self):
        page = PageInfo(vpn=0, owner=1, replicas={2, 3})
        assert page.holders() == {1, 2, 3}

    def test_is_local_to_owner_and_replicas(self):
        page = PageInfo(vpn=0, owner=1, replicas={2})
        assert page.is_local_to(1)
        assert page.is_local_to(2)
        assert not page.is_local_to(0)

    def test_host_pages_local_to_nobody(self):
        page = PageInfo(vpn=0)
        assert not page.is_local_to(0)

    def test_replica_sets_are_independent(self):
        a = PageInfo(vpn=0)
        b = PageInfo(vpn=1)
        a.replicas.add(3)
        assert b.replicas == set()

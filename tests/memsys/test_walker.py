"""Page-table walker and page-walk cache."""

import pytest

from repro.config import WalkerConfig
from repro.errors import ConfigError
from repro.memsys.walker import PageTableWalker, PageWalkCache


class TestPageWalkCache:
    def test_consecutive_pages_share_entries(self):
        cache = PageWalkCache(entries=4)
        assert not cache.probe(0)  # cold
        assert cache.probe(1)  # same PT page (512 entries each)
        assert cache.probe(511)
        assert not cache.probe(512)  # next PT page

    def test_lru_eviction(self):
        cache = PageWalkCache(entries=2)
        cache.probe(0)        # key 0
        cache.probe(512)      # key 1
        cache.probe(1024)     # key 2 evicts key 0
        assert not cache.probe(0)

    def test_hit_statistics(self):
        cache = PageWalkCache(entries=4)
        cache.probe(0)
        cache.probe(1)
        cache.probe(2)
        assert cache.misses == 1
        assert cache.hits == 2


class TestPageTableWalker:
    def test_cold_walk_pays_full_depth(self):
        walker = PageTableWalker(WalkerConfig())
        assert walker.walk(0, now=0) == 400

    def test_cached_walk_pays_leaf_only(self):
        walker = PageTableWalker(WalkerConfig())
        walker.walk(0, now=0)
        assert walker.walk(1, now=1000) == 100

    def test_queue_penalty_when_walkers_saturated(self):
        walker = PageTableWalker(WalkerConfig(walkers=2))
        latencies = [walker.walk(vpn * 512, now=5) for vpn in range(4)]
        # First two walks fit the walkers; later ones queue.
        assert latencies[0] == latencies[1] == 400
        assert latencies[2] > 400
        assert latencies[3] > latencies[2]

    def test_queue_window_resets_over_time(self):
        walker = PageTableWalker(WalkerConfig(walkers=1))
        walker.walk(0, now=0)
        walker.walk(512, now=0)
        later = walker.walk(1024, now=10_000)
        assert later == 400

    def test_walk_counter(self):
        walker = PageTableWalker(WalkerConfig())
        for vpn in range(5):
            walker.walk(vpn, now=vpn)
        assert walker.walks == 5


class TestWalkQueueBackPressure:
    """Regression: the 64-entry walk queue used to be dead config."""

    CONFIG = WalkerConfig(
        walkers=1,
        walk_queue_entries=2,
        latency_per_level=10,
        levels=4,
    )

    def test_overflow_beyond_queue_pays_a_full_walk(self):
        walker = PageTableWalker(self.CONFIG)
        latencies = [walker.walk(0, now=0) for _ in range(4)]
        # Walk 1 misses cold (40); walks 2-3 hit the PWC (10) and
        # queue one and two leaf fetches deep (+10/+20); walk 4 also
        # overflows the 2-entry walk queue and stalls a full drain.
        assert latencies == [40, 20, 30, 80]

    def test_queue_depth_scales_the_stall(self):
        deep = WalkerConfig(
            walkers=1,
            walk_queue_entries=3,
            latency_per_level=10,
            levels=4,
        )
        walker = PageTableWalker(deep)
        latencies = [walker.walk(0, now=0) for _ in range(4)]
        # Same arrivals, deeper queue: the fourth walk still fits.
        assert latencies == [40, 20, 30, 40]

    def test_zero_entry_queue_is_rejected(self):
        with pytest.raises(ConfigError):
            WalkerConfig(walk_queue_entries=0)

"""PTE bit layout (Figure 14): scheme bits 9-10, group bits 52-53."""

import pytest

from repro.constants import GroupBits, Scheme
from repro.memsys.pte import PageTableEntry


class TestEncodeDecode:
    def test_round_trip_full_entry(self):
        entry = PageTableEntry(
            pfn=0xABCDE,
            valid=True,
            writable=True,
            user=True,
            accessed=True,
            dirty=True,
            scheme=Scheme.DUPLICATION,
            group=GroupBits.GROUP_64,
            no_execute=True,
        )
        assert PageTableEntry.decode(entry.encode()) == entry

    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_scheme_bits_land_at_bit_9(self, scheme):
        entry = PageTableEntry(valid=True, scheme=scheme)
        word = entry.encode()
        assert (word >> 9) & 0b11 == int(scheme)

    @pytest.mark.parametrize("group", list(GroupBits))
    def test_group_bits_land_at_bit_52(self, group):
        entry = PageTableEntry(valid=True, group=group)
        word = entry.encode()
        assert (word >> 52) & 0b11 == int(group)

    def test_pfn_lands_at_bit_12(self):
        entry = PageTableEntry(pfn=1, valid=True)
        assert (entry.encode() >> 12) & 1 == 1

    def test_no_scheme_encodes_as_zero(self):
        entry = PageTableEntry(valid=True, scheme=None)
        assert (entry.encode() >> 9) & 0b11 == 0
        assert PageTableEntry.decode(entry.encode()).scheme is None

    def test_group_bits_do_not_clobber_pfn(self):
        entry = PageTableEntry(
            pfn=(1 << 40) - 1, valid=True, group=GroupBits.GROUP_512
        )
        decoded = PageTableEntry.decode(entry.encode())
        assert decoded.pfn == (1 << 40) - 1
        assert decoded.group is GroupBits.GROUP_512

    def test_invalid_entry_round_trip(self):
        entry = PageTableEntry()
        decoded = PageTableEntry.decode(entry.encode())
        assert not decoded.valid
        assert decoded.pfn == 0

"""Address arithmetic: VPN folding, counter groups, neighbor groups."""

import pytest

from repro.constants import PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.errors import ConfigError
from repro.memsys.address import AddressSpace


class TestAddressSpace:
    def test_4k_identity_fold(self):
        space = AddressSpace(PAGE_SIZE_4K)
        assert space.base_pages_per_page == 1
        assert space.fold_base_vpn(123) == 123

    def test_2m_fold(self):
        space = AddressSpace(PAGE_SIZE_2M)
        assert space.base_pages_per_page == 512
        assert space.fold_base_vpn(0) == 0
        assert space.fold_base_vpn(511) == 0
        assert space.fold_base_vpn(512) == 1

    def test_address_vpn_round_trip(self):
        space = AddressSpace(PAGE_SIZE_4K)
        for vpn in (0, 1, 99, 2**30):
            assert space.vpn_of_address(space.address_of_vpn(vpn)) == vpn

    def test_vpn_of_mid_page_address(self):
        space = AddressSpace(PAGE_SIZE_4K)
        assert space.vpn_of_address(PAGE_SIZE_4K + 17) == 1

    def test_counter_group_64kb(self):
        space = AddressSpace(PAGE_SIZE_4K)
        assert space.counter_group(0, 64 * 1024) == 0
        assert space.counter_group(15, 64 * 1024) == 0
        assert space.counter_group(16, 64 * 1024) == 1

    def test_counter_group_never_smaller_than_page(self):
        space = AddressSpace(PAGE_SIZE_2M)
        assert space.counter_group(5, 64 * 1024) == 5

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            AddressSpace(3000)

    def test_rejects_sub_4k_pages(self):
        with pytest.raises(ConfigError):
            AddressSpace(2048)


class TestGroupBase:
    def test_matches_paper_formula(self):
        # VPN_base = VPN - (VPN % GroupSize)
        assert AddressSpace.group_base(0, 8) == 0
        assert AddressSpace.group_base(7, 8) == 0
        assert AddressSpace.group_base(8, 8) == 8
        assert AddressSpace.group_base(100, 64) == 64
        assert AddressSpace.group_base(1000, 512) == 512

    def test_members_cover_group(self):
        members = AddressSpace.group_members(19, 8)
        assert list(members) == list(range(16, 24))

    def test_rejects_bad_group_size(self):
        with pytest.raises(ConfigError):
            AddressSpace.group_base(3, 0)

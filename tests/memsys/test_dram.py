"""DRAM directory: residency, LRU eviction, dirty tracking."""

import pytest

from repro.memsys.dram import DramDirectory


class TestDramDirectory:
    def test_install_until_full_no_eviction(self):
        dram = DramDirectory(gpu_id=0, capacity_frames=3)
        for vpn in range(3):
            assert dram.install(vpn) is None
        assert dram.full
        assert len(dram) == 3

    def test_lru_eviction_on_overflow(self):
        dram = DramDirectory(gpu_id=0, capacity_frames=2)
        dram.install(0)
        dram.install(1)
        eviction = dram.install(2)
        assert eviction.evicted_vpn == 0
        assert 0 not in dram
        assert 1 in dram and 2 in dram

    def test_touch_refreshes_lru(self):
        dram = DramDirectory(gpu_id=0, capacity_frames=2)
        dram.install(0)
        dram.install(1)
        dram.touch(0)
        eviction = dram.install(2)
        assert eviction.evicted_vpn == 1

    def test_dirty_propagates_to_eviction(self):
        dram = DramDirectory(gpu_id=0, capacity_frames=1)
        dram.install(0)
        dram.mark_dirty(0)
        eviction = dram.install(1)
        assert eviction.was_dirty

    def test_clean_eviction(self):
        dram = DramDirectory(gpu_id=0, capacity_frames=1)
        dram.install(0)
        eviction = dram.install(1)
        assert not eviction.was_dirty

    def test_reinstall_resident_page_keeps_dirty(self):
        dram = DramDirectory(gpu_id=0, capacity_frames=2)
        dram.install(0, dirty=True)
        assert dram.install(0, dirty=False) is None
        eviction = dram.install(1) or dram.install(2)
        assert eviction.evicted_vpn == 0
        assert eviction.was_dirty

    def test_release_frees_frame(self):
        dram = DramDirectory(gpu_id=0, capacity_frames=1)
        dram.install(0)
        assert dram.release(0)
        assert not dram.release(0)
        assert dram.install(1) is None

    def test_eviction_counter(self):
        dram = DramDirectory(gpu_id=0, capacity_frames=1)
        for vpn in range(5):
            dram.install(vpn)
        assert dram.evictions == 4
        assert dram.installs == 5

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            DramDirectory(gpu_id=0, capacity_frames=0)

    def test_resident_vpns(self):
        dram = DramDirectory(gpu_id=0, capacity_frames=4)
        for vpn in (5, 2, 9):
            dram.install(vpn)
        assert set(dram.resident_vpns()) == {5, 2, 9}


class TestEvictionPolicies:
    def test_fifo_ignores_touches(self):
        from repro.constants import EvictionPolicy

        dram = DramDirectory(
            gpu_id=0, capacity_frames=2, policy=EvictionPolicy.FIFO
        )
        dram.install(0)
        dram.install(1)
        dram.touch(0)  # FIFO ignores recency
        eviction = dram.install(2)
        assert eviction.evicted_vpn == 0

    def test_random_is_deterministic_per_seed(self):
        from repro.constants import EvictionPolicy

        def victims(seed):
            dram = DramDirectory(
                gpu_id=0,
                capacity_frames=4,
                policy=EvictionPolicy.RANDOM,
                seed=seed,
            )
            out = []
            for vpn in range(20):
                eviction = dram.install(vpn)
                if eviction:
                    out.append(eviction.evicted_vpn)
            return out

        assert victims(1) == victims(1)

    def test_random_evicts_resident_pages_only(self):
        from repro.constants import EvictionPolicy

        dram = DramDirectory(
            gpu_id=0, capacity_frames=3, policy=EvictionPolicy.RANDOM
        )
        seen = set()
        for vpn in range(30):
            eviction = dram.install(vpn)
            if eviction:
                assert eviction.evicted_vpn not in seen
                seen.add(eviction.evicted_vpn)
            assert len(dram) <= 3

"""TLB models: set mapping, LRU, invalidation, two-level lookup."""

from repro.config import TLBConfig
from repro.memsys.page_table import LocalPTE
from repro.memsys.tlb import SetAssociativeTLB, TLBHierarchy


def pte(location: int = 0, writable: bool = True) -> LocalPTE:
    return LocalPTE(location=location, writable=writable)


class TestSetAssociativeTLB:
    def make(self, entries=8, ways=2, latency=1):
        return SetAssociativeTLB(
            TLBConfig(entries=entries, ways=ways, lookup_latency=latency)
        )

    def test_miss_then_hit(self):
        tlb = self.make()
        assert tlb.lookup(5) is None
        tlb.insert(5, pte())
        assert tlb.lookup(5) is not None
        assert tlb.hits == 1
        assert tlb.misses == 1

    def test_lru_eviction_within_set(self):
        tlb = self.make(entries=8, ways=2)  # 4 sets
        # VPNs 0, 4, 8 all map to set 0; ways=2 so inserting 8 evicts 0.
        tlb.insert(0, pte())
        tlb.insert(4, pte())
        tlb.insert(8, pte())
        assert tlb.lookup(0) is None
        assert tlb.lookup(4) is not None
        assert tlb.lookup(8) is not None

    def test_hit_refreshes_lru_order(self):
        tlb = self.make(entries=8, ways=2)
        tlb.insert(0, pte())
        tlb.insert(4, pte())
        tlb.lookup(0)  # 0 becomes MRU, 4 becomes LRU
        tlb.insert(8, pte())
        assert tlb.lookup(0) is not None
        assert tlb.lookup(4) is None

    def test_different_sets_do_not_interfere(self):
        tlb = self.make(entries=8, ways=2)
        for vpn in range(4):  # one per set
            tlb.insert(vpn, pte())
        for vpn in range(4):
            assert tlb.lookup(vpn) is not None

    def test_invalidate(self):
        tlb = self.make()
        tlb.insert(3, pte())
        assert tlb.invalidate(3)
        assert not tlb.invalidate(3)
        assert tlb.lookup(3) is None

    def test_flush_empties_everything(self):
        tlb = self.make()
        for vpn in range(8):
            tlb.insert(vpn, pte())
        tlb.flush()
        assert len(tlb) == 0

    def test_reinsert_updates_payload(self):
        tlb = self.make()
        tlb.insert(1, pte(location=0))
        tlb.insert(1, pte(location=3))
        assert tlb.lookup(1).location == 3

    def test_capacity_bounded(self):
        tlb = self.make(entries=8, ways=2)
        for vpn in range(100):
            tlb.insert(vpn, pte())
        assert len(tlb) <= 8


class TestTLBHierarchy:
    def make(self):
        return TLBHierarchy(
            TLBConfig(entries=2, ways=2, lookup_latency=1),
            TLBConfig(entries=8, ways=4, lookup_latency=10),
        )

    def test_full_miss_reports_l2_missed(self):
        tlbs = self.make()
        entry, latency, l2_missed = tlbs.lookup(9)
        assert entry is None
        assert l2_missed
        assert latency == 11  # L1 + L2 probe cost

    def test_l1_hit_is_cheap(self):
        tlbs = self.make()
        tlbs.fill(9, pte())
        entry, latency, l2_missed = tlbs.lookup(9)
        assert entry is not None
        assert not l2_missed
        assert latency == 1

    def test_l2_hit_promotes_to_l1(self):
        tlbs = self.make()
        tlbs.fill(1, pte())
        tlbs.fill(3, pte())
        tlbs.fill(5, pte())  # L1 (2 entries) can't hold all three
        victim = next(
            vpn for vpn in (1, 3, 5) if tlbs.l1.lookup(vpn) is None
        )
        entry, latency, l2_missed = tlbs.lookup(victim)
        assert entry is not None and not l2_missed
        assert latency == 11
        assert tlbs.l1.lookup(victim) is not None

    def test_invalidate_hits_both_levels(self):
        tlbs = self.make()
        tlbs.fill(2, pte())
        tlbs.invalidate(2)
        entry, _, l2_missed = tlbs.lookup(2)
        assert entry is None and l2_missed

    def test_flush_hits_both_levels(self):
        tlbs = self.make()
        tlbs.fill(2, pte())
        tlbs.flush()
        assert len(tlbs.l1) == 0
        assert len(tlbs.l2) == 0

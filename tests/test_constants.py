"""Constants: scheme/group encodings match the paper's tables."""

import pytest

from repro.constants import (
    ACCESS_COUNTER_GROUP_BYTES,
    ACCESS_COUNTER_THRESHOLD,
    DEFAULT_FAULT_THRESHOLD,
    GROUP_FANOUT,
    GROUP_LADDER,
    GroupBits,
    LatencyCategory,
    Scheme,
)


class TestScheme:
    def test_scheme_bits_match_table_iv(self):
        assert Scheme.ON_TOUCH == 0b01
        assert Scheme.ACCESS_COUNTER == 0b10
        assert Scheme.DUPLICATION == 0b11

    def test_short_names(self):
        assert Scheme.ON_TOUCH.short_name == "OT"
        assert Scheme.ACCESS_COUNTER.short_name == "AC"
        assert Scheme.DUPLICATION.short_name == "D"

    def test_zero_is_not_a_scheme(self):
        with pytest.raises(ValueError):
            Scheme(0)


class TestGroupBits:
    def test_encodings_match_table_v(self):
        assert GroupBits.SINGLE == 0b00
        assert GroupBits.GROUP_8 == 0b01
        assert GroupBits.GROUP_64 == 0b10
        assert GroupBits.GROUP_512 == 0b11

    def test_page_counts_match_table_v(self):
        assert GroupBits.SINGLE.page_count == 1
        assert GroupBits.GROUP_8.page_count == 8
        assert GroupBits.GROUP_64.page_count == 64
        assert GroupBits.GROUP_512.page_count == 512

    def test_for_page_count_round_trips(self):
        for bits in GroupBits:
            assert GroupBits.for_page_count(bits.page_count) is bits

    def test_for_page_count_rejects_unsupported(self):
        with pytest.raises(ValueError):
            GroupBits.for_page_count(16)

    def test_ladder_fanout_is_consistent(self):
        for lower, upper in zip(GROUP_LADDER, GROUP_LADDER[1:]):
            assert upper.page_count == lower.page_count * GROUP_FANOUT


class TestPaperConstants:
    def test_access_counter_defaults(self):
        assert ACCESS_COUNTER_THRESHOLD == 256
        assert ACCESS_COUNTER_GROUP_BYTES == 64 * 1024

    def test_fault_threshold_default(self):
        assert DEFAULT_FAULT_THRESHOLD == 4

    def test_latency_categories_cover_figure_3(self):
        labels = {category.label for category in LatencyCategory}
        assert labels == {
            "Local",
            "Host",
            "Page-migration",
            "Remote-access",
            "Page-duplication",
            "Write-collapse",
        }

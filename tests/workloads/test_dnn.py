"""DNN model-parallel trace generators (Section VI-F)."""

import pytest

from repro.analysis import sharing_summary
from repro.errors import TraceError
from repro.workloads.dnn import (
    RESNET18_LAYERS,
    VGG16_LAYERS,
    _assign_layers,
    generate_dnn,
)


class TestLayerAssignment:
    def test_consecutive_layers_assigned_in_order(self):
        assignment = _assign_layers(VGG16_LAYERS, 4)
        assert assignment == sorted(assignment)
        assert assignment[0] == 0
        assert max(assignment) <= 3

    def test_single_gpu_gets_everything(self):
        assert set(_assign_layers(VGG16_LAYERS, 1)) == {0}

    def test_all_gpus_used_when_possible(self):
        assignment = _assign_layers(RESNET18_LAYERS, 3)
        assert len(set(assignment)) == 3


class TestDnnTraces:
    @pytest.mark.parametrize("model", ["vgg16", "resnet18"])
    def test_valid_trace(self, model):
        trace = generate_dnn(model, num_gpus=4, scale=0.1)
        assert trace.total_accesses > 0
        assert trace.metadata["iterations"] >= 1
        assert len(trace.metadata["layers"]) in (6,)

    def test_unknown_model_rejected(self):
        with pytest.raises(TraceError):
            generate_dnn("alexnet")

    def test_pipeline_creates_pc_sharing(self):
        trace = generate_dnn("vgg16", num_gpus=4, scale=0.1)
        summary = sharing_summary(trace)
        # Activations/gradients at layer boundaries are shared; weights
        # are private — both classes must exist.
        assert 0.02 < summary.shared_page_fraction < 0.9

    def test_training_reads_dominate_writes(self):
        trace = generate_dnn("resnet18", num_gpus=4, scale=0.1)
        reads = sum(int((~w).sum()) for _, w in trace.streams)
        writes = sum(int(w.sum()) for _, w in trace.streams)
        assert reads > writes


class TestDataParallel:
    def test_valid_trace(self):
        trace = generate_dnn(
            "vgg16", num_gpus=4, scale=0.1, parallelism="data"
        )
        assert trace.name == "vgg16_dp"
        assert trace.metadata["parallelism"] == "data"
        assert trace.total_accesses > 0

    def test_gradients_are_all_shared_read_write(self):
        trace = generate_dnn(
            "resnet18", num_gpus=4, scale=0.1, parallelism="data"
        )
        from repro.stats.sharing import PageAccessLedger

        ledger = PageAccessLedger()
        for gpu, vpn, is_write in trace.iter_all():
            ledger.record(gpu, vpn, is_write)
        grad_pages = trace.metadata["gradient_pages"]
        grad_base = trace.footprint_pages - grad_pages
        entry = ledger.entry(grad_base)
        assert entry is not None
        assert entry.num_touchers == 4
        assert entry.is_read_write

    def test_weights_stay_private(self):
        trace = generate_dnn(
            "vgg16", num_gpus=2, scale=0.1, parallelism="data"
        )
        from repro.stats.sharing import PageAccessLedger

        ledger = PageAccessLedger()
        for gpu, vpn, is_write in trace.iter_all():
            ledger.record(gpu, vpn, is_write)
        assert not ledger.entry(0).is_shared  # GPU 0's weight replica

    def test_grit_handles_allreduce_pages(self):
        from repro.config import SystemConfig
        from repro.policies import make_policy
        from repro.sim import simulate

        trace = generate_dnn(
            "vgg16", num_gpus=2, scale=0.1, parallelism="data"
        )
        config = SystemConfig(num_gpus=2)
        base = simulate(
            config,
            generate_dnn("vgg16", num_gpus=2, scale=0.1, parallelism="data"),
            make_policy("on_touch"),
        )
        grit = simulate(config, trace, make_policy("grit"))
        assert grit.total_cycles < base.total_cycles

    def test_unknown_parallelism_rejected(self):
        with pytest.raises(TraceError):
            generate_dnn("vgg16", parallelism="pipeline")

"""Parameterized synthetic workloads."""

import pytest

from repro.analysis import sharing_summary
from repro.config import SystemConfig
from repro.errors import TraceError
from repro.policies import make_policy
from repro.sim import simulate
from repro.workloads import synthetic


class TestUniformRandom:
    def test_basic_shape(self):
        trace = synthetic.uniform_random(
            num_gpus=2, pages=64, accesses_per_gpu=200
        )
        assert trace.num_gpus == 2
        assert trace.footprint_pages == 64
        assert trace.total_accesses >= 200

    def test_write_ratio_zero_means_read_shared(self):
        trace = synthetic.uniform_random(write_ratio=0.0, pages=64)
        summary = sharing_summary(trace)
        assert summary.read_write_page_fraction == 0.0
        assert summary.shared_page_fraction > 0.9

    def test_rejects_bad_arguments(self):
        with pytest.raises(TraceError):
            synthetic.uniform_random(pages=0)

    def test_read_shared_favors_duplication(self):
        trace = synthetic.uniform_random(
            num_gpus=2, pages=64, accesses_per_gpu=2000, write_ratio=0.0
        )
        config = SystemConfig(num_gpus=2)
        dup = simulate(config, trace, make_policy("duplication"))
        ot = simulate(config, trace, make_policy("on_touch"))
        assert dup.total_cycles < ot.total_cycles


class TestHotCold:
    def test_hot_pages_dominate_accesses(self):
        trace = synthetic.hot_cold(
            pages=200, hot_fraction=0.05, hot_weight=0.9
        )
        vpns = trace.streams[0][0]
        hot_limit = int(200 * 0.05)
        assert (vpns < hot_limit).mean() > 0.7

    def test_grit_separates_hot_from_cold(self):
        trace = synthetic.hot_cold(
            num_gpus=2, pages=128, accesses_per_gpu=3000, write_ratio=0.0
        )
        config = SystemConfig(num_gpus=2)
        grit = simulate(config, trace, make_policy("grit"))
        ot = simulate(config, trace, make_policy("on_touch"))
        assert grit.total_cycles < ot.total_cycles


class TestProducerConsumer:
    def test_needs_two_gpus(self):
        with pytest.raises(TraceError):
            synthetic.producer_consumer(num_gpus=1)

    def test_buffers_are_pc_shared(self):
        trace = synthetic.producer_consumer(
            num_gpus=3, buffer_pages=8, handoffs=3
        )
        summary = sharing_summary(trace)
        # Downstream GPUs read upstream buffers: sharing exists but is
        # pairwise, not global.
        assert 0.0 < summary.shared_page_fraction < 1.0

    def test_rewrites_force_collapses_under_duplication(self):
        trace = synthetic.producer_consumer(
            num_gpus=2, buffer_pages=8, handoffs=4, rewrite_rounds=1
        )
        config = SystemConfig(num_gpus=2)
        dup = simulate(config, trace, make_policy("duplication"))
        assert dup.counters.write_collapses > 0


class TestHaloExchange:
    def test_boundary_fraction_bounds(self):
        with pytest.raises(TraceError):
            synthetic.halo_exchange(boundary_fraction=0.0)

    def test_wider_boundary_means_more_sharing(self):
        narrow = sharing_summary(
            synthetic.halo_exchange(boundary_fraction=0.1)
        )
        wide = sharing_summary(
            synthetic.halo_exchange(boundary_fraction=0.9)
        )
        assert wide.shared_page_fraction > narrow.shared_page_fraction

    def test_simulates_under_every_scheme(self):
        trace = synthetic.halo_exchange(num_gpus=2, chunk_pages=32)
        config = SystemConfig(num_gpus=2)
        for policy in ("on_touch", "access_counter", "duplication", "grit"):
            result = simulate(config, trace, make_policy(policy))
            assert result.counters.accesses == trace.total_accesses

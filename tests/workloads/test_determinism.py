"""Workload determinism: seeded generators are byte-reproducible.

``test_generators.py`` checks element equality on the default seed;
this suite tightens the contract to *byte* identity (values, dtypes,
and shapes) for every registered generator under explicit seeds — the
property the committed goldens and bench baselines rest on — and pins
down exactly which num_gpus-stability guarantees the synthetic
generators provide by design.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.registry import available_workloads, make_workload
from repro.workloads.synthetic import hot_cold, uniform_random

ALL_GENERATORS = available_workloads()

#: Generators whose traces are drawn from their rng (the structured
#: ones — fir, sc, st, c2d, the DNNs — are seed-insensitive by
#: design: their access patterns are fully determined by shape).
SEEDED_GENERATORS = ["bfs", "bs", "gemm", "mm"]


def _fingerprint(trace) -> tuple:
    """Everything a trace feeds the engine, reduced to bytes."""
    streams = tuple(
        (
            vpns.tobytes(),
            str(vpns.dtype),
            writes.tobytes(),
            str(writes.dtype),
        )
        for vpns, writes in trace.streams
    )
    return (
        trace.name,
        trace.num_gpus,
        trace.footprint_pages,
        streams,
        tuple(sorted(trace.metadata.items())),
    )


class TestRegisteredGeneratorDeterminism:
    @pytest.mark.parametrize("app", ALL_GENERATORS)
    @pytest.mark.parametrize("num_gpus", [4, 8])
    def test_repeat_calls_are_byte_identical(self, app, num_gpus):
        first = make_workload(app, num_gpus=num_gpus, scale=0.1, seed=99)
        second = make_workload(
            app, num_gpus=num_gpus, scale=0.1, seed=99
        )
        assert _fingerprint(first) == _fingerprint(second)

    @pytest.mark.parametrize("app", SEEDED_GENERATORS)
    def test_seed_actually_steers_random_generators(self, app):
        a = make_workload(app, num_gpus=4, scale=0.1, seed=99)
        b = make_workload(app, num_gpus=4, scale=0.1, seed=100)
        assert _fingerprint(a) != _fingerprint(b)

    @pytest.mark.parametrize("app", ALL_GENERATORS)
    def test_default_seed_is_stable(self, app):
        # ``seed=None`` must fall through to the generator's fixed
        # default, not to nondeterministic entropy.
        assert _fingerprint(
            make_workload(app, num_gpus=4, scale=0.1)
        ) == _fingerprint(make_workload(app, num_gpus=4, scale=0.1))


class TestNumGpusStability:
    """Scaling the GPU count must not scramble unaffected streams.

    The registered app generators size their regions from ``num_gpus``,
    so their traces legitimately reshape wholesale; the synthetic
    generators are the ones that promise stability, because their
    footprints are fixed and their rng draws stream-by-stream.
    """

    def test_hot_cold_streams_are_a_stable_prefix(self):
        small = hot_cold(num_gpus=4, seed=5)
        large = hot_cold(num_gpus=8, seed=5)
        for gpu in range(4):
            for small_arr, large_arr in zip(
                small.streams[gpu], large.streams[gpu]
            ):
                assert np.array_equal(small_arr, large_arr)

    def test_uniform_random_first_phase_is_stable(self):
        accesses, phases = 4_000, 2
        small = uniform_random(
            num_gpus=4,
            accesses_per_gpu=accesses,
            phases=phases,
            seed=5,
        )
        large = uniform_random(
            num_gpus=8,
            accesses_per_gpu=accesses,
            phases=phases,
            seed=5,
        )
        per_phase = accesses // phases
        for gpu in range(4):
            for small_arr, large_arr in zip(
                small.streams[gpu], large.streams[gpu]
            ):
                assert np.array_equal(
                    small_arr[:per_phase], large_arr[:per_phase]
                )
        # Later phases draw after the new GPUs' phase-0 accesses, so
        # they must diverge — if they ever match, the generator
        # stopped sharing its rng and this contract needs a fresh look.
        assert not np.array_equal(
            small.streams[0][0], large.streams[0][0]
        )

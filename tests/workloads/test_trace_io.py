"""Trace persistence round trips."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workloads import make_workload
from repro.workloads.trace_io import load_trace, save_trace
from tests.conftest import build_trace


class TestRoundTrip:
    def test_generated_workload_round_trips(self, tmp_path):
        trace = make_workload("gemm", scale=0.1)
        path = tmp_path / "gemm.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.num_gpus == trace.num_gpus
        assert loaded.footprint_pages == trace.footprint_pages
        for (va, wa), (vb, wb) in zip(trace.streams, loaded.streams):
            assert (va == vb).all()
            assert (wa == wb).all()

    def test_spec_preserved(self, tmp_path):
        trace = make_workload("bfs", scale=0.1)
        path = tmp_path / "bfs.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.spec.suite == "SHOC"
        assert loaded.spec.access_pattern == "Random"

    def test_metadata_preserved(self, tmp_path):
        trace = make_workload("st", scale=0.1)
        path = tmp_path / "st.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.metadata["iterations"] == trace.metadata["iterations"]

    def test_manual_trace_without_spec(self, tmp_path):
        trace = build_trace([[(0, False)], [(1, True)]], footprint_pages=4)
        path = tmp_path / "manual.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.spec is None
        assert loaded.total_accesses == 2

    def test_empty_stream_round_trips(self, tmp_path):
        trace = build_trace([[(0, False)], []], footprint_pages=4)
        path = tmp_path / "empty.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded.streams[1][0]) == 0

    def test_loaded_trace_simulates(self, tmp_path):
        from repro import make_policy, simulate
        from repro.config import SystemConfig

        trace = make_workload("fir", scale=0.1)
        path = tmp_path / "fir.npz"
        save_trace(trace, path)
        result = simulate(
            SystemConfig(), load_trace(path), make_policy("grit")
        )
        assert result.counters.accesses == trace.total_accesses


class TestErrors:
    def test_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, data=np.arange(3))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_rejects_future_version(self, tmp_path):
        import json

        path = tmp_path / "future.npz"
        meta = np.frombuffer(
            json.dumps({"version": 99}).encode(), dtype=np.uint8
        )
        np.savez(path, meta_json=meta)
        with pytest.raises(TraceError):
            load_trace(path)

"""The eight application generators: validity and documented shapes.

Each application's trace must reproduce the Section IV characteristics
the paper attributes to it (Table II pattern, Figure 4 sharing split,
Figure 9 read/write split) — that is what makes the placement-scheme
results meaningful.
"""

import pytest

from repro.analysis import sharing_summary
from repro.workloads import (
    APPLICATION_TABLE,
    available_workloads,
    make_workload,
)
from repro.errors import UnknownWorkloadError

APPS = sorted(APPLICATION_TABLE)


class TestRegistry:
    def test_table_ii_apps_registered(self):
        assert set(APPS) == {
            "bfs", "bs", "c2d", "fir", "gemm", "mm", "sc", "st",
        }

    def test_dnn_models_registered(self):
        assert {"vgg16", "resnet18"} <= set(available_workloads())

    def test_unknown_workload_raises(self):
        with pytest.raises(UnknownWorkloadError):
            make_workload("nope")

    def test_table_ii_metadata(self):
        assert APPLICATION_TABLE["bfs"].suite == "SHOC"
        assert APPLICATION_TABLE["bfs"].access_pattern == "Random"
        assert APPLICATION_TABLE["fir"].suite == "Hetero-Mark"
        assert APPLICATION_TABLE["gemm"].access_pattern == "Scatter-Gather"
        assert APPLICATION_TABLE["c2d"].footprint_mb == 94


class TestTraceValidity:
    @pytest.mark.parametrize("app", APPS)
    def test_generates_valid_trace(self, app):
        trace = make_workload(app, num_gpus=4, scale=0.1)
        assert trace.num_gpus == 4
        assert trace.total_accesses > 0
        assert trace.footprint_pages > 0

    @pytest.mark.parametrize("app", APPS)
    def test_deterministic_given_seed(self, app):
        a = make_workload(app, scale=0.1)
        b = make_workload(app, scale=0.1)
        for (va, wa), (vb, wb) in zip(a.streams, b.streams):
            assert (va == vb).all()
            assert (wa == wb).all()

    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("gpus", [2, 8])
    def test_supports_other_gpu_counts(self, app, gpus):
        trace = make_workload(app, num_gpus=gpus, scale=0.1)
        assert trace.num_gpus == gpus
        assert all(len(vpns) > 0 for vpns, _ in trace.streams)

    @pytest.mark.parametrize("app", APPS)
    def test_scale_grows_trace(self, app):
        small = make_workload(app, scale=0.1)
        large = make_workload(app, scale=0.4)
        assert large.total_accesses > small.total_accesses


class TestPaperCharacteristics:
    @pytest.fixture(scope="class")
    def summaries(self):
        return {
            app: sharing_summary(make_workload(app, scale=0.25))
            for app in APPS
        }

    def test_fir_sc_almost_all_private(self, summaries):
        for app in ("fir", "sc"):
            assert summaries[app].private_page_fraction > 0.85

    def test_bfs_st_mostly_shared(self, summaries):
        # ST shares nearly everything; BFS the majority of its pages
        # (scaled traces cover the graph tail more sparsely than the
        # paper's full runs, see EXPERIMENTS.md).
        assert summaries["st"].shared_page_fraction > 0.85
        assert summaries["bfs"].shared_page_fraction > 0.55
        # The private-heavy and shared-heavy app classes stay far apart.
        assert (
            summaries["bfs"].shared_page_fraction
            > summaries["fir"].shared_page_fraction + 0.4
        )

    def test_bfs_accesses_go_mostly_to_private_pages(self, summaries):
        # Figure 4's BFS peculiarity: many shared pages, few accesses.
        assert summaries["bfs"].private_access_fraction > 0.5

    def test_c2d_mm_mixed_sharing(self, summaries):
        for app in ("c2d", "mm"):
            assert 0.2 < summaries[app].shared_page_fraction < 0.8

    def test_bfs_gemm_mm_read_dominated(self, summaries):
        for app in ("bfs", "mm"):
            assert summaries[app].read_access_fraction > 0.7
        assert summaries["gemm"].read_access_fraction > 0.5

    def test_bs_st_write_intensive(self, summaries):
        for app in ("bs", "st"):
            assert summaries[app].read_write_access_fraction > 0.5

    def test_gemm_shared_pages_are_read_only(self, summaries):
        # Input matrices shared read-only; output private read-write.
        summary = summaries["gemm"]
        assert summary.shared_page_fraction > 0.3
        assert summary.read_page_fraction > 0.5

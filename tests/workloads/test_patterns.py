"""Access-pattern primitives."""

import numpy as np
import pytest

from repro.workloads import patterns


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestSweep:
    def test_page_burst_structure(self):
        vpns, writes = patterns.sweep(np.arange(3), 4, write_ratio=0.0)
        assert vpns.tolist() == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]
        assert not writes.any()

    def test_deterministic_write_tail_without_rng(self):
        _, writes = patterns.sweep(np.arange(2), 4, write_ratio=0.5)
        assert writes.tolist() == [False, False, True, True] * 2

    def test_random_write_placement_with_rng(self, rng):
        _, writes = patterns.sweep(np.arange(100), 10, 0.5, rng=rng)
        assert 0.4 < writes.mean() < 0.6
        # Not all bursts start with a read.
        first_of_burst = writes[::10]
        assert first_of_burst.any()

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            patterns.sweep(np.arange(2), 0, 0.0)
        with pytest.raises(ValueError):
            patterns.sweep(np.arange(2), 1, 1.5)


class TestRandomAccesses:
    def test_accesses_stay_in_page_set(self, rng):
        pages = np.arange(50, 60)
        vpns, _ = patterns.random_accesses(pages, 200, 0.0, rng)
        assert set(vpns.tolist()) <= set(range(50, 60))
        assert len(vpns) == 200

    def test_bursts_repeat_pages(self, rng):
        vpns, _ = patterns.random_accesses(
            np.arange(100), 40, 0.0, rng, burst_length=4
        )
        reshaped = vpns.reshape(-1, 4)
        assert (reshaped == reshaped[:, :1]).all()

    def test_hot_skew(self, rng):
        pages = np.arange(100)
        vpns, _ = patterns.random_accesses(
            pages, 4000, 0.0, rng, hot_fraction=0.1, hot_weight=0.9
        )
        hot_hits = (vpns < 10).mean()
        assert hot_hits > 0.7

    def test_write_ratio(self, rng):
        _, writes = patterns.random_accesses(np.arange(10), 2000, 0.3, rng)
        assert 0.25 < writes.mean() < 0.35

    def test_empty_inputs(self, rng):
        vpns, writes = patterns.random_accesses(np.arange(0), 10, 0.0, rng)
        assert len(vpns) == 0
        vpns, writes = patterns.random_accesses(np.arange(5), 0, 0.0, rng)
        assert len(vpns) == 0

    def test_rejects_bad_arguments(self, rng):
        with pytest.raises(ValueError):
            patterns.random_accesses(np.arange(5), -1, 0.0, rng)
        with pytest.raises(ValueError):
            patterns.random_accesses(
                np.arange(5), 10, 0.0, rng, burst_length=0
            )


class TestStridedPartner:
    def test_pairs_are_xor_partners(self, rng):
        vpns, _ = patterns.strided_partner_accesses(
            base=0, num_pages=64, stride=8, count=100, write_ratio=0.5, rng=rng
        )
        starts = vpns[0::2]
        partners = vpns[1::2]
        assert ((starts ^ 8) % 64 == partners).all()

    def test_base_offset_applied(self, rng):
        vpns, _ = patterns.strided_partner_accesses(
            base=1000,
            num_pages=16,
            stride=2,
            count=50,
            write_ratio=0.0,
            rng=rng,
        )
        assert (vpns >= 1000).all()
        assert (vpns < 1016).all()

    def test_rejects_bad_stride(self, rng):
        with pytest.raises(ValueError):
            patterns.strided_partner_accesses(0, 16, 0, 10, 0.0, rng)


class TestInterleaveAndConcat:
    def test_interleave_preserves_per_stream_order(self, rng):
        a = (np.array([1, 2, 3]), np.array([False, False, False]))
        b = (np.array([10, 20]), np.array([True, True]))
        vpns, writes = patterns.interleave([a, b], rng)
        assert len(vpns) == 5
        a_positions = [i for i, v in enumerate(vpns) if v in (1, 2, 3)]
        assert [vpns[i] for i in a_positions] == [1, 2, 3]

    def test_interleave_single_stream_passthrough(self, rng):
        a = (np.array([1, 2]), np.array([False, True]))
        vpns, writes = patterns.interleave([a], rng)
        assert vpns.tolist() == [1, 2]

    def test_interleave_empty(self, rng):
        vpns, _ = patterns.interleave([], rng)
        assert len(vpns) == 0

    def test_concat_back_to_back(self):
        a = (np.array([1]), np.array([False]))
        b = (np.array([2]), np.array([True]))
        vpns, writes = patterns.concat([a, b])
        assert vpns.tolist() == [1, 2]
        assert writes.tolist() == [False, True]


class TestRegionHelpers:
    def test_page_range(self):
        assert patterns.page_range(5, 3).tolist() == [5, 6, 7]

    def test_split_region_covers_exactly(self):
        chunks = patterns.split_region(10, 10, 3)
        flat = np.concatenate(chunks)
        assert flat.tolist() == list(range(10, 20))

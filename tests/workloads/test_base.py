"""WorkloadTrace validation and helpers."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workloads.base import (
    WorkloadTrace,
    empty_stream,
    merge_phase_streams,
)
from tests.conftest import build_trace


class TestValidation:
    def test_stream_count_must_match_gpus(self):
        with pytest.raises(TraceError):
            WorkloadTrace(
                name="bad",
                num_gpus=2,
                footprint_pages=4,
                streams=[empty_stream()],
            )

    def test_arrays_must_agree_in_length(self):
        with pytest.raises(TraceError):
            WorkloadTrace(
                name="bad",
                num_gpus=1,
                footprint_pages=4,
                streams=[(np.array([1, 2]), np.array([True]))],
            )

    def test_vpns_must_fit_footprint(self):
        with pytest.raises(TraceError):
            build_trace([[(100, False)]], footprint_pages=10)

    def test_negative_vpns_rejected(self):
        with pytest.raises(TraceError):
            build_trace([[(-1, False)]], footprint_pages=10)

    def test_zero_footprint_rejected(self):
        with pytest.raises(TraceError):
            WorkloadTrace(
                name="bad",
                num_gpus=1,
                footprint_pages=0,
                streams=[empty_stream()],
            )


class TestHelpers:
    def test_total_accesses(self, two_gpu_trace):
        assert two_gpu_trace.total_accesses == 8

    def test_iter_all_yields_every_access(self, two_gpu_trace):
        accesses = list(two_gpu_trace.iter_all())
        assert len(accesses) == 8
        assert accesses[0] == (0, 0, False)
        gpus = {gpu for gpu, _, _ in accesses}
        assert gpus == {0, 1}

    def test_merge_phase_streams_concatenates_per_gpu(self):
        phase1 = [
            (np.array([1]), np.array([False])),
            (np.array([2]), np.array([True])),
        ]
        phase2 = [
            (np.array([3]), np.array([True])),
            (np.array([4]), np.array([False])),
        ]
        merged = merge_phase_streams([phase1, phase2])
        assert merged[0][0].tolist() == [1, 3]
        assert merged[1][0].tolist() == [2, 4]
        assert merged[0][1].tolist() == [False, True]

    def test_merge_rejects_empty(self):
        with pytest.raises(TraceError):
            merge_phase_streams([])

"""Shared fixtures: small configs and hand-built traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GritConfig, LatencyModel, SystemConfig, TLBConfig
from repro.workloads.base import WorkloadTrace


@pytest.fixture
def config() -> SystemConfig:
    """Baseline Table I configuration (4 GPUs, 4 KB pages)."""
    return SystemConfig()


@pytest.fixture
def small_config() -> SystemConfig:
    """Tiny 2-GPU configuration for fast unit tests."""
    return SystemConfig(
        num_gpus=2,
        l1_tlb=TLBConfig(entries=4, ways=4, lookup_latency=1),
        l2_tlb=TLBConfig(entries=16, ways=4, lookup_latency=10),
    )


@pytest.fixture
def latency() -> LatencyModel:
    return LatencyModel()


@pytest.fixture
def grit_config() -> GritConfig:
    return GritConfig()


def build_trace(
    streams: list[list[tuple[int, bool]]],
    footprint_pages: int | None = None,
    name: str = "manual",
) -> WorkloadTrace:
    """Build a trace from explicit per-GPU (vpn, is_write) lists."""
    arrays = []
    max_vpn = 0
    for accesses in streams:
        if accesses:
            vpns = np.array([vpn for vpn, _ in accesses], dtype=np.int64)
            writes = np.array([w for _, w in accesses], dtype=bool)
            max_vpn = max(max_vpn, int(vpns.max()))
        else:
            vpns = np.empty(0, dtype=np.int64)
            writes = np.empty(0, dtype=bool)
        arrays.append((vpns, writes))
    return WorkloadTrace(
        name=name,
        num_gpus=len(streams),
        footprint_pages=footprint_pages or (max_vpn + 1),
        streams=arrays,
    )


@pytest.fixture
def two_gpu_trace() -> WorkloadTrace:
    """Two GPUs ping-ponging on page 0, private pages 1 and 2."""
    return build_trace(
        [
            [(0, False), (1, False), (0, True), (1, True)],
            [(0, False), (2, False), (0, True), (2, True)],
        ],
        footprint_pages=16,
    )

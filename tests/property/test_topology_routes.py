"""Property-based tests (hypothesis) on topology routing invariants.

Every fabric shape must satisfy the same structural contract: routes
are symmetric by construction (``route(b, a)`` traverses the same
links as ``route(a, b)``, reversed), no node routes to itself, and hop
counts match the shape's closed form.  On the classic 4-GPU
all-to-all, the routed timing kernel must reproduce the pre-routing
closed-form charges bit for bit — the property that keeps every
committed golden and bench baseline valid.
"""

from __future__ import annotations

import os
from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LatencyModel, SystemConfig
from repro.constants import HOST_NODE
from repro.errors import ConfigError
from repro.interconnect.routing import TOPOLOGY_KINDS, TopologySpec
from repro.interconnect.topology import Topology
from repro.sim.timing import TimingKernel


@st.composite
def fabric_shapes(draw):
    """A valid (spec, num_gpus) pair across all four topology kinds."""
    kind = draw(st.sampled_from(TOPOLOGY_KINDS))
    if kind == "nvswitch":
        group = draw(st.sampled_from([2, 4, 8]))
        num_gpus = group * draw(st.integers(min_value=1, max_value=3))
    elif kind == "multi-node":
        nodes = draw(st.sampled_from([2, 3, 4]))
        num_gpus = nodes * draw(st.integers(min_value=1, max_value=4))
        kind = f"multi-node:{nodes}"
    else:
        num_gpus = draw(st.integers(min_value=2, max_value=16))
    if kind == "nvswitch":
        kind = f"nvswitch:{group}"
    return TopologySpec.parse(kind, num_gpus), num_gpus


def _build(spec: TopologySpec, num_gpus: int) -> Topology:
    return Topology(num_gpus, LatencyModel(), spec=spec)


class TestRouteInvariants:
    @given(shape=fabric_shapes(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_routes_are_symmetric(self, shape, data):
        spec, num_gpus = shape
        topology = _build(spec, num_gpus)
        endpoints = list(range(num_gpus)) + [HOST_NODE]
        src = data.draw(st.sampled_from(endpoints), label="src")
        dst = data.draw(st.sampled_from(endpoints), label="dst")
        if src == dst:
            return
        forward = topology.route(src, dst)
        backward = topology.route(dst, src)
        # Same Link objects, traversed in the opposite order.
        assert backward.hops == tuple(reversed(forward.hops))
        assert backward.shared == tuple(reversed(forward.shared))

    @given(shape=fabric_shapes(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_no_self_routing(self, shape, data):
        spec, num_gpus = shape
        topology = _build(spec, num_gpus)
        node = data.draw(
            st.sampled_from(list(range(num_gpus)) + [HOST_NODE])
        )
        with pytest.raises(ConfigError):
            topology.route(node, node)

    @given(shape=fabric_shapes(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_hop_counts_match_shape(self, shape, data):
        spec, num_gpus = shape
        topology = _build(spec, num_gpus)
        a = data.draw(
            st.integers(min_value=0, max_value=num_gpus - 1), label="a"
        )
        b = data.draw(
            st.integers(min_value=0, max_value=num_gpus - 1), label="b"
        )
        if a == b:
            return
        route = topology.route(a, b)
        if spec.kind == "all-to-all":
            assert route.hop_count == 1
        elif spec.kind == "nvswitch":
            same_group = a // spec.group_size == b // spec.group_size
            assert route.hop_count == (2 if same_group else 3)
        elif spec.kind == "ring":
            forward = (b - a) % num_gpus
            distance = min(forward, num_gpus - forward)
            assert route.hop_count == distance
            assert route.hop_count <= num_gpus // 2
        else:  # multi-node
            per_node = num_gpus // spec.nodes
            same_node = a // per_node == b // per_node
            if same_node:
                assert route.hop_count == 1
                assert route.shared == ()
            else:
                assert route.hop_count == 3
                # Both islands' root ports are crossed.
                assert len(route.shared) == 2

    @given(shape=fabric_shapes(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_host_routes_are_single_hop(self, shape, data):
        spec, num_gpus = shape
        topology = _build(spec, num_gpus)
        gpu = data.draw(st.integers(min_value=0, max_value=num_gpus - 1))
        route = topology.route(gpu, HOST_NODE)
        # One PCIe wire hop, queued behind the node's root port.
        assert route.hop_count == 1
        assert len(route.shared) == 1

    @given(shape=fabric_shapes())
    @settings(max_examples=40, deadline=None)
    def test_route_table_covers_every_pair(self, shape):
        spec, num_gpus = shape
        topology = _build(spec, num_gpus)
        keys = {key for key, _ in topology.route_items()}
        endpoints = list(range(num_gpus)) + [HOST_NODE]
        # GPU<->GPU and GPU<->host in both directions; no host<->host.
        assert keys == {
            (a, b) for a in endpoints for b in endpoints if a != b
        }


#: Latency models with the route-sensitive knobs varied.
latency_models = st.builds(
    LatencyModel,
    nvlink_latency=st.integers(min_value=1, max_value=2_000),
    pcie_latency=st.integers(min_value=1, max_value=3_000),
    remote_dram_access=st.integers(min_value=1, max_value=5_000),
    host_remote_access=st.integers(min_value=1, max_value=8_000),
    far_access_mlp=st.integers(min_value=1, max_value=8),
    gps_store_broadcast=st.integers(min_value=1, max_value=500),
)


def _flat_kernel(latency: LatencyModel) -> TimingKernel:
    """A contention-free kernel on the classic 4-GPU all-to-all."""
    config = SystemConfig(num_gpus=4, latency=latency)
    topology = Topology(4, latency)
    with mock.patch.dict(os.environ, {"GRIT_CONTENTION": "none"}):
        return TimingKernel(config, topology)


class TestAllToAllClosedForms:
    """Routing reproduces the pre-routing 4-GPU charges exactly."""

    @given(
        latency=latency_models,
        size=st.integers(min_value=0, max_value=2 << 20),
    )
    @settings(max_examples=50, deadline=None)
    def test_transfer_costs(self, latency, size):
        kernel = _flat_kernel(latency)
        assert kernel.transfer(
            0, 1, size, 0
        ) == latency.page_transfer_nvlink(size)
        assert kernel.transfer(
            2, HOST_NODE, size, 0
        ) == latency.page_transfer_pcie(size)
        assert kernel.transfer_cost(
            3, 0, size
        ) == latency.page_transfer_nvlink(size)

    @given(latency=latency_models)
    @settings(max_examples=50, deadline=None)
    def test_control_message_costs(self, latency):
        kernel = _flat_kernel(latency)
        assert kernel.control_message(0, 3, 0) == latency.nvlink_latency
        assert (
            kernel.control_message(1, HOST_NODE, 0)
            == latency.pcie_latency
        )

    @given(latency=latency_models, is_write=st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_far_access_costs(self, latency, is_write):
        kernel = _flat_kernel(latency)
        local = latency.scaled_data_access(latency.local_dram_access)
        remote = latency.scaled_remote_access()
        host = latency.scaled_host_remote_access()
        if is_write:
            remote = max(1, remote // 2)
            host = max(1, host // 2)
        assert kernel.remote_access(0, 2, is_write, 0) == (
            remote,
            max(0, remote - local),
        )
        assert kernel.host_access(1, is_write, 0) == (
            host,
            max(0, host - local),
        )

    @given(latency=latency_models)
    @settings(max_examples=50, deadline=None)
    def test_fixed_charges(self, latency):
        kernel = _flat_kernel(latency)
        # Single-hop fabric: broadcast pays one hop per subscriber and
        # collapse invalidation is exactly the classic per-GPU charge.
        assert (
            kernel.gps_broadcast(0, [1, 2, 3])
            == 3 * latency.gps_store_broadcast
        )
        assert kernel.collapse_invalidation(0, 1) == kernel.invalidation(
            1
        )

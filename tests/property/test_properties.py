"""Property-based tests (hypothesis) on core structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig, TLBConfig
from repro.constants import GroupBits, Scheme
from repro.core.neighbor import NeighboringAwarePredictor
from repro.core.pa_cache import PACache
from repro.core.pa_table import PATable
from repro.memsys.address import AddressSpace
from repro.memsys.dram import DramDirectory
from repro.memsys.page_table import CentralPageTable, LocalPTE
from repro.memsys.pte import PageTableEntry
from repro.memsys.tlb import SetAssociativeTLB
from repro.policies import make_policy
from repro.sim import simulate
from repro.workloads.base import WorkloadTrace

vpns = st.integers(min_value=0, max_value=(1 << 40) - 1)
schemes = st.sampled_from(list(Scheme))
groups = st.sampled_from(list(GroupBits))


class TestPTERoundTrip:
    @given(
        pfn=st.integers(min_value=0, max_value=(1 << 40) - 1),
        valid=st.booleans(),
        writable=st.booleans(),
        dirty=st.booleans(),
        scheme=st.one_of(st.none(), schemes),
        group=groups,
    )
    def test_encode_decode_identity(
        self, pfn, valid, writable, dirty, scheme, group
    ):
        entry = PageTableEntry(
            pfn=pfn,
            valid=valid,
            writable=writable,
            dirty=dirty,
            scheme=scheme,
            group=group,
        )
        assert PageTableEntry.decode(entry.encode()) == entry

    @given(pfn=st.integers(min_value=0, max_value=(1 << 40) - 1), group=groups)
    def test_fields_never_alias(self, pfn, group):
        word = PageTableEntry(pfn=pfn, valid=True, group=group).encode()
        decoded = PageTableEntry.decode(word)
        assert decoded.pfn == pfn
        assert decoded.group == group


class TestGroupArithmetic:
    @given(vpn=vpns, group=st.sampled_from([8, 64, 512]))
    def test_base_is_aligned_and_contains_vpn(self, vpn, group):
        base = AddressSpace.group_base(vpn, group)
        assert base % group == 0
        assert base <= vpn < base + group

    @given(vpn=vpns, group=st.sampled_from([8, 64, 512]))
    def test_members_of_same_group_share_base(self, vpn, group):
        base = AddressSpace.group_base(vpn, group)
        for member in (base, base + group - 1):
            assert AddressSpace.group_base(member, group) == base


class TestTLBInvariants:
    @given(
        accesses=st.lists(
            st.integers(min_value=0, max_value=63), min_size=1, max_size=200
        )
    )
    def test_capacity_never_exceeded(self, accesses):
        tlb = SetAssociativeTLB(
            TLBConfig(entries=8, ways=2, lookup_latency=1)
        )
        for vpn in accesses:
            tlb.insert(vpn, LocalPTE(location=0, writable=True))
        assert len(tlb) <= 8

    @given(
        accesses=st.lists(
            st.integers(min_value=0, max_value=63), min_size=1, max_size=200
        )
    )
    def test_most_recent_insert_always_resident(self, accesses):
        tlb = SetAssociativeTLB(
            TLBConfig(entries=8, ways=2, lookup_latency=1)
        )
        for vpn in accesses:
            tlb.insert(vpn, LocalPTE(location=0, writable=True))
        assert tlb.lookup(accesses[-1]) is not None


class TestDramInvariants:
    @given(
        installs=st.lists(
            st.integers(min_value=0, max_value=30), min_size=1, max_size=100
        ),
        capacity=st.integers(min_value=1, max_value=8),
    )
    def test_residency_never_exceeds_capacity(self, installs, capacity):
        dram = DramDirectory(gpu_id=0, capacity_frames=capacity)
        for vpn in installs:
            dram.install(vpn)
        assert len(dram) <= capacity

    @given(
        installs=st.lists(
            st.integers(min_value=0, max_value=30), min_size=1, max_size=100
        )
    )
    def test_install_makes_resident(self, installs):
        dram = DramDirectory(gpu_id=0, capacity_frames=4)
        for vpn in installs:
            dram.install(vpn)
            assert vpn in dram


class TestPACacheInvariants:
    @given(
        faults=st.lists(
            st.integers(min_value=0, max_value=500), min_size=1, max_size=300
        )
    )
    def test_no_entry_exists_in_both_levels(self, faults):
        table = PATable()
        cache = PACache(table, entries=16, ways=2)
        for vpn in faults:
            entry, _ = cache.access(vpn)
            entry.record_fault(vpn % 3 == 0)
        cached = {
            vpn for entries in cache._sets for vpn in entries
        }
        in_table = {vpn for vpn in range(501) if vpn in table}
        assert not (cached & in_table)

    @given(
        faults=st.lists(
            st.integers(min_value=0, max_value=500), min_size=1, max_size=300
        )
    )
    def test_fault_counts_never_lost(self, faults):
        table = PATable()
        cache = PACache(table, entries=16, ways=2)
        for vpn in faults:
            entry, _ = cache.access(vpn)
            entry.record_fault(False)
        cache.flush_to_table()
        from collections import Counter

        expected = Counter(faults)
        for vpn, count in expected.items():
            assert table.lookup(vpn).fault_counter == count


class TestNeighborInvariants:
    @given(
        flips=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63),
                st.sampled_from([Scheme.ACCESS_COUNTER, Scheme.DUPLICATION]),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(deadline=None)
    def test_group_bits_stay_consistent(self, flips):
        """After any flip sequence: group bases are aligned, nested
        groups never overlap, and every member of an intact group uses
        the base page's scheme."""
        pt = CentralPageTable()
        predictor = NeighboringAwarePredictor(pt)
        for vpn, scheme in flips:
            old = pt.get(vpn).scheme
            pt.get(vpn).scheme = scheme
            predictor.on_scheme_change(vpn, scheme, old)
        claimed = set()
        for page in list(pt.pages()):
            if page.group is GroupBits.SINGLE:
                continue
            size = page.group.page_count
            assert page.vpn % size == 0  # aligned base
            members = range(page.vpn, page.vpn + size)
            assert not (claimed & set(members))  # no overlap
            claimed.update(members)
            for member in members:
                member_page = pt.peek(member)
                assert member_page is not None
                assert member_page.scheme == page.scheme


class TestSimulationInvariants:
    @given(
        data=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),  # gpu
                st.integers(min_value=0, max_value=15),  # vpn
                st.booleans(),  # write
            ),
            min_size=1,
            max_size=60,
        ),
        policy_name=st.sampled_from(
            ["on_touch", "access_counter", "duplication", "grit", "gps"]
        ),
    )
    @settings(deadline=None, max_examples=40)
    def test_any_trace_simulates_cleanly(self, data, policy_name):
        streams = [[], []]
        for gpu, vpn, write in data:
            streams[gpu].append((vpn, write))
        arrays = []
        for accesses in streams:
            if accesses:
                arrays.append(
                    (
                        np.array([v for v, _ in accesses], dtype=np.int64),
                        np.array([w for _, w in accesses], dtype=bool),
                    )
                )
            else:
                arrays.append(
                    (np.empty(0, dtype=np.int64), np.empty(0, dtype=bool))
                )
        trace = WorkloadTrace(
            name="fuzz", num_gpus=2, footprint_pages=16, streams=arrays
        )
        result = simulate(
            SystemConfig(num_gpus=2), trace, make_policy(policy_name)
        )
        assert result.counters.accesses == len(data)
        assert result.total_cycles >= 0
        # Full accounting consistency (the validator is itself the
        # invariant: counters, breakdown, clocks, and link traffic must
        # agree for every reachable machine state).
        from repro.harness.validate import validate_result

        assert validate_result(result) == []


class TestTraceIoRoundTrip:
    @given(
        data=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=0, max_value=30),
                st.booleans(),
            ),
            min_size=0,
            max_size=50,
        )
    )
    @settings(deadline=None, max_examples=25)
    def test_save_load_identity(self, data, tmp_path_factory):
        from repro.workloads.trace_io import load_trace, save_trace

        streams = [[], []]
        for gpu, vpn, write in data:
            streams[gpu].append((vpn, write))
        arrays = []
        for accesses in streams:
            vpns = np.array([v for v, _ in accesses], dtype=np.int64)
            writes = np.array([w for _, w in accesses], dtype=bool)
            arrays.append((vpns, writes))
        trace = WorkloadTrace(
            name="fuzz-io", num_gpus=2, footprint_pages=32, streams=arrays
        )
        path = tmp_path_factory.mktemp("traces") / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.footprint_pages == 32
        for (va, wa), (vb, wb) in zip(trace.streams, loaded.streams):
            assert (va == vb).all()
            assert (wa == wb).all()

"""Topology: all-to-all NVLink plus per-GPU PCIe host links."""

import pytest

from repro.config import LatencyModel
from repro.constants import HOST_NODE
from repro.errors import ConfigError
from repro.interconnect.topology import Topology


@pytest.fixture
def topology(latency: LatencyModel) -> Topology:
    return Topology(4, latency)


class TestTopology:
    def test_gpu_pairs_share_one_link(self, topology):
        assert topology.link_between(0, 1) is topology.link_between(1, 0)

    def test_distinct_pairs_have_distinct_links(self, topology):
        assert topology.link_between(0, 1) is not topology.link_between(0, 2)

    def test_host_routes_over_pcie(self, topology):
        link = topology.link_between(2, HOST_NODE)
        assert link.name == "pcie-2"
        assert topology.link_between(HOST_NODE, 2) is link

    def test_pcie_slower_than_nvlink(self, topology):
        nvlink = topology.transfer(0, 1, 4096)
        pcie = topology.transfer(0, HOST_NODE, 4096)
        assert pcie > nvlink

    def test_self_link_rejected(self, topology):
        with pytest.raises(ConfigError):
            topology.link_between(1, 1)

    def test_unknown_gpu_rejected(self, topology):
        with pytest.raises((ConfigError, IndexError, KeyError)):
            topology.link_between(0, 9)

    def test_traffic_totals(self, topology):
        topology.transfer(0, 1, 1000)
        topology.transfer(2, HOST_NODE, 500)
        assert topology.total_nvlink_bytes() == 1000
        assert topology.total_pcie_bytes() == 500

    def test_single_gpu_topology_has_host_link(self, latency):
        topo = Topology(1, latency)
        assert topo.transfer(0, HOST_NODE, 100) > 0

    def test_rejects_zero_gpus(self, latency):
        with pytest.raises(ConfigError):
            Topology(0, latency)


class TestTopologyResources:
    """Link enumeration and contention roll-ups."""

    def test_links_enumerates_fabric_and_uplink(self, topology):
        names = {link.name for link in topology.links()}
        assert "nvlink-0-1" in names
        assert "pcie-0" in names
        assert "pcie-host" in names
        # 4 GPUs: C(4,2) NVLinks + 4 PCIe + the shared host uplink.
        assert len(topology.links()) == 6 + 4 + 1

    def test_host_uplink_not_routed_directly(self, topology):
        # link_between never returns the uplink; it is an additional
        # resource host transfers cross, not a routing destination.
        for gpu in range(4):
            assert topology.link_between(gpu, HOST_NODE) is not (
                topology.host_uplink
            )

    def test_wait_and_peak_rollups(self, topology):
        link = topology.link_between(0, 1)
        link.reserve_transfer(0, 4096)
        link.reserve_transfer(0, 4096)
        assert topology.total_wait_cycles() == link.wait_cycles
        assert topology.peak_occupancy() == link.peak_occupancy
        assert topology.total_wait_cycles() > 0

    def test_total_messages_counts_all_links(self, topology):
        topology.transfer(0, 1, 100)
        topology.control_message(2, HOST_NODE)
        assert topology.total_messages() == 2

    def test_single_gpu_rollups_empty(self, latency):
        topo = Topology(1, latency)
        assert topo.total_wait_cycles() == 0
        assert topo.peak_occupancy() == 0

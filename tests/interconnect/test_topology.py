"""Topology: all-to-all NVLink plus per-GPU PCIe host links."""

import pytest

from repro.config import LatencyModel
from repro.constants import HOST_NODE
from repro.errors import ConfigError
from repro.interconnect.topology import Topology


@pytest.fixture
def topology(latency: LatencyModel) -> Topology:
    return Topology(4, latency)


class TestTopology:
    def test_gpu_pairs_share_one_link(self, topology):
        assert topology.link_between(0, 1) is topology.link_between(1, 0)

    def test_distinct_pairs_have_distinct_links(self, topology):
        assert topology.link_between(0, 1) is not topology.link_between(0, 2)

    def test_host_routes_over_pcie(self, topology):
        link = topology.link_between(2, HOST_NODE)
        assert link.name == "pcie-2"
        assert topology.link_between(HOST_NODE, 2) is link

    def test_pcie_slower_than_nvlink(self, topology):
        nvlink = topology.transfer(0, 1, 4096)
        pcie = topology.transfer(0, HOST_NODE, 4096)
        assert pcie > nvlink

    def test_self_link_rejected(self, topology):
        with pytest.raises(ConfigError):
            topology.link_between(1, 1)

    def test_unknown_gpu_rejected(self, topology):
        with pytest.raises((ConfigError, IndexError, KeyError)):
            topology.link_between(0, 9)

    def test_traffic_totals(self, topology):
        topology.transfer(0, 1, 1000)
        topology.transfer(2, HOST_NODE, 500)
        assert topology.total_nvlink_bytes() == 1000
        assert topology.total_pcie_bytes() == 500

    def test_single_gpu_topology_has_host_link(self, latency):
        topo = Topology(1, latency)
        assert topo.transfer(0, HOST_NODE, 100) > 0

    def test_rejects_zero_gpus(self, latency):
        with pytest.raises(ConfigError):
            Topology(0, latency)

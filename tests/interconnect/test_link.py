"""Link latency/bandwidth model and traffic accounting."""

import pytest

from repro.interconnect.link import Link


class TestLink:
    def test_transfer_cost_latency_plus_serialization(self):
        link = Link("test", latency=100, bytes_per_cycle=10.0)
        assert link.transfer_cycles(100) == 110

    def test_serialization_rounds_up(self):
        link = Link("test", latency=0, bytes_per_cycle=3.0)
        assert link.transfer_cycles(10) == 4

    def test_control_message_costs_latency_only(self):
        link = Link("test", latency=100, bytes_per_cycle=10.0)
        assert link.message_cycles() == 100

    def test_traffic_accounting(self):
        link = Link("test", latency=1, bytes_per_cycle=1.0)
        link.transfer_cycles(50)
        link.transfer_cycles(30)
        link.message_cycles()
        assert link.bytes_transferred == 80
        assert link.messages == 3

    def test_reset_stats(self):
        link = Link("test", latency=1, bytes_per_cycle=1.0)
        link.transfer_cycles(10)
        link.reset_stats()
        assert link.bytes_transferred == 0
        assert link.messages == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Link("bad", latency=-1, bytes_per_cycle=1.0)
        with pytest.raises(ValueError):
            Link("bad", latency=0, bytes_per_cycle=0.0)

    def test_rejects_negative_transfer(self):
        link = Link("test", latency=0, bytes_per_cycle=1.0)
        with pytest.raises(ValueError):
            link.transfer_cycles(-1)


class TestLinkCostVsAccounting:
    """Pure cost queries never touch the traffic counters."""

    def test_transfer_cost_is_pure(self):
        link = Link("test", latency=100, bytes_per_cycle=10.0)
        assert link.transfer_cost(100) == 110
        assert link.transfer_cost(100) == 110
        assert link.bytes_transferred == 0
        assert link.messages == 0

    def test_message_cost_is_pure(self):
        link = Link("test", latency=100, bytes_per_cycle=10.0)
        assert link.message_cost() == 100
        assert link.messages == 0

    def test_record_transfer_accounts_without_cost(self):
        link = Link("test", latency=1, bytes_per_cycle=1.0)
        link.record_transfer(64)
        link.record_message()
        assert link.bytes_transferred == 64
        assert link.messages == 2

    def test_combined_path_equals_record_plus_cost(self):
        classic = Link("a", latency=700, bytes_per_cycle=300.0)
        split = Link("b", latency=700, bytes_per_cycle=300.0)
        cycles = classic.transfer_cycles(4096)
        split.record_transfer(4096)
        assert cycles == split.transfer_cost(4096)
        assert classic.bytes_transferred == split.bytes_transferred


class TestLinkReservations:
    """Timestamped occupancy: the contended-mode primitives."""

    def test_idle_reserve_costs_flat_transfer(self):
        link = Link("test", latency=100, bytes_per_cycle=10.0)
        assert link.reserve_transfer(0, 100) == link.transfer_cost(100)

    def test_back_to_back_reservations_queue(self):
        link = Link("test", latency=100, bytes_per_cycle=10.0)
        link.reserve_transfer(0, 100)  # occupies wire until cycle 10
        cycles = link.reserve_transfer(0, 100)
        assert cycles == 10 + 100 + 10  # wait + latency + serialization
        assert link.wait_cycles == 10
        assert link.peak_occupancy == 10

    def test_late_arrival_does_not_wait(self):
        link = Link("test", latency=100, bytes_per_cycle=10.0)
        link.reserve_transfer(0, 100)
        assert link.reserve_transfer(50, 100) == link.transfer_cost(100)
        assert link.wait_cycles == 0

    def test_messages_wait_but_do_not_occupy(self):
        link = Link("test", latency=100, bytes_per_cycle=10.0)
        link.reserve_transfer(0, 100)
        horizon = link.busy_until
        assert link.reserve_message(0) == 10 + 100
        assert link.busy_until == horizon

    def test_access_returns_wait_only_and_occupies(self):
        link = Link("test", latency=100, bytes_per_cycle=10.0)
        assert link.reserve_access(0, 50) == 0
        assert link.busy_until == 5
        assert link.reserve_access(0, 50) == 5
        assert link.bytes_transferred == 0
        assert link.messages == 0

    def test_reset_stats_clears_occupancy_state(self):
        link = Link("test", latency=1, bytes_per_cycle=1.0)
        link.reserve_transfer(0, 10)
        link.reserve_transfer(0, 10)
        link.reset_stats()
        assert link.busy_until == 0
        assert link.wait_cycles == 0
        assert link.peak_occupancy == 0

"""Link latency/bandwidth model and traffic accounting."""

import pytest

from repro.interconnect.link import Link


class TestLink:
    def test_transfer_cost_latency_plus_serialization(self):
        link = Link("test", latency=100, bytes_per_cycle=10.0)
        assert link.transfer_cycles(100) == 110

    def test_serialization_rounds_up(self):
        link = Link("test", latency=0, bytes_per_cycle=3.0)
        assert link.transfer_cycles(10) == 4

    def test_control_message_costs_latency_only(self):
        link = Link("test", latency=100, bytes_per_cycle=10.0)
        assert link.message_cycles() == 100

    def test_traffic_accounting(self):
        link = Link("test", latency=1, bytes_per_cycle=1.0)
        link.transfer_cycles(50)
        link.transfer_cycles(30)
        link.message_cycles()
        assert link.bytes_transferred == 80
        assert link.messages == 3

    def test_reset_stats(self):
        link = Link("test", latency=1, bytes_per_cycle=1.0)
        link.transfer_cycles(10)
        link.reset_stats()
        assert link.bytes_transferred == 0
        assert link.messages == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Link("bad", latency=-1, bytes_per_cycle=1.0)
        with pytest.raises(ValueError):
            Link("bad", latency=0, bytes_per_cycle=0.0)

    def test_rejects_negative_transfer(self):
        link = Link("test", latency=0, bytes_per_cycle=1.0)
        with pytest.raises(ValueError):
            link.transfer_cycles(-1)

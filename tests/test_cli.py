"""CLI commands (run in-process through main())."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "grit" in output
        assert "gemm" in output
        assert "fig17" in output


class TestRun:
    def test_run_prints_summary(self, capsys):
        assert main(["run", "fir", "grit", "--scale", "0.05"]) == 0
        output = capsys.readouterr().out
        assert "total_cycles" in output
        assert "local_page_faults" in output

    def test_run_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["run", "nope", "grit"])


class TestFigure:
    def test_single_figure(self, capsys):
        assert main(["figure", "fig04", "--scale", "0.05"]) == 0
        output = capsys.readouterr().out
        assert "fig04" in output
        assert "private_pages" in output

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestCharacterize:
    def test_characterize_prints_fractions(self, capsys):
        assert main(["characterize", "gemm", "--scale", "0.05"]) == 0
        output = capsys.readouterr().out
        assert "shared_page_fraction" in output


class TestFigureFormats:
    def test_json_output(self, capsys):
        args = ["figure", "fig04", "--scale", "0.05"]
        assert main([*args, "--format", "json"]) == 0
        import json

        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "fig04"
        assert "rows" in data

    def test_csv_output(self, capsys):
        args = ["figure", "fig04", "--scale", "0.05"]
        assert main([*args, "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("row,")
        assert len(lines) > 2


class TestReport:
    def test_report_writes_markdown(self, tmp_path, capsys, monkeypatch):
        # Use a figure subset for speed by patching the registry copy
        # the CLI iterates — full-report generation is covered by the
        # benchmark harness.
        from repro.harness import reproduce

        output = tmp_path / "REPORT.md"
        text = reproduce.write_report(output, scale=0.05, figures=["fig09"])
        assert output.exists()
        assert "fig09" in text


class TestDumpTrace:
    def test_dump_and_reload(self, tmp_path, capsys):
        output = tmp_path / "fir.npz"
        assert (
            main(["dump-trace", "fir", str(output), "--scale", "0.05"]) == 0
        )
        assert output.exists()
        from repro.workloads.trace_io import load_trace

        assert load_trace(output).name == "fir"


class TestSweep:
    def test_sweep_prints_matrix(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--workloads",
                    "fir,st",
                    "--policies",
                    "grit",
                    "--scale",
                    "0.05",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "fir" in output and "st" in output
        assert "grit" in output and "on_touch" in output

    def test_sweep_metric_faults(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--workloads",
                    "fir",
                    "--policies",
                    "on_touch",
                    "--metric",
                    "faults",
                    "--scale",
                    "0.05",
                ]
            )
            == 0
        )
        assert "faults" in capsys.readouterr().out


class TestSweepTelemetry:
    def test_trace_and_metrics_merge_across_workers(
        self, tmp_path, capsys
    ):
        import json

        from repro.obs.trace_schema import validate_trace_file

        trace = tmp_path / "sweep.trace.json"
        metrics = tmp_path / "sweep.metrics.jsonl"
        assert (
            main(
                [
                    "sweep",
                    "--workloads",
                    "fir",
                    "--policies",
                    "grit",
                    "--scale",
                    "0.05",
                    "--workers",
                    "2",
                    "--trace",
                    str(trace),
                    "--metrics",
                    str(metrics),
                ]
            )
            == 0
        )
        assert validate_trace_file(str(trace)) == []
        document = json.loads(trace.read_text())
        # One process row per task: fir under grit and the implied
        # on_touch baseline.
        assert document["otherData"]["tasks"] == 2
        pids = {
            event["pid"] for event in document["traceEvents"]
        }
        assert pids == {1, 2}
        rows = [
            json.loads(line)
            for line in metrics.read_text().splitlines()
        ]
        assert any(
            row["metric"] == "sim.accesses.total" and row["value"] > 0
            for row in rows
        )


class TestProfileJson:
    def test_json_export_parses(self, tmp_path, capsys):
        import json

        output = tmp_path / "profile.jsonl"
        assert (
            main(
                [
                    "profile",
                    "fir",
                    "on_touch",
                    "--gpus",
                    "2",
                    "--scale",
                    "0.05",
                    "--json",
                    str(output),
                ]
            )
            == 0
        )
        metrics = {
            row["metric"]
            for row in map(
                json.loads, output.read_text().splitlines()
            )
        }
        assert "profile.total" in metrics
        assert "profile.phase.replay" in metrics


class TestBench:
    def test_write_then_compare_passes_and_slowdown_fails(
        self, tmp_path, capsys
    ):
        import json

        baselines = tmp_path / "baselines"
        common = [
            "bench",
            "--cases",
            "fir-grit",
            "--scale",
            "0.05",
            "--repeats",
            "1",
        ]
        assert main([*common, "--output", str(baselines)]) == 0
        baseline_path = baselines / "BENCH_fir-grit.json"
        assert baseline_path.is_file()
        document = json.loads(baseline_path.read_text())
        assert document["counters"]["total_cycles"] > 0
        # A bit-identical rerun passes the gate (counters match
        # exactly; wall time is compared in counters-only mode to
        # stay deterministic under test-runner noise).
        assert (
            main(
                [
                    *common,
                    "--compare",
                    str(baselines),
                    "--counters-only",
                ]
            )
            == 0
        )
        capsys.readouterr()
        # An injected slowdown must trip the wall-time gate.
        assert (
            main(
                [
                    *common,
                    "--compare",
                    str(baselines),
                    "--inject-slowdown",
                    "30",
                ]
            )
            == 1
        )
        assert "regression [wall]" in capsys.readouterr().err

    def test_unknown_case_is_an_error(self, capsys):
        assert main(["bench", "--cases", "nope"]) == 2
        assert "unknown bench case" in capsys.readouterr().err


class TestLint:
    def test_clean_repo_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_violating_fixture_exits_nonzero(self, tmp_path, capsys):
        fixture = tmp_path / "fixture.py"
        fixture.write_text("def f(x=[]):\n    return x\n")
        assert main(["lint", str(fixture)]) == 1
        output = capsys.readouterr().out
        assert "GRIT-H001" in output
        assert "fixture.py:1" in output

    def test_json_format(self, tmp_path, capsys):
        import json

        fixture = tmp_path / "fixture.py"
        fixture.write_text("def f(x=[]):\n    return x\n")
        assert main(["lint", str(fixture), "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["errors"] >= 1
        assert data["findings"][0]["rule"] == "GRIT-H001"

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        output = capsys.readouterr().out
        assert "GRIT-D003" in output
        assert "GRIT-C001" in output

"""Configuration validation and Table I defaults."""

import pytest

from repro.config import (
    BASELINE_CONFIG,
    GritConfig,
    LatencyModel,
    SystemConfig,
    TLBConfig,
    WalkerConfig,
)
from repro.errors import ConfigError


class TestTLBConfig:
    def test_table_i_l1_geometry(self):
        tlb = BASELINE_CONFIG.l1_tlb
        assert (tlb.entries, tlb.ways, tlb.lookup_latency) == (32, 32, 1)
        assert tlb.sets == 1  # fully associative

    def test_table_i_l2_geometry(self):
        tlb = BASELINE_CONFIG.l2_tlb
        assert (tlb.entries, tlb.ways, tlb.lookup_latency) == (512, 16, 10)
        assert tlb.sets == 32

    def test_rejects_nondivisible_ways(self):
        with pytest.raises(ConfigError):
            TLBConfig(entries=10, ways=3, lookup_latency=1)

    def test_rejects_nonpositive_entries(self):
        with pytest.raises(ConfigError):
            TLBConfig(entries=0, ways=1, lookup_latency=1)


class TestWalkerConfig:
    def test_table_i_defaults(self):
        walker = WalkerConfig()
        assert walker.walkers == 8
        assert walker.walk_queue_entries == 64
        assert walker.walk_cache_entries == 128
        assert walker.latency_per_level == 100

    def test_walk_latencies(self):
        walker = WalkerConfig(latency_per_level=100, levels=4)
        assert walker.full_walk_latency == 400
        assert walker.cached_walk_latency == 100

    def test_rejects_zero_walkers(self):
        with pytest.raises(ConfigError):
            WalkerConfig(walkers=0)


class TestLatencyModel:
    def test_transfer_includes_serialization(self, latency):
        short = latency.page_transfer_nvlink(4096)
        long = latency.page_transfer_nvlink(2 * 1024 * 1024)
        assert long > short > latency.nvlink_latency

    def test_pcie_slower_than_nvlink(self, latency):
        assert latency.page_transfer_pcie(4096) > (
            latency.page_transfer_nvlink(4096)
        )

    def test_mlp_scaling_floors_at_one(self):
        model = LatencyModel(data_access_mlp=1000)
        assert model.scaled_data_access(5) == 1

    def test_cost_ordering_local_remote_host(self, latency):
        local = latency.scaled_data_access(latency.local_dram_access)
        remote = latency.scaled_remote_access()
        host = latency.scaled_host_remote_access()
        assert local < remote < host < latency.host_fault_service

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            LatencyModel(local_dram_access=-1)

    def test_rejects_bad_discounts(self):
        with pytest.raises(ConfigError):
            LatencyModel(acud_discount=1.5)
        with pytest.raises(ConfigError):
            LatencyModel(transfw_discount=-0.1)


class TestGritConfig:
    def test_defaults_match_section_v(self, grit_config):
        assert grit_config.fault_threshold == 4
        assert grit_config.pa_cache_entries == 64
        assert grit_config.pa_cache_ways == 4
        assert grit_config.max_group_pages == 512

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigError):
            GritConfig(fault_threshold=0)

    def test_rejects_bad_group_size(self):
        with pytest.raises(ConfigError):
            GritConfig(max_group_pages=16)

    def test_rejects_bad_pa_cache_geometry(self):
        with pytest.raises(ConfigError):
            GritConfig(pa_cache_entries=10, pa_cache_ways=4)


class TestSystemConfig:
    def test_table_i_defaults(self, config):
        assert config.num_gpus == 4
        assert config.page_size == 4096
        assert config.dram_footprint_fraction == 0.70
        assert config.access_counter_threshold == 256
        assert config.pages_per_counter_group == 16

    def test_dram_frames_split_across_gpus(self, config):
        # 70% of 1000 pages over 4 GPUs.
        assert config.dram_frames_per_gpu(1000) == 175

    def test_dram_frames_floor_at_one(self, config):
        assert config.dram_frames_per_gpu(1) == 1

    def test_dram_frames_reject_empty_footprint(self, config):
        with pytest.raises(ConfigError):
            config.dram_frames_per_gpu(0)

    def test_counter_group_for_large_pages(self):
        big = SystemConfig(page_size=2 * 1024 * 1024)
        assert big.pages_per_counter_group == 1

    def test_rejects_non_power_of_two_page(self):
        with pytest.raises(ConfigError):
            SystemConfig(page_size=5000)

    def test_rejects_zero_gpus(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_gpus=0)

    def test_replace_returns_modified_copy(self, config):
        other = config.replace(num_gpus=8)
        assert other.num_gpus == 8
        assert config.num_gpus == 4


class TestConfigSerialization:
    def test_to_dict_is_json_friendly(self, config):
        import json

        data = config.to_dict()
        json.dumps(data)  # must not raise
        assert data["num_gpus"] == 4
        assert data["eviction_policy"] == "lru"
        assert data["latency"]["host_fault_service"] == 4000
        assert data["grit"]["fault_threshold"] == 4

    def test_to_dict_reflects_overrides(self, config):
        from repro.constants import EvictionPolicy

        other = config.replace(
            num_gpus=8, eviction_policy=EvictionPolicy.RANDOM
        )
        data = other.to_dict()
        assert data["num_gpus"] == 8
        assert data["eviction_policy"] == "random"

"""Event counters: faults, scheme usage (Figures 18-19)."""

from repro.constants import FaultKind, Scheme
from repro.stats.counters import EventCounters


class TestEventCounters:
    def test_record_access_splits_reads_writes(self):
        counters = EventCounters()
        counters.record_access(False)
        counters.record_access(True)
        counters.record_access(False)
        assert counters.accesses == 3
        assert counters.reads == 2
        assert counters.writes == 1

    def test_total_faults_sums_both_kinds(self):
        counters = EventCounters()
        counters.record_fault(FaultKind.LOCAL_PAGE_FAULT)
        counters.record_fault(FaultKind.LOCAL_PAGE_FAULT)
        counters.record_fault(FaultKind.PAGE_PROTECTION_FAULT)
        assert counters.local_page_faults == 2
        assert counters.protection_faults == 1
        assert counters.total_faults == 3

    def test_scheme_usage_fractions(self):
        counters = EventCounters()
        for _ in range(3):
            counters.record_scheme_usage(Scheme.ON_TOUCH)
        counters.record_scheme_usage(Scheme.DUPLICATION)
        fractions = counters.scheme_usage_fractions()
        assert fractions["OT"] == 0.75
        assert fractions["D"] == 0.25
        assert fractions["AC"] == 0.0
        assert counters.l2_tlb_misses == 4

    def test_scheme_usage_fractions_empty(self):
        fractions = EventCounters().scheme_usage_fractions()
        assert fractions == {"OT": 0.0, "AC": 0.0, "D": 0.0}

    def test_as_dict_round_trip(self):
        counters = EventCounters()
        counters.migrations = 7
        counters.write_collapses = 2
        data = counters.as_dict()
        assert data["migrations"] == 7
        assert data["write_collapses"] == 2
        assert "total_faults" in data


class TestPerGpuFaults:
    def test_attribution_and_imbalance(self):
        counters = EventCounters()
        for _ in range(3):
            counters.record_fault(FaultKind.LOCAL_PAGE_FAULT, gpu=0)
        counters.record_fault(FaultKind.PAGE_PROTECTION_FAULT, gpu=1)
        assert counters.per_gpu_faults == {0: 3, 1: 1}
        assert counters.fault_imbalance() == 1.5  # max 3 / mean 2

    def test_imbalance_defaults_to_balanced(self):
        assert EventCounters().fault_imbalance() == 1.0

    def test_gpu_attribution_optional(self):
        counters = EventCounters()
        counters.record_fault(FaultKind.LOCAL_PAGE_FAULT)
        assert counters.per_gpu_faults == {}
        assert counters.total_faults == 1

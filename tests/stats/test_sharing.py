"""Page access ledger: private/shared and read/RW classification."""

import pytest

from repro.stats.sharing import PageAccessLedger


class TestPageAccessLedger:
    def test_private_read_page(self):
        ledger = PageAccessLedger()
        ledger.record(gpu=0, vpn=1, is_write=False)
        ledger.record(gpu=0, vpn=1, is_write=False)
        entry = ledger.entry(1)
        assert not entry.is_shared
        assert not entry.is_read_write
        assert entry.reads == 2
        assert entry.num_touchers == 1

    def test_shared_page_detection(self):
        ledger = PageAccessLedger()
        ledger.record(0, 1, False)
        ledger.record(2, 1, False)
        entry = ledger.entry(1)
        assert entry.is_shared
        assert entry.num_touchers == 2

    def test_read_write_page_detection(self):
        ledger = PageAccessLedger()
        ledger.record(0, 1, False)
        ledger.record(0, 1, True)
        assert ledger.entry(1).is_read_write

    def test_summary_fractions(self):
        ledger = PageAccessLedger()
        # Page 0: private read, 3 accesses; page 1: shared RW, 1 access.
        for _ in range(3):
            ledger.record(0, 0, False)
        ledger.record(1, 1, True)
        ledger.record(0, 1, False)
        summary = ledger.summary()
        assert summary.total_pages == 2
        assert summary.total_accesses == 5
        assert summary.shared_page_fraction == 0.5
        assert summary.shared_access_fraction == pytest.approx(0.4)
        assert summary.read_write_page_fraction == 0.5
        assert summary.read_access_fraction == pytest.approx(0.6)

    def test_empty_summary_is_zero(self):
        summary = PageAccessLedger().summary()
        assert summary.total_pages == 0
        assert summary.shared_page_fraction == 0.0

    def test_high_gpu_ids_supported(self):
        ledger = PageAccessLedger()
        ledger.record(15, 0, False)
        ledger.record(0, 0, False)
        assert ledger.entry(0).num_touchers == 2

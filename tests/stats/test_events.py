"""Structured event log."""

import pytest

from repro.stats.events import Event, EventKind, EventLog


class TestEventLog:
    def test_emit_and_iterate(self):
        log = EventLog()
        log.emit(EventKind.MIGRATION, vpn=5, gpu=0, detail=2, cycles=100)
        events = list(log)
        assert len(events) == 1
        assert events[0] == Event(EventKind.MIGRATION, 5, 0, 2, 100)

    def test_capacity_bound_drops_overflow(self):
        log = EventLog(capacity=2)
        log.emit(EventKind.EVICTION, vpn=0, gpu=0)
        log.emit(EventKind.EVICTION, vpn=1, gpu=0)
        with pytest.warns(RuntimeWarning, match="EventLog is full"):
            log.emit(EventKind.EVICTION, vpn=2, gpu=0)
        for i in range(3, 5):
            # Only the first drop warns; the rest are silent.
            log.emit(EventKind.EVICTION, vpn=i, gpu=0)
        assert len(log) == 2
        assert log.dropped == 3

    def test_filter_by_kind_and_page(self):
        log = EventLog()
        log.emit(EventKind.MIGRATION, vpn=1, gpu=0)
        log.emit(EventKind.EVICTION, vpn=1, gpu=0)
        log.emit(EventKind.MIGRATION, vpn=2, gpu=1)
        assert len(log.filter(kind=EventKind.MIGRATION)) == 2
        assert len(log.filter(vpn=1)) == 2
        assert len(log.filter(kind=EventKind.MIGRATION, vpn=1)) == 1

    def test_filter_with_predicate(self):
        log = EventLog()
        log.emit(EventKind.MIGRATION, vpn=1, gpu=0, cycles=50)
        log.emit(EventKind.MIGRATION, vpn=2, gpu=0, cycles=500)
        expensive = log.filter(predicate=lambda e: e.cycles > 100)
        assert [e.vpn for e in expensive] == [2]

    def test_counts(self):
        log = EventLog()
        log.emit(EventKind.MIGRATION, 1, 0)
        log.emit(EventKind.MIGRATION, 2, 0)
        log.emit(EventKind.DUPLICATION, 3, 1)
        counts = log.counts()
        assert counts["migration"] == 2
        assert counts["duplication"] == 1
        assert counts["eviction"] == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_filter_all_criteria_combined(self):
        log = EventLog()
        log.emit(EventKind.MIGRATION, vpn=1, gpu=0, cycles=50)
        log.emit(EventKind.MIGRATION, vpn=1, gpu=1, cycles=500)
        log.emit(EventKind.EVICTION, vpn=1, gpu=1, cycles=900)
        log.emit(EventKind.MIGRATION, vpn=2, gpu=1, cycles=900)
        selected = log.filter(
            kind=EventKind.MIGRATION,
            vpn=1,
            predicate=lambda e: e.cycles > 100,
        )
        assert [(e.vpn, e.gpu) for e in selected] == [(1, 1)]

    def test_filter_predicate_sees_only_kind_vpn_survivors(self):
        log = EventLog()
        log.emit(EventKind.MIGRATION, vpn=1, gpu=0)
        log.emit(EventKind.EVICTION, vpn=2, gpu=0)
        seen = []
        log.filter(vpn=1, predicate=lambda e: seen.append(e.kind) or True)
        assert seen == [EventKind.MIGRATION]

    def test_filter_no_criteria_returns_everything(self):
        log = EventLog()
        log.emit(EventKind.MIGRATION, vpn=1, gpu=0)
        log.emit(EventKind.EVICTION, vpn=2, gpu=1)
        assert log.filter() == list(log)

    def test_page_history_preserves_emission_order(self):
        log = EventLog()
        log.emit(EventKind.MIGRATION, vpn=7, gpu=0)
        log.emit(EventKind.EVICTION, vpn=8, gpu=0)
        log.emit(EventKind.DUPLICATION, vpn=7, gpu=1)
        log.emit(EventKind.WRITE_COLLAPSE, vpn=7, gpu=1)
        history = log.page_history(7)
        assert [e.kind for e in history] == [
            EventKind.MIGRATION,
            EventKind.DUPLICATION,
            EventKind.WRITE_COLLAPSE,
        ]
        assert log.page_history(99) == []

    def test_listener_sees_every_event_including_dropped(self):
        log = EventLog(capacity=1)
        heard = []
        log.listener = heard.append
        log.emit(EventKind.MIGRATION, vpn=1, gpu=0)
        with pytest.warns(RuntimeWarning):
            log.emit(EventKind.EVICTION, vpn=2, gpu=0)
        assert len(log) == 1
        assert [e.kind for e in heard] == [
            EventKind.MIGRATION,
            EventKind.EVICTION,
        ]


class TestEventLogThroughEngine:
    def test_engine_populates_log(self):
        from repro.config import SystemConfig
        from repro.policies import make_policy
        from repro.sim.engine import Engine
        from tests.conftest import build_trace

        trace = build_trace(
            [
                [(0, False), (0, True)],
                [(0, False), (0, True)],
            ],
            footprint_pages=8,
        )
        log = EventLog()
        engine = Engine(
            SystemConfig(num_gpus=2),
            trace,
            make_policy("on_touch"),
            event_log=log,
        )
        result = engine.run()
        counts = log.counts()
        assert counts["local_fault"] == result.counters.local_page_faults
        assert counts["migration"] == result.counters.migrations

    def test_event_counts_match_counters_for_duplication(self):
        from repro.config import SystemConfig
        from repro.policies import make_policy
        from repro.sim.engine import Engine
        from tests.conftest import build_trace

        trace = build_trace(
            [
                [(0, False), (0, True)],
                [(0, False)],
            ],
            footprint_pages=8,
        )
        log = EventLog()
        engine = Engine(
            SystemConfig(num_gpus=2),
            trace,
            make_policy("duplication"),
            event_log=log,
        )
        result = engine.run()
        counts = log.counts()
        assert counts["duplication"] == result.counters.duplications
        assert counts["write_collapse"] == result.counters.write_collapses

    def test_page_history_tells_the_story(self):
        from repro.config import SystemConfig
        from repro.policies import make_policy
        from repro.sim.engine import Engine
        from tests.conftest import build_trace

        # Read by both GPUs, then written: duplicate then collapse.
        trace = build_trace(
            [
                [(0, False)],
                [(0, False), (0, True)],
            ],
            footprint_pages=8,
        )
        log = EventLog()
        Engine(
            SystemConfig(num_gpus=2),
            trace,
            make_policy("duplication"),
            event_log=log,
        ).run()
        kinds = [event.kind for event in log.page_history(0)]
        assert EventKind.DUPLICATION in kinds
        assert EventKind.WRITE_COLLAPSE in kinds
        assert kinds.index(EventKind.DUPLICATION) < kinds.index(
            EventKind.WRITE_COLLAPSE
        )

    def test_grit_scheme_changes_logged(self):
        from repro.config import SystemConfig
        from repro.policies import make_policy
        from repro.sim.engine import Engine
        from tests.conftest import build_trace

        # Ping-pong until GRIT's threshold fires.
        stream = [(0, True)] * 10
        trace = build_trace([stream, stream], footprint_pages=8)
        log = EventLog()
        result = Engine(
            SystemConfig(num_gpus=2),
            trace,
            make_policy("grit"),
            event_log=log,
        ).run()
        assert (
            len(log.filter(kind=EventKind.SCHEME_CHANGE))
            == result.counters.scheme_changes
        )

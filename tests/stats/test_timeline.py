"""Interval timelines (Figures 5, 6-8, 10)."""

import pytest

from repro.stats.timeline import IntervalTimeline


class TestIntervalTimeline:
    def test_records_bucket_by_interval(self):
        timeline = IntervalTimeline(num_gpus=2, interval_length=10)
        timeline.record(time=0, gpu=0, vpn=5, is_write=False)
        timeline.record(time=9, gpu=1, vpn=5, is_write=True)
        timeline.record(time=10, gpu=0, vpn=5, is_write=False)
        first = timeline.sample(0, 5)
        assert first.reads == 1
        assert first.writes == 1
        assert first.per_gpu_accesses == (1, 1)
        second = timeline.sample(1, 5)
        assert second.reads == 1
        assert second.per_gpu_accesses == (1, 0)

    def test_num_intervals_tracks_max(self):
        timeline = IntervalTimeline(num_gpus=1, interval_length=5)
        timeline.record(23, 0, 0, False)
        assert timeline.num_intervals == 5

    def test_missing_sample_is_none(self):
        timeline = IntervalTimeline(num_gpus=1, interval_length=5)
        timeline.record(0, 0, 0, False)
        assert timeline.sample(0, 99) is None

    def test_page_timeline_length(self):
        timeline = IntervalTimeline(num_gpus=1, interval_length=5)
        timeline.record(0, 0, 7, False)
        timeline.record(12, 0, 7, False)
        rows = timeline.page_timeline(7)
        assert len(rows) == 3
        assert rows[0] is not None
        assert rows[1] is None
        assert rows[2] is not None

    def test_sharing_label(self):
        timeline = IntervalTimeline(num_gpus=2, interval_length=10)
        timeline.record(0, 0, 1, False)
        assert timeline.sharing_label(0, 1) == "private"
        timeline.record(1, 1, 1, False)
        assert timeline.sharing_label(0, 1) == "shared"
        assert timeline.sharing_label(0, 42) is None

    def test_rw_label(self):
        timeline = IntervalTimeline(num_gpus=1, interval_length=10)
        timeline.record(0, 0, 1, False)
        assert timeline.rw_label(0, 1) == "read"
        timeline.record(1, 0, 1, True)
        assert timeline.rw_label(0, 1) == "read-write"

    def test_touched_pages_sorted_unique(self):
        timeline = IntervalTimeline(num_gpus=1, interval_length=10)
        for vpn in (5, 2, 5, 9):
            timeline.record(0, 0, vpn, False)
        assert timeline.touched_pages() == [2, 5, 9]

    def test_pages_in_interval(self):
        timeline = IntervalTimeline(num_gpus=1, interval_length=10)
        timeline.record(0, 0, 3, False)
        timeline.record(11, 0, 4, False)
        assert timeline.pages_in_interval(0) == [3]
        assert timeline.pages_in_interval(1) == [4]

    def test_rejects_bad_interval_length(self):
        with pytest.raises(ValueError):
            IntervalTimeline(num_gpus=1, interval_length=0)


class TestIntervalBoundaries:
    def test_time_exactly_on_boundary_opens_next_interval(self):
        timeline = IntervalTimeline(num_gpus=1, interval_length=10)
        timeline.record(time=9, gpu=0, vpn=1, is_write=False)
        timeline.record(time=10, gpu=0, vpn=1, is_write=False)
        timeline.record(time=20, gpu=0, vpn=1, is_write=False)
        assert timeline.sample(0, 1).reads == 1
        assert timeline.sample(1, 1).reads == 1
        assert timeline.sample(2, 1).reads == 1
        assert timeline.num_intervals == 3

    def test_first_interval_starts_at_time_zero(self):
        timeline = IntervalTimeline(num_gpus=1, interval_length=7)
        timeline.record(time=0, gpu=0, vpn=3, is_write=True)
        timeline.record(time=6, gpu=0, vpn=3, is_write=False)
        sample = timeline.sample(0, 3)
        assert sample.reads == 1
        assert sample.writes == 1
        assert timeline.num_intervals == 1

    def test_last_interval_is_floor_of_max_time(self):
        timeline = IntervalTimeline(num_gpus=1, interval_length=7)
        timeline.record(time=48, gpu=0, vpn=0, is_write=False)
        # 48 // 7 == 6, so intervals 0..6 exist.
        assert timeline.num_intervals == 7
        assert timeline.sample(6, 0).reads == 1
        assert timeline.sample(5, 0) is None

    def test_interval_length_one_maps_time_to_interval(self):
        timeline = IntervalTimeline(num_gpus=1, interval_length=1)
        timeline.record(time=0, gpu=0, vpn=2, is_write=False)
        timeline.record(time=3, gpu=0, vpn=2, is_write=False)
        assert timeline.num_intervals == 4
        assert timeline.page_timeline(2) == [
            timeline.sample(0, 2),
            None,
            None,
            timeline.sample(3, 2),
        ]

    def test_empty_timeline_has_no_intervals(self):
        timeline = IntervalTimeline(num_gpus=2, interval_length=10)
        assert timeline.num_intervals == 0
        assert timeline.page_timeline(5) == []
        assert timeline.touched_pages() == []
        assert timeline.pages_in_interval(0) == []

"""Latency breakdown accumulator (Figure 3 categories)."""

import pytest

from repro.constants import LatencyCategory
from repro.stats.latency import LatencyBreakdown


class TestLatencyBreakdown:
    def test_starts_empty(self):
        breakdown = LatencyBreakdown()
        assert breakdown.total == 0
        assert all(value == 0 for value in breakdown.as_dict().values())

    def test_charge_accumulates(self):
        breakdown = LatencyBreakdown()
        breakdown.charge(LatencyCategory.HOST, 100)
        breakdown.charge(LatencyCategory.HOST, 50)
        assert breakdown.cycles(LatencyCategory.HOST) == 150
        assert breakdown.total == 150

    def test_negative_charge_rejected(self):
        breakdown = LatencyBreakdown()
        with pytest.raises(ValueError):
            breakdown.charge(LatencyCategory.LOCAL, -1)

    def test_as_dict_uses_figure_labels(self):
        breakdown = LatencyBreakdown()
        assert list(breakdown.as_dict()) == [
            "Local",
            "Host",
            "Page-migration",
            "Remote-access",
            "Page-duplication",
            "Write-collapse",
        ]

    def test_fractions_sum_to_one(self):
        breakdown = LatencyBreakdown()
        breakdown.charge(LatencyCategory.LOCAL, 25)
        breakdown.charge(LatencyCategory.WRITE_COLLAPSE, 75)
        fractions = breakdown.fractions()
        assert fractions["Local"] == 0.25
        assert fractions["Write-collapse"] == 0.75
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fractions_of_empty_breakdown(self):
        assert all(v == 0.0 for v in LatencyBreakdown().fractions().values())

    def test_merged_with(self):
        a = LatencyBreakdown()
        b = LatencyBreakdown()
        a.charge(LatencyCategory.HOST, 10)
        b.charge(LatencyCategory.HOST, 5)
        b.charge(LatencyCategory.LOCAL, 1)
        merged = a.merged_with([b])
        assert merged.cycles(LatencyCategory.HOST) == 15
        assert merged.cycles(LatencyCategory.LOCAL) == 1
        # Originals untouched.
        assert a.cycles(LatencyCategory.HOST) == 10

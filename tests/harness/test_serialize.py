"""Result and figure serialization."""

import csv
import io
import json

from repro.config import SystemConfig
from repro.harness.figures import FigureData
from repro.harness.serialize import (
    figure_to_csv,
    figure_to_dict,
    figure_to_json,
    result_to_dict,
    result_to_json,
)
from repro.policies import make_policy
from repro.sim import simulate
from tests.conftest import build_trace


def small_result():
    trace = build_trace([[(0, False), (1, True)]], footprint_pages=4)
    return simulate(SystemConfig(num_gpus=1), trace, make_policy("grit"))


def small_figure():
    return FigureData(
        name="figX",
        title="T",
        columns=["a"],
        rows={"r1": [1.5], "r2": ["x"]},
        paper="p",
    )


class TestResultSerialization:
    def test_dict_has_core_metrics(self):
        data = result_to_dict(small_result())
        assert data["policy"] == "grit"
        assert data["total_cycles"] > 0
        assert "scheme_usage" in data
        assert "latency_fractions" in data

    def test_json_round_trips(self):
        data = json.loads(result_to_json(small_result()))
        assert data["workload"] == "manual"
        assert isinstance(data["per_gpu_cycles"], list)


class TestFigureSerialization:
    def test_dict_structure(self):
        data = figure_to_dict(small_figure())
        assert data["columns"] == ["a"]
        assert data["rows"]["r1"] == [1.5]

    def test_json_parses(self):
        data = json.loads(figure_to_json(small_figure()))
        assert data["name"] == "figX"

    def test_csv_parses(self):
        rows = list(csv.reader(io.StringIO(figure_to_csv(small_figure()))))
        assert rows[0] == ["row", "a"]
        assert rows[1] == ["r1", "1.5"]
        assert rows[2] == ["r2", "x"]

"""Figure regenerators: every figure builds and has the right schema."""

import pytest

from repro.harness.experiment import PAPER_APPS, ExperimentRunner
from repro.harness.figures import FIGURES, run_figure

SCALE = 0.1

#: Figures cheap enough to regenerate in the unit suite (the rest are
#: exercised by the benchmark harness).
FAST_FIGURES = [
    "fig01",
    "fig03",
    "fig04",
    "fig05",
    "fig09",
    "fig17",
    "fig18",
    "fig19",
    "fig26",
    "fig27",
    "fig28",
    "fig29",
    "fig31",
]


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    return ExperimentRunner(scale=SCALE)


class TestRegistry:
    def test_every_evaluation_figure_present(self):
        expected = {
            "fig01", "fig03", "fig04", "fig05", "fig06_07", "fig08",
            "fig09", "fig10", "fig17", "fig18", "fig19", "fig20",
            "fig21", "fig22_24", "fig25", "fig26", "fig27", "fig28",
            "fig29", "fig30", "fig31",
        }
        assert expected <= set(FIGURES)

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError):
            run_figure("fig99")


@pytest.mark.parametrize("name", FAST_FIGURES)
def test_figure_builds_with_consistent_schema(name, runner):
    figure = run_figure(name, runner)
    assert figure.name == name
    assert figure.columns
    assert figure.rows
    for label, values in figure.rows.items():
        assert len(values) == len(figure.columns), label
    assert figure.paper  # every figure records the paper's claim


class TestSpecificFigures:
    def test_fig01_rows_cover_apps_plus_geomean(self, runner):
        figure = run_figure("fig01", runner)
        assert set(figure.rows) == set(PAPER_APPS) | {"geomean"}
        assert figure.cell("fir", "on_touch") == 1.0

    def test_fig03_fractions_are_normalized_shares(self, runner):
        figure = run_figure("fig03", runner)
        for values in figure.rows.values():
            assert all(v >= 0 for v in values)
        # On-touch rows sum to 1 by construction.
        ot_row = figure.rows["fir/on_touch"]
        assert sum(ot_row) == pytest.approx(1.0)

    def test_fig04_fractions_in_unit_range(self, runner):
        figure = run_figure("fig04", runner)
        for values in figure.rows.values():
            for value in values:
                assert 0.0 <= value <= 1.0

    def test_fig17_includes_grit_column(self, runner):
        figure = run_figure("fig17", runner)
        assert "grit" in figure.columns
        assert figure.cell("geomean", "grit") > 1.0

    def test_fig18_normalized_to_on_touch(self, runner):
        figure = run_figure("fig18", runner)
        for app in PAPER_APPS:
            assert figure.cell(app, "on_touch") == pytest.approx(1.0)

    def test_fig19_fractions_sum_to_one(self, runner):
        figure = run_figure("fig19", runner)
        for app in PAPER_APPS:
            assert sum(figure.rows[app]) == pytest.approx(1.0)

    def test_fig27_reports_eviction_pressure(self, runner):
        figure = run_figure("fig27", runner)
        assert "gps_evictions" in figure.columns
        assert figure.rows["gps_eviction_ratio"][0] > 0

    def test_fig31_covers_both_models(self, runner):
        figure = run_figure("fig31", runner)
        assert set(figure.rows) == {"vgg16", "resnet18"}


SLOW_FIGURES = [
    "fig20",
    "fig21",
    "fig22_24",
    "fig25",
    "fig30",
    "ablation_pa_cache",
    "ablation_group_ladder",
    "extension_grit_transfw",
    "extension_oversubscription",
    "extension_eviction_policy",
    "sensitivity_counter_threshold",
]


@pytest.mark.parametrize("name", SLOW_FIGURES)
def test_slow_figure_schema_at_tiny_scale(name):
    """Sweep-heavy figures build correctly (values checked by benches)."""
    tiny = ExperimentRunner(scale=0.05)
    figure = run_figure(name, tiny)
    assert figure.columns and figure.rows
    for label, values in figure.rows.items():
        assert len(values) == len(figure.columns), label

"""Resilient sweep orchestrator: equivalence and failure paths."""

import json
import multiprocessing
import os
import time

import pytest

from repro.config import SystemConfig
from repro.harness import orchestrator
from repro.harness.cache import DiskCachedRunner
from repro.harness.experiment import ExperimentRunner
from repro.harness.orchestrator import (
    FaultInjection,
    SweepOrchestrator,
    execute_task,
    result_digest,
    run_sweep,
    tasks_for,
)
from repro.obs import catalog

SCALE = 0.05

#: A deliberately non-default configuration: the historical parallel
#: path silently simulated the default config instead of this one.
NON_DEFAULT_CONFIG = SystemConfig(issue_gap=8, dram_footprint_fraction=0.5)


def _marker(tmp_path, name="fired"):
    return str(tmp_path / name)


def sample_keys(runner):
    return [
        runner.key("fir", "on_touch"),
        runner.key("fir", "grit"),
        runner.key("st", "on_touch"),
    ]


def _assert_identical(result, expected):
    assert result.total_cycles == expected.total_cycles
    assert result.per_gpu_cycles == expected.per_gpu_cycles
    assert result.counters.as_dict() == expected.counters.as_dict()
    assert result.breakdown.as_dict() == expected.breakdown.as_dict()
    assert result_digest(result) == result_digest(expected)


class TestEquivalence:
    def test_non_default_config_with_crash_matches_sequential(self):
        """The acceptance sweep: non-default config, workers=4, one
        injected worker crash — retried, and bit-identical to the
        sequential ExperimentRunner."""
        import tempfile

        runner = ExperimentRunner(
            base_config=NON_DEFAULT_CONFIG, scale=SCALE
        )
        keys = sample_keys(runner)
        marker = os.path.join(tempfile.mkdtemp(), "fired")
        summary = run_sweep(
            keys,
            base_config=NON_DEFAULT_CONFIG,
            workers=4,
            injections={
                keys[1]: FaultInjection(marker, mode="crash")
            },
        )
        assert summary.failures == 0
        assert summary.crashes == 1
        assert summary.retries == 1
        for key in keys:
            _assert_identical(summary.results[key], runner.run(key))

    def test_differs_from_default_config_results(self):
        """Guard that NON_DEFAULT_CONFIG actually changes results —
        otherwise the equivalence test above could not catch the old
        base_config drop."""
        key = ExperimentRunner(scale=SCALE).key("fir", "on_touch")
        default = ExperimentRunner(scale=SCALE).run(key)
        tweaked = ExperimentRunner(
            base_config=NON_DEFAULT_CONFIG, scale=SCALE
        ).run(key)
        assert default.total_cycles != tweaked.total_cycles


class TestRetriedTaskTelemetry:
    def test_counters_come_from_the_successful_attempt_only(
        self, tmp_path
    ):
        """Regression: a retried task's telemetry must equal one clean
        run's — failed attempts must never leak partial counters."""
        runner = ExperimentRunner(scale=SCALE, observe=True)
        key = runner.key("fir", "grit")
        clean = runner.run(key)
        summary = run_sweep(
            [key],
            workers=2,
            observe=True,
            injections={
                key: FaultInjection(_marker(tmp_path), mode="raise")
            },
        )
        assert summary.retries == 1
        telemetry = summary.telemetry[key]
        accesses = telemetry.values[catalog.SIM_ACCESSES]
        assert accesses == clean.counters.accesses
        assert telemetry.values[
            catalog.UVM_MIGRATIONS
        ] == clean.counters.migrations
        expected = len(runner.last_observation.tracer.spans)
        assert len(telemetry.spans) == expected

    def test_failed_task_ships_no_telemetry(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE)
        key = runner.key("fir", "on_touch")
        summary = run_sweep(
            [key],
            workers=2,
            retries=0,
            observe=True,
            injections={
                key: FaultInjection(_marker(tmp_path), mode="raise")
            },
        )
        assert summary.failures == 1
        assert summary.telemetry == {}


class TestFailurePaths:
    def test_worker_crash_is_isolated_and_retried(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE)
        keys = sample_keys(runner)
        summary = run_sweep(
            keys,
            workers=2,
            injections={
                keys[0]: FaultInjection(_marker(tmp_path), mode="crash")
            },
        )
        assert summary.failures == 0
        assert summary.completed == len(keys)
        assert summary.crashes == 1
        report = summary.reports[0]
        assert [a.outcome for a in report.attempts] == ["crash", "ok"]

    def test_per_task_timeout_kills_hung_worker(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE)
        keys = [runner.key("fir", "on_touch")]
        started = time.monotonic()
        summary = run_sweep(
            keys,
            workers=2,
            retries=1,
            timeout=1.0,
            injections={
                keys[0]: FaultInjection(
                    _marker(tmp_path), mode="hang", hang_seconds=60.0
                )
            },
        )
        assert time.monotonic() - started < 30
        assert summary.timeouts == 1
        assert summary.failures == 0
        assert summary.completed == 1

    def test_retry_then_succeed_inline(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE)
        keys = [runner.key("fir", "on_touch")]
        summary = run_sweep(
            keys,
            workers=1,
            retries=1,
            injections={
                keys[0]: FaultInjection(_marker(tmp_path), mode="raise")
            },
        )
        assert summary.completed == 1
        assert summary.retries == 1

    def test_exhausted_retries_reported_not_raised(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE)
        keys = sample_keys(runner)[:2]
        # Injection markers never exist, so every attempt crashes.
        injections = {
            keys[0]: FaultInjection("/nonexistent/nope", mode="raise")
        }
        orchestrator = SweepOrchestrator(
            workers=2, retries=1, backoff=0.01
        )
        summary = orchestrator.run(
            tasks_for(keys, injections=injections)
        )
        assert summary.failures == 1
        assert summary.failed_keys() == [keys[0]]
        # The healthy key still completed.
        assert keys[1] in summary.results

    def test_injected_crash_is_safe_inline(self, tmp_path):
        """Degraded (inline) execution must not kill the process."""
        runner = ExperimentRunner(scale=SCALE)
        keys = [runner.key("fir", "on_touch")]
        summary = run_sweep(
            keys,
            workers=1,
            retries=1,
            injections={
                keys[0]: FaultInjection(_marker(tmp_path), mode="crash")
            },
        )
        assert summary.completed == 1
        assert summary.retries == 1


class TestMetrics:
    def test_sweep_metrics_reach_the_registry(self, tmp_path):
        registry = catalog.build_sweep_registry()
        runner = ExperimentRunner(scale=SCALE)
        keys = sample_keys(runner)
        orchestrator = SweepOrchestrator(
            workers=2, retries=2, registry=registry
        )
        orchestrator.run(
            tasks_for(
                keys,
                injections={
                    keys[0]: FaultInjection(
                        _marker(tmp_path), mode="crash"
                    )
                },
            )
        )
        assert registry.value(catalog.SWEEP_TASKS) == len(keys)
        assert registry.value(catalog.SWEEP_COMPLETED) == len(keys)
        assert registry.value(catalog.SWEEP_CRASHES) == 1
        assert registry.value(catalog.SWEEP_RETRIES) == 1
        assert registry.value(catalog.SWEEP_FAILURES) == 0
        assert registry.value(catalog.SWEEP_TIMEOUTS) == 0
        assert registry.samples  # progress was sampled


class TestSummary:
    def test_render_mentions_retried_task(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE)
        keys = [runner.key("fir", "grit")]
        summary = run_sweep(
            keys,
            workers=2,
            injections={
                keys[0]: FaultInjection(_marker(tmp_path), mode="crash")
            },
        )
        text = summary.render()
        assert "retries=1" in text
        assert "crash,ok" in text

    def test_to_dict_round_trips_through_json(self):
        runner = ExperimentRunner(scale=SCALE)
        keys = [runner.key("fir", "on_touch")]
        summary = run_sweep(keys, workers=1)
        data = json.loads(json.dumps(summary.to_dict()))
        assert data["tasks"] == 1
        assert data["failures"] == 0
        (entry,) = data["results"].values()
        assert entry["workload"] == "fir"
        assert entry["digest"] == result_digest(
            summary.results[keys[0]]
        )


def _hammer_cache(args):
    """Worker for the concurrent-writers test (module level: picklable)."""
    cache_dir, scale = args
    runner = DiskCachedRunner(cache_dir, scale=scale)
    result = runner.run(runner.key("fir", "on_touch"))
    return result.total_cycles


class TestConcurrentDiskCache:
    def test_concurrent_writers_produce_no_torn_json(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with multiprocessing.Pool(4) as pool:
            cycles = pool.map(_hammer_cache, [(cache_dir, SCALE)] * 4)
        assert len(set(cycles)) == 1  # deterministic runs agree
        files = os.listdir(cache_dir)
        assert files and not [f for f in files if ".tmp." in f]
        for name in files:
            with open(os.path.join(cache_dir, name)) as handle:
                json.load(handle)  # every file parses

    def test_orchestrator_workers_share_disk_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        runner = ExperimentRunner(scale=SCALE)
        keys = sample_keys(runner)
        run_sweep(keys, workers=2, cache_dir=cache_dir)
        # A fresh runner serves every key from disk, no simulation.
        warmed = DiskCachedRunner(cache_dir, scale=SCALE)
        for key in keys:
            warmed.run(key)
        assert warmed.disk_hits == len(keys)
        assert warmed.disk_misses == 0


class TestExecuteTask:
    def test_execute_task_matches_runner(self):
        runner = ExperimentRunner(
            base_config=NON_DEFAULT_CONFIG, scale=SCALE
        )
        key = runner.key("fir", "grit")
        (task,) = tasks_for([key], base_config=NON_DEFAULT_CONFIG)
        _assert_identical(execute_task(task), runner.run(key))


class _FakeConn:
    """Pipe stand-in that records what the worker ships back."""

    def __init__(self):
        self.sent = []
        self.closed = False

    def send(self, payload):
        self.sent.append(payload)

    def close(self):
        self.closed = True


class TestWorkerMain:
    """Regression: the worker must report failures, not swallow them."""

    def test_task_failure_is_reported_over_the_pipe(self, monkeypatch):
        def explode(task, inline):
            raise ValueError("synthetic task failure")

        monkeypatch.setattr(
            orchestrator, "execute_task_observed", explode
        )
        conn = _FakeConn()
        orchestrator._worker_main(object(), conn)
        (outcome,) = conn.sent
        assert outcome[0] == "error"
        assert "synthetic task failure" in outcome[1]
        assert conn.closed

    def test_cancellation_is_reported_and_reraised(self, monkeypatch):
        def interrupt(task, inline):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            orchestrator, "execute_task_observed", interrupt
        )
        conn = _FakeConn()
        with pytest.raises(KeyboardInterrupt):
            orchestrator._worker_main(object(), conn)
        (outcome,) = conn.sent
        assert outcome[0] == "error"
        assert conn.closed

    def test_dead_pipe_does_not_mask_the_outcome(self, monkeypatch):
        def interrupt(task, inline):
            raise KeyboardInterrupt

        class _DeadConn(_FakeConn):
            def send(self, payload):
                raise OSError("broken pipe")

        monkeypatch.setattr(
            orchestrator, "execute_task_observed", interrupt
        )
        conn = _DeadConn()
        # The cancellation still propagates even when reporting fails.
        with pytest.raises(KeyboardInterrupt):
            orchestrator._worker_main(object(), conn)
        assert conn.closed

"""Text rendering of figures."""

from repro.harness.figures import FigureData
from repro.harness.report import format_figure, format_table


def sample_figure() -> FigureData:
    return FigureData(
        name="figX",
        title="Sample",
        columns=["a", "b"],
        rows={"row1": [1.0, 2.5], "row2": ["x", 3]},
        paper="paper says so",
        notes="a note",
    )


class TestFormatTable:
    def test_columns_aligned(self):
        text = format_table(["a", "b"], {"row1": [1.0, 2.5]})
        lines = text.splitlines()
        assert len(lines) == 3  # header, rule, one row
        assert "a" in lines[0] and "b" in lines[0]
        assert "1.000" in lines[2]

    def test_mixed_cell_types(self):
        text = format_table(["v"], {"r": ["hello"]})
        assert "hello" in text


class TestFormatFigure:
    def test_includes_title_notes_and_paper(self):
        text = format_figure(sample_figure())
        assert "figX: Sample" in text
        assert "note: a note" in text
        assert "paper: paper says so" in text

    def test_cell_accessor(self):
        figure = sample_figure()
        assert figure.cell("row1", "b") == 2.5

"""Markdown report generation."""

from repro.harness.experiment import ExperimentRunner
from repro.harness.reproduce import generate_report, write_report


class TestGenerateReport:
    def test_selected_figures_only(self):
        text = generate_report(
            scale=0.05, figures=["fig04", "fig09"]
        )
        assert "## fig04" in text
        assert "## fig09" in text
        assert "## fig17" not in text
        assert "GRIT reproduction report" in text

    def test_reuses_provided_runner_cache(self):
        runner = ExperimentRunner(scale=0.05)
        generate_report(figures=["fig04"], runner=runner)
        # Characterization figures don't simulate; force one that does.
        runner.run(runner.key("fir", "on_touch"))
        cached = len(runner._cache)
        generate_report(figures=["fig04"], runner=runner)
        assert len(runner._cache) == cached

    def test_write_report(self, tmp_path):
        path = tmp_path / "REPORT.md"
        text = write_report(path, scale=0.05, figures=["fig04"])
        assert path.read_text() == text


class TestReportCharts:
    def test_charts_written_and_embedded(self, tmp_path):
        report_path = tmp_path / "REPORT.md"
        charts = tmp_path / "charts"
        text = write_report(
            report_path,
            scale=0.05,
            figures=["fig09"],
            charts_dir=charts,
        )
        assert (charts / "fig09.svg").exists()
        assert "![fig09]" in text

    def test_non_numeric_figures_skip_charts(self, tmp_path):
        # fig10's rows mix ints and strings; the report must still build.
        report_path = tmp_path / "REPORT.md"
        charts = tmp_path / "charts"
        text = write_report(
            report_path,
            scale=0.05,
            figures=["fig10"],
            charts_dir=charts,
        )
        assert "fig10" in text

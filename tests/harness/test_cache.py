"""Disk-backed result cache."""

import json

import pytest

from repro.config import SystemConfig
from repro.harness.cache import (
    SCHEMA_VERSION,
    DiskCachedRunner,
    StaleCacheEntry,
    _deserialize,
    _serialize,
    config_fingerprint,
)


class TestFingerprint:
    def test_stable(self):
        assert config_fingerprint(SystemConfig()) == config_fingerprint(
            SystemConfig()
        )

    def test_sensitive_to_any_field(self):
        base = config_fingerprint(SystemConfig())
        assert config_fingerprint(SystemConfig(num_gpus=8)) != base
        assert (
            config_fingerprint(SystemConfig(issue_gap=5)) != base
        )


class TestDiskCachedRunner:
    def test_second_process_reads_from_disk(self, tmp_path):
        first = DiskCachedRunner(tmp_path, scale=0.05)
        key = first.key("fir", "on_touch")
        original = first.run(key)
        assert first.disk_misses == 1

        second = DiskCachedRunner(tmp_path, scale=0.05)
        cached = second.run(key)
        assert second.disk_hits == 1
        assert second.disk_misses == 0
        assert cached.total_cycles == original.total_cycles
        assert cached.counters.as_dict() == original.counters.as_dict()
        assert cached.breakdown.as_dict() == original.breakdown.as_dict()
        assert cached.details.get("from_cache")

    def test_speedups_identical_through_cache(self, tmp_path):
        live = DiskCachedRunner(tmp_path, scale=0.05)
        direct = live.speedup("st", "grit", "on_touch")
        rehydrated = DiskCachedRunner(tmp_path, scale=0.05)
        assert rehydrated.speedup("st", "grit", "on_touch") == direct

    def test_config_change_invalidates(self, tmp_path):
        first = DiskCachedRunner(tmp_path, scale=0.05)
        first.run(first.key("fir", "on_touch"))
        other = DiskCachedRunner(
            tmp_path, base_config=SystemConfig(issue_gap=8), scale=0.05
        )
        other.run(other.key("fir", "on_touch"))
        assert other.disk_hits == 0
        assert other.disk_misses == 1

    def test_distinct_keys_distinct_files(self, tmp_path):
        runner = DiskCachedRunner(tmp_path, scale=0.05)
        runner.run(runner.key("fir", "on_touch"))
        runner.run(runner.key("fir", "grit"))
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 2

    def _entry_files(self, tmp_path):
        return list(tmp_path.glob("*.json"))

    def test_stale_schema_version_is_a_miss(self, tmp_path):
        first = DiskCachedRunner(tmp_path, scale=0.05)
        first.run(first.key("fir", "on_touch"))
        (entry,) = self._entry_files(tmp_path)
        data = json.loads(entry.read_text())
        data["schema_version"] = SCHEMA_VERSION - 1
        entry.write_text(json.dumps(data))
        second = DiskCachedRunner(tmp_path, scale=0.05)
        second.run(second.key("fir", "on_touch"))
        assert second.disk_hits == 0
        assert second.disk_misses == 1

    def test_missing_schema_version_is_a_miss(self, tmp_path):
        first = DiskCachedRunner(tmp_path, scale=0.05)
        first.run(first.key("fir", "on_touch"))
        (entry,) = self._entry_files(tmp_path)
        data = json.loads(entry.read_text())
        del data["schema_version"]
        entry.write_text(json.dumps(data))
        second = DiskCachedRunner(tmp_path, scale=0.05)
        second.run(second.key("fir", "on_touch"))
        assert second.disk_misses == 1

    def test_renamed_counter_is_a_miss(self, tmp_path):
        """Current schema version but an unknown counter name must be
        rejected, not silently rehydrated with the field dropped."""
        first = DiskCachedRunner(tmp_path, scale=0.05)
        first.run(first.key("fir", "on_touch"))
        (entry,) = self._entry_files(tmp_path)
        data = json.loads(entry.read_text())
        counters = data["counters"]
        name = sorted(counters)[0]
        counters[f"legacy_{name}"] = counters.pop(name)
        entry.write_text(json.dumps(data))
        second = DiskCachedRunner(tmp_path, scale=0.05)
        second.run(second.key("fir", "on_touch"))
        assert second.disk_misses == 1

    def test_torn_json_is_a_miss(self, tmp_path):
        first = DiskCachedRunner(tmp_path, scale=0.05)
        key = first.key("fir", "on_touch")
        original = first.run(key)
        (entry,) = self._entry_files(tmp_path)
        entry.write_text(entry.read_text()[: entry.stat().st_size // 2])
        second = DiskCachedRunner(tmp_path, scale=0.05)
        repaired = second.run(key)
        assert second.disk_misses == 1
        assert repaired.total_cycles == original.total_cycles

    def test_writes_leave_no_tmp_files(self, tmp_path):
        runner = DiskCachedRunner(tmp_path, scale=0.05)
        runner.run(runner.key("fir", "on_touch"))
        runner.run(runner.key("fir", "grit"))
        leftovers = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert leftovers == []

    def test_deserialize_raises_on_stale(self, tmp_path):
        runner = DiskCachedRunner(tmp_path, scale=0.05)
        payload = _serialize(runner.run(runner.key("fir", "on_touch")))
        payload["schema_version"] = 999
        with pytest.raises(StaleCacheEntry):
            _deserialize(payload)

    def test_scheme_usage_round_trips(self, tmp_path):
        first = DiskCachedRunner(tmp_path, scale=0.05)
        key = first.key("st", "grit")
        original = first.run(key)
        second = DiskCachedRunner(tmp_path, scale=0.05)
        cached = second.run(key)
        assert (
            cached.counters.scheme_usage_fractions()
            == original.counters.scheme_usage_fractions()
        )

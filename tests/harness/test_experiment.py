"""ExperimentRunner: caching, key building, speedups."""

import pytest

from repro.harness.experiment import (
    PAPER_APPS,
    ExperimentRunner,
    RunKey,
    geometric_mean,
)

SCALE = 0.1


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    return ExperimentRunner(scale=SCALE)


class TestRunner:
    def test_paper_apps_are_the_table_ii_eight(self):
        assert PAPER_APPS == (
            "bfs", "bs", "c2d", "fir", "gemm", "mm", "sc", "st",
        )

    def test_run_is_cached(self, runner):
        key = runner.key("fir", "on_touch")
        first = runner.run(key)
        second = runner.run(key)
        assert first is second

    def test_key_carries_runner_scale(self, runner):
        assert runner.key("fir", "grit").scale == SCALE

    def test_key_overrides(self, runner):
        key = runner.key("fir", "grit", num_gpus=8, fault_threshold=2)
        assert key.num_gpus == 8
        assert key.fault_threshold == 2

    def test_speedup_of_policy_against_itself_is_one(self, runner):
        assert runner.speedup("fir", "on_touch", "on_touch") == 1.0

    def test_speedups_cover_requested_workloads(self, runner):
        speedups = runner.speedups(
            "grit", "on_touch", workloads=("fir", "st")
        )
        assert set(speedups) == {"fir", "st"}
        assert all(value > 0 for value in speedups.values())

    def test_grit_variant_keys_build_variant_policies(self, runner):
        result = runner.run(
            runner.key("fir", "grit", use_pa_cache=False)
        )
        assert result.policy == "grit"

    def test_prefetch_key_runs_with_prefetcher(self, runner):
        result = runner.run(runner.key("fir", "on_touch", prefetch=True))
        assert result.counters.prefetches >= 0

    def test_distinct_keys_are_distinct_cache_entries(self, runner):
        a = runner.run(runner.key("fir", "grit"))
        b = runner.run(runner.key("fir", "grit", fault_threshold=2))
        assert a is not b


class TestGeometricMean:
    def test_matches_manual_computation(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestRunKey:
    def test_hashable_and_comparable(self):
        a = RunKey(workload="fir", policy="grit")
        b = RunKey(workload="fir", policy="grit")
        assert a == b
        assert hash(a) == hash(b)

"""Process-parallel sweeps agree with sequential execution."""

from repro.config import SystemConfig
from repro.harness.experiment import ExperimentRunner
from repro.harness.orchestrator import (
    headline_keys,
    run_keys_parallel,
    warm_runner_parallel,
)

SCALE = 0.05


def sample_keys(runner):
    return [
        runner.key("fir", "on_touch"),
        runner.key("fir", "grit"),
        runner.key("st", "on_touch"),
    ]


class TestRunKeysParallel:
    def test_inline_fallback(self):
        runner = ExperimentRunner(scale=SCALE)
        keys = sample_keys(runner)
        results = run_keys_parallel(keys, workers=1)
        assert set(results) == set(keys)
        for key, result in results.items():
            assert result.workload == key.workload
            assert result.policy == key.policy

    def test_parallel_matches_sequential(self):
        runner = ExperimentRunner(scale=SCALE)
        keys = sample_keys(runner)
        sequential = run_keys_parallel(keys, workers=1)
        parallel = run_keys_parallel(keys, workers=2)
        for key in keys:
            assert (
                parallel[key].total_cycles == sequential[key].total_cycles
            )
            assert (
                parallel[key].counters.as_dict()
                == sequential[key].counters.as_dict()
            )

    def test_duplicate_keys_deduplicated(self):
        runner = ExperimentRunner(scale=SCALE)
        key = runner.key("fir", "on_touch")
        results = run_keys_parallel([key, key, key], workers=1)
        assert len(results) == 1

    def test_base_config_reaches_workers(self):
        """Regression: workers used to rebuild a *default*
        ExperimentRunner, silently simulating the wrong config."""
        config = SystemConfig(issue_gap=8, dram_footprint_fraction=0.5)
        runner = ExperimentRunner(base_config=config, scale=SCALE)
        keys = sample_keys(runner)
        parallel = run_keys_parallel(
            keys, workers=2, base_config=config
        )
        for key in keys:
            expected = runner.run(key)
            assert parallel[key].total_cycles == expected.total_cycles
            assert (
                parallel[key].counters.as_dict()
                == expected.counters.as_dict()
            )

    def test_base_config_changes_results(self):
        """Sanity: the config in the regression test is load-bearing."""
        config = SystemConfig(issue_gap=8, dram_footprint_fraction=0.5)
        runner = ExperimentRunner(scale=SCALE)
        key = runner.key("fir", "on_touch")
        tweaked = run_keys_parallel([key], workers=1, base_config=config)
        assert tweaked[key].total_cycles != runner.run(key).total_cycles


class TestWarmRunner:
    def test_warmed_cache_serves_without_resimulation(self):
        runner = ExperimentRunner(scale=SCALE)
        keys = sample_keys(runner)
        warm_runner_parallel(runner, keys, workers=1)
        cached = runner._cache[keys[0]]
        assert runner.run(keys[0]) is cached

    def test_warming_respects_runner_config(self):
        """Regression: warming a non-default runner used to fill its
        cache with default-config results."""
        config = SystemConfig(issue_gap=8, dram_footprint_fraction=0.5)
        warmed = ExperimentRunner(base_config=config, scale=SCALE)
        keys = sample_keys(warmed)
        warm_runner_parallel(warmed, keys, workers=2)
        fresh = ExperimentRunner(base_config=config, scale=SCALE)
        for key in keys:
            assert (
                warmed.run(key).total_cycles
                == fresh.run(key).total_cycles
            )

    def test_headline_keys_cover_figure_17(self):
        runner = ExperimentRunner(scale=SCALE)
        keys = headline_keys(runner)
        assert len(keys) == 8 * 5
        policies = {key.policy for key in keys}
        assert policies == {
            "on_touch",
            "access_counter",
            "duplication",
            "grit",
            "ideal",
        }

"""Process-parallel sweeps agree with sequential execution."""

import pytest

from repro.harness.experiment import ExperimentRunner
from repro.harness.parallel import (
    headline_keys,
    run_keys_parallel,
    warm_runner_parallel,
)

SCALE = 0.05


def sample_keys(runner):
    return [
        runner.key("fir", "on_touch"),
        runner.key("fir", "grit"),
        runner.key("st", "on_touch"),
    ]


class TestRunKeysParallel:
    def test_inline_fallback(self):
        runner = ExperimentRunner(scale=SCALE)
        keys = sample_keys(runner)
        results = run_keys_parallel(keys, workers=1)
        assert set(results) == set(keys)
        for key, result in results.items():
            assert result.workload == key.workload
            assert result.policy == key.policy

    def test_parallel_matches_sequential(self):
        runner = ExperimentRunner(scale=SCALE)
        keys = sample_keys(runner)
        sequential = run_keys_parallel(keys, workers=1)
        parallel = run_keys_parallel(keys, workers=2)
        for key in keys:
            assert (
                parallel[key].total_cycles == sequential[key].total_cycles
            )
            assert (
                parallel[key].counters.as_dict()
                == sequential[key].counters.as_dict()
            )

    def test_duplicate_keys_deduplicated(self):
        runner = ExperimentRunner(scale=SCALE)
        key = runner.key("fir", "on_touch")
        results = run_keys_parallel([key, key, key], workers=1)
        assert len(results) == 1


class TestWarmRunner:
    def test_warmed_cache_serves_without_resimulation(self):
        runner = ExperimentRunner(scale=SCALE)
        keys = sample_keys(runner)
        warm_runner_parallel(runner, keys, workers=1)
        cached = runner._cache[keys[0]]
        assert runner.run(keys[0]) is cached

    def test_headline_keys_cover_figure_17(self):
        runner = ExperimentRunner(scale=SCALE)
        keys = headline_keys(runner)
        assert len(keys) == 8 * 5
        policies = {key.policy for key in keys}
        assert policies == {
            "on_touch",
            "access_counter",
            "duplication",
            "grit",
            "ideal",
        }

"""SVG chart rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.harness.charts import render_svg, save_svg
from repro.harness.figures import FigureData


def numeric_figure() -> FigureData:
    return FigureData(
        name="figX",
        title="Speedups",
        columns=["on_touch", "grit"],
        rows={"bfs": [1.0, 2.4], "st": [1.0, 1.3]},
    )


class TestRenderSvg:
    def test_produces_wellformed_xml(self):
        svg = render_svg(numeric_figure())
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_bar_per_cell(self):
        svg = render_svg(numeric_figure())
        root = ET.fromstring(svg)
        ns = "{http://www.w3.org/2000/svg}"
        bars = [
            rect
            for rect in root.iter(f"{ns}rect")
            if rect.find(f"{ns}title") is not None
        ]
        assert len(bars) == 4  # 2 rows x 2 columns

    def test_bar_heights_scale_with_values(self):
        svg = render_svg(numeric_figure())
        root = ET.fromstring(svg)
        ns = "{http://www.w3.org/2000/svg}"
        heights = {}
        for rect in root.iter(f"{ns}rect"):
            title = rect.find(f"{ns}title")
            if title is not None:
                heights[title.text] = float(rect.get("height"))
        assert heights["bfs / grit: 2.400"] > heights["st / grit: 1.300"]

    def test_non_numeric_rows_skipped(self):
        figure = FigureData(
            name="figY",
            title="Mixed",
            columns=["a"],
            rows={"good": [2.0], "bad": ["n/a"]},
        )
        svg = render_svg(figure)
        assert "good" in svg
        assert "bad" not in svg

    def test_all_non_numeric_raises(self):
        figure = FigureData(
            name="figZ", title="t", columns=["a"], rows={"r": ["x"]}
        )
        with pytest.raises(ValueError):
            render_svg(figure)

    def test_titles_escaped(self):
        figure = FigureData(
            name="figE",
            title="a < b & c",
            columns=["x"],
            rows={"r": [1.0]},
        )
        svg = render_svg(figure)
        ET.fromstring(svg)  # would fail on raw < or &

    def test_save_svg(self, tmp_path):
        path = tmp_path / "chart.svg"
        save_svg(numeric_figure(), str(path))
        assert path.read_text().startswith("<svg")

    def test_real_figure_renders(self):
        from repro.harness.experiment import ExperimentRunner
        from repro.harness.figures import run_figure

        figure = run_figure("fig31", ExperimentRunner(scale=0.05))
        ET.fromstring(render_svg(figure))

"""Result consistency validation."""

import pytest

from repro.config import SystemConfig
from repro.harness.validate import assert_valid, validate_result
from repro.policies import make_policy
from repro.sim import simulate
from repro.workloads import make_workload
from tests.conftest import build_trace


class TestValidateCleanResults:
    @pytest.mark.parametrize(
        "policy",
        ["on_touch", "access_counter", "duplication", "grit", "gps", "ideal"],
    )
    def test_real_runs_validate(self, policy):
        trace = make_workload("st", scale=0.05)
        result = simulate(SystemConfig(), trace, make_policy(policy))
        assert validate_result(result) == []

    def test_assert_valid_passes_clean(self):
        trace = build_trace([[(0, False)]], footprint_pages=4)
        result = simulate(
            SystemConfig(num_gpus=1), trace, make_policy("on_touch")
        )
        assert_valid(result)


class TestValidateCatchesCorruption:
    def make_result(self):
        trace = build_trace([[(0, False), (1, True)]], footprint_pages=4)
        return simulate(
            SystemConfig(num_gpus=1), trace, make_policy("on_touch")
        )

    def test_detects_access_miscount(self):
        result = self.make_result()
        result.counters.accesses += 1
        assert "accesses != reads + writes" in validate_result(result)

    def test_detects_clock_mismatch(self):
        result = self.make_result()
        result.total_cycles += 1
        assert any(
            "max per-GPU clock" in issue for issue in validate_result(result)
        )

    def test_detects_usage_mismatch(self):
        from repro.constants import Scheme

        result = self.make_result()
        result.counters.scheme_usage[Scheme.DUPLICATION] += 1
        assert any(
            "scheme usage" in issue for issue in validate_result(result)
        )

    def test_detects_eviction_disagreement(self):
        result = self.make_result()
        result.counters.evictions += 5
        assert any(
            "eviction counter" in issue for issue in validate_result(result)
        )

    def test_assert_valid_raises_with_details(self):
        result = self.make_result()
        result.counters.accesses += 1
        with pytest.raises(AssertionError, match="reads"):
            assert_valid(result)

"""The machine-state sanitizer: clean runs pass, corruption is caught."""

import pytest

from repro.config import SystemConfig
from repro.constants import HOST_NODE, GroupBits
from repro.errors import SanitizerError
from repro.policies import make_policy
from repro.sim import simulate
from repro.uvm.driver import UvmDriver
from repro.uvm.machine import MachineState
from repro.uvm.sanitizer import (
    SANITIZE_ENV_VAR,
    MachineSanitizer,
    sanitizer_enabled,
)
from repro.workloads import make_workload


def _machine(num_gpus=4, sanitize=False):
    config = SystemConfig(num_gpus=num_gpus, sanitize=sanitize)
    return MachineState.build(config, footprint_pages=128)


class TestEnablement:
    def test_off_by_default(self):
        assert not sanitizer_enabled(SystemConfig())

    def test_config_flag(self):
        assert sanitizer_enabled(SystemConfig(sanitize=True))

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "1")
        assert sanitizer_enabled(SystemConfig())
        monkeypatch.setenv(SANITIZE_ENV_VAR, "0")
        assert not sanitizer_enabled(SystemConfig())

    def test_driver_installs_hooks_only_when_enabled(self):
        off = UvmDriver(_machine(), make_policy("on_touch"))
        assert off.sanitizer is None
        on = UvmDriver(_machine(sanitize=True), make_policy("on_touch"))
        assert on.sanitizer is not None

    def test_gps_and_ideal_opt_out_of_replica_protection(self):
        for name in ("gps", "ideal"):
            driver = UvmDriver(_machine(sanitize=True), make_policy(name))
            assert driver.sanitizer.allow_writable_replicas


@pytest.mark.parametrize(
    "policy_name",
    ["on_touch", "access_counter", "duplication", "first_touch",
     "grit", "griffin", "gps", "ideal"],
)
class TestSanitizedSimulations:
    def test_short_simulation_passes(self, policy_name):
        config = SystemConfig(num_gpus=4, sanitize=True)
        trace = make_workload("st", num_gpus=4, scale=0.03)
        result = simulate(config, trace, make_policy(policy_name))
        assert result.total_cycles > 0

    def test_sanitizer_does_not_change_results(self, policy_name):
        trace = make_workload("fir", num_gpus=4, scale=0.03)
        plain = simulate(
            SystemConfig(num_gpus=4),
            trace,
            make_policy(policy_name),
        )
        checked = simulate(
            SystemConfig(num_gpus=4, sanitize=True),
            make_workload("fir", num_gpus=4, scale=0.03),
            make_policy(policy_name),
        )
        assert checked.total_cycles == plain.total_cycles
        assert (
            checked.counters.total_faults == plain.counters.total_faults
        )


class TestInvariantViolations:
    def test_clean_machine_has_no_violations(self):
        machine = _machine()
        assert machine.check_invariants() == []

    def test_owner_listed_as_own_replica(self):
        machine = _machine()
        page = machine.central_pt.get(5)
        page.owner = 0
        page.replicas.add(0)
        violations = machine.check_invariants()
        assert any("own replica" in v for v in violations)

    def test_replicas_without_gpu_owner(self):
        machine = _machine()
        page = machine.central_pt.get(5)
        page.owner = HOST_NODE
        page.replicas.add(1)
        violations = machine.check_invariants()
        assert any("without a GPU owner" in v for v in violations)

    def test_translation_to_node_without_a_copy(self):
        machine = _machine()
        page = machine.central_pt.get(7)
        page.owner = 0
        machine.gpus[1].page_table.map(7, 2, writable=False)
        violations = machine.check_invariants()
        assert any("holds no copy" in v for v in violations)

    def test_stale_host_mapping_is_legal(self):
        # Counter-tracked pages map to system memory and keep that
        # mapping across later migrations (documented deviation).
        machine = _machine()
        page = machine.central_pt.get(7)
        page.owner = 0
        machine.gpus[0].page_table.map(7, 0, writable=True)
        machine.gpus[0].dram.install(7)
        machine.gpus[1].page_table.map(7, HOST_NODE, writable=True)
        assert machine.check_invariants() == []

    def test_writable_mapping_while_replicas_exist(self):
        machine = _machine()
        page = machine.central_pt.get(9)
        page.owner = 0
        page.replicas.add(1)
        for gpu in (0, 1):
            machine.gpus[gpu].dram.install(9)
        machine.gpus[0].page_table.map(9, 0, writable=True)
        violations = machine.check_invariants()
        assert any("writes must fault" in v for v in violations)
        assert machine.check_invariants(allow_writable_replicas=True) == []

    def test_dram_frame_without_holding_the_page(self):
        machine = _machine()
        page = machine.central_pt.get(11)
        page.owner = 0
        machine.gpus[2].dram.install(11)
        violations = machine.check_invariants()
        assert any("DRAM frame holds vpn 11" in v for v in violations)

    def test_misaligned_group_marker(self):
        machine = _machine()
        page = machine.central_pt.get(3)
        page.group = GroupBits.GROUP_8  # base must be 8-aligned
        violations = machine.check_invariants()
        assert any("not aligned" in v for v in violations)

    def test_nested_group_markers(self):
        machine = _machine()
        machine.central_pt.get(0).group = GroupBits.GROUP_64
        machine.central_pt.get(8).group = GroupBits.GROUP_8
        violations = machine.check_invariants()
        assert any("nested inside" in v for v in violations)

    def test_access_counter_at_threshold(self):
        machine = _machine()
        threshold = machine.access_counters.threshold
        machine.access_counters._groups[0] = {1: threshold}
        violations = machine.check_invariants()
        assert any("threshold" in v for v in violations)


class TestDriverIntegration:
    def test_corrupted_state_raises_from_driver_operation(self):
        machine = _machine(sanitize=True)
        driver = UvmDriver(machine, make_policy("on_touch"))
        driver.handle_local_fault(0, 1, False)  # clean op passes
        page = machine.central_pt.get(1)
        page.replicas.add(page.owner)  # corrupt: owner is its own replica
        with pytest.raises(SanitizerError) as excinfo:
            driver.handle_local_fault(2, 3, False)
        message = str(excinfo.value)
        assert "handle_local_fault(2, 3, False)" in message
        assert "own replica" in message

    def test_environment_variable_arms_the_driver(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "1")
        driver = UvmDriver(_machine(), make_policy("on_touch"))
        assert driver.sanitizer is not None
        driver.handle_local_fault(0, 1, False)
        assert driver.sanitizer.checks_run >= 1

    def test_check_names_the_operation(self):
        machine = _machine()
        sanitizer = MachineSanitizer(machine)
        machine.central_pt.get(5).owner = 99  # not a node
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.check("poke(5)")
        assert "after poke(5)" in str(excinfo.value)
        assert "not a node" in str(excinfo.value)

"""Fault buffer, fault service, and mechanic-executor unit tests."""

import pytest

from repro.config import SystemConfig
from repro.constants import FaultKind
from repro.errors import PolicyError, SimulationError
from repro.policies import make_policy
from repro.policies.base import Mechanic
from repro.uvm.driver import UvmDriver
from repro.uvm.executor import MechanicExecutor
from repro.uvm.faults import FaultBuffer, FaultEvent
from repro.uvm.machine import MachineState


def _event(gpu=0, vpn=7, is_write=False, cycle=100):
    return FaultEvent(
        FaultKind.LOCAL_PAGE_FAULT, gpu, vpn, is_write, cycle
    )


class TestFaultEvent:
    def test_merge_keeps_earliest_and_ors_writes(self):
        read = _event(is_write=False, cycle=100)
        write = _event(is_write=True, cycle=200)
        merged = read.merged_with(write)
        assert merged.is_write
        assert merged.cycle == 100
        # Read-into-write adds nothing: the original is returned.
        assert write.merged_with(read) is write

    def test_merge_rejects_different_pages(self):
        with pytest.raises(SimulationError):
            _event(vpn=7).merged_with(_event(vpn=8))
        with pytest.raises(SimulationError):
            _event(gpu=0).merged_with(_event(gpu=1))


class TestFaultBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            FaultBuffer(capacity=0)

    def test_deposit_until_full_then_overflow(self):
        buffer = FaultBuffer(capacity=2)
        buffer.deposit(_event(vpn=1))
        assert not buffer.full
        buffer.deposit(_event(vpn=2))
        assert buffer.full
        with pytest.raises(SimulationError):
            buffer.deposit(_event(vpn=3))

    def test_drain_returns_arrival_order_and_empties(self):
        buffer = FaultBuffer(capacity=3)
        for vpn in (5, 3, 9):
            buffer.deposit(_event(vpn=vpn))
        drained = buffer.drain()
        assert [e.vpn for e in drained] == [5, 3, 9]
        assert len(buffer) == 0
        assert buffer.drain() == []


def _driver(batch_size=1, policy_name="on_touch", num_gpus=2):
    config = SystemConfig(num_gpus=num_gpus, fault_batch_size=batch_size)
    machine = MachineState.build(config, footprint_pages=64)
    policy = make_policy(policy_name)
    return UvmDriver(machine, policy)


class TestFaultService:
    def test_inline_mode_services_immediately(self):
        driver = _driver(batch_size=1)
        service = driver.fault_service
        assert service.inline
        cycles = service.submit(0, 3, False, now=0)
        assert cycles is not None and cycles > 0
        assert driver.machine.counters.local_page_faults == 1
        assert driver.machine.counters.fault_batches == 0

    def test_batched_mode_parks_until_drain(self):
        driver = _driver(batch_size=2)
        service = driver.fault_service
        assert not service.inline
        assert service.submit(0, 3, False, now=0) is None
        assert service.pending(0) == 1
        assert not service.should_drain(0)
        assert driver.machine.counters.local_page_faults == 0
        assert service.submit(0, 4, True, now=10) is None
        assert service.should_drain(0)
        cycles, records = service.drain(0)
        assert cycles > 0
        assert [e.vpn for e in records] == [3, 4]
        counters = driver.machine.counters
        assert counters.local_page_faults == 2
        assert counters.fault_batches == 1
        assert counters.coalesced_faults == 0
        assert service.pending(0) == 0

    def test_duplicate_deposits_coalesce_to_one_fault(self):
        driver = _driver(batch_size=3)
        service = driver.fault_service
        service.submit(0, 5, False, now=0)
        service.submit(0, 5, True, now=4)
        service.submit(0, 5, False, now=8)
        cycles, records = service.drain(0)
        assert len(records) == 3  # replay list keeps duplicates
        counters = driver.machine.counters
        assert counters.local_page_faults == 1
        assert counters.coalesced_faults == 2
        # The coalesced service honored the write deposit.
        pte = driver.machine.gpus[0].page_table.lookup(5)
        assert pte is not None and pte.writable
        assert cycles > 0

    def test_buffers_are_per_gpu(self):
        driver = _driver(batch_size=4)
        service = driver.fault_service
        service.submit(0, 1, False, now=0)
        service.submit(1, 2, False, now=0)
        assert service.pending(0) == 1
        assert service.pending(1) == 1
        service.drain(0)
        assert service.pending(0) == 0
        assert service.pending(1) == 1

    def test_empty_drain_is_free(self):
        driver = _driver(batch_size=4)
        cycles, records = driver.fault_service.drain(0)
        assert (cycles, records) == (0, [])
        assert driver.machine.counters.fault_batches == 0


class TestMechanicExecutor:
    def test_defaults_cover_every_mechanic(self):
        driver = _driver()
        assert driver.mechanics.registered() == frozenset(Mechanic)

    def test_unregistered_mechanic_raises(self):
        executor = MechanicExecutor(driver=None)
        executor._handlers.clear()
        with pytest.raises(PolicyError):
            executor.execute(Mechanic.ON_TOUCH, 0, None, False)

    def test_driver_rejects_policy_missing_an_executor(self):
        config = SystemConfig(num_gpus=2)
        machine = MachineState.build(config, footprint_pages=16)
        policy = make_policy("on_touch")

        class Unsatisfiable(type(policy)):
            def register_mechanics(self, executor):
                del executor._handlers[Mechanic.ON_TOUCH]

        with pytest.raises(PolicyError, match="on_touch"):
            UvmDriver(machine, Unsatisfiable())

    def test_policy_can_swap_an_executor(self):
        config = SystemConfig(num_gpus=2)
        machine = MachineState.build(config, footprint_pages=16)
        policy = make_policy("on_touch")
        calls = []

        def counting(driver, gpu, page, is_write, now):
            calls.append(page.vpn)
            return 0

        original = policy.register_mechanics

        def register(executor):
            original(executor)
            executor.register(Mechanic.ON_TOUCH, counting)

        policy.register_mechanics = register
        driver = UvmDriver(machine, policy)
        driver.handle_local_fault(0, 9, False)
        assert calls == [9]

"""Duplication mechanics: replication, collapse, replica drops."""

import pytest

from repro.config import SystemConfig
from repro.constants import LatencyCategory
from repro.uvm.duplication import DuplicationEngine
from repro.uvm.machine import MachineState
from repro.uvm.migration import MigrationEngine


@pytest.fixture
def machine() -> MachineState:
    return MachineState.build(SystemConfig(num_gpus=3), footprint_pages=30)


@pytest.fixture
def engine(machine: MachineState) -> DuplicationEngine:
    return DuplicationEngine(machine, MigrationEngine(machine))


def place(machine, engine, vpn, owner):
    page = machine.central_pt.get(vpn)
    engine.migration.place_from_host(
        page, owner, LatencyCategory.PAGE_DUPLICATION
    )
    return page


class TestDuplicate:
    def test_creates_read_only_replica(self, machine, engine):
        page = place(machine, engine, 0, owner=0)
        cycles = engine.duplicate(page, 1)
        assert cycles > 0
        assert page.replicas == {1}
        pte = machine.gpus[1].page_table.lookup(0)
        assert pte.location == 1 and not pte.writable
        assert 0 in machine.gpus[1].dram
        assert machine.counters.duplications == 1

    def test_downgrades_owner_to_read_only(self, machine, engine):
        page = place(machine, engine, 0, owner=0)
        engine.duplicate(page, 1)
        assert not machine.gpus[0].page_table.lookup(0).writable

    def test_duplicate_unplaced_page_places_it(self, machine, engine):
        page = machine.central_pt.get(5)
        engine.duplicate(page, 2)
        assert page.owner == 2
        assert page.replicas == set()

    def test_duplicate_to_holder_is_free(self, machine, engine):
        page = place(machine, engine, 0, owner=0)
        engine.duplicate(page, 1)
        assert engine.duplicate(page, 1) == 0

    def test_gps_replicas_stay_writable(self, machine, engine):
        page = place(machine, engine, 0, owner=0)
        engine.duplicate(page, 1, writable_replica=True)
        assert machine.gpus[1].page_table.lookup(0).writable
        # GPS does not downgrade the owner either.
        assert machine.gpus[0].page_table.lookup(0).writable

    def test_charges_duplication_category(self, machine, engine):
        page = place(machine, engine, 0, owner=0)
        before = machine.breakdown.cycles(LatencyCategory.PAGE_DUPLICATION)
        cycles = engine.duplicate(page, 1)
        after = machine.breakdown.cycles(LatencyCategory.PAGE_DUPLICATION)
        assert after - before == cycles


class TestCollapse:
    def test_collapse_makes_writer_sole_owner(self, machine, engine):
        page = place(machine, engine, 0, owner=0)
        engine.duplicate(page, 1)
        engine.duplicate(page, 2)
        cycles = engine.collapse_to_writer(page, 1)
        assert cycles > 0
        assert page.owner == 1
        assert page.replicas == set()
        assert page.dirty and page.ever_written
        assert machine.counters.write_collapses == 1

    def test_losers_lose_frames_and_mappings(self, machine, engine):
        page = place(machine, engine, 0, owner=0)
        engine.duplicate(page, 1)
        engine.collapse_to_writer(page, 1)
        assert machine.gpus[0].page_table.lookup(0) is None
        assert 0 not in machine.gpus[0].dram

    def test_writer_mapping_upgraded(self, machine, engine):
        page = place(machine, engine, 0, owner=0)
        engine.duplicate(page, 1)
        engine.collapse_to_writer(page, 1)
        assert machine.gpus[1].page_table.lookup(0).writable

    def test_losers_stall(self, machine, engine):
        page = place(machine, engine, 0, owner=0)
        engine.duplicate(page, 1)
        before = machine.gpus[0].clock
        engine.collapse_to_writer(page, 1)
        assert machine.gpus[0].clock > before

    def test_collapse_with_transfer_for_new_writer(self, machine, engine):
        page = place(machine, engine, 0, owner=0)
        engine.collapse_to_writer(page, 2)  # writer had no copy
        assert page.owner == 2
        assert 0 in machine.gpus[2].dram

    def test_collapse_by_owner_with_no_replicas(self, machine, engine):
        page = place(machine, engine, 0, owner=0)
        cycles = engine.collapse_to_writer(page, 0)
        assert page.owner == 0
        assert cycles == 0  # nothing to flush or move

    def test_charges_write_collapse_category(self, machine, engine):
        page = place(machine, engine, 0, owner=0)
        engine.duplicate(page, 1)
        before = machine.breakdown.cycles(LatencyCategory.WRITE_COLLAPSE)
        cycles = engine.collapse_to_writer(page, 1)
        after = machine.breakdown.cycles(LatencyCategory.WRITE_COLLAPSE)
        assert after - before == cycles


class TestDropReplicas:
    def test_drop_replicas_restores_owner_write(self, machine, engine):
        page = place(machine, engine, 0, owner=0)
        engine.duplicate(page, 1)
        engine.duplicate(page, 2)
        cycles = engine.drop_replicas(page)
        assert cycles > 0
        assert page.replicas == set()
        assert page.owner == 0
        assert machine.gpus[0].page_table.lookup(0).writable
        assert machine.gpus[1].page_table.lookup(0) is None

    def test_drop_replicas_noop_without_replicas(self, machine, engine):
        page = place(machine, engine, 0, owner=0)
        assert engine.drop_replicas(page) == 0

"""Migration mechanics: placement, moves, invalidations, evictions."""

import pytest

from repro.config import SystemConfig
from repro.constants import HOST_NODE, LatencyCategory
from repro.uvm.machine import MachineState
from repro.uvm.migration import MigrationEngine


@pytest.fixture
def machine() -> MachineState:
    return MachineState.build(SystemConfig(num_gpus=3), footprint_pages=12)


@pytest.fixture
def engine(machine: MachineState) -> MigrationEngine:
    return MigrationEngine(machine)


class TestPlacement:
    def test_place_from_host(self, machine, engine):
        page = machine.central_pt.get(0)
        cycles = engine.place_from_host(
            page, 1, LatencyCategory.PAGE_MIGRATION
        )
        assert cycles > 0
        assert page.owner == 1
        assert 0 in machine.gpus[1].dram
        pte = machine.gpus[1].page_table.lookup(0)
        assert pte.location == 1 and pte.writable

    def test_read_only_placement(self, machine, engine):
        page = machine.central_pt.get(0)
        engine.place_from_host(
            page, 1, LatencyCategory.PAGE_DUPLICATION, writable=False
        )
        assert not machine.gpus[1].page_table.lookup(0).writable

    def test_placement_charged_to_category(self, machine, engine):
        page = machine.central_pt.get(0)
        cycles = engine.place_from_host(
            page, 1, LatencyCategory.PAGE_MIGRATION
        )
        charged = machine.breakdown.cycles(
            LatencyCategory.PAGE_MIGRATION
        )
        assert charged == cycles


class TestMigration:
    def test_migrate_moves_ownership_and_frames(self, machine, engine):
        page = machine.central_pt.get(0)
        engine.place_from_host(page, 0, LatencyCategory.PAGE_MIGRATION)
        cycles = engine.migrate(page, 2)
        assert cycles > 0
        assert page.owner == 2
        assert 0 not in machine.gpus[0].dram
        assert 0 in machine.gpus[2].dram
        assert machine.counters.migrations == 1

    def test_migrate_invalidates_stale_mappings(self, machine, engine):
        page = machine.central_pt.get(0)
        engine.place_from_host(page, 0, LatencyCategory.PAGE_MIGRATION)
        machine.gpus[1].page_table.map(0, 0, writable=True)  # remote map
        engine.migrate(page, 2)
        assert machine.gpus[0].page_table.lookup(0) is None
        assert machine.gpus[1].page_table.lookup(0) is None
        assert machine.gpus[2].page_table.lookup(0).location == 2

    def test_migrate_stalls_old_owner(self, machine, engine):
        page = machine.central_pt.get(0)
        engine.place_from_host(page, 0, LatencyCategory.PAGE_MIGRATION)
        before = machine.gpus[0].clock
        engine.migrate(page, 1)
        assert machine.gpus[0].clock > before

    def test_migrate_from_host_is_placement(self, machine, engine):
        page = machine.central_pt.get(0)
        engine.migrate(page, 1)
        assert page.owner == 1

    def test_migrate_to_current_owner_is_cheap(self, machine, engine):
        page = machine.central_pt.get(0)
        engine.place_from_host(page, 1, LatencyCategory.PAGE_MIGRATION)
        assert engine.migrate(page, 1) == 0

    def test_migrate_drops_replicas(self, machine, engine):
        page = machine.central_pt.get(0)
        engine.place_from_host(page, 0, LatencyCategory.PAGE_MIGRATION)
        page.replicas.add(1)
        machine.gpus[1].dram.install(0)
        engine.migrate(page, 2)
        assert page.replicas == set()
        assert 0 not in machine.gpus[1].dram

    def test_migration_resets_access_counters(self, machine, engine):
        page = machine.central_pt.get(0)
        engine.place_from_host(page, 0, LatencyCategory.PAGE_MIGRATION)
        machine.access_counters.record_remote_access(1, 0)
        engine.migrate(page, 1)
        assert machine.access_counters.count(1, 0) == 0

    def test_acud_scale_reduces_cost(self, machine, engine):
        page_a = machine.central_pt.get(0)
        page_b = machine.central_pt.get(1)
        engine.place_from_host(page_a, 0, LatencyCategory.PAGE_MIGRATION)
        engine.place_from_host(page_b, 0, LatencyCategory.PAGE_MIGRATION)
        full = engine.migrate(page_a, 1, flush_scale=1.0)
        discounted = engine.migrate(page_b, 1, flush_scale=0.3)
        assert discounted < full


class TestEviction:
    def make_full(self, machine, engine, gpu: int):
        """Fill the GPU's DRAM (capacity = 70% * 12 / 3 = 2 frames)."""
        for vpn in range(machine.gpus[gpu].dram.capacity):
            page = machine.central_pt.get(vpn)
            engine.place_from_host(page, gpu, LatencyCategory.PAGE_MIGRATION)

    def test_owner_eviction_returns_page_to_host(self, machine, engine):
        self.make_full(machine, engine, 0)
        overflow = machine.central_pt.get(10)
        engine.place_from_host(overflow, 0, LatencyCategory.PAGE_MIGRATION)
        victim = machine.central_pt.get(0)
        assert victim.owner == HOST_NODE
        assert machine.gpus[0].page_table.lookup(0) is None
        assert machine.counters.evictions >= 1

    def test_replica_eviction_promotes_survivor(self, machine, engine):
        page = machine.central_pt.get(0)
        engine.place_from_host(page, 0, LatencyCategory.PAGE_MIGRATION)
        page.replicas.add(1)
        machine.gpus[1].dram.install(0)
        machine.gpus[1].page_table.map(0, 1, writable=False)
        # Fill GPU 0 to evict its owned copy of page 0.
        for vpn in range(1, 1 + machine.gpus[0].dram.capacity):
            engine.place_from_host(
                machine.central_pt.get(vpn), 0, LatencyCategory.PAGE_MIGRATION
            )
        assert page.owner == 1
        assert page.replicas == set()
        assert machine.gpus[1].page_table.lookup(0).writable

    def test_replica_eviction_releases_only_replica(self, machine, engine):
        page = machine.central_pt.get(11)
        engine.place_from_host(page, 0, LatencyCategory.PAGE_MIGRATION)
        page.replicas.add(1)
        machine.gpus[1].dram.install(11)
        machine.gpus[1].page_table.map(11, 1, writable=False)
        # Fill GPU 1's frames to evict its replica.
        for vpn in range(machine.gpus[1].dram.capacity):
            engine.place_from_host(
                machine.central_pt.get(vpn), 1, LatencyCategory.PAGE_MIGRATION
            )
        assert page.owner == 0
        assert 1 not in page.replicas
        # Sole owner's mapping became writable again.
        assert machine.gpus[0].page_table.lookup(11).writable

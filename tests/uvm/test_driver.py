"""UVM driver: fault resolution per mechanic."""

import pytest

from repro.config import SystemConfig
from repro.constants import HOST_NODE, FaultKind, LatencyCategory, Scheme
from repro.policies.access_counter import AccessCounterPolicy
from repro.policies.base import FaultObservation, Mechanic, PlacementPolicy
from repro.policies.duplication import DuplicationPolicy
from repro.policies.first_touch import FirstTouchPolicy
from repro.policies.gps import GpsPolicy
from repro.policies.ideal import IdealPolicy
from repro.policies.on_touch import OnTouchPolicy
from repro.uvm.driver import UvmDriver
from repro.uvm.machine import MachineState


def make_driver(policy: PlacementPolicy, num_gpus=3, footprint=30):
    machine = MachineState.build(
        SystemConfig(num_gpus=num_gpus),
        footprint,
        initial_scheme=policy.initial_scheme(),
    )
    return UvmDriver(machine, policy)


class TestOnTouch:
    def test_cold_fault_places_page_locally(self):
        driver = make_driver(OnTouchPolicy())
        cycles = driver.handle_local_fault(1, 0, is_write=False)
        assert cycles > 0
        page = driver.machine.central_pt.get(0)
        assert page.owner == 1
        assert driver.machine.counters.local_page_faults == 1

    def test_second_gpu_fault_migrates(self):
        driver = make_driver(OnTouchPolicy())
        driver.handle_local_fault(1, 0, False)
        driver.handle_local_fault(2, 0, False)
        page = driver.machine.central_pt.get(0)
        assert page.owner == 2
        assert driver.machine.counters.migrations >= 1

    def test_write_fault_marks_dirty(self):
        driver = make_driver(OnTouchPolicy())
        driver.handle_local_fault(1, 0, is_write=True)
        page = driver.machine.central_pt.get(0)
        assert page.dirty and page.ever_written

    def test_host_latency_charged(self):
        driver = make_driver(OnTouchPolicy())
        driver.handle_local_fault(0, 0, False)
        assert driver.machine.breakdown.cycles(LatencyCategory.HOST) > 0


class TestAccessCounterMechanic:
    def test_first_touch_maps_to_host(self):
        driver = make_driver(AccessCounterPolicy())
        driver.handle_local_fault(1, 0, False)
        page = driver.machine.central_pt.get(0)
        assert page.owner == HOST_NODE  # no eager migration
        pte = driver.machine.gpus[1].page_table.lookup(0)
        assert pte.location == HOST_NODE

    def test_remote_access_below_threshold_no_migration(self):
        driver = make_driver(AccessCounterPolicy())
        driver.handle_local_fault(1, 0, False)
        for _ in range(10):
            assert driver.on_remote_access(1, 0) == 0
        assert driver.machine.counters.migrations == 0

    def test_threshold_triggers_migration(self):
        driver = make_driver(AccessCounterPolicy())
        driver.handle_local_fault(1, 0, False)
        threshold = driver.machine.access_counters.threshold
        cycles = 0
        for _ in range(threshold):
            cycles = driver.on_remote_access(1, 0)
        assert cycles > 0
        assert driver.machine.central_pt.get(0).owner == 1
        assert driver.machine.counters.migrations == 1

    def test_remote_access_counted(self):
        driver = make_driver(AccessCounterPolicy())
        driver.handle_local_fault(1, 0, False)
        driver.on_remote_access(1, 0)
        assert driver.machine.counters.remote_accesses == 1


class TestDuplicationMechanic:
    def test_cold_read_places_read_only(self):
        driver = make_driver(DuplicationPolicy())
        driver.handle_local_fault(0, 0, is_write=False)
        pte = driver.machine.gpus[0].page_table.lookup(0)
        assert not pte.writable  # copy-on-write placement

    def test_cold_write_places_writable(self):
        driver = make_driver(DuplicationPolicy())
        driver.handle_local_fault(0, 0, is_write=True)
        assert driver.machine.gpus[0].page_table.lookup(0).writable

    def test_second_reader_gets_replica(self):
        driver = make_driver(DuplicationPolicy())
        driver.handle_local_fault(0, 0, False)
        driver.handle_local_fault(1, 0, False)
        page = driver.machine.central_pt.get(0)
        assert page.owner == 0
        assert page.replicas == {1}

    def test_protection_fault_collapses(self):
        driver = make_driver(DuplicationPolicy())
        driver.handle_local_fault(0, 0, False)
        driver.handle_local_fault(1, 0, False)
        cycles = driver.handle_protection_fault(0, 0)
        assert cycles > 0
        page = driver.machine.central_pt.get(0)
        assert page.owner == 0
        assert page.replicas == set()
        assert driver.machine.counters.protection_faults == 1

    def test_faulting_write_by_third_gpu_collapses_with_move(self):
        driver = make_driver(DuplicationPolicy())
        driver.handle_local_fault(0, 0, False)
        driver.handle_local_fault(1, 0, False)
        driver.handle_local_fault(2, 0, True)
        page = driver.machine.central_pt.get(0)
        assert page.owner == 2
        assert page.replicas == set()
        assert driver.machine.counters.write_collapses == 1


class TestGpsMechanic:
    def test_subscribers_get_writable_replicas(self):
        driver = make_driver(GpsPolicy())
        driver.handle_local_fault(0, 0, False)
        driver.handle_local_fault(1, 0, False)
        assert driver.machine.gpus[1].page_table.lookup(0).writable

    def test_gps_write_broadcast_cost_scales_with_subscribers(self):
        driver = make_driver(GpsPolicy())
        driver.handle_local_fault(0, 0, False)
        assert driver.gps_write(0, 0) == 0  # no other subscribers
        driver.handle_local_fault(1, 0, False)
        driver.handle_local_fault(2, 0, False)
        assert driver.gps_write(0, 0) == 2 * (
            driver.machine.config.latency.gps_store_broadcast
        )

    def test_gps_write_never_collapses(self):
        driver = make_driver(GpsPolicy())
        driver.handle_local_fault(0, 0, False)
        driver.handle_local_fault(1, 0, False)
        driver.gps_write(1, 0)
        page = driver.machine.central_pt.get(0)
        assert page.replicas == {1}
        assert driver.machine.counters.write_collapses == 0


class TestIdealMechanic:
    def test_first_touch_pays_cold_cost(self):
        driver = make_driver(IdealPolicy())
        cycles = driver.handle_local_fault(0, 0, False)
        assert cycles > 0

    def test_later_gpus_map_for_free(self):
        driver = make_driver(IdealPolicy())
        driver.handle_local_fault(0, 0, False)
        assert driver.handle_local_fault(1, 0, False) == 0
        page = driver.machine.central_pt.get(0)
        assert page.is_local_to(0) and page.is_local_to(1)

    def test_ideal_counts_no_faults(self):
        driver = make_driver(IdealPolicy())
        driver.handle_local_fault(0, 0, False)
        driver.handle_local_fault(1, 0, True)
        assert driver.machine.counters.total_faults == 0


class TestFirstTouchMechanic:
    def test_pins_at_first_toucher(self):
        driver = make_driver(FirstTouchPolicy())
        driver.handle_local_fault(1, 0, False)
        page = driver.machine.central_pt.get(0)
        assert page.owner == 1

    def test_other_gpus_map_remote_forever(self):
        driver = make_driver(FirstTouchPolicy())
        driver.handle_local_fault(1, 0, False)
        driver.handle_local_fault(2, 0, False)
        pte = driver.machine.gpus[2].page_table.lookup(0)
        assert pte.location == 1
        # Remote accesses never migrate under first-touch.
        for _ in range(300):
            driver.on_remote_access(2, 0)
        assert driver.machine.central_pt.get(0).owner == 1


class TestPolicyHooks:
    def test_collapse_charged_via_observation(self):
        class CollapsingPolicy(OnTouchPolicy):
            def on_fault_observed(self, gpu, vpn, kind, is_write):
                return FaultObservation(collapse_charged=(0,))

        driver = make_driver(CollapsingPolicy())
        # Build a replicated page by hand.
        page = driver.machine.central_pt.get(0)
        driver.migration.place_from_host(
            page, 0, LatencyCategory.PAGE_DUPLICATION
        )
        driver.duplication.duplicate(page, 1)
        driver.handle_local_fault(2, 5, False)
        assert page.replicas == set()

    def test_unknown_mechanic_raises(self):
        class BrokenPolicy(OnTouchPolicy):
            def mechanic_for(self, page):
                return "bogus"

        driver = make_driver(BrokenPolicy())
        from repro.errors import PolicyError

        with pytest.raises(PolicyError):
            driver.handle_local_fault(0, 0, False)


class TestPrefetchEntryPoint:
    def test_prefetches_host_pages_only(self):
        driver = make_driver(OnTouchPolicy())
        assert driver.prefetch_page(0, 3)
        assert not driver.prefetch_page(1, 3)  # now owned by GPU 0
        assert driver.machine.counters.prefetches == 1

    def test_prefetch_respects_footprint(self):
        driver = make_driver(OnTouchPolicy(), footprint=10)
        assert not driver.prefetch_page(0, 10)

    def test_prefetched_page_is_mapped(self):
        driver = make_driver(OnTouchPolicy())
        driver.prefetch_page(2, 4)
        pte = driver.machine.gpus[2].page_table.lookup(4)
        assert pte.location == 2

"""MachineState construction and shared invalidation helper."""

from repro.config import SystemConfig
from repro.constants import Scheme
from repro.uvm.machine import MachineState


class TestMachineBuild:
    def test_builds_per_gpu_structures(self):
        machine = MachineState.build(SystemConfig(num_gpus=4), 1000)
        assert len(machine.gpus) == 4
        assert machine.footprint_pages == 1000
        # 70% of 1000 pages split across 4 GPUs.
        assert machine.gpus[0].dram.capacity == 175

    def test_initial_scheme_threads_to_central_pt(self):
        machine = MachineState.build(
            SystemConfig(), 100, initial_scheme=Scheme.DUPLICATION
        )
        assert machine.central_pt.get(5).scheme is Scheme.DUPLICATION

    def test_invalidate_everywhere_counts_mapped_gpus(self):
        machine = MachineState.build(SystemConfig(num_gpus=3), 100)
        machine.gpus[0].page_table.map(7, 0, writable=True)
        machine.gpus[2].page_table.map(7, 0, writable=True)
        assert machine.invalidate_everywhere(7) == 2
        for gpu in machine.gpus:
            assert gpu.page_table.lookup(7) is None

    def test_invalidate_everywhere_clears_tlbs(self):
        machine = MachineState.build(SystemConfig(num_gpus=2), 100)
        gpu = machine.gpus[0]
        gpu.page_table.map(7, 0, writable=True)
        gpu.tlbs.fill(7, gpu.page_table.lookup(7))
        machine.invalidate_everywhere(7)
        entry, _, missed = gpu.tlbs.lookup(7)
        assert entry is None and missed

"""End-to-end comparator behaviour through the engine.

Exercises the Griffin interval hook, GPS write-broadcast semantics, the
prefetcher, and Trans-FW stacking over full (small) workload runs rather
than hand-driven driver calls.
"""

import pytest

from repro.config import SystemConfig
from repro.policies import make_policy
from repro.policies.griffin import GriffinPolicy
from repro.prefetch import TreePrefetcher
from repro.sim import Engine, simulate
from repro.workloads import make_workload

SCALE = 0.1


def run(workload, policy, prefetcher=None, num_gpus=4):
    config = SystemConfig(num_gpus=num_gpus)
    trace = make_workload(workload, num_gpus=num_gpus, scale=SCALE)
    if isinstance(policy, str):
        policy = make_policy(policy)
    return Engine(config, trace, policy, prefetcher=prefetcher).run()


class TestGriffinThroughEngine:
    def test_dpc_intervals_fire_during_run(self):
        policy = GriffinPolicy(interval_cycles=50_000, min_accesses=2)
        result = run("st", policy)
        assert policy.dpc_migrations > 0
        assert result.counters.migrations >= policy.dpc_migrations

    def test_acud_variant_is_faster_on_migration_heavy_app(self):
        plain = run("st", "griffin_dpc")
        acud = run("st", "griffin")
        assert acud.total_cycles <= plain.total_cycles


class TestGpsThroughEngine:
    def test_gps_never_collapses(self):
        result = run("st", "gps")
        assert result.counters.write_collapses == 0
        assert result.counters.protection_faults == 0

    def test_gps_replicates_more_than_grit(self):
        gps = run("st", "gps")
        grit = run("st", "grit")
        assert gps.counters.duplications >= grit.counters.duplications


class TestPrefetcherThroughEngine:
    def test_prefetch_reduces_cold_faults_on_streaming_app(self):
        plain = run("fir", "on_touch")
        prefetcher = TreePrefetcher()
        fetched = run("fir", "on_touch", prefetcher=prefetcher)
        assert prefetcher.prefetched_pages > 0
        assert fetched.counters.local_page_faults < (
            plain.counters.local_page_faults
        )

    def test_prefetch_counts_surface_in_result(self):
        prefetcher = TreePrefetcher()
        result = run("fir", "grit", prefetcher=prefetcher)
        assert result.counters.prefetches == prefetcher.prefetched_pages


class TestTransFwThroughEngine:
    def test_transfw_stack_speeds_up_grit(self):
        plain = run("st", "grit")
        stacked = run("st", "grit_transfw")
        assert stacked.total_cycles < plain.total_cycles

    def test_transfw_does_not_change_fault_counts(self):
        plain = run("fir", "griffin_dpc")
        stacked = run("fir", "griffin_dpc_transfw")
        # Trans-FW accelerates fault service; it doesn't avoid faults.
        assert (
            abs(
                stacked.counters.total_faults - plain.counters.total_faults
            )
            <= plain.counters.total_faults * 0.1
        )


class TestScalingThroughEngine:
    @pytest.mark.parametrize("num_gpus", [1, 2, 8])
    def test_all_policies_run_at_any_gpu_count(self, num_gpus):
        for policy in ("on_touch", "grit", "gps", "griffin_dpc"):
            result = run("gemm", policy, num_gpus=num_gpus)
            assert result.num_gpus == num_gpus
            assert result.total_cycles > 0

    def test_single_gpu_has_no_sharing_costs(self):
        result = run("st", "grit", num_gpus=1)
        # No peers: no replicas and no GPU-to-GPU traffic.  (Host-remote
        # accesses and copy-on-write upgrade faults can still occur.)
        assert result.counters.duplications == 0
        assert result.details["nvlink_bytes"] == 0

"""End-to-end scheme behaviour on hand-crafted micro-traces.

Each test builds a tiny trace whose best placement scheme is known by
construction and checks the simulator agrees — the micro-scale version
of the paper's Section IV arguments.
"""

import pytest

from repro.config import SystemConfig
from repro.policies import make_policy
from repro.sim import simulate
from tests.conftest import build_trace


def run(trace, policy_name, num_gpus=2):
    config = SystemConfig(num_gpus=num_gpus)
    return simulate(config, trace, make_policy(policy_name))


def ping_pong_trace(accesses_per_side=2, rounds=12):
    """One page alternately written by two GPUs (worst case for OT)."""
    per_gpu = []
    for _ in range(rounds):
        per_gpu.append([(0, True)] * accesses_per_side)
    stream = [access for burst in per_gpu for access in burst]
    return build_trace([stream, stream], footprint_pages=8)


def read_shared_trace(readers=2, reads=40):
    """One page read over and over by every GPU (duplication heaven)."""
    stream = [(0, False)] * reads
    return build_trace(
        [list(stream) for _ in range(readers)], footprint_pages=8
    )


def private_trace(pages=4, accesses=30):
    """Disjoint per-GPU pages (on-touch heaven)."""
    return build_trace(
        [
            [
                (vpn, vpn % 2 == 0)
                for vpn in range(pages)
                for _ in range(accesses)
            ],
            [
                (vpn, vpn % 2 == 0)
                for vpn in range(pages, 2 * pages)
                for _ in range(accesses)
            ],
        ],
        footprint_pages=4 * pages,
    )


class TestMicroShapes:
    def test_read_shared_page_prefers_duplication_over_on_touch(self):
        trace = read_shared_trace()
        dup = run(trace, "duplication")
        ot = run(trace, "on_touch")
        assert dup.total_cycles < ot.total_cycles

    def test_rw_ping_pong_prefers_access_counter_over_on_touch(self):
        trace = ping_pong_trace()
        ac = run(trace, "access_counter")
        ot = run(trace, "on_touch")
        assert ac.total_cycles < ot.total_cycles
        assert ac.counters.migrations < ot.counters.migrations

    def test_rw_ping_pong_punishes_duplication(self):
        trace = ping_pong_trace()
        dup = run(trace, "duplication")
        ac = run(trace, "access_counter")
        assert dup.counters.write_collapses > 0
        assert ac.total_cycles < dup.total_cycles

    def test_private_pages_prefer_on_touch_over_access_counter(self):
        trace = private_trace()
        ot = run(trace, "on_touch")
        ac = run(trace, "access_counter")
        assert ot.total_cycles < ac.total_cycles

    def test_ideal_is_a_lower_bound(self):
        for trace in (ping_pong_trace(), read_shared_trace(), private_trace()):
            ideal = run(trace, "ideal")
            names = ("on_touch", "access_counter", "duplication", "grit")
            for policy in names:
                assert ideal.total_cycles <= run(trace, policy).total_cycles


class TestGritAdaptation:
    def test_grit_learns_duplication_for_read_shared_page(self):
        trace = read_shared_trace(reads=60)
        grit = run(trace, "grit")
        fractions = grit.counters.scheme_usage_fractions()
        assert grit.counters.scheme_changes >= 1
        assert fractions["D"] > 0

    def test_grit_learns_access_counter_for_ping_pong(self):
        trace = ping_pong_trace(rounds=20)
        grit = run(trace, "grit")
        from repro.constants import Scheme

        # By the end the page's scheme bits should be AC.
        # (Re-simulate through engine internals to inspect the PT.)
        from repro.sim.engine import Engine

        engine = Engine(
            SystemConfig(num_gpus=2),
            ping_pong_trace(rounds=20),
            make_policy("grit"),
        )
        engine.run()
        assert engine.machine.central_pt.get(0).scheme is Scheme.ACCESS_COUNTER

    def test_grit_matches_or_beats_on_touch_on_mixed_trace(self):
        # Half private pages, half ping-pong shared pages.
        shared = [(0, True), (1, True)] * 20
        private_a = [(vpn, False) for vpn in range(4, 8) for _ in range(10)]
        private_b = [(vpn, False) for vpn in range(8, 12) for _ in range(10)]
        trace = build_trace(
            [shared + private_a, shared + private_b], footprint_pages=16
        )
        grit = run(trace, "grit")
        ot = run(trace, "on_touch")
        assert grit.total_cycles <= ot.total_cycles

    def test_grit_fault_count_drops_vs_on_touch_on_ping_pong(self):
        trace = ping_pong_trace(rounds=20)
        grit = run(trace, "grit")
        ot = run(trace, "on_touch")
        assert grit.counters.total_faults < ot.counters.total_faults


class TestOversubscription:
    def test_duplication_evicts_under_capacity_pressure(self):
        # 2 GPUs, 20-page footprint -> 7 frames each; both GPUs read all
        # pages -> 40 replica installs must evict.
        accesses = [(vpn, False) for vpn in range(20)] * 2
        trace = build_trace([accesses, accesses], footprint_pages=20)
        dup = run(trace, "duplication")
        assert dup.counters.evictions > 0

    def test_access_counter_avoids_capacity_pressure(self):
        accesses = [(vpn, False) for vpn in range(20)] * 2
        trace = build_trace([accesses, accesses], footprint_pages=20)
        ac = run(trace, "access_counter")
        assert ac.counters.evictions == 0  # pages stay in host memory

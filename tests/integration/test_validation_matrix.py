"""Accounting consistency across the full workload x policy matrix.

This net caught a real bug during development: owner evictions used to
shoot down replica holders' valid self-mappings, leaving GPS pages with
read-only translations that then write-collapsed — something GPS must
never do.  Keep it broad.
"""

import pytest

from repro.config import SystemConfig
from repro.harness.validate import validate_result
from repro.policies import available_policies, make_policy
from repro.sim import simulate
from repro.workloads import make_workload

#: One write-heavy shared app (the GPS regression trigger), one
#: private-heavy app, and one mixed app — full Table II coverage runs in
#: the standalone validation sweep.
WORKLOADS = ("bs", "fir", "gemm")


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("policy", sorted(available_policies()))
def test_every_policy_produces_consistent_accounting(workload, policy):
    trace = make_workload(workload, scale=0.1)
    result = simulate(SystemConfig(), trace, make_policy(policy))
    assert validate_result(result) == []


def test_gps_survives_heavy_eviction_churn_without_collapses():
    """The regression scenario: BS's all-shared writes under GPS with
    70% capacity force constant owner evictions and re-subscriptions;
    promoted subscribers must keep their writable mappings."""
    trace = make_workload("bs", scale=0.15)
    result = simulate(SystemConfig(), trace, make_policy("gps"))
    assert result.counters.evictions > 100  # churn actually happened
    assert result.counters.write_collapses == 0
    assert result.counters.protection_faults == 0

"""Paper-shape regression tests: the evaluation's qualitative claims.

These run the real workloads at a reduced scale and assert the *shape*
of the paper's results — who wins per application and the direction of
the headline averages.  They are the contract the benchmarks report
against; see EXPERIMENTS.md for measured-vs-paper numbers.
"""

import pytest

from repro.harness.experiment import (
    PAPER_APPS,
    ExperimentRunner,
    geometric_mean,
)

SCALE = 0.25


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    return ExperimentRunner(scale=SCALE)


def geo(runner, policy, baseline="on_touch", **overrides):
    return geometric_mean(
        runner.speedups(policy, baseline, **overrides).values()
    )


class TestFigure1Shape:
    """No one-size-fits-all scheme (Figure 1)."""

    def test_on_touch_wins_private_heavy_apps(self, runner):
        for app in ("fir", "sc"):
            assert runner.speedup(app, "access_counter", "on_touch") < 0.95
            assert runner.speedup(app, "duplication", "on_touch") <= 1.05

    def test_duplication_wins_read_shared_apps(self, runner):
        for app in ("bfs", "gemm"):
            dup = runner.speedup(app, "duplication", "on_touch")
            ac = runner.speedup(app, "access_counter", "on_touch")
            assert dup > 1.2
            assert dup > ac

    def test_access_counter_wins_bitonic_sort(self, runner):
        bs_ac = runner.speedup("bs", "access_counter", "on_touch")
        bs_dup = runner.speedup("bs", "duplication", "on_touch")
        assert bs_ac > 1.5
        assert bs_ac > bs_dup

    def test_every_scheme_loses_somewhere(self, runner):
        for policy in ("on_touch", "access_counter", "duplication"):
            wins = 0
            for app in PAPER_APPS:
                others = [
                    runner.speedup(app, other, "on_touch")
                    for other in ("on_touch", "access_counter", "duplication")
                    if other != policy
                ]
                if runner.speedup(app, policy, "on_touch") >= max(others):
                    wins += 1
            assert wins < len(PAPER_APPS)

    def test_ideal_dominates_everything(self, runner):
        for app in PAPER_APPS:
            ideal = runner.speedup(app, "ideal", "on_touch")
            for policy in ("access_counter", "duplication", "grit"):
                assert ideal >= runner.speedup(app, policy, "on_touch")


class TestFigure17Shape:
    """GRIT's headline result."""

    def test_grit_beats_every_uniform_scheme_on_average(self, runner):
        grit = geo(runner, "grit")
        assert grit > geo(runner, "access_counter")
        assert grit > geo(runner, "duplication")
        assert grit > 1.3  # paper: +60% over on-touch

    def test_grit_tracks_best_uniform_scheme_per_app(self, runner):
        for app in PAPER_APPS:
            best = max(
                runner.speedup(app, policy, "on_touch")
                for policy in ("on_touch", "access_counter", "duplication")
            )
            grit = runner.speedup(app, "grit", "on_touch")
            # Within 15% of the per-app best uniform scheme (paper: -2%
            # worst case on BFS).
            assert grit > best * 0.85, f"{app}: grit {grit} vs best {best}"

    def test_grit_wins_outright_on_stencil(self, runner):
        best_uniform = max(
            runner.speedup("st", policy, "on_touch")
            for policy in ("on_touch", "access_counter", "duplication")
        )
        assert runner.speedup("st", "grit", "on_touch") > best_uniform


class TestFigure18Shape:
    def test_grit_reduces_faults_vs_on_touch_and_duplication(self, runner):
        ratios_ot = []
        ratios_dup = []
        for app in PAPER_APPS:
            grit = runner.run(runner.key(app, "grit")).counters.total_faults
            ot = runner.run(runner.key(app, "on_touch")).counters.total_faults
            dup = runner.run(
                runner.key(app, "duplication")
            ).counters.total_faults
            ratios_ot.append(grit / max(1, ot))
            ratios_dup.append(grit / max(1, dup))
        assert geometric_mean(ratios_ot) < 0.85  # paper: -39%
        assert geometric_mean(ratios_dup) < 0.95  # paper: -16%


class TestFigure19Shape:
    def test_scheme_mix_matches_app_character(self, runner):
        usage = {
            app: runner.run(
                runner.key(app, "grit")
            ).counters.scheme_usage_fractions()
            for app in PAPER_APPS
        }
        # Read-shared apps converge on duplication.
        assert usage["bfs"]["D"] > 0.3
        assert usage["gemm"]["D"] > 0.3
        # Private-heavy apps keep mostly the on-touch start.
        assert usage["fir"]["OT"] > 0.5
        assert usage["sc"]["OT"] > 0.5
        # BS relies on access-counter more than any other app does.
        assert usage["bs"]["AC"] == max(u["AC"] for u in usage.values())


class TestComparatorShape:
    def test_grit_beats_griffin_dpc(self, runner):
        assert geo(runner, "grit", "griffin_dpc") > 1.0  # paper +27%

    def test_acud_is_orthogonal_to_grit(self, runner):
        assert geo(runner, "grit_acud", "grit") > 1.0  # paper +9%

    def test_grit_beats_gps_on_average(self, runner):
        assert geo(runner, "grit", "gps") > 1.0  # paper +15%

    def test_gps_suffers_oversubscription(self, runner):
        ratios = []
        for app in PAPER_APPS:
            gps = runner.run(runner.key(app, "gps")).counters.evictions
            grit = runner.run(runner.key(app, "grit")).counters.evictions
            ratios.append(gps / max(1, grit))
        assert geometric_mean(ratios) > 1.0  # paper: +34% eviction rate

    def test_grit_crushes_first_touch_on_write_shared_apps(self, runner):
        assert runner.speedup("bs", "grit", "first_touch") > 1.5
        assert runner.speedup("st", "grit", "first_touch") > 1.0

    def test_first_touch_fine_on_private_apps(self, runner):
        # Paper: GRIT's gains over first-touch are marginal on FIR/SC.
        for app in ("fir", "sc"):
            assert 0.85 < runner.speedup(app, "grit", "first_touch") < 1.2


class TestSensitivityShape:
    def test_threshold_4_is_at_least_as_good_as_16(self, runner):
        t4 = geo(runner, "grit", fault_threshold=4)
        t16 = geo(runner, "grit", fault_threshold=16)
        assert t4 > t16  # paper: +60% vs +48%

    def test_ablation_ordering(self, runner):
        full = geo(runner, "grit")
        pa_only = geo(
            runner,
            "grit",
            use_pa_cache=False,
            use_neighbor_prediction=False,
        )
        assert full > pa_only  # paper: +60% vs +31%

    def test_grit_helps_across_gpu_counts(self, runner):
        for gpus in (2, 8):
            assert geo(runner, "grit", num_gpus=gpus) > 1.2

    def test_dnn_workloads_benefit(self, runner):
        for model in ("vgg16", "resnet18"):
            assert runner.speedup(model, "grit", "on_touch") > 1.05

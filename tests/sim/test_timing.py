"""The contended-resource timing kernel (repro.sim.timing)."""

from __future__ import annotations

import pytest

from repro.config import LatencyModel, SystemConfig
from repro.constants import HOST_NODE
from repro.errors import ConfigError
from repro.interconnect.topology import Topology
from repro.memsys.dram import DramChannel
from repro.policies import make_policy
from repro.sim.engine import simulate
from repro.sim.timing import (
    CACHE_LINE_BYTES,
    CONTENTION_ENV_VAR,
    AccessCosts,
    TimingKernel,
    contention_mode,
)
from repro.workloads import make_workload


def build_kernel(mode: str, num_gpus: int = 4):
    config = SystemConfig(num_gpus=num_gpus, contention=mode)
    topology = Topology(num_gpus, config.latency)
    return TimingKernel(config, topology), topology


class TestContentionMode:
    def test_config_default_is_none(self):
        assert contention_mode(SystemConfig()) == "none"

    def test_config_queued(self):
        config = SystemConfig(contention="queued")
        assert contention_mode(config) == "queued"

    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            SystemConfig(contention="chaotic")

    def test_env_overrides_config(self, monkeypatch):
        monkeypatch.setenv(CONTENTION_ENV_VAR, "queued")
        assert contention_mode(SystemConfig()) == "queued"
        monkeypatch.setenv(CONTENTION_ENV_VAR, "none")
        config = SystemConfig(contention="queued")
        assert contention_mode(config) == "none"

    def test_env_shorthand_one(self, monkeypatch):
        monkeypatch.setenv(CONTENTION_ENV_VAR, "1")
        assert contention_mode(SystemConfig()) == "queued"

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(CONTENTION_ENV_VAR, "yes")
        with pytest.raises(ConfigError):
            contention_mode(SystemConfig())


class TestDramChannel:
    def test_idle_reserve_is_free(self):
        channel = DramChannel("test", service_cycles=25)
        assert channel.reserve(100) == 0
        assert channel.busy_until == 125

    def test_busy_reserve_waits(self):
        channel = DramChannel("test", service_cycles=25)
        channel.reserve(0)
        assert channel.reserve(10) == 15
        assert channel.wait_cycles == 15
        assert channel.peak_occupancy == 15
        assert channel.accesses == 2

    def test_reset_stats(self):
        channel = DramChannel("test", service_cycles=25)
        channel.reserve(0)
        channel.reserve(0)
        channel.reset_stats()
        assert channel.accesses == 0
        assert channel.wait_cycles == 0
        assert channel.busy_until == 0

    def test_rejects_nonpositive_service(self):
        with pytest.raises(ValueError):
            DramChannel("bad", service_cycles=0)


class TestFlatModeIdentity:
    """``contention="none"`` reproduces the classic flat charges."""

    def test_transfer_matches_topology_cost(self):
        kernel, topology = build_kernel("none")
        flat = topology.link_between(0, 1).transfer_cost(4096)
        assert kernel.transfer(0, 1, 4096, now=12345) == flat
        # ``now`` is ignored: same price at any timestamp.
        assert kernel.transfer(0, 1, 4096, now=0) == flat

    def test_transfer_still_accounts_traffic(self):
        kernel, topology = build_kernel("none")
        kernel.transfer(0, 1, 4096, now=0)
        assert topology.link_between(0, 1).bytes_transferred == 4096

    def test_accesses_match_cost_table(self):
        kernel, _ = build_kernel("none")
        costs = AccessCosts.from_latency(LatencyModel())
        assert kernel.local_access(0, now=0) == costs.local_access
        cycles, penalty = kernel.remote_access(0, 1, False, now=0)
        assert (cycles, penalty) == (
            costs.remote_access[False],
            costs.remote_penalty[False],
        )
        cycles, penalty = kernel.host_access(0, True, now=0)
        assert (cycles, penalty) == (
            costs.host_access[True],
            costs.host_penalty[True],
        )

    def test_host_service_matches_classic_formula(self):
        kernel, topology = build_kernel("none")
        latency = LatencyModel()
        expected = topology.link_between(
            0, HOST_NODE
        ).message_cost() + int(latency.host_fault_service * 0.5)
        assert kernel.host_service(0, now=0, scale=0.5) == expected

    def test_fixed_charges(self):
        kernel, _ = build_kernel("none")
        latency = LatencyModel()
        assert kernel.pipeline_flush(1.0) == latency.pipeline_flush
        assert kernel.invalidation(3, 1.0) == (
            3 * latency.invalidation_per_gpu
        )
        # Single-hop fabric: each subscriber costs the flat constant.
        assert kernel.gps_broadcast(0, [1, 2, 3]) == (
            3 * latency.gps_store_broadcast
        )
        assert kernel.collapse_invalidation(0, 1, 1.0) == (
            kernel.invalidation(1, 1.0)
        )

    def test_invalidation_per_unit_matches_batched(self):
        # collapse charges per loser; migrate charges the batch — the
        # two forms must agree for any flush scale.
        kernel, _ = build_kernel("none")
        for scale in (1.0, 0.5, 0.3):
            batched = kernel.invalidation(3, scale)
            summed = sum(kernel.invalidation(1, scale) for _ in range(3))
            assert batched == summed

    def test_no_resource_state_mutates(self):
        kernel, topology = build_kernel("none")
        kernel.transfer(0, 1, 4096, now=0)
        kernel.remote_access(0, 1, False, now=0)
        kernel.host_access(0, False, now=0)
        assert topology.total_wait_cycles() == 0
        assert all(link.busy_until == 0 for link in topology.links())
        assert kernel.dram_wait_cycles() == 0


class TestQueuedMode:
    def test_transfer_queues_behind_earlier_transfer(self):
        kernel, topology = build_kernel("queued")
        flat = kernel.transfer_cost(0, 1, 4096)
        first = kernel.transfer(0, 1, 4096, now=0)
        second = kernel.transfer(0, 1, 4096, now=0)
        assert first == flat
        assert second > flat
        assert topology.link_between(0, 1).wait_cycles > 0

    def test_host_transfers_share_the_uplink(self):
        kernel, topology = build_kernel("queued")
        # Different GPUs, different PCIe links — but the same root
        # port, so the second transfer queues on the shared uplink.
        flat = kernel.transfer_cost(HOST_NODE, 0, 4096)
        assert kernel.transfer(HOST_NODE, 0, 4096, now=0) == flat
        assert kernel.transfer(HOST_NODE, 1, 4096, now=0) > flat
        assert topology.host_uplink.wait_cycles > 0

    def test_remote_access_queues_on_owner_channel(self):
        kernel, _ = build_kernel("queued")
        first, _ = kernel.remote_access(0, 1, False, now=0)
        second, _ = kernel.remote_access(2, 1, False, now=0)
        # Two GPUs hitting GPU 1's DRAM at the same instant: the
        # second pays the first's channel service time.
        assert second > first
        assert kernel.channels[1].wait_cycles > 0

    def test_access_reservations_do_not_inflate_traffic(self):
        kernel, topology = build_kernel("queued")
        kernel.remote_access(0, 1, False, now=0)
        link = topology.link_between(0, 1)
        assert link.bytes_transferred == 0
        assert link.messages == 0
        assert link.busy_until > 0

    def test_cache_line_occupancy_is_modest(self):
        kernel, topology = build_kernel("queued")
        kernel.remote_access(0, 1, False, now=0)
        link = topology.link_between(0, 1)
        assert link.busy_until <= link.serialization_cycles(
            CACHE_LINE_BYTES
        )

    def test_dram_stats_rollups(self):
        kernel, _ = build_kernel("queued")
        kernel.local_access(0, now=0)
        kernel.local_access(0, now=0)
        assert kernel.dram_accesses() == 2
        assert kernel.dram_wait_cycles() > 0
        assert kernel.dram_peak_occupancy() > 0
        assert len(kernel.dram_channels()) == 5  # 4 GPUs + host


class TestEndToEndContention:
    """Acceptance: queued mode changes timing, none mode does not."""

    def run(self, mode: str):
        config = SystemConfig(num_gpus=4, contention=mode)
        trace = make_workload("fir", num_gpus=4, scale=0.05)
        return simulate(config, trace, make_policy("grit"))

    def test_none_and_queued_agree_on_behaviour(self):
        flat = self.run("none")
        queued = self.run("queued")
        # Contention reprices time; it must not change what happened.
        assert (
            flat.counters.migrations == queued.counters.migrations
        )
        assert flat.counters.accesses == queued.counters.accesses

    def test_queued_reports_nonzero_link_waits(self):
        result = self.run("queued")
        assert result.details["contention"] == "queued"
        assert result.details["link_wait_cycles"] > 0
        assert result.total_cycles > self.run("none").total_cycles

    def test_none_reports_zero_waits(self):
        result = self.run("none")
        assert result.details["contention"] == "none"
        assert result.details["link_wait_cycles"] == 0
        assert result.details["dram_wait_cycles"] == 0


class TestContentionScaleMatrix:
    """None-vs-queued invariants across scale-out fabric shapes.

    Unlike the 4-GPU all-to-all acceptance above, multi-hop fabrics
    change per-GPU pacing enough that queued mode can legitimately
    steer policies to different migration decisions — so the sweep
    asserts the invariants that must hold at every shape (accesses
    conserved, flat waits zero, queued waits positive, determinism)
    rather than full behavioural equality.
    """

    SHAPES = [
        (4, "all-to-all"),
        (4, "ring"),
        (8, "nvswitch:4"),
        (8, "ring"),
        (8, "multi-node:2"),
        (16, "nvswitch:4"),
        (16, "multi-node:4"),
    ]

    def run(self, mode: str, num_gpus: int, topology: str):
        config = SystemConfig(
            num_gpus=num_gpus, topology=topology, contention=mode
        )
        trace = make_workload("fir", num_gpus=num_gpus, scale=0.05)
        return simulate(config, trace, make_policy("grit"))

    @pytest.mark.parametrize("num_gpus,topology", SHAPES)
    def test_contention_reprices_without_losing_accesses(
        self, num_gpus, topology
    ):
        flat = self.run("none", num_gpus, topology)
        queued = self.run("queued", num_gpus, topology)
        # Every access is still replayed exactly once.
        assert flat.counters.accesses == queued.counters.accesses
        assert flat.details["link_wait_cycles"] == 0
        assert flat.details["switch_wait_cycles"] == 0
        assert flat.details["dram_wait_cycles"] == 0
        assert queued.details["link_wait_cycles"] > 0
        assert queued.total_cycles > flat.total_cycles

    @pytest.mark.parametrize(
        "num_gpus,topology", [(8, "nvswitch:4"), (16, "nvswitch:8")]
    )
    def test_switched_fabrics_report_port_waits(
        self, num_gpus, topology
    ):
        queued = self.run("queued", num_gpus, topology)
        assert queued.details["switch_wait_cycles"] > 0
        # Port/trunk waits are part of, not extra to, link waits.
        assert (
            queued.details["link_wait_cycles"]
            >= queued.details["switch_wait_cycles"]
        )

    def test_queued_scale_out_runs_are_deterministic(self):
        first = self.run("queued", 8, "nvswitch:4")
        second = self.run("queued", 8, "nvswitch:4")
        assert first.total_cycles == second.total_cycles
        assert first.counters.as_dict() == second.counters.as_dict()
        assert first.details == second.details

"""Staged-pipeline equivalence and batched-servicing behavior.

The pipeline refactor must be invisible at ``fault_batch_size == 1``:
``tests/data/pipeline_golden.json`` holds results captured from the
pre-pipeline simulator (32 workload x policy runs), and the refactored
engine must reproduce every captured field bit-for-bit.  Batched runs
have no golden — batching deliberately changes timing — so they are
checked for determinism and for the batching model's invariants.
"""

import json
import pathlib

import pytest

from repro.config import SystemConfig
from repro.policies import make_policy
from repro.sim.engine import simulate
from repro.workloads.registry import make_workload

GOLDEN_PATH = (
    pathlib.Path(__file__).parent.parent / "data" / "pipeline_golden.json"
)
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: (workload, policy) pairs captured in the golden file.
GOLDEN_KEYS = sorted(GOLDEN)

#: Scale-out twin: the same 32 runs captured at 8 GPUs on the
#: ``nvswitch`` topology, locking routed multi-hop timing the same way
#: the 4-GPU all-to-all path is locked.
GOLDEN_8GPU_PATH = (
    pathlib.Path(__file__).parent.parent
    / "data"
    / "pipeline_golden_8gpu.json"
)
GOLDEN_8GPU = json.loads(GOLDEN_8GPU_PATH.read_text())
GOLDEN_8GPU_KEYS = sorted(GOLDEN_8GPU)


def _run(
    workload: str, policy: str, num_gpus: int = 4, **config_changes
) -> dict:
    """One golden-config run, flattened the way the goldens were."""
    config = SystemConfig(num_gpus=num_gpus, **config_changes)
    trace = make_workload(workload, num_gpus=num_gpus, scale=0.05)
    result = simulate(config, trace, make_policy(policy))
    return {
        "total_cycles": result.total_cycles,
        "per_gpu_cycles": result.per_gpu_cycles,
        "counters": result.counters.as_dict(),
        "breakdown": result.breakdown.as_dict(),
        "details": result.details,
    }


def _assert_matches_golden(got: dict, want: dict, key: str) -> None:
    """Compare a run against a capture, on the capture's own keys."""
    for section, expected in want.items():
        actual = got[section]
        if isinstance(expected, dict):
            # Goldens predate some counters (the batching counters on
            # the 4-GPU capture, the fastpath diagnostics on the 8-GPU
            # one); comparing on the golden's own keys keeps captures
            # valid as new always-zero-or-diagnostic fields appear.
            for field, value in expected.items():
                assert actual[field] == value, (
                    f"{key}: {section}.{field}"
                )
        else:
            assert actual == expected, f"{key}: {section}"


class TestInlineEquivalence:
    """batch_size 1 reproduces the pre-pipeline simulator exactly."""

    @pytest.mark.parametrize("key", GOLDEN_KEYS)
    def test_bit_identical_to_pre_pipeline_golden(self, key):
        workload, policy = key.split("/")
        got = _run(workload, policy)
        _assert_matches_golden(got, GOLDEN[key], key)

    def test_inline_runs_form_no_batches(self):
        got = _run("bfs", "grit")
        assert got["counters"]["fault_batches"] == 0
        assert got["counters"]["coalesced_faults"] == 0


class TestScaleOutGolden:
    """8-GPU nvswitch runs reproduce their committed capture."""

    @pytest.mark.parametrize("key", GOLDEN_8GPU_KEYS)
    def test_bit_identical_to_8gpu_golden(self, key):
        workload, policy = key.split("/")
        got = _run(workload, policy, num_gpus=8, topology="nvswitch")
        _assert_matches_golden(got, GOLDEN_8GPU[key], key)

    def test_golden_covers_full_matrix(self):
        # Same 8 workloads x 4 policies as the 4-GPU capture.
        assert GOLDEN_8GPU_KEYS == GOLDEN_KEYS

    def test_golden_records_routed_topology(self):
        for key in GOLDEN_8GPU_KEYS:
            capture = GOLDEN_8GPU[key]
            assert capture["details"]["topology"] == "nvswitch:4", key
            assert len(capture["per_gpu_cycles"]) == 8, key


class TestBatchedServicing:
    def test_batched_runs_are_deterministic(self):
        first = _run("sc", "grit", fault_batch_size=16)
        second = _run("sc", "grit", fault_batch_size=16)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    @pytest.mark.parametrize(
        "policy", ["on_touch", "access_counter", "duplication", "grit"]
    )
    def test_batching_preserves_access_counts(self, policy):
        inline = _run("bfs", policy)
        batched = _run("bfs", policy, fault_batch_size=16)
        # Every access is still replayed exactly once.
        for field in ("accesses", "reads", "writes"):
            assert (
                batched["counters"][field] == inline["counters"][field]
            )
        assert batched["counters"]["fault_batches"] >= 1

    def test_batching_amortizes_host_service(self):
        inline = _run("bfs", "on_touch")
        batched = _run("bfs", "on_touch", fault_batch_size=32)
        # One host round trip per batch instead of per fault.
        assert batched["total_cycles"] < inline["total_cycles"]
        assert (
            batched["counters"]["fault_batches"]
            < inline["counters"]["local_page_faults"]
        )

    def test_coalescing_drops_duplicate_faults(self):
        batched = _run("sc", "grit", fault_batch_size=64)
        counters = batched["counters"]
        # Parallel streams re-fault hot pages within a batch window, so
        # a 64-deep buffer must observe duplicates — and a coalesced
        # deposit never reaches the serviced-fault counter.
        assert counters["fault_batches"] > 0
        assert counters["coalesced_faults"] > 0

    def test_sanitizer_covers_batched_path(self):
        # The machine-state sanitizer sweeps after every batch drain;
        # a consistent run must complete without tripping it.
        got = _run(
            "fir", "duplication", fault_batch_size=8, sanitize=True
        )
        assert got["counters"]["fault_batches"] >= 1

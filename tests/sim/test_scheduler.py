"""TB scheduler helpers: block partition and fill order."""

import pytest

from repro.errors import ConfigError
from repro.sim.scheduler import partition_blocks, round_robin_fill


class TestPartitionBlocks:
    def test_even_split(self):
        chunks = partition_blocks(8, 4)
        assert [list(chunk) for chunk in chunks] == [
            [0, 1],
            [2, 3],
            [4, 5],
            [6, 7],
        ]

    def test_remainder_goes_to_early_gpus(self):
        chunks = partition_blocks(10, 4)
        assert [len(chunk) for chunk in chunks] == [3, 3, 2, 2]

    def test_chunks_are_contiguous_and_cover(self):
        chunks = partition_blocks(17, 3)
        flattened = [i for chunk in chunks for i in chunk]
        assert flattened == list(range(17))

    def test_more_gpus_than_items(self):
        chunks = partition_blocks(2, 4)
        assert [len(chunk) for chunk in chunks] == [1, 1, 0, 0]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigError):
            partition_blocks(4, 0)
        with pytest.raises(ConfigError):
            partition_blocks(-1, 2)


class TestRoundRobinFill:
    def test_fills_one_gpu_before_spilling(self):
        assignment = round_robin_fill(6, 2, blocks_per_gpu=3)
        assert assignment == [0, 0, 0, 1, 1, 1]

    def test_wraps_after_all_full(self):
        assignment = round_robin_fill(5, 2, blocks_per_gpu=2)
        assert assignment == [0, 0, 1, 1, 0]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigError):
            round_robin_fill(4, 2, blocks_per_gpu=0)
        with pytest.raises(ConfigError):
            round_robin_fill(4, 0, blocks_per_gpu=1)

"""SimulationResult helpers: speedups, fault ratios, summaries."""

import pytest

from repro.sim.result import SimulationResult
from repro.stats.counters import EventCounters
from repro.stats.latency import LatencyBreakdown


def make_result(cycles: int, faults: int = 0) -> SimulationResult:
    counters = EventCounters()
    counters.local_page_faults = faults
    return SimulationResult(
        workload="test",
        policy="test",
        total_cycles=cycles,
        per_gpu_cycles=[cycles],
        counters=counters,
        breakdown=LatencyBreakdown(),
        num_gpus=1,
        page_size=4096,
    )


class TestSpeedup:
    def test_speedup_is_baseline_over_self(self):
        base = make_result(1000)
        fast = make_result(500)
        assert fast.speedup_over(base) == 2.0
        assert base.speedup_over(fast) == 0.5

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            make_result(0).speedup_over(make_result(10))


class TestFaultRatio:
    def test_ratio(self):
        assert make_result(1, faults=50).fault_ratio_vs(
            make_result(1, faults=100)
        ) == 0.5

    def test_zero_baseline_faults(self):
        assert make_result(1, faults=0).fault_ratio_vs(make_result(1)) == 0.0
        assert make_result(1, faults=5).fault_ratio_vs(
            make_result(1, faults=0)
        ) == float("inf")


class TestSummary:
    def test_summary_is_flat_and_complete(self):
        summary = make_result(123, faults=4).summary()
        assert summary["total_cycles"] == 123
        assert summary["local_page_faults"] == 4
        assert summary["latency_local"] == 0
        assert summary["workload"] == "test"

"""The steady-state fast path and the hot-loop scheduling fixes.

Three contracts live here:

* **interval realignment** — a clock jump past several policy
  boundaries fires ``on_interval`` once and the next boundary is the
  first one after ``now`` (the old ``next_interval += interval``
  stepped one boundary per loop iteration, so a jump produced a burst
  of catch-up ticks inside the same interval window);
* **heap scheduling** — the ``(clock, gpu_id)`` heap must preserve the
  old min-scan's order exactly: lowest clock first, ties broken by
  lowest GPU id, deterministically;
* **fast-path equivalence** — simulated results are bit-for-bit
  identical with the fast path on or off (only the wall-clock-domain
  ``fastpath_*`` diagnostics differ), and on a steady-heavy workload
  the fast path is measurably faster.
"""

import json
import random
import time

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.interconnect.routing import TopologySpec
from repro.policies import make_policy
from repro.policies.on_touch import OnTouchPolicy
from repro.sim.engine import Engine, simulate
from repro.sim.fastpath import FAST_PATH_ENV_VAR, FastPath
from repro.stats.events import EventLog
from repro.stats.timeline import IntervalTimeline
from repro.workloads.base import WorkloadTrace
from repro.workloads.registry import make_workload


class TickRecordingPolicy(OnTouchPolicy):
    """On-touch with a short interval hook that records its ticks."""

    def __init__(self, interval_cycles: int) -> None:
        super().__init__()
        self.interval_cycles = interval_cycles
        self.ticks = []

    def on_interval(self, now: int) -> None:
        self.ticks.append(now)


class TestIntervalRealignment:
    """Boundary catch-up: skipped intervals coalesce into one tick."""

    INTERVAL = 1_000

    def _ticks(self):
        policy = TickRecordingPolicy(self.INTERVAL)
        trace = make_workload("bfs", num_gpus=2, scale=0.05)
        simulate(SystemConfig(num_gpus=2), trace, policy)
        return policy.ticks

    def test_each_tick_lands_in_a_later_window(self):
        # The regression: with `next_interval += interval`, a fault
        # that jumps the clock past k boundaries leaves next_interval
        # k intervals behind `now`, so the k following accesses each
        # fire a catch-up tick inside the *same* interval window.
        # Realignment guarantees consecutive ticks occupy strictly
        # increasing windows.
        ticks = self._ticks()
        assert len(ticks) >= 2, "workload too small to cross intervals"
        windows = [now // self.INTERVAL for now in ticks]
        assert windows == sorted(set(windows)), (
            "policy interval ticks piled up inside one interval "
            "window — next_interval drifted instead of realigning"
        )

    def test_clock_jumps_actually_skip_windows(self):
        # Sanity that the scenario exercises coalescing at all: fault
        # service must jump the clock past more than one boundary
        # somewhere, or the previous test proves nothing.
        windows = [now // self.INTERVAL for now in self._ticks()]
        gaps = [b - a for a, b in zip(windows, windows[1:])]
        assert any(gap > 1 for gap in gaps)


class _VisitRecorder:
    """Timeline stand-in capturing the engine's (now, gpu) visit order."""

    def __init__(self) -> None:
        self.visits = []

    def record(self, now, gpu_id, base_vpn, is_write) -> None:
        self.visits.append((now, gpu_id))


class TestHeapScheduling:
    """The heap replays the min-scan's lowest-clock / lowest-id order."""

    def test_visit_order_is_lowest_clock_then_lowest_id(self):
        recorder = _VisitRecorder()
        trace = make_workload("st", num_gpus=4, scale=0.05)
        simulate(
            SystemConfig(num_gpus=4, fast_path=False),
            trace,
            make_policy("grit"),
            timeline=recorder,
        )
        visits = recorder.visits
        assert len(visits) == trace.total_accesses
        # All four GPUs start at clock 0; ties break by id.
        assert [gpu for _, gpu in visits[:4]] == [0, 1, 2, 3]
        for (t1, g1), (t2, g2) in zip(visits, visits[1:]):
            # The engine always advances the furthest-behind GPU and
            # clocks only grow, so visit times are non-decreasing; a
            # GPU's clock strictly grows per access, so equal-time
            # runs must walk GPU ids strictly upward.
            assert t2 >= t1
            if t2 == t1:
                assert g2 > g1

    def test_scheduling_is_deterministic(self):
        def run():
            trace = make_workload("sc", num_gpus=4, scale=0.05)
            result = simulate(
                SystemConfig(num_gpus=4, fault_batch_size=8),
                trace,
                make_policy("grit"),
            )
            return {
                "total_cycles": result.total_cycles,
                "per_gpu_cycles": result.per_gpu_cycles,
                "counters": result.counters.as_dict(),
            }

        first, second = run(), run()
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )


def _random_trace(seed: int, num_gpus: int) -> WorkloadTrace:
    """A seeded mix of steady sweeps, hot-page bursts, and jumps."""
    rng = random.Random(seed)
    footprint = 160
    streams = []
    for gpu in range(num_gpus):
        vpns, writes = [], []
        page = rng.randrange(footprint)
        for _ in range(rng.randint(300, 500)):
            kind = rng.random()
            if kind < 0.6:
                # Sequential sweep: the steady-state shape.
                for _ in range(rng.randint(4, 24)):
                    vpns.append(page)
                    writes.append(rng.random() < 0.3)
                page = (page + 1) % footprint
            elif kind < 0.9:
                # Hot-page burst on a shared page (cross-GPU traffic).
                hot = rng.randrange(8)
                for _ in range(rng.randint(1, 6)):
                    vpns.append(hot)
                    writes.append(rng.random() < 0.5)
            else:
                # Random jump.
                page = rng.randrange(footprint)
        streams.append(
            (
                np.array(vpns, dtype=np.int64),
                np.array(writes, dtype=bool),
            )
        )
    return WorkloadTrace(
        name=f"random-{seed}",
        num_gpus=num_gpus,
        footprint_pages=footprint,
        streams=streams,
    )


def _flatten(result, timeline, event_log):
    counters = {
        key: value
        for key, value in result.counters.as_dict().items()
        # fastpath_runs / fastpath_accesses are wall-clock-domain
        # diagnostics of how the result was *computed*, not simulated
        # behaviour; everything else must match exactly.
        if not key.startswith("fastpath")
    }
    return {
        "total_cycles": result.total_cycles,
        "per_gpu_cycles": result.per_gpu_cycles,
        "counters": counters,
        "breakdown": result.breakdown.as_dict(),
        "details": result.details,
        "timeline": timeline._cells,
        "events": list(event_log._events),
    }


class TestFastPathEquivalence:
    """Property-style: fast on == fast off, bit for bit."""

    @pytest.mark.parametrize("seed", [11, 12, 13])
    @pytest.mark.parametrize("num_gpus", [2, 4])
    @pytest.mark.parametrize("policy", ["on_touch", "grit"])
    @pytest.mark.parametrize("batch", [1, 8])
    def test_random_traces_match_bit_for_bit(
        self, seed, num_gpus, policy, batch
    ):
        outputs = []
        for fast in (True, False):
            trace = _random_trace(seed, num_gpus)
            timeline = IntervalTimeline(
                num_gpus=num_gpus, interval_length=10_000
            )
            event_log = EventLog()
            result = simulate(
                SystemConfig(
                    num_gpus=num_gpus,
                    fault_batch_size=batch,
                    fast_path=fast,
                ),
                trace,
                make_policy(policy),
                timeline=timeline,
                event_log=event_log,
            )
            if fast:
                assert result.counters.fastpath_accesses > 0, (
                    "trace generator produced no steady runs — the "
                    "equivalence check is vacuous"
                )
            outputs.append(_flatten(result, timeline, event_log))
        assert outputs[0] == outputs[1]

    def test_env_var_overrides_config(self, monkeypatch):
        trace = _random_trace(7, 2)
        monkeypatch.setenv(FAST_PATH_ENV_VAR, "0")
        off = simulate(
            SystemConfig(num_gpus=2, fast_path=True),
            _random_trace(7, 2),
            make_policy("on_touch"),
        )
        assert off.counters.fastpath_runs == 0
        monkeypatch.setenv(FAST_PATH_ENV_VAR, "1")
        on = simulate(
            SystemConfig(num_gpus=2, fast_path=False),
            trace,
            make_policy("on_touch"),
        )
        assert on.counters.fastpath_runs > 0
        monkeypatch.setenv(FAST_PATH_ENV_VAR, "maybe")
        with pytest.raises(ConfigError):
            simulate(
                SystemConfig(num_gpus=2),
                _random_trace(7, 2),
                make_policy("on_touch"),
            )

    def test_queued_contention_disables_the_fast_path(self):
        trace = _random_trace(3, 2)
        engine = Engine(
            SystemConfig(num_gpus=2, contention="queued"),
            trace,
            make_policy("on_touch"),
        )
        assert engine.fastpath is None
        with pytest.raises(ConfigError):
            FastPath(engine)
        result = engine.run()
        assert result.counters.fastpath_runs == 0


#: (num_gpus, topology) shapes exercised by the scale-out matrix —
#: shared with the contention sweep in ``test_timing.py``.
SCALE_MATRIX = [
    (4, "all-to-all"),
    (4, "ring"),
    (8, "nvswitch:4"),
    (8, "ring"),
    (8, "multi-node:2"),
    (16, "nvswitch:4"),
    (16, "multi-node:4"),
]


class TestFastPathScaleMatrix:
    """Fast on == fast off holds on every scale-out fabric shape."""

    @pytest.mark.parametrize("num_gpus,topology", SCALE_MATRIX)
    def test_scale_out_traces_match_bit_for_bit(
        self, num_gpus, topology
    ):
        outputs = []
        for fast in (True, False):
            trace = _random_trace(21, num_gpus)
            timeline = IntervalTimeline(
                num_gpus=num_gpus, interval_length=10_000
            )
            event_log = EventLog()
            result = simulate(
                SystemConfig(
                    num_gpus=num_gpus,
                    topology=topology,
                    fast_path=fast,
                ),
                trace,
                make_policy("grit"),
                timeline=timeline,
                event_log=event_log,
            )
            if fast:
                assert result.counters.fastpath_accesses > 0, (
                    "trace generator produced no steady runs — the "
                    "equivalence check is vacuous"
                )
            outputs.append(_flatten(result, timeline, event_log))
        assert outputs[0] == outputs[1]
        assert outputs[0]["details"]["topology"] == TopologySpec.parse(
            topology, num_gpus
        ).describe()


class TestFastPathSpeedup:
    """The fast path must actually be fast where it applies."""

    def test_steady_state_replay_is_at_least_twice_as_fast(self):
        # 64 KiB pages fold fir's sweeps into long single-page runs,
        # which is the regime the fast path exists for; measured
        # headroom here is ~3.5x, so the 2x gate has a wide margin
        # against machine noise.  min-of-N rejects scheduler jitter.
        trace = make_workload("fir", num_gpus=4, scale=0.4)
        policy_name, repeats = "grit", 5
        timings = {}
        counters = {}
        for fast in (True, False):
            config = SystemConfig(
                num_gpus=4, page_size=65536, fast_path=fast
            )
            best = float("inf")
            for _ in range(repeats):
                engine = Engine(
                    config, trace, make_policy(policy_name)
                )
                start = time.perf_counter()
                result = engine.run()
                best = min(best, time.perf_counter() - start)
            timings[fast] = best
            counters[fast] = {
                key: value
                for key, value in result.counters.as_dict().items()
                if not key.startswith("fastpath")
            }
            counters[fast]["total_cycles"] = result.total_cycles
        assert counters[True] == counters[False]
        ratio = timings[False] / timings[True]
        assert ratio >= 2.0, (
            f"fast path replay only {ratio:.2f}x faster "
            f"({timings[False]*1e3:.1f}ms -> {timings[True]*1e3:.1f}ms)"
        )

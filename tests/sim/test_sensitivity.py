"""Latency-model sensitivity: results' *shape* survives constant changes.

DESIGN.md section 5 claims the reproduction relies only on the cost
ordering (local << remote << fault << migration/collapse), not on the
specific constants.  These tests vary the undocumented constants across
a plausible range and assert the qualitative results hold.
"""

import dataclasses

import pytest

from repro.config import SystemConfig
from repro.policies import make_policy
from repro.sim import simulate
from repro.workloads import make_workload

SCALE = 0.15


def config_with(**latency_overrides) -> SystemConfig:
    base = SystemConfig()
    return base.replace(
        latency=dataclasses.replace(base.latency, **latency_overrides)
    )


def speedup(config, workload, policy, baseline="on_touch"):
    result = simulate(
        config, make_workload(workload, scale=SCALE), make_policy(policy)
    )
    base = simulate(
        config, make_workload(workload, scale=SCALE), make_policy(baseline)
    )
    return result.speedup_over(base)


class TestFaultCostSensitivity:
    @pytest.mark.parametrize("fault_service", [2_000, 4_000, 8_000])
    def test_grit_beats_on_touch_on_stencil(self, fault_service):
        config = config_with(host_fault_service=fault_service)
        assert speedup(config, "st", "grit") > 1.0

    @pytest.mark.parametrize("fault_service", [2_000, 4_000, 8_000])
    def test_duplication_beats_on_touch_on_gemm(self, fault_service):
        config = config_with(host_fault_service=fault_service)
        assert speedup(config, "gemm", "duplication") > 1.5


class TestRemoteCostSensitivity:
    @pytest.mark.parametrize("host_remote", [1_600, 2_400, 3_600])
    def test_access_counter_loses_on_private_fir(self, host_remote):
        config = config_with(host_remote_access=host_remote)
        assert speedup(config, "fir", "access_counter") < 1.0

    @pytest.mark.parametrize("remote", [800, 1_200, 1_800])
    def test_access_counter_wins_on_bitonic_sort(self, remote):
        config = config_with(remote_dram_access=remote)
        assert speedup(config, "bs", "access_counter") > 1.5


class TestFlushCostSensitivity:
    @pytest.mark.parametrize("flush", [400, 800, 1_600])
    def test_collapse_keeps_hurting_duplication_on_bs(self, flush):
        config = config_with(pipeline_flush=flush)
        dup = speedup(config, "bs", "duplication")
        ac = speedup(config, "bs", "access_counter")
        assert ac > dup


class TestMlpSensitivity:
    @pytest.mark.parametrize("mlp", [4, 8, 16])
    def test_grit_average_advantage_survives(self, mlp):
        config = config_with(data_access_mlp=mlp)
        gains = [
            speedup(config, workload, "grit")
            for workload in ("bs", "gemm", "st")
        ]
        assert all(gain > 1.0 for gain in gains)

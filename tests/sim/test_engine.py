"""Simulation engine: translation path, fault flows, interleaving."""

import pytest

from repro.config import SystemConfig
from repro.constants import PAGE_SIZE_2M, LatencyCategory
from repro.errors import SimulationError
from repro.policies import make_policy
from repro.sim.engine import Engine, simulate
from repro.stats.timeline import IntervalTimeline
from tests.conftest import build_trace


class TestBasics:
    def test_trace_gpu_mismatch_rejected(self, two_gpu_trace):
        with pytest.raises(SimulationError):
            Engine(
                SystemConfig(num_gpus=4),
                two_gpu_trace,
                make_policy("on_touch"),
            )

    def test_all_accesses_processed(self, two_gpu_trace):
        config = SystemConfig(num_gpus=2)
        result = simulate(config, two_gpu_trace, make_policy("on_touch"))
        assert result.counters.accesses == two_gpu_trace.total_accesses
        assert result.counters.reads == 4
        assert result.counters.writes == 4

    def test_clocks_advance_monotonically(self, two_gpu_trace):
        config = SystemConfig(num_gpus=2)
        result = simulate(config, two_gpu_trace, make_policy("on_touch"))
        assert all(clock > 0 for clock in result.per_gpu_cycles)
        assert result.total_cycles == max(result.per_gpu_cycles)

    def test_empty_stream_for_one_gpu(self):
        trace = build_trace([[(0, False)], []], footprint_pages=4)
        config = SystemConfig(num_gpus=2)
        result = simulate(config, trace, make_policy("on_touch"))
        assert result.per_gpu_cycles[1] == 0
        assert result.counters.accesses == 1

    def test_deterministic_across_runs(self, two_gpu_trace):
        config = SystemConfig(num_gpus=2)
        first = simulate(config, two_gpu_trace, make_policy("grit"))
        second = simulate(config, two_gpu_trace, make_policy("grit"))
        assert first.total_cycles == second.total_cycles
        assert first.counters.as_dict() == second.counters.as_dict()


class TestTranslationPath:
    def test_cold_access_faults_once(self):
        trace = build_trace([[(0, False), (0, False), (0, False)]])
        config = SystemConfig(num_gpus=1)
        result = simulate(config, trace, make_policy("on_touch"))
        assert result.counters.local_page_faults == 1

    def test_tlb_hit_avoids_second_walk(self):
        trace = build_trace([[(0, False)] * 10])
        config = SystemConfig(num_gpus=1)
        engine = Engine(config, trace, make_policy("on_touch"))
        result = engine.run()
        assert result.counters.l2_tlb_misses == 1
        assert engine.machine.gpus[0].tlbs.l1.hits == 9

    def test_write_to_replica_raises_protection_fault(self):
        # GPU 0 reads, GPU 1 reads (replica), then GPU 1 writes.
        trace = build_trace(
            [
                [(0, False)],
                [(0, False), (0, True)],
            ],
            footprint_pages=8,
        )
        config = SystemConfig(num_gpus=2)
        result = simulate(config, trace, make_policy("duplication"))
        assert result.counters.protection_faults >= 1
        assert result.counters.write_collapses >= 1

    def test_local_walk_charged_to_local_category(self):
        trace = build_trace([[(0, False)]])
        result = simulate(
            SystemConfig(num_gpus=1), trace, make_policy("on_touch")
        )
        assert result.breakdown.cycles(LatencyCategory.LOCAL) > 0

    def test_remote_access_charged_under_access_counter(self):
        trace = build_trace([[(0, False)] * 5], footprint_pages=4)
        result = simulate(
            SystemConfig(num_gpus=1), trace, make_policy("access_counter")
        )
        assert result.counters.remote_accesses > 0
        assert result.breakdown.cycles(LatencyCategory.REMOTE_ACCESS) > 0


class TestLargePages:
    def test_2m_pages_fold_traces(self):
        # Two 4 KB pages inside one 2 MB page: one fault total.
        trace = build_trace(
            [[(0, False), (511, False)]], footprint_pages=1024
        )
        config = SystemConfig(num_gpus=1, page_size=PAGE_SIZE_2M)
        result = simulate(config, trace, make_policy("on_touch"))
        assert result.counters.local_page_faults == 1

    def test_2m_pages_split_across_boundary(self):
        trace = build_trace(
            [[(0, False), (512, False)]], footprint_pages=1024
        )
        config = SystemConfig(num_gpus=1, page_size=PAGE_SIZE_2M)
        result = simulate(config, trace, make_policy("on_touch"))
        assert result.counters.local_page_faults == 2


class TestTimelineRecording:
    def test_timeline_records_all_accesses(self, two_gpu_trace):
        timeline = IntervalTimeline(num_gpus=2, interval_length=100_000)
        config = SystemConfig(num_gpus=2)
        simulate(
            config, two_gpu_trace, make_policy("on_touch"), timeline=timeline
        )
        recorded = sum(
            sample.reads + sample.writes
            for interval in range(timeline.num_intervals)
            for vpn in timeline.pages_in_interval(interval)
            if (sample := timeline.sample(interval, vpn)) is not None
        )
        assert recorded == two_gpu_trace.total_accesses


class TestGpsWrites:
    def test_gps_write_broadcast_charged(self):
        trace = build_trace(
            [
                [(0, False), (0, True), (0, True)],
                [(0, False)],
            ],
            footprint_pages=8,
        )
        config = SystemConfig(num_gpus=2)
        result = simulate(config, trace, make_policy("gps"))
        assert result.counters.write_collapses == 0
        assert result.counters.protection_faults == 0


class TestResultDetails:
    def test_details_include_link_traffic(self, two_gpu_trace):
        config = SystemConfig(num_gpus=2)
        result = simulate(config, two_gpu_trace, make_policy("on_touch"))
        assert result.details["pcie_bytes"] > 0
        assert "policy_description" in result.details

    def test_evictions_aggregated_from_dram(self):
        # Footprint 10 pages on 1 GPU: capacity 7 frames -> evictions.
        accesses = [(vpn, False) for vpn in range(10)] * 3
        trace = build_trace([accesses], footprint_pages=10)
        config = SystemConfig(num_gpus=1)
        result = simulate(config, trace, make_policy("on_touch"))
        assert result.counters.evictions > 0

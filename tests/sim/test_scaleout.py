"""Scale-out acceptance: switched fabrics end to end.

The issue's acceptance bar: an 8-GPU ``nvswitch`` run under queued
contention must report nonzero switch-port wait cycles, surface them
through the obs catalog, and the topology spec must be selectable via
config, CLI (``--topology``, covered by the CI smoke), and the
``GRIT_TOPOLOGY`` environment override.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.obs import RunObservation
from repro.obs import catalog
from repro.interconnect.routing import (
    TOPOLOGY_ENV_VAR,
    TopologySpec,
    topology_spec,
)
from repro.policies import make_policy
from repro.sim.engine import Engine, simulate
from repro.workloads import make_workload


def _run(num_gpus: int, topology: str, observation=None):
    config = SystemConfig(
        num_gpus=num_gpus, topology=topology, contention="queued"
    )
    trace = make_workload("fir", num_gpus=num_gpus, scale=0.05)
    engine = Engine(
        config, trace, make_policy("grit"), observation=observation
    )
    return engine.run()


class TestSwitchedFabricEndToEnd:
    def test_8gpu_nvswitch_reports_switch_port_waits(self):
        result = _run(8, "nvswitch")
        assert result.details["topology"] == "nvswitch:4"
        assert result.details["contention"] == "queued"
        assert result.details["switch_wait_cycles"] > 0
        assert result.details["link_wait_cycles"] > 0

    def test_switch_metrics_flow_through_the_catalog(self):
        observation = RunObservation(sample_interval=2_000)
        _run(8, "nvswitch", observation=observation)
        registry = observation.registry
        assert registry.value(catalog.SWITCH_WAIT_CYCLES) > 0
        assert registry.value(catalog.SWITCH_MESSAGES) > 0
        assert registry.value(catalog.SWITCH_PEAK_OCCUPANCY) > 0

    def test_switchless_fabrics_report_zero_switch_metrics(self):
        observation = RunObservation(sample_interval=2_000)
        result = _run(4, "all-to-all", observation=observation)
        assert result.details["switch_wait_cycles"] == 0
        registry = observation.registry
        assert registry.value(catalog.SWITCH_WAIT_CYCLES) == 0
        assert registry.value(catalog.SWITCH_MESSAGES) == 0
        assert registry.value(catalog.SWITCH_PEAK_OCCUPANCY) == 0


class TestTopologySpecParsing:
    def test_round_trips_through_describe(self):
        for text, num_gpus in [
            ("all-to-all", 4),
            ("nvswitch:2", 8),
            ("ring", 6),
            ("multi-node:4", 16),
        ]:
            spec = TopologySpec.parse(text, num_gpus)
            assert TopologySpec.parse(
                spec.describe(), num_gpus
            ) == spec

    def test_nvswitch_group_defaults_to_quad(self):
        assert TopologySpec.parse("nvswitch", 8).group_size == 4
        # Small boxes fall back to one switch over all GPUs.
        assert TopologySpec.parse("nvswitch", 2).group_size == 2

    @pytest.mark.parametrize(
        "text,num_gpus",
        [
            ("mesh", 4),
            ("ring:3", 6),
            ("all-to-all:2", 4),
            ("nvswitch:banana", 8),
            ("nvswitch:3", 8),
            ("nvswitch:16", 8),
            ("multi-node:1", 8),
            ("multi-node:3", 8),
            ("", 4),
        ],
    )
    def test_invalid_specs_rejected(self, text, num_gpus):
        with pytest.raises(ConfigError):
            TopologySpec.parse(text, num_gpus)

    def test_config_validates_topology_at_construction(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_gpus=8, topology="nvswitch:3")


class TestTopologyEnvOverride:
    def test_env_var_wins_over_config(self, monkeypatch):
        monkeypatch.setenv(TOPOLOGY_ENV_VAR, "ring")
        config = SystemConfig(num_gpus=8, topology="nvswitch")
        assert topology_spec(config).kind == "ring"

    def test_config_used_when_env_unset(self, monkeypatch):
        monkeypatch.delenv(TOPOLOGY_ENV_VAR, raising=False)
        config = SystemConfig(num_gpus=8, topology="multi-node:2")
        assert topology_spec(config) == TopologySpec.parse(
            "multi-node:2", 8
        )

    def test_invalid_env_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(TOPOLOGY_ENV_VAR, "mesh")
        config = SystemConfig(num_gpus=8)
        with pytest.raises(ConfigError, match=TOPOLOGY_ENV_VAR):
            topology_spec(config)

    def test_env_override_reshapes_a_real_run(self, monkeypatch):
        monkeypatch.setenv(TOPOLOGY_ENV_VAR, "nvswitch:4")
        config = SystemConfig(num_gpus=8, contention="queued")
        trace = make_workload("fir", num_gpus=8, scale=0.05)
        result = simulate(config, trace, make_policy("grit"))
        assert result.details["topology"] == "nvswitch:4"
        assert result.details["switch_wait_cycles"] > 0

"""Engine corner cases beyond the main path tests."""

from repro.config import SystemConfig
from repro.policies import make_policy
from repro.policies.base import Mechanic, PlacementPolicy
from repro.sim.engine import Engine, simulate
from tests.conftest import build_trace


class TestIssueGap:
    def test_issue_gap_adds_per_access_cycles(self):
        trace = build_trace([[(0, False)] * 10], footprint_pages=4)
        slow = simulate(
            SystemConfig(num_gpus=1, issue_gap=100),
            trace,
            make_policy("on_touch"),
        )
        fast = simulate(
            SystemConfig(num_gpus=1, issue_gap=0),
            trace,
            make_policy("on_touch"),
        )
        assert slow.total_cycles - fast.total_cycles == 10 * 100


class TestIntervalHook:
    def test_hook_fires_roughly_once_per_interval(self):
        class CountingPolicy(PlacementPolicy):
            name = "counting"
            interval_cycles = 1_000

            def __init__(self):
                super().__init__()
                self.fired = []

            def mechanic_for(self, page):
                return Mechanic.ON_TOUCH

            def on_interval(self, now):
                self.fired.append(now)

        # Enough accesses to push the clock well past several intervals.
        trace = build_trace(
            [[(vpn % 8, False) for vpn in range(50)]], footprint_pages=8
        )
        policy = CountingPolicy()
        result = simulate(SystemConfig(num_gpus=1), trace, policy)
        assert policy.fired
        assert len(policy.fired) <= result.total_cycles // 1_000 + 1
        assert policy.fired == sorted(policy.fired)


class TestMinClockInterleave:
    def test_stalled_gpu_falls_behind(self):
        # GPU 0 ping-pongs a shared page with GPU 1 (constant faults);
        # GPU 1 additionally runs cheap private hits.  Both finish, and
        # the shared page ends wherever the last toucher was.
        shared = [(0, True)] * 6
        private = [(1, False)] * 30
        trace = build_trace([shared, shared + private], footprint_pages=4)
        engine = Engine(
            SystemConfig(num_gpus=2), trace, make_policy("on_touch")
        )
        result = engine.run()
        assert result.counters.accesses == 42
        # The ping-pong actually happened: the page moved repeatedly.
        assert result.counters.migrations > 2

    def test_per_gpu_clock_ordering_reflects_work(self):
        light = [(0, False)] * 2
        heavy = [(vpn, False) for vpn in range(1, 40)]
        trace = build_trace([light, heavy], footprint_pages=64)
        result = simulate(
            SystemConfig(num_gpus=2), trace, make_policy("on_touch")
        )
        assert result.per_gpu_cycles[1] > result.per_gpu_cycles[0]


class TestLargePageGritInterplay:
    def test_nap_groups_operate_on_folded_vpns(self):
        # 64 KB pages fold 16 base pages; GRIT's 8-page groups then
        # cover 8 *large* pages.  Build neighbor-coherent traffic and
        # check the run completes with consistent accounting.
        accesses = []
        for big_page in range(16):
            accesses += [(big_page * 16, True)] * 4
        trace = build_trace(
            [accesses, list(accesses)], footprint_pages=256
        )
        config = SystemConfig(num_gpus=2, page_size=16 * 4096)
        result = simulate(config, trace, make_policy("grit"))
        from repro.harness.validate import validate_result

        assert validate_result(result) == []
        assert result.counters.scheme_changes > 0


class TestWalkerSaturationThroughEngine:
    def test_walk_bursts_cost_more_than_spread_walks(self):
        # 64 distinct cold pages back to back saturate the 8 walkers.
        burst = [(vpn, False) for vpn in range(64)]
        trace = build_trace([burst], footprint_pages=64)
        engine = Engine(
            SystemConfig(num_gpus=1), trace, make_policy("on_touch")
        )
        engine.run()
        walker = engine.machine.gpus[0].walker
        assert walker.walks == 64

"""Uniform scheme policies map to fixed mechanics."""

import pytest

from repro.constants import Scheme
from repro.memsys.page import PageInfo
from repro.policies.access_counter import AccessCounterPolicy
from repro.policies.base import Mechanic
from repro.policies.duplication import DuplicationPolicy
from repro.policies.first_touch import FirstTouchPolicy
from repro.policies.gps import GpsPolicy
from repro.policies.ideal import IdealPolicy
from repro.policies.on_touch import OnTouchPolicy


@pytest.mark.parametrize(
    "policy_cls, mechanic, initial",
    [
        (OnTouchPolicy, Mechanic.ON_TOUCH, Scheme.ON_TOUCH),
        (AccessCounterPolicy, Mechanic.ACCESS_COUNTER, Scheme.ACCESS_COUNTER),
        (DuplicationPolicy, Mechanic.DUPLICATION, Scheme.DUPLICATION),
        (FirstTouchPolicy, Mechanic.PEER_REMOTE, Scheme.ACCESS_COUNTER),
        (IdealPolicy, Mechanic.IDEAL, Scheme.ON_TOUCH),
        (GpsPolicy, Mechanic.GPS, Scheme.DUPLICATION),
    ],
)
def test_mechanic_independent_of_page_state(policy_cls, mechanic, initial):
    policy = policy_cls()
    assert policy.initial_scheme() is initial
    for scheme in Scheme:
        page = PageInfo(vpn=0, scheme=scheme)
        assert policy.mechanic_for(page) is mechanic


def test_only_gps_has_gps_semantics():
    assert GpsPolicy.gps_semantics
    assert not OnTouchPolicy.gps_semantics
    assert not DuplicationPolicy.gps_semantics


def test_uniform_policies_have_no_interval_hook():
    assert OnTouchPolicy().interval_cycles is None
    assert AccessCounterPolicy().interval_cycles is None

"""The docs/extending.md custom-policy recipe must actually work."""

from repro.config import SystemConfig
from repro.constants import Scheme
from repro.policies import make_policy
from repro.policies.base import Mechanic, PlacementPolicy
from repro.sim import simulate
from repro.workloads import make_workload
from tests.conftest import build_trace


class WriteAwarePolicy(PlacementPolicy):
    """Duplicate everything until the first write, then on-touch —
    verbatim from docs/extending.md."""

    name = "write_aware"

    def initial_scheme(self):
        return Scheme.DUPLICATION

    def mechanic_for(self, page):
        if page.ever_written:
            return Mechanic.ON_TOUCH
        return Mechanic.DUPLICATION


class TestRecipePolicy:
    def test_runs_on_real_workload(self):
        trace = make_workload("gemm", scale=0.05)
        result = simulate(SystemConfig(), trace, WriteAwarePolicy())
        assert result.policy == "write_aware"
        assert result.counters.accesses == trace.total_accesses

    def test_switches_mechanic_after_first_write(self):
        # Page 0 is read by both GPUs (duplicated), then written, then
        # read again by the other GPU: the post-write re-read must
        # migrate (on-touch) rather than re-duplicate.  GPU 1's private
        # faults (pages 1-2) pad its clock so its final read of page 0
        # lands after GPU 0's write collapse.
        trace = build_trace(
            [
                [(0, False), (0, True)],
                [(0, False), (1, False), (2, False), (0, False)],
            ],
            footprint_pages=8,
        )
        config = SystemConfig(num_gpus=2)
        result = simulate(config, trace, WriteAwarePolicy())
        assert result.counters.duplications >= 1
        assert result.counters.migrations >= 1

    def test_beats_pure_duplication_on_write_heavy_trace(self):
        stream = [(0, True)] * 20
        trace = build_trace([stream, stream], footprint_pages=8)
        config = SystemConfig(num_gpus=2)
        custom = simulate(config, trace, WriteAwarePolicy())
        dup = simulate(config, trace, make_policy("duplication"))
        assert custom.counters.write_collapses <= dup.counters.write_collapses

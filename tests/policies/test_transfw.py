"""Trans-FW stacking: reduced fault-service latency."""

from repro.config import SystemConfig
from repro.policies.on_touch import OnTouchPolicy
from repro.policies.transfw import GriffinTransFwPolicy, apply_transfw
from repro.uvm.driver import UvmDriver
from repro.uvm.machine import MachineState


class TestApplyTransfw:
    def test_wraps_any_policy(self):
        policy = apply_transfw(OnTouchPolicy())
        machine = MachineState.build(SystemConfig(), 100)
        policy.bind(machine)
        assert (
            policy.fault_service_scale
            == machine.config.latency.transfw_discount
        )
        assert policy.name == "on_touch_transfw"

    def test_faults_cost_less_with_transfw(self):
        base_machine = MachineState.build(SystemConfig(), 100)
        base_driver = UvmDriver(base_machine, OnTouchPolicy())
        fw_machine = MachineState.build(SystemConfig(), 100)
        fw_driver = UvmDriver(fw_machine, apply_transfw(OnTouchPolicy()))
        assert fw_driver.handle_local_fault(0, 0, False) < (
            base_driver.handle_local_fault(0, 0, False)
        )


class TestGriffinTransFw:
    def test_combined_policy_has_both_traits(self):
        policy = GriffinTransFwPolicy()
        machine = MachineState.build(SystemConfig(), 100)
        policy.bind(machine)
        assert (
            policy.fault_service_scale
            == machine.config.latency.transfw_discount
        )
        assert policy.interval_cycles is not None
        assert policy.name == "griffin_dpc_transfw"


class TestGritTransFw:
    def test_combined_policy_has_both_traits(self):
        from repro.policies.transfw import GritTransFwPolicy

        policy = GritTransFwPolicy()
        machine = MachineState.build(SystemConfig(), 100)
        policy.bind(machine)
        assert (
            policy.fault_service_scale
            == machine.config.latency.transfw_discount
        )
        assert policy.mechanism is not None
        assert policy.name == "grit_transfw"

    def test_registered(self):
        from repro.policies import make_policy

        assert make_policy("grit_transfw").name == "grit_transfw"

"""GRIT as a policy: binding, scheme-driven mechanics, hook effects."""

import pytest

from repro.config import SystemConfig
from repro.constants import FaultKind, Scheme
from repro.policies.base import Mechanic
from repro.policies.grit_policy import GritPolicy, make_grit_variant
from repro.uvm.machine import MachineState


@pytest.fixture
def bound_grit():
    policy = GritPolicy()
    machine = MachineState.build(SystemConfig(), 100)
    policy.bind(machine)
    return policy, machine


class TestBinding:
    def test_mechanism_created_at_bind(self, bound_grit):
        policy, machine = bound_grit
        assert policy.mechanism is not None
        assert policy.mechanism.page_table is machine.central_pt

    def test_starts_with_on_touch(self):
        assert GritPolicy().initial_scheme() is Scheme.ON_TOUCH

    def test_acud_discount_applied_at_bind(self):
        policy = make_grit_variant(acud=True)
        machine = MachineState.build(SystemConfig(), 100)
        policy.bind(machine)
        assert policy.flush_scale == machine.config.latency.acud_discount
        assert policy.name == "grit_acud"


class TestMechanicSelection:
    def test_mechanic_follows_scheme_bits(self, bound_grit):
        policy, machine = bound_grit
        page = machine.central_pt.get(0)
        for scheme, mechanic in [
            (Scheme.ON_TOUCH, Mechanic.ON_TOUCH),
            (Scheme.ACCESS_COUNTER, Mechanic.ACCESS_COUNTER),
            (Scheme.DUPLICATION, Mechanic.DUPLICATION),
        ]:
            page.scheme = scheme
            assert policy.mechanic_for(page) is mechanic


class TestFaultHook:
    def test_threshold_decision_updates_counters(self, bound_grit):
        policy, machine = bound_grit
        for _ in range(4):
            policy.on_fault_observed(
                0, 5, FaultKind.LOCAL_PAGE_FAULT, is_write=False
            )
        assert machine.counters.scheme_changes == 1
        assert machine.central_pt.get(5).scheme is Scheme.DUPLICATION

    def test_leaving_duplication_requests_charged_collapse(self, bound_grit):
        policy, machine = bound_grit
        page = machine.central_pt.get(5)
        page.scheme = Scheme.DUPLICATION
        observation = None
        for _ in range(4):
            observation = policy.on_fault_observed(
                0, 5, FaultKind.PAGE_PROTECTION_FAULT, is_write=True
            )
        assert observation.collapse_charged == (5,)

    def test_switch_to_duplication_requests_no_collapse(self, bound_grit):
        policy, machine = bound_grit
        observation = None
        for _ in range(4):
            observation = policy.on_fault_observed(
                0, 5, FaultKind.LOCAL_PAGE_FAULT, is_write=False
            )
        assert observation.collapse_charged == ()

    def test_propagated_duplication_exits_are_background(self, bound_grit):
        policy, machine = bound_grit
        # Neighborhood already AC except two duplication stragglers.
        for vpn in range(5):
            machine.central_pt.get(vpn).scheme = Scheme.ACCESS_COUNTER
        machine.central_pt.get(5).scheme = Scheme.DUPLICATION
        machine.central_pt.get(6).scheme = Scheme.DUPLICATION
        observation = None
        for _ in range(4):
            observation = policy.on_fault_observed(
                0, 7, FaultKind.LOCAL_PAGE_FAULT, is_write=True
            )
        assert set(observation.collapse_background) == {5, 6}
        assert machine.counters.group_promotions == 1


class TestVariants:
    def test_variant_threshold(self):
        policy = make_grit_variant(fault_threshold=8)
        machine = MachineState.build(SystemConfig(), 100)
        policy.bind(machine)
        assert policy.mechanism.config.fault_threshold == 8

    def test_variant_ablation_flags(self):
        policy = make_grit_variant(
            use_pa_cache=False, use_neighbor_prediction=False
        )
        machine = MachineState.build(SystemConfig(), 100)
        policy.bind(machine)
        assert policy.mechanism.initiator.pa_cache is None
        assert policy.mechanism.predictor is None

    def test_describe_mentions_configuration(self):
        policy = make_grit_variant(fault_threshold=8, use_pa_cache=False)
        machine = MachineState.build(SystemConfig(), 100)
        policy.bind(machine)
        description = policy.describe()
        assert "threshold=8" in description
        assert "no-PA-Cache" in description

"""Policy registry completeness and construction."""

import pytest

from repro.errors import UnknownPolicyError
from repro.policies import available_policies, make_policy
from repro.policies.base import PlacementPolicy


class TestRegistry:
    def test_all_evaluated_policies_registered(self):
        names = set(available_policies())
        assert {
            "on_touch",
            "access_counter",
            "duplication",
            "first_touch",
            "ideal",
            "grit",
            "grit_acud",
            "griffin_dpc",
            "griffin",
            "griffin_dpc_transfw",
            "gps",
        } <= names

    def test_every_policy_constructs(self):
        for name in available_policies():
            policy = make_policy(name)
            assert isinstance(policy, PlacementPolicy)
            assert policy.name == name

    def test_instances_are_fresh(self):
        assert make_policy("grit") is not make_policy("grit")

    def test_unknown_policy_raises(self):
        with pytest.raises(UnknownPolicyError):
            make_policy("nope")

    def test_describe_is_nonempty(self):
        for name in available_policies():
            assert make_policy(name).describe()

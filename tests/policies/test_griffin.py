"""Griffin comparator: DPC interval migration and ACUD discount."""

import pytest

from repro.config import SystemConfig
from repro.constants import HOST_NODE, LatencyCategory
from repro.policies.griffin import GriffinPolicy
from repro.uvm.driver import UvmDriver
from repro.uvm.machine import MachineState


def make_bound(policy: GriffinPolicy):
    machine = MachineState.build(
        SystemConfig(num_gpus=3), 30, initial_scheme=policy.initial_scheme()
    )
    driver = UvmDriver(machine, policy)
    return machine, driver


class TestDpc:
    def test_tracks_remote_accesses_per_interval(self):
        policy = GriffinPolicy()
        machine, driver = make_bound(policy)
        driver.handle_local_fault(0, 0, False)  # pins page 0 at GPU 0
        driver.handle_local_fault(1, 0, False)  # remote map
        for _ in range(10):
            driver.on_remote_access(1, 0)
        assert policy._interval_counts[0][1] == 10

    def test_interval_migrates_to_dominant_accessor(self):
        policy = GriffinPolicy(min_accesses=4)
        machine, driver = make_bound(policy)
        driver.handle_local_fault(0, 0, False)
        driver.handle_local_fault(1, 0, False)
        for _ in range(8):
            driver.on_remote_access(1, 0)
        policy.on_interval(now=policy.interval_cycles)
        assert machine.central_pt.get(0).owner == 1
        assert policy.dpc_migrations == 1

    def test_interval_respects_min_accesses(self):
        policy = GriffinPolicy(min_accesses=100)
        machine, driver = make_bound(policy)
        driver.handle_local_fault(0, 0, False)
        driver.handle_local_fault(1, 0, False)
        driver.on_remote_access(1, 0)
        policy.on_interval(now=policy.interval_cycles)
        assert machine.central_pt.get(0).owner == 0

    def test_counts_clear_each_interval(self):
        policy = GriffinPolicy(min_accesses=4)
        machine, driver = make_bound(policy)
        driver.handle_local_fault(0, 0, False)
        driver.handle_local_fault(1, 0, False)
        for _ in range(8):
            driver.on_remote_access(1, 0)
        policy.on_interval(now=policy.interval_cycles)
        assert policy._interval_counts == {}

    def test_migration_charged_to_destination_clock(self):
        policy = GriffinPolicy(min_accesses=1)
        machine, driver = make_bound(policy)
        driver.handle_local_fault(0, 0, False)
        driver.handle_local_fault(1, 0, False)
        driver.on_remote_access(1, 0)
        before = machine.gpus[1].clock
        policy.on_interval(now=policy.interval_cycles)
        assert machine.gpus[1].clock > before


class TestAcud:
    def test_acud_sets_flush_scale_from_config(self):
        policy = GriffinPolicy(acud=True)
        machine, _ = make_bound(policy)
        assert policy.flush_scale == machine.config.latency.acud_discount
        assert policy.name == "griffin"

    def test_without_acud_full_flush(self):
        policy = GriffinPolicy(acud=False)
        make_bound(policy)
        assert policy.flush_scale == 1.0
        assert policy.name == "griffin_dpc"

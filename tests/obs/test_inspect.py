"""Run inspector: page lifecycles rebuilt from the event log."""

from repro.constants import HOST_NODE, Scheme
from repro.obs.inspect import (
    busiest_pages,
    page_lifecycle,
    render_lifecycle,
    scheme_transitions,
)
from repro.stats.events import EventKind, EventLog


def sample_log():
    log = EventLog()
    log.emit(EventKind.LOCAL_FAULT, vpn=7, gpu=0, detail=0, cycles=40)
    log.emit(EventKind.MIGRATION, vpn=7, gpu=HOST_NODE, detail=0,
             cycles=300)
    log.emit(
        EventKind.SCHEME_CHANGE,
        vpn=7,
        gpu=1,
        detail=int(Scheme.ACCESS_COUNTER),
    )
    log.emit(EventKind.MIGRATION, vpn=9, gpu=0, detail=1, cycles=300)
    log.emit(
        EventKind.SCHEME_CHANGE,
        vpn=7,
        gpu=1,
        detail=int(Scheme.DUPLICATION),
    )
    log.emit(EventKind.DUPLICATION, vpn=7, gpu=1, cycles=250)
    return log


class TestSchemeTransitions:
    def test_matches_emitted_sequence(self):
        log = sample_log()
        recorded = [
            Scheme(e.detail)
            for e in log.filter(kind=EventKind.SCHEME_CHANGE, vpn=7)
        ]
        assert scheme_transitions(log, 7) == recorded
        assert scheme_transitions(log, 7) == [
            Scheme.ACCESS_COUNTER,
            Scheme.DUPLICATION,
        ]

    def test_untouched_page_has_no_transitions(self):
        assert scheme_transitions(sample_log(), 99) == []


class TestPageLifecycle:
    def test_scheme_annotation_tracks_running_state(self):
        steps = page_lifecycle(sample_log(), 7)
        assert [s.event.kind for s in steps] == [
            EventKind.LOCAL_FAULT,
            EventKind.MIGRATION,
            EventKind.SCHEME_CHANGE,
            EventKind.SCHEME_CHANGE,
            EventKind.DUPLICATION,
        ]
        assert [s.scheme for s in steps] == [
            None,
            None,
            Scheme.ACCESS_COUNTER,
            Scheme.DUPLICATION,
            Scheme.DUPLICATION,
        ]
        assert [s.index for s in steps] == [0, 1, 2, 3, 4]

    def test_describe_lines(self):
        steps = page_lifecycle(sample_log(), 7)
        texts = [s.describe() for s in steps]
        assert texts[0] == "read fault on gpu0  [40 cycles]"
        assert texts[1] == "migrated host -> gpu0  [300 cycles]"
        assert "scheme set to" in texts[2]
        assert texts[4] == "duplicated to gpu1  [250 cycles]"


class TestRenderLifecycle:
    def test_report_layout(self):
        text = render_lifecycle(sample_log(), 7)
        lines = text.splitlines()
        assert lines[0] == "page 7: 5 events"
        assert lines[1].startswith("  #0")
        # Scheme marker column shows "-" before the first change.
        assert "[   -]" in lines[1]
        assert lines[-1].endswith(
            "scheme transitions: "
            + Scheme.ACCESS_COUNTER.short_name
            + " -> "
            + Scheme.DUPLICATION.short_name
        )

    def test_empty_page(self):
        assert render_lifecycle(sample_log(), 42) == (
            "page 42: no recorded events"
        )


class TestBusiestPages:
    def test_ranking_and_tie_break(self):
        log = EventLog()
        for vpn in (3, 3, 3, 8, 8, 5, 5):
            log.emit(EventKind.MIGRATION, vpn=vpn, gpu=0)
        # 5 and 8 tie on count; the lower vpn ranks first.
        assert busiest_pages(log) == [(3, 3), (5, 2), (8, 2)]

    def test_limit(self):
        log = EventLog()
        for vpn in range(20):
            log.emit(EventKind.EVICTION, vpn=vpn, gpu=0)
        assert len(busiest_pages(log, limit=4)) == 4

    def test_empty_log(self):
        assert busiest_pages(EventLog()) == []

"""Strict Chrome trace-event schema validation."""

import json

from repro.obs.trace_schema import (
    validate_chrome_trace,
    validate_trace_file,
)


def doc(*events):
    return {"traceEvents": list(events)}


def complete(**overrides):
    event = {
        "ph": "X",
        "name": "op",
        "ts": 0,
        "dur": 5,
        "pid": 0,
        "tid": 1,
        "args": {},
    }
    event.update(overrides)
    return event


class TestDocumentShape:
    def test_non_object_rejected(self):
        assert validate_chrome_trace([]) == [
            "trace document is not a JSON object"
        ]

    def test_missing_trace_events_rejected(self):
        assert validate_chrome_trace({}) == [
            "trace document has no traceEvents array"
        ]

    def test_valid_document_passes(self):
        assert validate_chrome_trace(doc(complete())) == []


class TestEventChecks:
    def test_unknown_phase(self):
        errors = validate_chrome_trace(doc(complete(ph="Z")))
        assert "unknown or missing phase" in errors[0]

    def test_complete_event_needs_duration_and_tid(self):
        errors = validate_chrome_trace(doc(complete(dur=None)))
        assert any("dur" in e for e in errors)
        errors = validate_chrome_trace(doc(complete(dur=-1)))
        assert any("dur" in e for e in errors)
        no_tid = complete()
        del no_tid["tid"]
        errors = validate_chrome_trace(doc(no_tid))
        assert any("tid" in e for e in errors)

    def test_negative_or_missing_ts(self):
        errors = validate_chrome_trace(doc(complete(ts=-5)))
        assert any("ts" in e for e in errors)

    def test_boolean_is_not_numeric(self):
        errors = validate_chrome_trace(doc(complete(ts=True)))
        assert any("ts" in e for e in errors)

    def test_instant_needs_scope(self):
        event = {"ph": "i", "name": "t", "ts": 0, "pid": 0, "s": "t"}
        assert validate_chrome_trace(doc(event)) == []
        bad = dict(event, s="x")
        errors = validate_chrome_trace(doc(bad))
        assert any("scope" in e for e in errors)

    def test_counter_needs_numeric_args(self):
        event = {
            "ph": "C",
            "name": "m",
            "ts": 0,
            "pid": 0,
            "args": {"value": 3},
        }
        assert validate_chrome_trace(doc(event)) == []
        errors = validate_chrome_trace(doc(dict(event, args={})))
        assert any("value args" in e for e in errors)
        errors = validate_chrome_trace(
            doc(dict(event, args={"value": "high"}))
        )
        assert any("numeric" in e for e in errors)

    def test_metadata_skips_timestamp_checks(self):
        event = {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "args": {"name": "sim"},
        }
        assert validate_chrome_trace(doc(event)) == []

    def test_errors_carry_event_index(self):
        errors = validate_chrome_trace(doc(complete(), complete(ts=-1)))
        assert errors[0].startswith("traceEvents[1]")


class TestFileValidation:
    def test_valid_file(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(doc(complete())))
        assert validate_trace_file(str(path)) == []

    def test_unparsable_file(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text("{not json")
        errors = validate_trace_file(str(path))
        assert len(errors) == 1
        assert "cannot load" in errors[0]

    def test_missing_file(self, tmp_path):
        errors = validate_trace_file(str(tmp_path / "absent.json"))
        assert len(errors) == 1

"""Cross-process telemetry: serialization, spill, sweep-wide merging."""

import json

import pytest

from repro.obs import catalog
from repro.obs.aggregate import (
    MAX_INLINE_SPANS,
    TaskTelemetry,
    TelemetryError,
    merge_chrome_trace,
    merge_registry,
    telemetry_from_payload,
)
from repro.obs.trace_schema import validate_chrome_trace
from repro.obs.tracer import Span

SCALE = 0.05


def make_telemetry(
    task_id="fir/grit",
    workload="fir",
    policy="grit",
    spans=None,
    values=None,
    histograms=None,
    **overrides,
):
    return TaskTelemetry(
        task_id=task_id,
        workload=workload,
        policy=policy,
        spans=spans
        if spans is not None
        else [
            Span("fault", "gpu0", 10, 5, (("vpn", 3),)),
            Span("migrate", "host", 20, 0),
        ],
        counter_samples=[(100, catalog.SIM_ACCESSES, 7.0)],
        values=values
        if values is not None
        else {catalog.SIM_ACCESSES: 7.0},
        histograms=histograms or {},
        **overrides,
    )


class TestRoundTrip:
    def test_dict_round_trip_is_exact(self):
        telemetry = make_telemetry(
            dropped_spans=2, dropped_events=3, wall_seconds=0.5
        )
        clone = TaskTelemetry.from_dict(telemetry.to_dict())
        assert clone == telemetry

    def test_round_trip_survives_json(self):
        telemetry = make_telemetry()
        encoded = json.dumps(telemetry.to_dict())
        clone = TaskTelemetry.from_dict(json.loads(encoded))
        assert clone.spans == telemetry.spans
        assert clone.spans[0].args == (("vpn", 3),)

    def test_schema_drift_is_rejected(self):
        data = make_telemetry().to_dict()
        data["schema_version"] = 99
        with pytest.raises(TelemetryError, match="schema"):
            TaskTelemetry.from_dict(data)


class TestPayloads:
    def test_small_payload_stays_inline(self, tmp_path):
        telemetry = make_telemetry()
        payload = telemetry.to_payload(spill_dir=str(tmp_path))
        assert "inline" in payload
        assert payload["payload_bytes"] > 0
        clone = telemetry_from_payload(payload)
        assert clone.spans == telemetry.spans
        assert not clone.spilled
        assert list(tmp_path.iterdir()) == []

    def test_oversized_payload_spills_to_file(self, tmp_path):
        spans = [
            Span("fault", "gpu0", i, 1)
            for i in range(MAX_INLINE_SPANS + 1)
        ]
        telemetry = make_telemetry(spans=spans)
        payload = telemetry.to_payload(spill_dir=str(tmp_path))
        assert "inline" not in payload
        assert payload["path"].endswith("fir-grit.telemetry.json")
        clone = telemetry_from_payload(payload)
        assert len(clone.spans) == len(spans)
        assert clone.spilled
        assert clone.payload_bytes == payload["payload_bytes"]

    def test_no_spill_dir_keeps_everything_inline(self):
        spans = [
            Span("fault", "gpu0", i, 1)
            for i in range(MAX_INLINE_SPANS + 1)
        ]
        payload = make_telemetry(spans=spans).to_payload(spill_dir=None)
        assert "inline" in payload

    def test_malformed_payload_raises(self, tmp_path):
        with pytest.raises(TelemetryError):
            telemetry_from_payload({"neither": 1})
        with pytest.raises(TelemetryError):
            telemetry_from_payload(
                {"path": str(tmp_path / "missing.json")}
            )


class TestMergeChromeTrace:
    def build(self):
        return [
            make_telemetry(task_id="st/grit", workload="st"),
            make_telemetry(task_id="fir/grit", dropped_spans=1),
        ]

    def test_merged_trace_validates(self):
        document = merge_chrome_trace(self.build())
        assert validate_chrome_trace(document) == []

    def test_one_pid_per_task_in_task_id_order(self):
        document = merge_chrome_trace(self.build())
        names = {
            event["args"]["name"]: event["pid"]
            for event in document["traceEvents"]
            if event["ph"] == "M"
            and event["name"] == "process_name"
        }
        # Sorted by task id: fir/grit first, st/grit second.
        assert names == {"fir/grit": 1, "st/grit": 2}

    def test_span_events_keep_their_tracks(self):
        document = merge_chrome_trace(self.build())
        spans = [
            event
            for event in document["traceEvents"]
            if event["ph"] in ("X", "i")
        ]
        assert {event["pid"] for event in spans} == {1, 2}
        # Each task process names its own gpu0/host thread tracks.
        track_names = {
            (event["pid"], event["args"]["name"])
            for event in document["traceEvents"]
            if event["ph"] == "M"
            and event["name"] == "thread_name"
        }
        assert track_names == {
            (1, "gpu0"),
            (1, "host"),
            (2, "gpu0"),
            (2, "host"),
        }

    def test_other_data_sums_drop_counts(self):
        document = merge_chrome_trace(
            self.build(), metadata={"scale": SCALE}
        )
        other = document["otherData"]
        assert other["tasks"] == 2
        assert other["dropped_spans"] == 1
        assert other["scale"] == SCALE


class TestMergeRegistry:
    def test_counters_sum_across_tasks(self):
        telemetries = [
            make_telemetry(
                task_id="fir/grit",
                values={catalog.SIM_ACCESSES: 7.0},
            ),
            make_telemetry(
                task_id="st/grit",
                workload="st",
                values={catalog.SIM_ACCESSES: 5.0},
            ),
        ]
        registry = merge_registry(telemetries)
        assert registry.value(catalog.SIM_ACCESSES) == 12.0
        # One sample per task: the sweep trajectory.
        assert registry.series(catalog.SIM_ACCESSES) == [
            (1, 7.0),
            (2, 12.0),
        ]

    def test_histograms_merge_bucket_by_bucket(self):
        histogram = {
            catalog.UVM_FAULT_SERVICE_CYCLES: {
                "bounds": [64, 256, 1_024, 4_096, 16_384, 65_536,
                           262_144, 1_048_576],
                "bucket_counts": [1, 0, 2, 0, 0, 0, 0, 0, 0],
                "count": 3,
                "total": 900.0,
            }
        }
        telemetries = [
            make_telemetry(task_id="fir/grit", histograms=histogram),
            make_telemetry(
                task_id="st/grit", workload="st", histograms=histogram
            ),
        ]
        merged = merge_registry(telemetries).histogram(
            catalog.UVM_FAULT_SERVICE_CYCLES
        )
        assert merged.count == 6
        assert merged.total == 1800.0
        assert merged.bucket_counts[0] == 2
        assert merged.bucket_counts[2] == 4

    def test_mismatched_histogram_bounds_rejected(self):
        telemetry = make_telemetry(
            histograms={
                catalog.UVM_FAULT_SERVICE_CYCLES: {
                    "bounds": [1, 2],
                    "bucket_counts": [0, 0, 0],
                    "count": 0,
                    "total": 0.0,
                }
            }
        )
        with pytest.raises(TelemetryError, match="bounds"):
            merge_registry([telemetry])


class TestObservedSweep:
    """End to end: worker processes ship telemetry to the merge."""

    def test_sweep_telemetry_merges_and_validates(self, tmp_path):
        from repro.harness.experiment import ExperimentRunner
        from repro.harness.orchestrator import run_sweep

        runner = ExperimentRunner(scale=SCALE)
        keys = [
            runner.key("fir", "on_touch", num_gpus=2),
            runner.key("fir", "grit", num_gpus=2),
        ]
        summary = run_sweep(keys, workers=2, observe=True)
        assert set(summary.telemetry) == set(keys)
        telemetries = list(summary.telemetry.values())
        for telemetry in telemetries:
            assert telemetry.spans
            assert telemetry.wall_seconds > 0
        document = merge_chrome_trace(telemetries)
        assert validate_chrome_trace(document) == []
        registry = merge_registry(telemetries)
        expected = sum(
            result.counters.accesses
            for result in summary.results.values()
        )
        assert registry.value(catalog.SIM_ACCESSES) == expected

"""End-to-end observability: determinism, schema, reconstruction."""

import dataclasses
import json

from repro.config import SystemConfig
from repro.constants import Scheme
from repro.obs import RunObservation, validate_chrome_trace
from repro.obs.inspect import scheme_transitions
from repro.obs.run import DEFAULT_SAMPLE_INTERVAL
from repro.obs.tracer import write_chrome_trace
from repro.policies import make_policy
from repro.sim.engine import Engine
from repro.stats.events import EventKind
from tests.conftest import build_trace


def ping_pong_trace():
    stream = [(0, True), (1, False)] * 8
    return build_trace([stream, stream], footprint_pages=16)


def observed_run(policy="grit", sample_interval=500):
    observation = RunObservation(sample_interval=sample_interval)
    engine = Engine(
        SystemConfig(num_gpus=2),
        ping_pong_trace(),
        make_policy(policy),
        observation=observation,
    )
    return engine.run(), observation


class TestDeterminism:
    def test_trace_bytes_identical_across_runs(self, tmp_path):
        paths = []
        for i in range(2):
            _, observation = observed_run()
            path = tmp_path / f"trace{i}.json"
            observation.write_trace(str(path))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_metrics_identical_across_runs(self):
        _, first = observed_run()
        _, second = observed_run()
        assert first.render_metrics("jsonl") == (
            second.render_metrics("jsonl")
        )

    def test_disabled_observability_leaves_result_untouched(self):
        observed, _ = observed_run()
        bare = Engine(
            SystemConfig(num_gpus=2),
            ping_pong_trace(),
            make_policy("grit"),
        ).run()
        assert observed.total_cycles == bare.total_cycles
        # fastpath_runs/fastpath_accesses are wall-clock diagnostics,
        # not simulated behaviour: observation sampling boundaries cap
        # the fast path's batch horizons, so the same accesses group
        # into different run counts with observability on.
        observed_counters = {
            k: v
            for k, v in vars(observed.counters).items()
            if not k.startswith("fastpath")
        }
        bare_counters = {
            k: v
            for k, v in vars(bare.counters).items()
            if not k.startswith("fastpath")
        }
        assert observed_counters == bare_counters
        skipped = ("dropped_events", "fastpath_runs", "fastpath_accesses")
        observed_summary = {
            k: v
            for k, v in observed.summary().items()
            if k not in skipped
        }
        bare_summary = {
            k: v
            for k, v in bare.summary().items()
            if k not in skipped
        }
        assert observed_summary == bare_summary


class TestTraceOutput:
    def test_run_output_passes_schema_validation(self, tmp_path):
        _, observation = observed_run()
        doc = observation.chrome_trace(metadata={"workload": "manual"})
        assert validate_chrome_trace(doc) == []
        path = tmp_path / "out.json"
        write_chrome_trace(str(path), doc)
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_timestamps_are_simulated_cycles(self):
        result, observation = observed_run()
        doc = observation.chrome_trace()
        stamps = [
            e["ts"] + e.get("dur", 0)
            for e in doc["traceEvents"]
            if e["ph"] in ("X", "i", "C")
        ]
        assert stamps
        # Everything the machine did fits inside the simulated run.
        assert max(stamps) <= result.total_cycles
        run_spans = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "run"
        ]
        assert [s["dur"] for s in run_spans] == [result.total_cycles]

    def test_driver_hooks_produce_operation_spans(self):
        result, observation = observed_run()
        counts = observation.tracer.span_counts()
        assert counts["handle_local_fault"] == (
            result.counters.local_page_faults
        )
        assert counts.get("migration", 0) == result.counters.migrations

    def test_counter_samples_cover_the_run(self):
        result, observation = observed_run(sample_interval=500)
        times = sorted({ts for ts, _, _ in observation.registry.samples})
        assert times[-1] == result.total_cycles
        assert len(times) >= 2


class TestInspectionReconstruction:
    def test_scheme_transitions_match_event_log(self):
        _, observation = observed_run(policy="grit")
        log = observation.event_log
        changed = {
            e.vpn for e in log.filter(kind=EventKind.SCHEME_CHANGE)
        }
        assert changed, "GRIT should flip at least one page's scheme"
        for vpn in changed:
            expected = [
                Scheme(e.detail)
                for e in log.filter(
                    kind=EventKind.SCHEME_CHANGE, vpn=vpn
                )
            ]
            assert scheme_transitions(log, vpn) == expected


class TestConfigPlumbing:
    def test_observe_flag_auto_creates_observation(self):
        config = dataclasses.replace(SystemConfig(num_gpus=2), observe=True)
        engine = Engine(config, ping_pong_trace(), make_policy("on_touch"))
        assert engine.observation is not None
        assert engine.observation.sample_interval == (
            DEFAULT_SAMPLE_INTERVAL
        )
        engine.run()
        assert engine.observation.tracer.spans

    def test_env_var_enables_observation(self, monkeypatch):
        monkeypatch.setenv("GRIT_TRACE", "1")
        engine = Engine(
            SystemConfig(num_gpus=2),
            ping_pong_trace(),
            make_policy("on_touch"),
        )
        assert engine.observation is not None

    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("GRIT_TRACE", raising=False)
        engine = Engine(
            SystemConfig(num_gpus=2),
            ping_pong_trace(),
            make_policy("on_touch"),
        )
        assert engine.observation is None
        assert engine.machine.tracer is None

"""Host-side wall-time profiler (the one allowed to read the clock)."""

from repro.obs.profile import PhaseProfiler, profile_run


class TestPhaseProfiler:
    def test_phases_record_in_completion_order(self):
        profiler = PhaseProfiler()
        with profiler.phase("outer"):
            with profiler.phase("inner"):
                pass
        assert [name for name, _ in profiler.phases] == [
            "inner",
            "outer",
        ]
        assert all(seconds >= 0 for _, seconds in profiler.phases)

    def test_phase_records_even_on_exception(self):
        profiler = PhaseProfiler()
        try:
            with profiler.phase("doomed"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [name for name, _ in profiler.phases] == ["doomed"]

    def test_total_is_sum_of_phases(self):
        profiler = PhaseProfiler()
        profiler.phases = [("a", 1.0), ("b", 3.0)]
        assert profiler.total_seconds() == 4.0

    def test_render_table(self):
        profiler = PhaseProfiler()
        profiler.phases = [("replay", 3.0), ("summarize", 1.0)]
        lines = profiler.render().splitlines()
        assert lines[0].startswith("replay")
        assert "75.0%" in lines[0]
        assert "25.0%" in lines[1]
        assert lines[-1].startswith("total")
        assert "100.0%" in lines[-1]

    def test_render_with_no_phases(self):
        text = PhaseProfiler().render()
        assert "total" in text
        assert "100.0%" in text

    def test_to_registry_gauges_phases_and_total(self):
        profiler = PhaseProfiler()
        profiler.phases = [("replay", 3.0), ("replay", 1.0), ("x", 2.0)]
        registry = profiler.to_registry()
        # Duplicate phase names merge by summing their seconds.
        assert registry.value("profile.phase.replay") == 4.0
        assert registry.value("profile.phase.x") == 2.0
        assert registry.value("profile.total") == 6.0

    def test_to_jsonl_rows_parse(self):
        import json

        profiler = PhaseProfiler()
        profiler.phases = [("replay", 3.0)]
        rows = [
            json.loads(line)
            for line in profiler.to_jsonl().splitlines()
        ]
        metrics = {row["metric"]: row["value"] for row in rows}
        assert metrics == {
            "profile.phase.replay": 3.0,
            "profile.total": 3.0,
        }
        assert all(row["ts"] == 0 for row in rows)


class TestProfileRun:
    def test_profiles_a_tiny_workload(self):
        profiled = profile_run("bfs", "on_touch", num_gpus=2, scale=0.02)
        assert [name for name, _ in profiled.profiler.phases] == [
            "generate-trace",
            "build-engine",
            "replay",
            "summarize",
        ]
        assert profiled.result.total_cycles > 0
        assert profiled.profiler.total_seconds() > 0

"""Host-side wall-time profiler (the one allowed to read the clock)."""

from repro.obs.profile import PhaseProfiler, profile_run


class TestPhaseProfiler:
    def test_phases_record_in_completion_order(self):
        profiler = PhaseProfiler()
        with profiler.phase("outer"):
            with profiler.phase("inner"):
                pass
        assert [name for name, _ in profiler.phases] == [
            "inner",
            "outer",
        ]
        assert all(seconds >= 0 for _, seconds in profiler.phases)

    def test_phase_records_even_on_exception(self):
        profiler = PhaseProfiler()
        try:
            with profiler.phase("doomed"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [name for name, _ in profiler.phases] == ["doomed"]

    def test_total_is_sum_of_phases(self):
        profiler = PhaseProfiler()
        profiler.phases = [("a", 1.0), ("b", 3.0)]
        assert profiler.total_seconds() == 4.0

    def test_render_table(self):
        profiler = PhaseProfiler()
        profiler.phases = [("replay", 3.0), ("summarize", 1.0)]
        lines = profiler.render().splitlines()
        assert lines[0].startswith("replay")
        assert "75.0%" in lines[0]
        assert "25.0%" in lines[1]
        assert lines[-1].startswith("total")
        assert "100.0%" in lines[-1]

    def test_render_with_no_phases(self):
        text = PhaseProfiler().render()
        assert "total" in text
        assert "100.0%" in text


class TestProfileRun:
    def test_profiles_a_tiny_workload(self):
        profiled = profile_run("bfs", "on_touch", num_gpus=2, scale=0.02)
        assert [name for name, _ in profiled.profiler.phases] == [
            "generate-trace",
            "build-engine",
            "replay",
            "summarize",
        ]
        assert profiled.result.total_cycles > 0
        assert profiled.profiler.total_seconds() > 0

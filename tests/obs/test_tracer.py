"""Span tracer: layout, child spans, bounds, Chrome export."""

import pytest

from repro.obs.tracer import (
    ENGINE_TRACK,
    Span,
    SpanTracer,
    to_chrome_trace,
    track_for_gpu,
)
from repro.stats.events import Event, EventKind


class TestTrackNaming:
    def test_gpu_and_host_tracks(self):
        assert track_for_gpu(0) == "gpu0"
        assert track_for_gpu(3) == "gpu3"
        assert track_for_gpu(-1) == "host"


class TestOperationSpans:
    def test_begin_end_records_span(self):
        tracer = SpanTracer()
        tracer.op_begin("handle_local_fault", 0, 100)
        tracer.op_end(50, vpn=7)
        assert tracer.spans == [
            Span("handle_local_fault", "gpu0", 100, 50, (("vpn", 7),))
        ]

    def test_zero_duration_childless_op_is_dropped(self):
        tracer = SpanTracer()
        tracer.op_begin("on_remote_access", 1, 10)
        tracer.op_end(0, vpn=3)
        assert tracer.spans == []

    def test_same_start_ops_serialize_on_track(self):
        tracer = SpanTracer()
        tracer.op_begin("a", 0, 100)
        tracer.op_end(40)
        tracer.op_begin("b", 0, 100)
        tracer.op_end(10)
        starts = [(s.name, s.start) for s in tracer.spans]
        assert starts == [("a", 100), ("b", 140)]

    def test_distinct_tracks_do_not_serialize(self):
        tracer = SpanTracer()
        tracer.op_begin("a", 0, 100)
        tracer.op_end(40)
        tracer.op_begin("b", 1, 100)
        tracer.op_end(10)
        assert [(s.track, s.start) for s in tracer.spans] == [
            ("gpu0", 100),
            ("gpu1", 100),
        ]

    def test_op_end_without_begin_raises(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            tracer.op_end(5)


class TestChildSpans:
    def test_events_during_op_become_sequential_children(self):
        tracer = SpanTracer()
        tracer.op_begin("handle_local_fault", 0, 1000)
        tracer.on_event(Event(EventKind.MIGRATION, 7, 0, 1, 300))
        tracer.on_event(Event(EventKind.EVICTION, 9, 0, 0, 100))
        tracer.op_end(600, vpn=7)
        names = [(s.name, s.start, s.duration) for s in tracer.spans]
        assert names == [
            ("handle_local_fault", 1000, 600),
            ("migration", 1000, 300),
            ("eviction", 1300, 100),
        ]
        # All children share the parent's track.
        assert {s.track for s in tracer.spans} == {"gpu0"}

    def test_fault_events_are_not_children(self):
        tracer = SpanTracer()
        tracer.op_begin("handle_local_fault", 0, 0)
        tracer.on_event(Event(EventKind.LOCAL_FAULT, 7, 0, 0, 500))
        tracer.op_end(500)
        assert [s.name for s in tracer.spans] == ["handle_local_fault"]

    def test_zero_duration_op_with_children_is_kept(self):
        tracer = SpanTracer()
        tracer.op_begin("prefetch_page", 0, 50)
        tracer.on_event(Event(EventKind.PREFETCH, 3, 0, 0, 0))
        tracer.op_end(0, vpn=3)
        assert [s.name for s in tracer.spans] == [
            "prefetch_page",
            "prefetch",
        ]

    def test_background_event_lands_on_own_track(self):
        tracer = SpanTracer()
        tracer.on_event(Event(EventKind.MIGRATION, 7, 1, 0, 250))
        tracer.on_event(Event(EventKind.MIGRATION, 8, 1, 0, 250))
        assert [(s.track, s.start) for s in tracer.spans] == [
            ("gpu1", 0),
            ("gpu1", 250),
        ]


class TestBounds:
    def test_capacity_drops_and_counts(self):
        tracer = SpanTracer(capacity=2)
        for i in range(5):
            tracer.record("s", "gpu0", i, 1)
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SpanTracer(capacity=0)

    def test_record_rejects_negative_duration(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            tracer.record("s", "gpu0", 0, -1)


class TestChromeExport:
    def build(self):
        tracer = SpanTracer()
        tracer.record("work", "gpu1", 10, 5, vpn=3)
        tracer.record("work", "gpu0", 0, 7)
        tracer.instant("tick", ENGINE_TRACK, 42)
        return tracer

    def test_track_thread_metadata_and_order(self):
        doc = to_chrome_trace(self.build())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        thread_names = [
            e["args"]["name"]
            for e in meta
            if e["name"] == "thread_name"
        ]
        assert thread_names == ["gpu0", "gpu1", "engine"]

    def test_span_becomes_complete_event(self):
        doc = to_chrome_trace(self.build())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {(e["name"], e["ts"], e["dur"]) for e in complete} == {
            ("work", 10, 5),
            ("work", 0, 7),
        }

    def test_zero_duration_becomes_instant(self):
        doc = to_chrome_trace(self.build())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert [(e["name"], e["ts"], e["s"]) for e in instants] == [
            ("tick", 42, "t")
        ]

    def test_counter_samples_become_counter_events(self):
        doc = to_chrome_trace(
            self.build(), counter_samples=[(5, "uvm.migrations", 3.0)]
        )
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters == [
            {
                "ph": "C",
                "name": "uvm.migrations",
                "cat": "metrics",
                "ts": 5,
                "pid": 0,
                "args": {"value": 3.0},
            }
        ]

    def test_metadata_and_drop_count_in_other_data(self):
        tracer = SpanTracer(capacity=1)
        tracer.record("a", "gpu0", 0, 1)
        tracer.record("b", "gpu0", 1, 1)
        doc = to_chrome_trace(tracer, metadata={"workload": "bfs"})
        assert doc["otherData"]["dropped_spans"] == 1
        assert doc["otherData"]["workload"] == "bfs"

    def test_span_counts(self):
        tracer = self.build()
        assert tracer.span_counts() == {"work": 2, "tick": 1}

"""Metrics registry: instruments, sampling, exporters, the catalog."""

import json
import math

import pytest

from repro.obs import catalog
from repro.obs.catalog import build_registry
from repro.obs.metrics import (
    HistogramData,
    MetricKind,
    MetricSpec,
    MetricsRegistry,
    prometheus_name,
)


def registry_with(name="m.total", kind=MetricKind.COUNTER):
    registry = MetricsRegistry()
    registry.register(MetricSpec(name, kind, "a metric"))
    return registry


class TestRegistration:
    def test_duplicate_name_rejected(self):
        registry = registry_with()
        with pytest.raises(ValueError):
            registry.register(
                MetricSpec("m.total", MetricKind.GAUGE, "again")
            )

    def test_unknown_name_rejected_with_catalog_pointer(self):
        registry = registry_with()
        with pytest.raises(KeyError, match="catalog"):
            registry.inc("m.typo")

    def test_kind_mismatch_rejected(self):
        registry = registry_with()
        with pytest.raises(ValueError, match="counter"):
            registry.set_gauge("m.total", 1.0)


class TestCounters:
    def test_inc_and_set_total(self):
        registry = registry_with()
        registry.inc("m.total")
        registry.inc("m.total", 4)
        assert registry.value("m.total") == 5
        registry.set_total("m.total", 9)
        assert registry.value("m.total") == 9

    def test_counters_cannot_decrease(self):
        registry = registry_with()
        registry.set_total("m.total", 5)
        with pytest.raises(ValueError):
            registry.set_total("m.total", 4)
        with pytest.raises(ValueError):
            registry.inc("m.total", -1)


class TestHistograms:
    def test_observations_land_in_buckets(self):
        data = HistogramData(bounds=(10, 100))
        for value in (5, 10, 11, 500):
            data.observe(value)
        assert data.bucket_counts == [2, 1, 1]
        assert data.count == 4
        assert data.mean() == pytest.approx((5 + 10 + 11 + 500) / 4)

    def test_cumulative_counts_end_with_inf(self):
        data = HistogramData(bounds=(10, 100))
        data.observe(5)
        data.observe(50)
        pairs = data.cumulative_counts()
        assert pairs == [(10.0, 1), (100.0, 2), (math.inf, 2)]

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError):
            HistogramData(bounds=(10, 10))
        with pytest.raises(ValueError):
            HistogramData(bounds=(100, 10))

    def test_registry_observe(self):
        registry = registry_with("h.cycles", MetricKind.HISTOGRAM)
        registry.observe("h.cycles", 3)
        assert registry.histogram("h.cycles").count == 1
        with pytest.raises(ValueError):
            registry.value("h.cycles")


class TestSampling:
    def build(self):
        registry = MetricsRegistry()
        registry.register(
            MetricSpec("b.total", MetricKind.COUNTER, "b")
        )
        registry.register(MetricSpec("a.rate", MetricKind.GAUGE, "a"))
        return registry

    def test_sample_snapshots_sorted_names(self):
        registry = self.build()
        registry.inc("b.total", 2)
        registry.set_gauge("a.rate", 0.5)
        registry.sample(100)
        registry.inc("b.total")
        registry.sample(200)
        assert registry.samples == [
            (100, "a.rate", 0.5),
            (100, "b.total", 2.0),
            (200, "a.rate", 0.5),
            (200, "b.total", 3.0),
        ]
        assert registry.series("b.total") == [(100, 2.0), (200, 3.0)]


class TestExporters:
    def build(self):
        registry = MetricsRegistry()
        registry.register(
            MetricSpec("c.total", MetricKind.COUNTER, "count of c")
        )
        registry.register(
            MetricSpec("h.cycles", MetricKind.HISTOGRAM, "h dist"),
            buckets=(10,),
        )
        registry.inc("c.total", 3)
        registry.observe("h.cycles", 7)
        registry.observe("h.cycles", 70)
        registry.sample(50)
        return registry

    def test_jsonl_rows_parse(self):
        lines = self.build().to_jsonl().splitlines()
        rows = [json.loads(line) for line in lines]
        assert {"ts": 50, "metric": "c.total", "value": 3.0} in rows
        hist = [r for r in rows if r.get("kind") == "histogram"]
        assert hist == [
            {
                "metric": "h.cycles",
                "kind": "histogram",
                "count": 2,
                "sum": 77.0,
                "buckets": {"10": 1, "+Inf": 2},
            }
        ]

    def test_csv_layout(self):
        text = self.build().to_csv()
        assert text.splitlines() == ["ts,metric,value", "50,c.total,3"]

    def test_prometheus_exposition(self):
        text = self.build().to_prometheus()
        assert "# HELP c_total count of c" in text
        assert "# TYPE c_total counter" in text
        assert "c_total 3" in text
        assert 'h_cycles_bucket{le="10"} 1' in text
        assert 'h_cycles_bucket{le="+Inf"} 2' in text
        assert "h_cycles_sum 77" in text
        assert "h_cycles_count 2" in text

    def test_prometheus_name_sanitization(self):
        assert prometheus_name("uvm.fault.queue_depth") == (
            "uvm_fault_queue_depth"
        )

    def test_prometheus_name_mangles_every_illegal_char(self):
        assert prometheus_name("a-b.c/d e%f") == "a_b_c_d_e_f"
        # Already-legal names pass through untouched.
        assert prometheus_name("plain_name9") == "plain_name9"

    def test_prometheus_empty_registry_is_empty_output(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_prometheus_le_labels_escape_bounds(self):
        registry = MetricsRegistry()
        registry.register(
            MetricSpec("h.lat", MetricKind.HISTOGRAM, "latency"),
            buckets=(64, 4096),
        )
        registry.observe("h.lat", 1)
        registry.observe("h.lat", 100_000)
        text = registry.to_prometheus()
        # Finite bounds render without a trailing .0; the overflow
        # bucket is spelled +Inf exactly as Prometheus expects.
        assert 'h_lat_bucket{le="64"} 1' in text
        assert 'h_lat_bucket{le="4096"} 1' in text
        assert 'h_lat_bucket{le="+Inf"} 2' in text
        assert text.endswith("\n")

    def test_prometheus_gauge_type_line(self):
        registry = registry_with("q.depth", MetricKind.GAUGE)
        registry.set_gauge("q.depth", 2.5)
        text = registry.to_prometheus()
        assert "# TYPE q_depth gauge" in text
        assert "q_depth 2.5" in text


class TestCatalog:
    def test_build_registry_registers_every_spec(self):
        registry = build_registry()
        assert len(registry.names()) == len(catalog.METRICS)
        for spec in catalog.METRICS:
            assert registry.spec(spec.name) == spec

    def test_catalog_names_are_unique(self):
        names = [spec.name for spec in catalog.METRICS]
        assert len(names) == len(set(names))

    def test_every_spec_has_a_description(self):
        for spec in catalog.METRICS:
            assert spec.description

    def test_build_bench_registry_registers_bench_metrics(self):
        registry = catalog.build_bench_registry()
        assert set(registry.names()) == {
            spec.name for spec in catalog.BENCH_METRICS
        }
        assert catalog.BENCH_RUNS in registry.names()

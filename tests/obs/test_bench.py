"""Perf-trajectory benchmarks: baselines and the regression gate."""

import pytest

from repro.obs import bench
from repro.obs import catalog
from repro.obs.bench import (
    BenchCase,
    BenchError,
    compare_case,
    compare_suite,
    load_baseline,
    run_case,
    select_cases,
    write_baseline,
)

SCALE = 0.05
CASE = BenchCase("fir-grit", "fir", "grit")


@pytest.fixture(scope="module")
def measured():
    """One real measurement, shared across the module (runs once)."""
    return run_case(CASE, SCALE, repeats=2)


class TestRunCase:
    def test_counters_are_deterministic_across_repeats(self, measured):
        again = run_case(CASE, SCALE, repeats=1)
        assert again.counters == measured.counters
        assert measured.counters["total_cycles"] > 0
        assert measured.counters["accesses"] > 0

    def test_wall_samples_and_phases_recorded(self, measured):
        assert measured.repeats == 2
        assert all(seconds > 0 for seconds in measured.wall_seconds)
        assert set(measured.phase_seconds) == {
            "generate-trace",
            "build-engine",
            "replay",
            "summarize",
        }
        assert all(
            len(samples) == 2
            for samples in measured.phase_seconds.values()
        )

    def test_registry_counts_runs(self):
        registry = catalog.build_bench_registry()
        run_case(CASE, SCALE, repeats=1, registry=registry)
        assert registry.value(catalog.BENCH_RUNS) == 1

    def test_repeats_must_be_positive(self):
        with pytest.raises(BenchError):
            run_case(CASE, SCALE, repeats=0)


class TestBaselines:
    def test_write_and_load_round_trip(self, measured, tmp_path):
        path = write_baseline(str(tmp_path), measured)
        assert path.endswith("BENCH_fir-grit.json")
        baseline = load_baseline(path)
        assert baseline["counters"] == measured.counters
        assert baseline["scale"] == SCALE
        assert baseline["timings"]["wall_seconds"]["min"] == min(
            measured.wall_seconds
        )
        assert baseline["env"]["cpu_count"] >= 1

    def test_stale_schema_rejected(self, measured, tmp_path):
        import json

        path = write_baseline(str(tmp_path), measured)
        data = json.loads(open(path).read())
        data["schema_version"] = 0
        open(path, "w").write(json.dumps(data))
        with pytest.raises(BenchError, match="schema"):
            load_baseline(path)


class TestCompare:
    def test_identical_rerun_passes(self, measured, tmp_path):
        baseline = measured.to_baseline()
        assert compare_case(measured, baseline) == []

    def test_injected_slowdown_is_flagged(self, measured):
        baseline = measured.to_baseline()
        slow = bench.BenchResult(
            case=measured.case,
            scale=measured.scale,
            wall_seconds=[s + 10.0 for s in measured.wall_seconds],
            phase_seconds=measured.phase_seconds,
            counters=measured.counters,
        )
        findings = compare_case(slow, baseline, threshold=0.25)
        assert [f.kind for f in findings] == ["wall"]

    def test_counter_drift_always_fails(self, measured):
        baseline = measured.to_baseline()
        drifted = bench.BenchResult(
            case=measured.case,
            scale=measured.scale,
            wall_seconds=measured.wall_seconds,
            phase_seconds=measured.phase_seconds,
            counters={
                **measured.counters,
                "total_cycles": measured.counters["total_cycles"] + 1,
            },
        )
        findings = compare_case(drifted, baseline)
        assert [f.kind for f in findings] == ["counter"]
        # Even at an absurd threshold and in counters-only mode.
        findings = compare_case(
            drifted, baseline, threshold=1000.0, counters_only=True
        )
        assert [f.kind for f in findings] == ["counter"]

    def test_counters_only_ignores_wall_time(self, measured):
        baseline = measured.to_baseline()
        slow = bench.BenchResult(
            case=measured.case,
            scale=measured.scale,
            wall_seconds=[s + 10.0 for s in measured.wall_seconds],
            phase_seconds=measured.phase_seconds,
            counters=measured.counters,
        )
        assert compare_case(slow, baseline, counters_only=True) == []

    def test_threshold_boundary_is_exclusive(self, measured):
        baseline = measured.to_baseline()
        base_min = min(measured.wall_seconds)
        at_limit = bench.BenchResult(
            case=measured.case,
            scale=measured.scale,
            wall_seconds=[base_min * 1.25],
            phase_seconds=measured.phase_seconds,
            counters=measured.counters,
        )
        assert compare_case(at_limit, baseline, threshold=0.25) == []

    def test_scale_mismatch_is_a_hard_error(self, measured):
        baseline = measured.to_baseline()
        baseline["scale"] = SCALE * 2
        with pytest.raises(BenchError, match="scale"):
            compare_case(measured, baseline)

    def test_suite_notes_missing_baseline(self, measured, tmp_path):
        regressions, notes = compare_suite([measured], str(tmp_path))
        assert regressions == []
        assert len(notes) == 1
        assert "no baseline" in notes[0]

    def test_suite_counts_regressions_in_registry(
        self, measured, tmp_path
    ):
        write_baseline(str(tmp_path), measured)
        registry = catalog.build_bench_registry()
        slow = bench.BenchResult(
            case=measured.case,
            scale=measured.scale,
            wall_seconds=[s + 10.0 for s in measured.wall_seconds],
            phase_seconds=measured.phase_seconds,
            counters=measured.counters,
        )
        regressions, _ = compare_suite(
            [slow], str(tmp_path), registry=registry
        )
        assert len(regressions) == 1
        assert registry.value(catalog.BENCH_COMPARISONS) == 1
        assert registry.value(catalog.BENCH_REGRESSIONS) == 1


class TestSelection:
    def test_default_suite(self):
        cases = select_cases(None)
        assert [case.name for case in cases] == [
            "fir-on_touch",
            "fir-grit",
            "st-grit",
            "bfs-grit",
            "fir-grit-contended",
            "fir-grit-fastpath",
            "fir-grit-8gpu-nvswitch",
        ]

    def test_unknown_case_rejected(self):
        with pytest.raises(BenchError, match="unknown"):
            select_cases(["fir-grit", "nope"])

    def test_default_scale_reads_env(self, monkeypatch):
        monkeypatch.delenv(bench.SCALE_ENV_VAR, raising=False)
        assert bench.default_scale() == bench.DEFAULT_SCALE
        monkeypatch.setenv(bench.SCALE_ENV_VAR, "0.1")
        assert bench.default_scale() == 0.1
        monkeypatch.setenv(bench.SCALE_ENV_VAR, "banana")
        with pytest.raises(BenchError):
            bench.default_scale()

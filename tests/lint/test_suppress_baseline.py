"""Inline suppressions and the accepted-findings baseline."""

import textwrap

import pytest

from repro.lint import (
    LintEngine,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.findings import Finding, Severity


def make_package(tmp_path, files):
    root = tmp_path / "pkg"
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return root


def run_lint(tmp_path, source):
    root = make_package(tmp_path, {"sim/mod.py": source})
    return LintEngine(root).run()


class TestSuppressions:
    def test_same_line_marker_silences_the_finding(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """\
            import time


            def stamp():
                return time.time()  # simlint: ignore[GRIT-D001]
            """,
        )
        assert [f for f in findings if f.rule_id == "GRIT-D001"] == []
        assert [f for f in findings if f.rule_id == "GRIT-S001"] == []

    def test_own_line_marker_covers_the_next_line(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """\
            import time


            def stamp():
                # simlint: ignore[GRIT-D001]
                return time.time()
            """,
        )
        assert [f for f in findings if f.rule_id == "GRIT-D001"] == []
        assert [f for f in findings if f.rule_id == "GRIT-S001"] == []

    def test_unused_marker_is_reported_as_s001(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """\
            def quiet():
                return 1  # simlint: ignore[GRIT-D001]
            """,
        )
        hits = [f for f in findings if f.rule_id == "GRIT-S001"]
        assert len(hits) == 1
        assert hits[0].line == 2
        assert "GRIT-D001" in hits[0].message
        assert hits[0].severity.value == "warning"

    def test_marker_inside_string_literal_is_inert(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """\
            HINT = "write # simlint: ignore[GRIT-D001] to suppress"
            """,
        )
        assert [f for f in findings if f.rule_id == "GRIT-S001"] == []

    def test_marker_can_name_several_rules(self, tmp_path):
        findings = run_lint(
            tmp_path,
            """\
            import time


            def stamp(breakdown):
                # simlint: ignore[GRIT-D001, GRIT-F001]
                breakdown.charge("x", time.time())
            """,
        )
        flagged = {
            f.rule_id
            for f in findings
            if f.rule_id in ("GRIT-D001", "GRIT-F001", "GRIT-S001")
        }
        assert flagged == set()


def sample_finding(message="knob is dead", path="config.py"):
    return Finding(
        rule_id="GRIT-F003",
        severity=Severity.ERROR,
        path=path,
        line=3,
        col=0,
        message=message,
    )


class TestBaseline:
    def test_round_trip_filters_matching_findings(self, tmp_path):
        path = tmp_path / "baseline.json"
        finding = sample_finding()
        write_baseline(path, [finding])
        entries = load_baseline(path)
        kept, matched = apply_baseline([finding], entries)
        assert kept == []
        assert matched == 1

    def test_line_number_is_not_part_of_the_match(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [sample_finding()])
        moved = Finding(
            rule_id="GRIT-F003",
            severity=Severity.ERROR,
            path="config.py",
            line=99,
            col=4,
            message="knob is dead",
        )
        kept, matched = apply_baseline([moved], load_baseline(path))
        assert kept == []
        assert matched == 1

    def test_each_entry_absorbs_at_most_one_finding(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [sample_finding()])
        pair = [sample_finding(), sample_finding()]
        kept, matched = apply_baseline(pair, load_baseline(path))
        assert matched == 1
        assert len(kept) == 1

    def test_unrelated_findings_pass_through(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [sample_finding()])
        fresh = sample_finding(message="a different defect")
        kept, matched = apply_baseline([fresh], load_baseline(path))
        assert kept == [fresh]
        assert matched == 0

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError):
            load_baseline(path)

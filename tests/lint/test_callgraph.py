"""Resolution strategies of the project-wide call graph."""

import ast
import textwrap
from pathlib import Path

from repro.lint.callgraph import CallGraph
from repro.lint.symbols import SymbolTable


def make_graph(tmp_path, files):
    root = tmp_path / "pkg"
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return CallGraph(SymbolTable.scan(root))


def only_call(info):
    calls = [
        node
        for node in ast.walk(info.node)
        if isinstance(node, ast.Call)
    ]
    assert len(calls) == 1
    return calls[0]


def resolve(graph, relpath, qualname):
    info = graph.function(relpath, qualname)
    assert info is not None
    return graph.resolve_call(only_call(info), info)


class TestResolution:
    def test_same_module_name(self, tmp_path):
        graph = make_graph(
            tmp_path,
            {
                "sim/a.py": """\
                def helper():
                    return 1


                def entry():
                    return helper()
                """,
            },
        )
        target = resolve(graph, "sim/a.py", "entry")
        assert target is not None
        assert target.qualname == "helper"

    def test_from_import_resolves_cross_module(self, tmp_path):
        graph = make_graph(
            tmp_path,
            {
                "sim/a.py": """\
                from sim.b import helper


                def entry():
                    return helper()
                """,
                "sim/b.py": """\
                def helper():
                    return 2
                """,
            },
        )
        target = resolve(graph, "sim/a.py", "entry")
        assert target is not None
        assert target.relpath == "sim/b.py"

    def test_package_qualified_import_resolves(self, tmp_path):
        graph = make_graph(
            tmp_path,
            {
                "sim/a.py": """\
                from pkg.sim.b import helper


                def entry():
                    return helper()
                """,
                "sim/b.py": """\
                def helper():
                    return 2
                """,
            },
        )
        target = resolve(graph, "sim/a.py", "entry")
        assert target is not None
        assert target.relpath == "sim/b.py"

    def test_module_alias(self, tmp_path):
        graph = make_graph(
            tmp_path,
            {
                "sim/a.py": """\
                import sim.b as helpers


                def entry():
                    return helpers.helper()
                """,
                "sim/b.py": """\
                def helper():
                    return 2
                """,
            },
        )
        target = resolve(graph, "sim/a.py", "entry")
        assert target is not None
        assert target.qualname == "helper"

    def test_self_method_with_base_class_walk(self, tmp_path):
        graph = make_graph(
            tmp_path,
            {
                "sim/a.py": """\
                class Base:
                    def shared(self):
                        return 0


                class Child(Base):
                    def entry(self):
                        return self.shared()
                """,
            },
        )
        target = resolve(graph, "sim/a.py", "Child.entry")
        assert target is not None
        assert target.qualname == "Base.shared"

    def test_constructor_typed_attribute(self, tmp_path):
        graph = make_graph(
            tmp_path,
            {
                "sim/a.py": """\
                class Helper:
                    def work(self):
                        return 1


                class Owner:
                    def __init__(self):
                        self.h = Helper()

                    def entry(self):
                        return self.h.work()
                """,
            },
        )
        target = resolve(graph, "sim/a.py", "Owner.entry")
        assert target is not None
        assert target.qualname == "Helper.work"

    def test_local_constructor_binding(self, tmp_path):
        graph = make_graph(
            tmp_path,
            {
                "sim/a.py": """\
                class Helper:
                    def work(self):
                        return 1


                def entry():
                    h = Helper()
                    return h.work()
                """,
            },
        )
        entry = graph.function("sim/a.py", "entry")
        closure = {fn.qualname for fn in graph.reachable([entry])}
        assert "Helper.work" in closure

    def test_class_call_resolves_to_init(self, tmp_path):
        graph = make_graph(
            tmp_path,
            {
                "sim/a.py": """\
                class Helper:
                    def __init__(self):
                        self.x = 1


                def entry():
                    return Helper()
                """,
            },
        )
        target = resolve(graph, "sim/a.py", "entry")
        assert target is not None
        assert target.qualname == "Helper.__init__"

    def test_unresolvable_call_returns_none(self, tmp_path):
        graph = make_graph(
            tmp_path,
            {
                "sim/a.py": """\
                def entry(d):
                    return d.get("x")
                """,
            },
        )
        assert resolve(graph, "sim/a.py", "entry") is None


class TestReachability:
    def test_reachable_closure_follows_cycles_once(self, tmp_path):
        graph = make_graph(
            tmp_path,
            {
                "sim/a.py": """\
                from sim.b import pong


                def ping(n):
                    return pong(n)


                def unrelated():
                    return 9
                """,
                "sim/b.py": """\
                from sim.a import ping


                def pong(n):
                    return ping(n)
                """,
            },
        )
        root = graph.function("sim/a.py", "ping")
        closure = {fn.qualname for fn in graph.reachable([root])}
        assert closure == {"ping", "pong"}

    def test_real_package_worker_closure_is_cross_module(self):
        import repro

        package_root = Path(repro.__file__).resolve().parent
        graph = CallGraph(SymbolTable.scan(package_root))
        root = graph.function("harness/orchestrator.py", "_worker_main")
        assert root is not None
        closure = graph.reachable([root])
        modules = {fn.relpath for fn in closure}
        # The worker entry point must pull in the simulation stack —
        # a tiny closure means import resolution silently broke.
        assert len(closure) > 20
        assert len(modules) > 5

"""Incremental analysis cache: correctness first, then speed."""

import time
from pathlib import Path

import repro
from repro.lint import LintEngine

PACKAGE_ROOT = Path(repro.__file__).resolve().parent
REPO_ROOT = PACKAGE_ROOT.parent.parent


def write_package(tmp_path):
    root = tmp_path / "pkg"
    (root / "sim").mkdir(parents=True)
    (root / "sim" / "a.py").write_text(
        "def alpha():\n    return 1\n"
    )
    (root / "sim" / "b.py").write_text(
        "def beta():\n    return 2\n"
    )
    return root


class TestCacheCorrectness:
    def test_edit_invalidates_only_the_touched_module(self, tmp_path):
        root = write_package(tmp_path)
        cache = tmp_path / "cache.json"
        engine = LintEngine(root, cache_path=cache)
        engine.run()
        assert engine.stats.module_hits == 0

        (root / "sim" / "b.py").write_text(
            "def beta():\n    return 3\n"
        )
        engine = LintEngine(root, cache_path=cache)
        engine.run()
        assert engine.stats.modules == 2
        assert engine.stats.module_hits == 1
        assert engine.stats.project_hit is False

    def test_unchanged_rerun_is_a_full_project_hit(self, tmp_path):
        root = write_package(tmp_path)
        cache = tmp_path / "cache.json"
        LintEngine(root, cache_path=cache).run()
        engine = LintEngine(root, cache_path=cache)
        engine.run()
        assert engine.stats.project_hit is True
        assert engine.stats.module_hits == engine.stats.modules == 2

    def test_no_cache_path_means_no_cache_file(self, tmp_path):
        root = write_package(tmp_path)
        engine = LintEngine(root)
        engine.run()
        assert engine.stats.module_hits == 0
        assert engine.stats.project_hit is False
        assert list(tmp_path.glob("*.json")) == []

    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path):
        root = write_package(tmp_path)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        engine = LintEngine(root, cache_path=cache)
        findings = engine.run()
        assert isinstance(findings, list)
        assert engine.stats.project_hit is False

    def test_explicit_paths_bypass_the_cache(self, tmp_path):
        root = write_package(tmp_path)
        cache = tmp_path / "cache.json"
        engine = LintEngine(root, cache_path=cache)
        engine.run(paths=[root / "sim" / "a.py"])
        assert not cache.exists()


class TestCacheSpeed:
    def test_warm_rerun_is_at_least_three_times_faster(self, tmp_path):
        cache = tmp_path / "cache.json"

        start = time.perf_counter()
        cold = LintEngine(
            PACKAGE_ROOT, repo_root=REPO_ROOT, cache_path=cache
        )
        cold_findings = cold.run()
        cold_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        warm = LintEngine(
            PACKAGE_ROOT, repo_root=REPO_ROOT, cache_path=cache
        )
        warm_findings = warm.run()
        warm_elapsed = time.perf_counter() - start

        assert warm.stats.project_hit is True
        assert [f.to_dict() for f in warm_findings] == [
            f.to_dict() for f in cold_findings
        ]
        assert warm_elapsed * 3 <= cold_elapsed

"""The simlint engine, registry, reporters — and the repo's own code."""

import json
from pathlib import Path

import pytest

import repro
from repro.lint import (
    FileRule,
    Finding,
    LintEngine,
    Severity,
    exit_code,
    lint_source,
    make_rules,
    render_json,
    render_text,
)
from repro.lint.engine import PARSE_ERROR_RULE_ID, check_module, rule
from repro.lint.symbols import SymbolTable, parse_module

PACKAGE_ROOT = Path(repro.__file__).resolve().parent
REPO_ROOT = PACKAGE_ROOT.parent.parent


class TestRegistry:
    def test_catalog_is_nonempty_sorted_and_unique(self):
        rules = make_rules()
        rule_ids = [r.rule_id for r in rules]
        assert len(rule_ids) >= 8
        assert rule_ids == sorted(rule_ids)
        assert len(set(rule_ids)) == len(rule_ids)

    def test_every_rule_has_identity_and_hint(self):
        for r in make_rules():
            assert r.rule_id.startswith("GRIT-")
            assert r.description
            assert r.hint

    def test_duplicate_rule_id_rejected(self):
        class Clone(FileRule):
            rule_id = make_rules()[0].rule_id
            description = "clone"

        with pytest.raises(ValueError):
            rule(Clone)

    def test_rule_without_id_rejected(self):
        class Anonymous(FileRule):
            description = "nameless"

        with pytest.raises(ValueError):
            rule(Anonymous)


class TestRepoIsClean:
    def test_lint_finds_nothing_in_the_package(self):
        engine = LintEngine(PACKAGE_ROOT, repo_root=REPO_ROOT)
        findings = engine.run()
        assert findings == [], render_text(findings)

    def test_path_selection_narrows_file_rules(self):
        engine = LintEngine(PACKAGE_ROOT, repo_root=REPO_ROOT)
        findings = engine.run(paths=[PACKAGE_ROOT / "uvm"])
        assert findings == [], render_text(findings)


class TestEngineMechanics:
    def test_findings_are_sorted(self):
        source = (
            "def b(y={}):\n"
            "    return y\n"
            "\n"
            "def a(x=[]):\n"
            "    return x\n"
        )
        findings = lint_source(source, relpath="harness/fixture.py")
        assert [f.line for f in findings] == [1, 4]

    def test_fixture_outside_package_is_linted(self, tmp_path):
        bad = tmp_path / "fixture.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        engine = LintEngine(PACKAGE_ROOT, repo_root=REPO_ROOT)
        findings = engine.run(paths=[bad])
        assert [f.rule_id for f in findings].count("GRIT-H001") == 1

    def test_unparsable_fixture_becomes_parse_error_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        engine = LintEngine(PACKAGE_ROOT, repo_root=REPO_ROOT)
        findings = engine.run(paths=[bad])
        parse_errors = [
            f for f in findings if f.rule_id == PARSE_ERROR_RULE_ID
        ]
        assert len(parse_errors) == 1
        assert parse_errors[0].severity is Severity.ERROR

    def test_single_walk_dispatch_reaches_all_rules(self, tmp_path):
        fixture = tmp_path / "fixture.py"
        fixture.write_text(
            "import time\n"
            "\n"
            "def f(x=[]):\n"
            "    try:\n"
            "        return time.time()\n"
            "    except:\n"
            "        return x\n"
        )
        module = parse_module(fixture, "uvm/fixture.py")
        found = {f.rule_id for f in check_module(module, make_rules())}
        assert {"GRIT-D001", "GRIT-H001", "GRIT-H002"} <= found


class TestReporters:
    def _findings(self):
        return [
            Finding(
                rule_id="GRIT-T001",
                severity=Severity.ERROR,
                path="uvm/x.py",
                line=3,
                col=4,
                message="boom",
                hint="do not boom",
            ),
            Finding(
                rule_id="GRIT-T002",
                severity=Severity.WARNING,
                path="sim/y.py",
                line=9,
                message="hmm",
            ),
        ]

    def test_text_report(self):
        text = render_text(self._findings())
        assert "uvm/x.py:3:4: GRIT-T001 [error] boom" in text
        assert "hint: do not boom" in text
        assert "simlint: 1 error(s), 1 warning(s)" in text
        assert render_text([]) == "simlint: no findings"

    def test_json_report_round_trips(self):
        data = json.loads(render_json(self._findings()))
        assert data["errors"] == 1
        assert data["warnings"] == 1
        assert data["findings"][0]["rule"] == "GRIT-T001"
        assert data["findings"][0]["line"] == 3

    def test_exit_code_policy(self):
        findings = self._findings()
        assert exit_code(findings) == 1
        assert exit_code([findings[1]]) == 0  # warnings do not gate
        assert exit_code([]) == 0


class TestSymbolTable:
    def test_scan_collects_modules_and_docs(self):
        symbols = SymbolTable.scan(PACKAGE_ROOT, REPO_ROOT)
        assert symbols.module("cli.py") is not None
        assert symbols.module("uvm/driver.py") is not None
        assert "GRIT" in symbols.docs_text
        assert symbols.parse_failures == ()

    def test_enum_members_and_uses(self):
        symbols = SymbolTable.scan(PACKAGE_ROOT, REPO_ROOT)
        members = dict(symbols.enum_members("stats/events.py", "EventKind"))
        assert "MIGRATION" in members
        uses = symbols.attribute_uses("EventKind")
        assert any(
            relpath.startswith("uvm/")
            for relpath, _ in uses.get("MIGRATION", ())
        )

"""Each simlint rule: one violating and one clean fixture."""

import textwrap

from repro.lint.engine import LintEngine, lint_source


def ids(findings):
    return [finding.rule_id for finding in findings]


def lint(source, relpath="uvm/fixture.py"):
    return lint_source(textwrap.dedent(source), relpath=relpath)


class TestWallClockRule:
    def test_flags_time_calls(self):
        findings = lint(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert ids(findings) == ["GRIT-D001"]
        assert "time.time()" in findings[0].message
        assert findings[0].path == "uvm/fixture.py"
        assert findings[0].line == 5

    def test_flags_datetime_and_from_imports(self):
        findings = lint(
            """
            from time import monotonic

            def stamp(datetime):
                return datetime.now()
            """
        )
        assert ids(findings) == ["GRIT-D001", "GRIT-D001"]

    def test_clean_and_out_of_scope(self):
        clean = """
        def stamp(clock):
            return clock
        """
        assert lint(clean) == []
        dirty = """
        import time

        def stamp():
            return time.time()
        """
        # The harness is allowed to read the wall clock.
        assert lint(dirty, relpath="harness/fixture.py") == []


class TestUnseededRngRule:
    def test_flags_global_random_state(self):
        findings = lint(
            """
            import random

            def pick():
                return random.randint(0, 3)
            """
        )
        assert ids(findings) == ["GRIT-D002"]

    def test_flags_numpy_legacy_api(self):
        findings = lint(
            """
            import numpy as np

            def pick():
                return np.random.rand()
            """
        )
        assert ids(findings) == ["GRIT-D002"]

    def test_flags_unseeded_constructor(self):
        findings = lint(
            """
            import random

            rng = random.Random()
            """
        )
        assert ids(findings) == ["GRIT-D002"]
        assert "without a seed" in findings[0].message

    def test_seeded_constructors_are_clean(self):
        clean = """
        import random
        import numpy as np

        rng = random.Random(42)
        gen = np.random.default_rng(7)
        """
        assert lint(clean) == []


class TestUnorderedIterationRule:
    def test_flags_set_attribute_iteration(self):
        findings = lint(
            """
            def drop(page):
                for replica in page.replicas:
                    release(replica)
            """,
            relpath="sim/fixture.py",
        )
        assert ids(findings) == ["GRIT-D003"]

    def test_flags_holders_and_assigned_sets(self):
        findings = lint(
            """
            def collapse(page, writer):
                losers = page.holders() - {writer}
                for loser in losers:
                    flush(loser)
            """
        )
        assert ids(findings) == ["GRIT-D003"]

    def test_flags_comprehension_over_set_literal(self):
        findings = lint(
            """
            def order(gpus):
                return [cost(g) for g in {1, 2, 3}]
            """,
            relpath="policies/fixture.py",
        )
        assert ids(findings) == ["GRIT-D003"]

    def test_sorted_is_the_escape_hatch(self):
        clean = """
        def drop(page, writer):
            losers = page.holders() - {writer}
            for loser in sorted(losers):
                flush(loser)
            for replica in sorted(page.replicas):
                release(replica)
        """
        assert lint(clean) == []

    def test_out_of_scope_directories_are_clean(self):
        dirty = """
        def drop(page):
            for replica in page.replicas:
                release(replica)
        """
        assert lint(dirty, relpath="harness/fixture.py") == []


class TestMutableDefaultRule:
    def test_flags_literals_and_constructors(self):
        findings = lint(
            """
            def a(x=[]):
                return x

            def b(*, y={}):
                return y

            def c(z=set()):
                return z
            """,
            relpath="harness/fixture.py",  # unscoped: applies everywhere
        )
        assert ids(findings) == ["GRIT-H001"] * 3

    def test_immutable_defaults_are_clean(self):
        clean = """
        def a(x=None, y=(), z=0):
            return x or list(y) or z
        """
        assert lint(clean, relpath="harness/fixture.py") == []


class TestBareExceptRule:
    def test_flags_bare_except(self):
        findings = lint(
            """
            def load():
                try:
                    return read()
                except:
                    return None
            """,
            relpath="workloads/fixture.py",
        )
        assert ids(findings) == ["GRIT-H002"]

    def test_named_exceptions_are_clean(self):
        clean = """
        def load():
            try:
                return read()
            except (OSError, ValueError):
                return None
        """
        assert lint(clean, relpath="workloads/fixture.py") == []


class TestLatencyChargeRule:
    def test_flags_literal_category(self):
        findings = lint(
            """
            def account(breakdown):
                breakdown.charge("local", 100)
            """,
            relpath="stats/fixture.py",
        )
        assert ids(findings) == ["GRIT-C003"]

    def test_member_variable_and_subscript_are_clean(self):
        clean = """
        def account(breakdown, category, name):
            breakdown.charge(LatencyCategory.LOCAL, 100)
            breakdown.charge(category, 50)
            breakdown.charge(LatencyCategory[name], 25)
        """
        assert lint(clean, relpath="stats/fixture.py") == []


class TestTimingKernelRoutingRule:
    def test_flags_raw_charging_constant_read(self):
        findings = lint(
            """
            def charge(m, scale):
                return int(m.config.latency.pipeline_flush * scale)
            """,
            relpath="uvm/fixture.py",
        )
        assert ids(findings) == ["GRIT-C007"]

    def test_flags_bare_latency_name(self):
        findings = lint(
            """
            def charge(latency):
                return latency.host_fault_service
            """,
            relpath="sim/fixture.py",
        )
        assert ids(findings) == ["GRIT-C007"]

    def test_kernel_methods_with_same_names_are_clean(self):
        clean = """
        def charge(machine, scale):
            cycles = machine.kernel.pipeline_flush(scale)
            cycles += machine.kernel.invalidation(2, scale)
            return cycles
        """
        assert lint(clean, relpath="uvm/fixture.py") == []

    def test_kernel_modules_may_read_constants(self):
        allowed = """
        def flush(self, scale):
            return int(self.latency.pipeline_flush * scale)
        """
        assert lint(allowed, relpath="sim/timing.py") == []

    def test_non_charging_latency_fields_are_clean(self):
        clean = """
        def discount(config):
            return config.latency.acud_discount
        """
        assert lint(clean, relpath="policies/fixture.py") == []


class TestCursorBatchApiRule:
    def test_flags_direct_cursor_next_loops(self):
        findings = lint(
            """
            def replay(self, gpu_id):
                while not self.cursors[gpu_id].exhausted:
                    vpn, is_write = self.cursors[gpu_id].next()
            """,
            relpath="sim/fixture.py",
        )
        assert ids(findings) == ["GRIT-C008"]
        assert "batch API" in findings[0].message

    def test_flags_bare_cursor_receiver(self):
        findings = lint(
            """
            def drain(cursor):
                return cursor.next()
            """,
            relpath="sim/fixture.py",
        )
        assert ids(findings) == ["GRIT-C008"]

    def test_batch_api_and_other_nexts_are_clean(self):
        clean = """
        def replay(self, gpu_id, iterator):
            vpns, writes = self.cursors[gpu_id].peek_batch(64)
            self.cursors[gpu_id].advance(len(vpns))
            return next(iterator), iterator.next()
        """
        assert lint(clean, relpath="sim/fixture.py") == []

    def test_pipeline_and_out_of_scope_modules_are_exempt(self):
        dirty = """
        def next_access(self, cursor):
            return cursor.next()
        """
        # pipeline.py owns the cursor; modules outside sim/ replay
        # traces however they like (characterization, harness, ...).
        assert lint(dirty, relpath="sim/pipeline.py") == []
        assert lint(dirty, relpath="analysis/fixture.py") == []


def _write_package(tmp_path, registry_body, docs=""):
    """Build a minimal fake package for the project-wide rules."""
    pkg = tmp_path / "pkg"
    (pkg / "policies").mkdir(parents=True)
    (pkg / "stats").mkdir()
    (pkg / "policies" / "__init__.py").write_text("")
    (pkg / "policies" / "base.py").write_text("class PlacementPolicy: pass\n")
    (pkg / "policies" / "rogue.py").write_text("class Rogue: pass\n")
    (pkg / "policies" / "registry.py").write_text(registry_body)
    (pkg / "stats" / "events.py").write_text(
        "import enum\n\n\n"
        "class EventKind(enum.Enum):\n"
        "    USED = 'used'\n"
        "    ORPHAN = 'orphan'\n"
    )
    (pkg / "emitter.py").write_text(
        "from pkg.stats.events import EventKind\n\n\n"
        "def emit(log, vpn):\n"
        "    log.emit(EventKind.USED, vpn)\n"
    )
    (pkg / "cli.py").write_text(
        "def build(sub):\n"
        "    sub.add_parser('frobnicate')\n"
    )
    (tmp_path / "README.md").write_text(docs)
    return pkg


class TestProjectRules:
    def test_unregistered_policy_and_orphan_event(self, tmp_path):
        pkg = _write_package(
            tmp_path,
            registry_body="_FACTORIES = {}\n",
            docs="run `frobnicate` to frobnicate",
        )
        engine = LintEngine(pkg, repo_root=tmp_path)
        found = ids(engine.run(paths=[]))
        assert "GRIT-C001" in found  # rogue.py not imported
        assert "GRIT-C002" in found  # EventKind.ORPHAN never emitted
        assert "GRIT-C004" not in found

    def test_undocumented_cli_subcommand(self, tmp_path):
        pkg = _write_package(
            tmp_path,
            registry_body="from repro.policies.rogue import Rogue\n",
            docs="nothing relevant here",
        )
        engine = LintEngine(pkg, repo_root=tmp_path)
        found = ids(engine.run(paths=[]))
        assert "GRIT-C004" in found
        assert "GRIT-C001" not in found

    def test_no_docs_text_degrades_to_noop(self, tmp_path):
        pkg = _write_package(
            tmp_path,
            registry_body="from repro.policies.rogue import Rogue\n",
        )
        (tmp_path / "README.md").unlink()
        engine = LintEngine(pkg, repo_root=tmp_path)
        assert "GRIT-C004" not in ids(engine.run(paths=[]))


def _write_obs_package(tmp_path, consumer="", obs_doc=None):
    """Minimal fake package exercising the metric-catalog rule."""
    pkg = tmp_path / "pkg"
    (pkg / "obs").mkdir(parents=True)
    (pkg / "obs" / "__init__.py").write_text("")
    (pkg / "obs" / "catalog.py").write_text(
        "USED_METRIC = 'obs.used.total'\n"
        "ORPHAN_METRIC = 'obs.orphan.total'\n"
        "METRICS = (USED_METRIC, ORPHAN_METRIC)\n"
    )
    if consumer:
        (pkg / "sampler.py").write_text(consumer)
    if obs_doc is not None:
        (tmp_path / "docs").mkdir(exist_ok=True)
        (tmp_path / "docs" / "observability.md").write_text(obs_doc)
    (tmp_path / "README.md").write_text("")
    return pkg


class TestMetricCatalogRule:
    CONSUMER = (
        "from pkg.obs import catalog\n\n\n"
        "def sample(registry):\n"
        "    registry.inc(catalog.USED_METRIC)\n"
    )
    BOTH_CONSUMER = (
        "from pkg.obs import catalog\n\n\n"
        "def sample(registry):\n"
        "    registry.inc(catalog.USED_METRIC)\n"
        "    registry.inc(catalog.ORPHAN_METRIC)\n"
    )

    def test_flags_unused_and_undocumented_metrics(self, tmp_path):
        pkg = _write_obs_package(
            tmp_path,
            consumer=self.CONSUMER,
            obs_doc="only `obs.used.total` is documented",
        )
        engine = LintEngine(pkg, repo_root=tmp_path)
        findings = [
            finding
            for finding in engine.run(paths=[])
            if finding.rule_id == "GRIT-C005"
        ]
        messages = [finding.message for finding in findings]
        assert any("ORPHAN_METRIC" in message for message in messages)
        assert any("obs.orphan.total" in message for message in messages)
        assert not any("USED_METRIC" in message for message in messages)

    def test_clean_catalog_passes(self, tmp_path):
        pkg = _write_obs_package(
            tmp_path,
            consumer=self.BOTH_CONSUMER,
            obs_doc="`obs.used.total` and `obs.orphan.total`",
        )
        engine = LintEngine(pkg, repo_root=tmp_path)
        assert "GRIT-C005" not in ids(engine.run(paths=[]))

    def test_missing_doc_degrades_to_usage_check_only(self, tmp_path):
        pkg = _write_obs_package(tmp_path, consumer=self.BOTH_CONSUMER)
        engine = LintEngine(pkg, repo_root=tmp_path)
        assert "GRIT-C005" not in ids(engine.run(paths=[]))

    def test_usage_inside_catalog_does_not_count(self, tmp_path):
        pkg = _write_obs_package(
            tmp_path,
            consumer="",
            obs_doc="`obs.used.total` and `obs.orphan.total`",
        )
        engine = LintEngine(pkg, repo_root=tmp_path)
        found = ids(engine.run(paths=[]))
        assert found.count("GRIT-C005") == 2


def _write_mechanic_package(tmp_path, executor_body):
    """Minimal fake package exercising the mechanic-executor rule."""
    pkg = tmp_path / "pkg"
    (pkg / "policies").mkdir(parents=True)
    (pkg / "uvm").mkdir()
    (pkg / "policies" / "__init__.py").write_text("")
    (pkg / "policies" / "registry.py").write_text("_FACTORIES = {}\n")
    (pkg / "policies" / "base.py").write_text(
        "import enum\n\n\n"
        "class Mechanic(enum.Enum):\n"
        "    ON_TOUCH = 'on_touch'\n"
        "    DUPLICATION = 'duplication'\n"
    )
    (pkg / "uvm" / "executor.py").write_text(executor_body)
    (tmp_path / "README.md").write_text("")
    return pkg


class TestMechanicExecutorRule:
    COVERED = (
        "from pkg.policies.base import Mechanic\n\n\n"
        "@executes(Mechanic.ON_TOUCH)\n"
        "def execute_on_touch(driver, gpu, page, is_write):\n"
        "    return 0\n\n\n"
        "def wire(executor):\n"
        "    executor.register(Mechanic.DUPLICATION, execute_on_touch)\n"
    )
    PARTIAL = (
        "from pkg.policies.base import Mechanic\n\n\n"
        "@executes(Mechanic.ON_TOUCH)\n"
        "def execute_on_touch(driver, gpu, page, is_write):\n"
        "    return 0\n"
    )

    def test_member_without_executor_is_flagged(self, tmp_path):
        pkg = _write_mechanic_package(tmp_path, self.PARTIAL)
        engine = LintEngine(pkg, repo_root=tmp_path)
        findings = [
            finding
            for finding in engine.run(paths=[])
            if finding.rule_id == "GRIT-C006"
        ]
        assert len(findings) == 1
        assert "Mechanic.DUPLICATION" in findings[0].message
        assert findings[0].path == "policies/base.py"

    def test_decorator_and_register_both_count(self, tmp_path):
        pkg = _write_mechanic_package(tmp_path, self.COVERED)
        engine = LintEngine(pkg, repo_root=tmp_path)
        assert "GRIT-C006" not in ids(engine.run(paths=[]))

    def test_no_mechanic_enum_degrades_to_noop(self, tmp_path):
        pkg = _write_mechanic_package(tmp_path, self.PARTIAL)
        (pkg / "policies" / "base.py").write_text("class Other: pass\n")
        engine = LintEngine(pkg, repo_root=tmp_path)
        assert "GRIT-C006" not in ids(engine.run(paths=[]))

"""The simflow rules (GRIT-F001..F005, P001/P002) on seeded corpora.

Each F-rule has a ``corpus/<rule>_bad`` mini-package it must fire on
and a ``corpus/<rule>_good`` fixed twin it must stay silent on.  The
corpora are real directory trees (not inline strings) so the passes
are exercised through the same engine path as ``grit-repro lint``.
"""

import textwrap
from pathlib import Path

from repro.lint import LintEngine
from repro.lint.dataflow import FunctionAnalyzer

CORPUS = Path(__file__).resolve().parent / "corpus"


def lint_corpus(name, rule_id):
    findings = LintEngine(CORPUS / name).run()
    return [f for f in findings if f.rule_id == rule_id]


def make_package(tmp_path, files):
    root = tmp_path / "pkg"
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return root


class TestTaintRule:
    def test_fires_on_cross_module_clock_leak(self):
        hits = lint_corpus("f001_bad", "GRIT-F001")
        assert len(hits) == 1
        finding = hits[0]
        assert finding.path == "sim/engine_mod.py"
        assert "time.time()" in finding.message
        assert ".charge" in finding.message
        notes = [step.note for step in finding.trace]
        assert any("time.time" in note for note in notes)
        assert any("returned from stamp()" in note for note in notes)
        assert any("through call to stamp()" in note for note in notes)
        assert "reaches" in notes[-1]

    def test_silent_on_fixed_corpus(self):
        assert lint_corpus("f001_good", "GRIT-F001") == []

    def test_trace_spans_both_modules(self):
        finding = lint_corpus("f001_bad", "GRIT-F001")[0]
        paths = {step.path for step in finding.trace}
        assert paths == {"sim/clockio.py", "sim/engine_mod.py"}

    def test_taint_survives_attribute_stores(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "sim/engine.py": """\
                import time


                class Engine:
                    def start(self):
                        self._t0 = time.time()

                    def finish(self, breakdown):
                        breakdown.charge("total", self._t0)
                """,
            },
        )
        findings = LintEngine(root).run()
        hits = [f for f in findings if f.rule_id == "GRIT-F001"]
        assert len(hits) == 1
        notes = " / ".join(step.note for step in hits[0].trace)
        assert "stored in self._t0" in notes

    def test_obs_scope_is_exempt(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "obs/prof.py": """\
                import time


                def account(breakdown):
                    breakdown.charge("wall", time.time())
                """,
            },
        )
        findings = LintEngine(root).run()
        assert [f for f in findings if f.rule_id == "GRIT-F001"] == []


class TestOrderRule:
    def test_fires_on_helper_returned_set(self):
        hits = lint_corpus("f002_bad", "GRIT-F002")
        assert len(hits) == 1
        finding = hits[0]
        assert finding.path == "sim/consume.py"
        assert "holders_of" in finding.message
        assert any(
            "returns a set" in step.note for step in finding.trace
        )

    def test_silent_when_sorted(self):
        assert lint_corpus("f002_good", "GRIT-F002") == []

    def test_syntactic_sets_in_sim_belong_to_d003(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "sim/x.py": """\
                def total():
                    acc = 0
                    for item in {1, 2, 3}:
                        acc += item
                    return acc
                """,
            },
        )
        findings = LintEngine(root).run()
        assert [f for f in findings if f.rule_id == "GRIT-F002"] == []
        assert [f for f in findings if f.rule_id == "GRIT-D003"]

    def test_syntactic_sets_outside_d003_scope_are_f002(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "harness/x.py": """\
                def total():
                    acc = 0
                    for item in {1, 2, 3}:
                        acc += item
                    return acc
                """,
            },
        )
        findings = LintEngine(root).run()
        assert [f for f in findings if f.rule_id == "GRIT-D003"] == []
        assert [f for f in findings if f.rule_id == "GRIT-F002"]


class TestConfigProvenance:
    def test_flags_dead_knob_and_unread_env_var(self):
        hits = lint_corpus("f003_bad", "GRIT-F003")
        messages = sorted(f.message for f in hits)
        assert len(hits) == 2
        assert "TunerConfig.dead_knob" in messages[0]
        assert "GRIT_TUNER" in messages[1]
        knob = next(f for f in hits if "dead_knob" in f.message)
        assert knob.path == "config.py"

    def test_silent_on_fixed_corpus(self):
        assert lint_corpus("f003_good", "GRIT-F003") == []

    def test_env_var_must_be_documented_in_config(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "config.py": """\
                import dataclasses


                @dataclasses.dataclass
                class C:
                    knob: int = 1
                """,
                "sim/use.py": """\
                import os


                def effective(config):
                    base = config.knob
                    return os.environ.get("GRIT_SECRET", base)
                """,
            },
        )
        findings = LintEngine(root).run()
        hits = [f for f in findings if f.rule_id == "GRIT-F003"]
        assert len(hits) == 1
        assert "round-trip" in hits[0].message


class TestCliProvenance:
    def test_flags_unread_flag_and_orphan_subcommand(self):
        hits = lint_corpus("f004_bad", "GRIT-F004")
        assert len(hits) == 2
        messages = " | ".join(sorted(f.message for f in hits))
        assert "--ghost-flag" in messages
        assert "'orphan'" in messages
        assert all(f.path == "cli.py" for f in hits)

    def test_silent_on_helper_chain_corpus(self):
        assert lint_corpus("f004_good", "GRIT-F004") == []


class TestWorkerSafety:
    def test_flags_swallow_leak_and_pass_only_handler(self):
        hits = lint_corpus("f005_bad", "GRIT-F005")
        assert len(hits) == 3
        messages = " | ".join(sorted(f.message for f in hits))
        assert "swallows BaseException" in messages
        assert "open() outside a with block" in messages
        assert "silently swallows Exception" in messages
        assert {f.path for f in hits} == {
            "harness/worker.py",
            "harness/jobs.py",
        }

    def test_silent_on_fixed_corpus(self):
        assert lint_corpus("f005_good", "GRIT-F005") == []


class TestHardening:
    """The analyzer degrades, it never crashes."""

    def test_syntax_error_degrades_to_parse_finding(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "sim/broken.py": "def oops(:\n",
                "sim/ok.py": """\
                import time


                def account(breakdown):
                    breakdown.charge("x", time.time())
                """,
            },
        )
        findings = LintEngine(root).run()
        assert [f for f in findings if f.rule_id == "GRIT-P000"]
        # The parseable module still gets the full flow analysis.
        assert [f for f in findings if f.rule_id == "GRIT-F001"]

    def test_circular_imports_and_recursion_terminate(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "sim/a.py": """\
                from sim.b import pong


                def ping(n):
                    if n <= 0:
                        return 0
                    return pong(n - 1)
                """,
                "sim/b.py": """\
                from sim.a import ping


                def pong(n):
                    return ping(n)
                """,
            },
        )
        findings = LintEngine(root).run()
        assert isinstance(findings, list)

    def test_dynamic_attribute_degrades_to_p001(self, tmp_path):
        root = make_package(
            tmp_path,
            {
                "sim/x.py": """\
                def install(obj, name, value):
                    setattr(obj, name, value)
                """,
            },
        )
        findings = LintEngine(root).run()
        hits = [f for f in findings if f.rule_id == "GRIT-P001"]
        assert len(hits) == 1
        assert hits[0].severity.value == "warning"
        assert "install()" in hits[0].message

    def test_analysis_failure_degrades_to_p002(
        self, tmp_path, monkeypatch
    ):
        root = make_package(
            tmp_path,
            {
                "sim/x.py": """\
                def fine():
                    return 1
                """,
            },
        )

        def boom(self):
            raise RuntimeError("synthetic analyzer bug")

        monkeypatch.setattr(FunctionAnalyzer, "analyze", boom)
        findings = LintEngine(root).run()
        hits = [f for f in findings if f.rule_id == "GRIT-P002"]
        assert hits, findings
        assert hits[0].severity.value == "warning"
        assert "synthetic analyzer bug" in hits[0].message

"""Fixed helper: managed handles, specific exception types."""


def run_job():
    with open("job.log", "w") as log:
        log.write("start")
    return 1

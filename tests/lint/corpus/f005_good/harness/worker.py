"""Fixed worker: failures reported, cancellation re-raised."""

import multiprocessing

from harness.jobs import run_job


def _worker_main(conn):
    try:
        conn.send(run_job())
    except Exception:
        conn.send("failed")
    except BaseException:
        conn.send("cancelled")
        raise
    finally:
        conn.close()


def spawn(conn):
    proc = multiprocessing.Process(target=_worker_main, args=(conn,))
    proc.start()
    return proc

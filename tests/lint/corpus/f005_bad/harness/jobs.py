"""A worker-reachable helper that leaks a handle and eats errors."""


def run_job():
    log = open("job.log", "w")
    try:
        log.write("start")
    except Exception:
        pass
    log.close()
    return 1

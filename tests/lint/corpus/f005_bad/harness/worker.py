"""Seeded GRIT-F005 violation: the worker swallows BaseException."""

import multiprocessing

from harness.jobs import run_job


def _worker_main(conn):
    try:
        conn.send(run_job())
    except BaseException:
        conn.send("failed")
    finally:
        conn.close()


def spawn(conn):
    proc = multiprocessing.Process(target=_worker_main, args=(conn,))
    proc.start()
    return proc

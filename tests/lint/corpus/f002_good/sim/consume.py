"""Fixed corpus: sorted() makes the iteration order explicit."""

from sim.groups import holders_of


def total(pages):
    count = 0
    for page in pages:
        for gpu in sorted(holders_of(page)):
            count += gpu
    return count

"""Same helper as the bad corpus: it still returns a set."""


def holders_of(page):
    owners = {page.owner}
    owners.add(page.home)
    return owners

"""Same shape as the bad corpus, but the value is deterministic."""

from sim.clockio import stamp


def account(breakdown):
    jitter = stamp()
    breakdown.charge("fault", jitter)

"""Fixed corpus: the helper derives its value from simulated state."""


def stamp():
    return 0.0

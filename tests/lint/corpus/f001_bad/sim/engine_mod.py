"""The tainted helper value crosses a module into cycle accounting."""

from sim.clockio import stamp


def account(breakdown):
    jitter = stamp()
    breakdown.charge("fault", jitter)

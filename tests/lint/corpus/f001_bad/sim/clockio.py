"""Seeded GRIT-F001 violation: a helper that reads the wall clock."""

import time


def stamp():
    return time.time()

"""Reads the knob and the env var that mirrors it."""

import os

TUNER_ENV = "GRIT_TUNER"


def effective(config):
    base = config.live_knob
    return int(os.environ.get(TUNER_ENV, base))

"""Fixed corpus: every knob is consumed.

The GRIT_TUNER environment variable mirrors ``TunerConfig.live_knob``
at runtime (documented here so the round-trip check passes).
"""

import dataclasses


@dataclasses.dataclass
class TunerConfig:
    live_knob: int = 4

"""Fixed corpus: helper-added flags, reads through a helper chain."""

import argparse


def _add_common(parser):
    parser.add_argument("--scale")


def _build_parser():
    parser = argparse.ArgumentParser()
    sub = parser.add_subparsers(dest="command")
    run = sub.add_parser("run")
    run.add_argument("--workload")
    _add_common(run)
    return parser


def _run_impl(args):
    return float(args.scale or 1.0) if args.workload else 0.0


def _cmd_run(args):
    return int(_run_impl(args))


def main(argv=None):
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    return 2

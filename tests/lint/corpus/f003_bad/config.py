"""Seeded GRIT-F003 violation: one knob is dead."""

import dataclasses


@dataclasses.dataclass
class TunerConfig:
    live_knob: int = 4
    dead_knob: int = 8

    def __post_init__(self):
        # Validation alone is not consumption: the knob stays dead.
        if self.dead_knob <= 0:
            raise ValueError("dead_knob must be positive")

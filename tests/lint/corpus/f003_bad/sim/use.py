"""Reads only the live knob; names an env var nobody reads."""

TUNER_ENV = "GRIT_TUNER"


def effective(config):
    return config.live_knob * 2

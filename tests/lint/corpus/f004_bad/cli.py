"""Seeded GRIT-F004 violations: unread flag, undispatched command."""

import argparse


def _build_parser():
    parser = argparse.ArgumentParser()
    sub = parser.add_subparsers(dest="command")
    run = sub.add_parser("run")
    run.add_argument("--workload")
    run.add_argument("--ghost-flag")
    sub.add_parser("orphan")
    return parser


def _cmd_run(args):
    return 0 if args.workload else 1


def main(argv=None):
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    return 2

"""Iterating the helper-returned set leaks its order."""

from sim.groups import holders_of


def total(pages):
    count = 0
    for page in pages:
        for gpu in holders_of(page):
            count += gpu
    return count

"""Seeded GRIT-F002 violation: a helper that hands back a set."""


def holders_of(page):
    owners = {page.owner}
    owners.add(page.home)
    return owners

"""Tree-based neighborhood prefetcher (Section VI-E)."""

import pytest

from repro.config import SystemConfig
from repro.policies.on_touch import OnTouchPolicy
from repro.prefetch.tree import (
    LEAF_PAGES,
    NUM_LEAVES,
    REGION_PAGES,
    TreePrefetcher,
)
from repro.uvm.driver import UvmDriver
from repro.uvm.machine import MachineState


def make_driver(footprint=2048):
    machine = MachineState.build(SystemConfig(num_gpus=2), footprint)
    return UvmDriver(machine, OnTouchPolicy())


@pytest.fixture
def setup():
    driver = make_driver()
    prefetcher = TreePrefetcher()
    prefetcher.bind(driver)
    return driver, prefetcher


class TestGeometry:
    def test_tree_matches_paper_shape(self):
        # 2 MB regions of 64 KB leaves.
        assert REGION_PAGES == 512
        assert LEAF_PAGES == 16
        assert NUM_LEAVES == 32

    def test_node_capacity_halves_per_level(self):
        assert TreePrefetcher._node_capacity(1) == 512  # root
        assert TreePrefetcher._node_capacity(2) == 256
        assert TreePrefetcher._node_capacity(32) == 16  # leaf


class TestTriggering:
    def test_no_prefetch_below_threshold(self, setup):
        driver, prefetcher = setup
        # Touch under half of the smallest non-leaf span (32 pages).
        for vpn in range(16):
            driver.handle_local_fault(0, vpn, False)
            prefetcher.on_install(0, vpn)
        assert prefetcher.prefetched_pages == 0

    def test_crossing_half_occupancy_prefetches_span(self, setup):
        driver, prefetcher = setup
        # Touch 17 of the 32 pages under node (leaves 0-1): > 50%.
        for vpn in range(17):
            driver.handle_local_fault(0, vpn, False)
            prefetcher.on_install(0, vpn)
        assert prefetcher.prefetched_pages > 0
        machine = driver.machine
        resident = sum(
            1 for vpn in range(32) if vpn in machine.gpus[0].dram
        )
        assert resident >= 32 - machine.gpus[0].dram.evictions

    def test_fired_nodes_do_not_refire(self, setup):
        driver, prefetcher = setup
        for vpn in range(17):
            driver.handle_local_fault(0, vpn, False)
            prefetcher.on_install(0, vpn)
        # Higher-occupancy installs may escalate to *parent* nodes, but a
        # node that fired once never fires again.
        fired = set(prefetcher._fired[(0, 0)])
        prefetcher.on_install(0, 17)
        prefetcher.on_install(0, 18)
        assert fired <= prefetcher._fired[(0, 0)]
        # Once the root has fired, nothing further can trigger.
        while 1 not in prefetcher._fired[(0, 0)]:
            prefetcher.on_install(0, 19)
        total = prefetcher.prefetched_pages
        prefetcher.on_install(0, 20)
        assert prefetcher.prefetched_pages == total

    def test_prefetch_skips_pages_owned_elsewhere(self, setup):
        driver, prefetcher = setup
        driver.handle_local_fault(1, 20, False)  # GPU 1 owns page 20
        for vpn in range(17):
            driver.handle_local_fault(0, vpn, False)
            prefetcher.on_install(0, vpn)
        assert driver.machine.central_pt.get(20).owner == 1

    def test_regions_tracked_independently(self, setup):
        driver, prefetcher = setup
        driver.handle_local_fault(0, REGION_PAGES + 5, False)
        prefetcher.on_install(0, REGION_PAGES + 5)
        assert prefetcher.prefetched_pages == 0

    def test_per_gpu_trees_are_independent(self, setup):
        driver, prefetcher = setup
        for vpn in range(10):
            driver.handle_local_fault(0, vpn, False)
            prefetcher.on_install(0, vpn)
        for vpn in range(10, 17):
            driver.handle_local_fault(1, vpn, False)
            prefetcher.on_install(1, vpn)
        # Neither GPU alone crossed the threshold.
        assert prefetcher.prefetched_pages == 0

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            TreePrefetcher(threshold=0.0)

"""Trace persistence: save/load :class:`WorkloadTrace` as ``.npz``.

The simulator is trace-driven, so any external tool (a real GPU
profiler, another simulator, a custom generator) can feed it by writing
this format: one compressed numpy archive holding, per GPU ``i``,
``vpns_i`` (int64, 4 KB virtual page numbers) and ``writes_i`` (bool),
plus a small JSON metadata blob.
"""

from __future__ import annotations

import json
import os
from typing import List, Tuple

import numpy as np

from repro.errors import TraceError
from repro.workloads.base import WorkloadSpec, WorkloadTrace

#: Format version written into every archive.
FORMAT_VERSION = 1


def save_trace(trace: WorkloadTrace, path: str | os.PathLike) -> None:
    """Write a trace to ``path`` (``.npz``, compressed)."""
    arrays = {}
    for gpu, (vpns, writes) in enumerate(trace.streams):
        arrays[f"vpns_{gpu}"] = vpns.astype(np.int64)
        arrays[f"writes_{gpu}"] = writes.astype(bool)
    meta = {
        "version": FORMAT_VERSION,
        "name": trace.name,
        "num_gpus": trace.num_gpus,
        "footprint_pages": trace.footprint_pages,
        "metadata": _jsonable(trace.metadata),
    }
    if trace.spec is not None:
        meta["spec"] = {
            "name": trace.spec.name,
            "full_name": trace.spec.full_name,
            "suite": trace.spec.suite,
            "access_pattern": trace.spec.access_pattern,
            "footprint_mb": trace.spec.footprint_mb,
        }
    arrays["meta_json"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_trace(path: str | os.PathLike) -> WorkloadTrace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path) as archive:
        if "meta_json" not in archive:
            raise TraceError(f"{path}: not a repro trace archive")
        meta_bytes = bytes(archive["meta_json"].tobytes())
        meta = json.loads(meta_bytes.decode("utf-8"))
        version = meta.get("version")
        if version != FORMAT_VERSION:
            raise TraceError(
                f"{path}: unsupported trace format version {version!r}"
            )
        num_gpus = meta["num_gpus"]
        streams: List[Tuple[np.ndarray, np.ndarray]] = []
        for gpu in range(num_gpus):
            try:
                vpns = archive[f"vpns_{gpu}"]
                writes = archive[f"writes_{gpu}"]
            except KeyError:
                raise TraceError(
                    f"{path}: missing stream arrays for GPU {gpu}"
                ) from None
            streams.append(
                (vpns.astype(np.int64), writes.astype(bool))
            )
    spec = None
    if "spec" in meta:
        spec = WorkloadSpec(**meta["spec"])
    return WorkloadTrace(
        name=meta["name"],
        num_gpus=num_gpus,
        footprint_pages=meta["footprint_pages"],
        streams=streams,
        spec=spec,
        metadata=meta.get("metadata", {}),
    )


def _jsonable(value):
    """Coerce metadata values into JSON-serializable types."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value

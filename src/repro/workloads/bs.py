"""BS — Bitonic Sort (AMDAPPSDK; Table II).

Random pattern: each sorting stage compares elements at power-of-two
partner offsets that span the whole array, so every GPU reads *and
writes* all over the shared data — the all-shared read-write case where
access-counter migration wins and duplication's write collapse storms
(Figures 1, 5, 9).
"""

from __future__ import annotations

import numpy as np

from repro.workloads import patterns
from repro.workloads.base import (
    WorkloadSpec,
    WorkloadTrace,
    merge_phase_streams,
)

SPEC = WorkloadSpec(
    name="bs",
    full_name="Bitonic Sort",
    suite="AMDAPPSDK",
    access_pattern="Random",
    footprint_mb=30,
)

#: Sorting stages (each doubles the partner stride).
NUM_STAGES = 10


def generate(
    num_gpus: int = 4, scale: float = 1.0, seed: int = 23
) -> WorkloadTrace:
    """Build the BS trace: strided partner read-writes over one array."""
    rng = np.random.default_rng(seed)
    array_pages = max(num_gpus * 16, int(2000 * scale))
    accesses_per_stage = max(2, int(2000 * scale))

    phases = []
    for stage in range(NUM_STAGES):
        stride = 1 << (stage % max(1, array_pages.bit_length() - 2))
        per_gpu = []
        for gpu in range(num_gpus):
            per_gpu.append(
                patterns.strided_partner_accesses(
                    base=0,
                    num_pages=array_pages,
                    stride=stride,
                    count=accesses_per_stage,
                    write_ratio=0.5,
                    rng=rng,
                )
            )
        phases.append(per_gpu)

    return WorkloadTrace(
        name="bs",
        num_gpus=num_gpus,
        footprint_pages=array_pages,
        streams=merge_phase_streams(phases),
        spec=SPEC,
        metadata={"stages": NUM_STAGES, "array_pages": array_pages},
    )

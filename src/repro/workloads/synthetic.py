"""Parameterized synthetic workloads.

The Table II generators are calibrated reproductions of specific
applications; these are the *knobs-exposed* versions for exploring
policy behaviour directly: dial sharing, read/write mix, hotness, and
phase structure, and watch which placement scheme wins.

Each builder returns a normal :class:`WorkloadTrace`, so synthetic
workloads run through the same engine, policies, and analysis as
everything else.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.workloads import patterns
from repro.workloads.base import (
    WorkloadSpec,
    WorkloadTrace,
    merge_phase_streams,
)


def _spec(name: str, pattern: str) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        full_name=f"synthetic {name}",
        suite="synthetic",
        access_pattern=pattern,
        footprint_mb=0,
    )


def uniform_random(
    num_gpus: int = 4,
    pages: int = 512,
    accesses_per_gpu: int = 4000,
    write_ratio: float = 0.2,
    phases: int = 2,
    burst_length: int = 4,
    seed: int = 1,
) -> WorkloadTrace:
    """Every GPU sprays uniformly over one shared region.

    With writes this is the all-shared read-write case (access-counter
    territory); with ``write_ratio=0`` it becomes read-shared
    (duplication territory).
    """
    if pages < 1 or accesses_per_gpu < 1 or phases < 1:
        raise TraceError("pages, accesses and phases must be positive")
    rng = np.random.default_rng(seed)
    region = patterns.page_range(0, pages)
    per_phase = max(1, accesses_per_gpu // phases)
    phase_streams = [
        [
            patterns.random_accesses(
                region,
                count=per_phase,
                write_ratio=write_ratio,
                rng=rng,
                burst_length=burst_length,
            )
            for _ in range(num_gpus)
        ]
        for _ in range(phases)
    ]
    return WorkloadTrace(
        name="uniform_random",
        num_gpus=num_gpus,
        footprint_pages=pages,
        streams=merge_phase_streams(phase_streams),
        spec=_spec("uniform_random", "Random"),
        metadata={"write_ratio": write_ratio, "phases": phases},
    )


def hot_cold(
    num_gpus: int = 4,
    pages: int = 1024,
    accesses_per_gpu: int = 4000,
    hot_fraction: float = 0.05,
    hot_weight: float = 0.8,
    write_ratio: float = 0.0,
    seed: int = 2,
) -> WorkloadTrace:
    """A hot prefix re-read by every GPU over a sparse cold tail.

    The canonical duplication-vs-counter tradeoff: duplication pays off
    on the hot set and wastes frames on the tail; GRIT's fault threshold
    separates the two.
    """
    rng = np.random.default_rng(seed)
    region = patterns.page_range(0, pages)
    streams = [
        patterns.random_accesses(
            region,
            count=accesses_per_gpu,
            write_ratio=write_ratio,
            rng=rng,
            hot_fraction=hot_fraction,
            hot_weight=hot_weight,
            burst_length=2,
        )
        for _ in range(num_gpus)
    ]
    return WorkloadTrace(
        name="hot_cold",
        num_gpus=num_gpus,
        footprint_pages=pages,
        streams=streams,
        spec=_spec("hot_cold", "Random"),
        metadata={"hot_fraction": hot_fraction, "hot_weight": hot_weight},
    )


def producer_consumer(
    num_gpus: int = 4,
    buffer_pages: int = 64,
    accesses_per_page: int = 16,
    handoffs: int = 6,
    rewrite_rounds: int = 1,
    seed: int = 3,
) -> WorkloadTrace:
    """Pipelined buffers written by GPU ``g`` and read by ``g+1``.

    ``rewrite_rounds`` controls how many times each buffer is
    re-written after being consumed (each extra round forces one write
    collapse under duplication and one more migration under on-touch).
    """
    if num_gpus < 2:
        raise TraceError("producer-consumer needs at least two GPUs")
    rng = np.random.default_rng(seed)
    total_buffers = num_gpus * handoffs
    total_pages = total_buffers * buffer_pages

    def buffer_region(gpu: int, handoff: int) -> np.ndarray:
        """Pages of one GPU-and-handoff buffer."""
        index = gpu * handoffs + handoff
        return patterns.page_range(index * buffer_pages, buffer_pages)

    phase_streams = []
    for handoff in range(handoffs):
        per_gpu = [[] for _ in range(num_gpus)]
        for gpu in range(num_gpus):
            for _ in range(rewrite_rounds + 1):
                per_gpu[gpu].append(
                    patterns.sweep(
                        buffer_region(gpu, handoff),
                        accesses_per_page=accesses_per_page,
                        write_ratio=0.9,
                        rng=rng,
                    )
                )
            if gpu > 0 and handoff > 0:
                per_gpu[gpu].append(
                    patterns.sweep(
                        buffer_region(gpu - 1, handoff - 1),
                        accesses_per_page=accesses_per_page,
                        write_ratio=0.0,
                    )
                )
        phase_streams.append(
            [patterns.concat(streams) for streams in per_gpu]
        )
    return WorkloadTrace(
        name="producer_consumer",
        num_gpus=num_gpus,
        footprint_pages=total_pages,
        streams=merge_phase_streams(phase_streams),
        spec=_spec("producer_consumer", "Adjacent"),
        metadata={"handoffs": handoffs, "rewrite_rounds": rewrite_rounds},
    )


def halo_exchange(
    num_gpus: int = 4,
    chunk_pages: int = 128,
    boundary_fraction: float = 0.25,
    iterations: int = 6,
    accesses_per_page: int = 6,
    write_ratio: float = 0.4,
    seed: int = 4,
) -> WorkloadTrace:
    """Stencil-style bands: each GPU sweeps its band and reads both
    neighbours' boundary strips every iteration."""
    if not 0.0 < boundary_fraction <= 1.0:
        raise TraceError("boundary_fraction must be within (0, 1]")
    rng = np.random.default_rng(seed)
    total_pages = num_gpus * chunk_pages
    chunks = patterns.split_region(0, total_pages, num_gpus)
    boundary = max(1, int(chunk_pages * boundary_fraction))

    phase_streams = []
    for _ in range(iterations):
        per_gpu = []
        for gpu in range(num_gpus):
            streams = [
                patterns.sweep(
                    chunks[gpu],
                    accesses_per_page=accesses_per_page,
                    write_ratio=write_ratio,
                    rng=rng,
                )
            ]
            if gpu > 0:
                streams.append(
                    patterns.sweep(
                        chunks[gpu - 1][-boundary:], 2, write_ratio=0.0
                    )
                )
            if gpu + 1 < num_gpus:
                streams.append(
                    patterns.sweep(
                        chunks[gpu + 1][:boundary], 2, write_ratio=0.0
                    )
                )
            per_gpu.append(patterns.concat(streams))
        phase_streams.append(per_gpu)
    return WorkloadTrace(
        name="halo_exchange",
        num_gpus=num_gpus,
        footprint_pages=total_pages,
        streams=merge_phase_streams(phase_streams),
        spec=_spec("halo_exchange", "Adjacent"),
        metadata={
            "boundary_fraction": boundary_fraction,
            "iterations": iterations,
        },
    )

"""DNN model-parallel training traces — VGG16 and ResNet18 (Section VI-F).

Model parallelism splits a network's layers across the GPUs.  Each
training iteration is a forward pass (each GPU reads its own weights,
reads the activations its upstream neighbour produced, writes its own
activations) followed by a backward pass (gradients flow the other way
and weights are read-modified-written by their owner).  Activations and
gradients are the producer-consumer shared pages; weights are private.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.errors import TraceError
from repro.workloads import patterns
from repro.workloads.base import (
    WorkloadSpec,
    WorkloadTrace,
    merge_phase_streams,
)


@dataclasses.dataclass(frozen=True)
class LayerShape:
    """Relative page weights of one layer's tensors."""

    name: str
    weight_pages: int
    activation_pages: int


#: Coarse VGG16 structure: convolution blocks grow in channel count
#: (weights) while spatial size (activations) shrinks; the classifier
#: head is weight-dominated.
VGG16_LAYERS = [
    LayerShape("conv1", 4, 48),
    LayerShape("conv2", 12, 40),
    LayerShape("conv3", 30, 28),
    LayerShape("conv4", 56, 18),
    LayerShape("conv5", 56, 10),
    LayerShape("fc", 160, 4),
]

#: Coarse ResNet18 structure: four residual stages plus the stem/head.
RESNET18_LAYERS = [
    LayerShape("stem", 4, 40),
    LayerShape("stage1", 12, 32),
    LayerShape("stage2", 24, 22),
    LayerShape("stage3", 48, 14),
    LayerShape("stage4", 90, 8),
    LayerShape("head", 24, 4),
]

SPECS = {
    "vgg16": WorkloadSpec(
        name="vgg16",
        full_name="VGG16 model parallelism",
        suite="DNN",
        access_pattern="PC-shared pipeline",
        footprint_mb=0,
    ),
    "resnet18": WorkloadSpec(
        name="resnet18",
        full_name="ResNet18 model parallelism",
        suite="DNN",
        access_pattern="PC-shared pipeline",
        footprint_mb=0,
    ),
}


def _assign_layers(layers: List[LayerShape], num_gpus: int) -> List[int]:
    """Assign consecutive layers to GPUs, balancing total memory pages.

    Each layer's footprint is its weights plus two activation-sized
    tensors (activations and gradients); the split point for GPU ``g``
    is where the cumulative footprint crosses ``(g+1)/num_gpus`` of the
    total, so every GPU gets a contiguous, roughly equal slice.
    """
    costs = [
        layer.weight_pages + 2 * layer.activation_pages for layer in layers
    ]
    total = sum(costs)
    assignment: List[int] = []
    cumulative = 0
    for cost in costs:
        midpoint = cumulative + cost / 2
        gpu = min(num_gpus - 1, int(midpoint * num_gpus / total))
        assignment.append(gpu)
        cumulative += cost
    # Contiguity is guaranteed by the monotone midpoint; make sure GPU 0
    # owns the first layer even for degenerate shapes.
    assignment[0] = 0
    return assignment


def generate_dnn(
    model: str,
    num_gpus: int = 4,
    scale: float = 1.0,
    seed: int = 37,
    parallelism: str = "model",
) -> WorkloadTrace:
    """Build a training trace for ``model``.

    ``parallelism="model"`` splits layers across GPUs (the paper's
    Figure 31 setup: activations/gradients are producer-consumer shared
    between pipeline neighbours).  ``parallelism="data"`` replicates the
    model and shards the batch: weights and activations are private, but
    the gradient all-reduce makes every gradient page all-shared
    read-write — the access pattern where counter-based migration (and
    GRIT's AC mode) shines.
    """
    if parallelism == "data":
        return _generate_data_parallel(model, num_gpus, scale, seed)
    if parallelism != "model":
        raise TraceError(f"unknown parallelism {parallelism!r}")
    rng = np.random.default_rng(seed)
    try:
        layers = {"vgg16": VGG16_LAYERS, "resnet18": RESNET18_LAYERS}[model]
    except KeyError:
        raise TraceError(f"unknown DNN model {model!r}") from None
    page_scale = max(1.0, 8.0 * scale)
    assignment = _assign_layers(layers, num_gpus)
    iterations = 6

    # Lay out regions: weights, activations, gradients per layer.
    cursor = 0
    weight_regions = []
    act_regions = []
    grad_regions = []
    for layer in layers:
        wp = max(2, int(layer.weight_pages * page_scale))
        ap = max(2, int(layer.activation_pages * page_scale))
        weight_regions.append(patterns.page_range(cursor, wp))
        cursor += wp
        act_regions.append(patterns.page_range(cursor, ap))
        cursor += ap
        grad_regions.append(patterns.page_range(cursor, ap))
        cursor += ap
    total_pages = cursor

    phases = []
    for _ in range(iterations):
        forward = [[] for _ in range(num_gpus)]
        backward = [[] for _ in range(num_gpus)]
        for index, layer in enumerate(layers):
            gpu = assignment[index]
            # Forward: read weights, read upstream activations, write own.
            forward[gpu].append(
                patterns.sweep(weight_regions[index], 2, write_ratio=0.0)
            )
            if index > 0:
                forward[gpu].append(
                    patterns.sweep(act_regions[index - 1], 4, write_ratio=0.0)
                )
            forward[gpu].append(
                patterns.sweep(act_regions[index], 4, write_ratio=1.0)
            )
            # Backward: read downstream gradients, write own, update
            # weights (read-modify-write).
            if index + 1 < len(layers):
                backward[gpu].append(
                    patterns.sweep(grad_regions[index + 1], 4, write_ratio=0.0)
                )
            backward[gpu].append(
                patterns.sweep(grad_regions[index], 4, write_ratio=1.0)
            )
            backward[gpu].append(
                patterns.sweep(weight_regions[index], 2, write_ratio=0.5)
            )
        phases.append([patterns.concat(streams) for streams in forward])
        phases.append([patterns.concat(streams) for streams in backward])

    return WorkloadTrace(
        name=model,
        num_gpus=num_gpus,
        footprint_pages=total_pages,
        streams=merge_phase_streams(phases),
        spec=SPECS[model],
        metadata={
            "iterations": iterations,
            "layers": [layer.name for layer in layers],
            "assignment": assignment,
        },
    )


def _generate_data_parallel(
    model: str, num_gpus: int, scale: float, seed: int
) -> WorkloadTrace:
    """Data-parallel training: replicated model, all-reduced gradients."""
    rng = np.random.default_rng(seed)
    try:
        layers = {"vgg16": VGG16_LAYERS, "resnet18": RESNET18_LAYERS}[model]
    except KeyError:
        raise TraceError(f"unknown DNN model {model!r}") from None
    page_scale = max(1.0, 4.0 * scale)
    iterations = 4
    weight_pages = max(
        4, int(sum(l.weight_pages for l in layers) * page_scale)
    )
    act_pages = max(
        4, int(sum(l.activation_pages for l in layers) * page_scale)
    )
    grad_pages = weight_pages  # gradients mirror the weights

    cursor = 0
    # Per-GPU weight replicas and activation shards (private).
    weight_replicas = []
    act_shards = []
    for _ in range(num_gpus):
        weight_replicas.append(patterns.page_range(cursor, weight_pages))
        cursor += weight_pages
        act_shards.append(patterns.page_range(cursor, act_pages))
        cursor += act_pages
    # One shared gradient buffer, all-reduced by everyone.
    gradients = patterns.page_range(cursor, grad_pages)
    cursor += grad_pages
    total_pages = cursor

    phases = []
    for _ in range(iterations):
        compute = []
        for gpu in range(num_gpus):
            compute.append(
                patterns.concat(
                    [
                        patterns.sweep(weight_replicas[gpu], 2, 0.0),
                        patterns.sweep(
                            act_shards[gpu], 2, write_ratio=0.5, rng=rng
                        ),
                    ]
                )
            )
        phases.append(compute)
        # All-reduce: every GPU reads and accumulates into every
        # gradient page (ring reduce at page granularity).
        allreduce = [
            patterns.sweep(gradients, 2, write_ratio=0.5, rng=rng)
            for _ in range(num_gpus)
        ]
        phases.append(allreduce)
        # Weight update from the reduced gradients (private writes).
        update = [
            patterns.concat(
                [
                    patterns.sweep(gradients, 1, write_ratio=0.0),
                    patterns.sweep(
                        weight_replicas[gpu], 1, write_ratio=1.0
                    ),
                ]
            )
            for gpu in range(num_gpus)
        ]
        phases.append(update)

    return WorkloadTrace(
        name=f"{model}_dp",
        num_gpus=num_gpus,
        footprint_pages=total_pages,
        streams=merge_phase_streams(phases),
        spec=SPECS[model],
        metadata={
            "iterations": iterations,
            "parallelism": "data",
            "gradient_pages": grad_pages,
        },
    )


def generate_vgg16(
    num_gpus: int = 4, scale: float = 1.0, seed: int = 37
) -> WorkloadTrace:
    """Registry entry point for the VGG16 model-parallel trace."""
    return generate_dnn("vgg16", num_gpus=num_gpus, scale=scale, seed=seed)


def generate_resnet18(
    num_gpus: int = 4, scale: float = 1.0, seed: int = 41
) -> WorkloadTrace:
    """Registry entry point for the ResNet18 model-parallel trace."""
    return generate_dnn("resnet18", num_gpus=num_gpus, scale=scale, seed=seed)

"""BFS — Breadth-First Search (SHOC; Table II).

Random access pattern: every GPU probes the read-only CSR graph at
unpredictable offsets, so nearly every touched graph page ends up shared
— but sparsely, with only a handful of touches each, while a small set
of high-degree "hub" pages is re-read constantly.  The heavily written
state is each GPU's small private frontier; the bulk of private accesses
go to read-only per-GPU lookup structures.  Accesses are therefore
read-dominated (Figure 9) and mostly land on read-only pages, which is
why duplication wins (Figure 1) despite the sea of shared pages carrying
few accesses each (Figure 4).
"""

from __future__ import annotations

import numpy as np

from repro.workloads import patterns
from repro.workloads.base import (
    WorkloadSpec,
    WorkloadTrace,
    merge_phase_streams,
)

SPEC = WorkloadSpec(
    name="bfs",
    full_name="Breadth-first Search",
    suite="SHOC",
    access_pattern="Random",
    footprint_mb=32,
)

#: BFS levels (frontier expansions).
NUM_LEVELS = 6
#: Read-only per-GPU lookup pages (cost arrays, level maps).
PRIVATE_READ_PAGES = 30
#: Writable per-GPU frontier/visited pages.
FRONTIER_PAGES = 10


def generate(
    num_gpus: int = 4, scale: float = 1.0, seed: int = 19
) -> WorkloadTrace:
    """Build the BFS trace: sparse shared graph reads, hot private state."""
    rng = np.random.default_rng(seed)
    graph_pages_count = max(num_gpus * 32, int(1200 * scale))
    graph_pages = patterns.page_range(0, graph_pages_count)
    private_base = graph_pages_count
    private_pages = PRIVATE_READ_PAGES + FRONTIER_PAGES
    graph_reads_per_level = max(1, int(1600 * scale))
    private_accesses_per_level = max(1, int(1800 * scale))
    total_pages = private_base + num_gpus * private_pages

    phases = []
    for _ in range(NUM_LEVELS):
        per_gpu = []
        for gpu in range(num_gpus):
            base = private_base + gpu * private_pages
            graph = patterns.random_accesses(
                graph_pages,
                count=graph_reads_per_level,
                write_ratio=0.0,
                rng=rng,
                # High-degree hub vertices draw most of the traffic; the
                # long tail is touched once or twice by random GPUs.
                hot_fraction=0.03,
                hot_weight=0.65,
                burst_length=1,
            )
            lookups = patterns.random_accesses(
                patterns.page_range(base, PRIVATE_READ_PAGES),
                count=int(private_accesses_per_level * 0.7),
                write_ratio=0.0,
                rng=rng,
            )
            frontier = patterns.random_accesses(
                patterns.page_range(
                    base + PRIVATE_READ_PAGES, FRONTIER_PAGES
                ),
                count=private_accesses_per_level
                - int(private_accesses_per_level * 0.7),
                write_ratio=0.5,
                rng=rng,
            )
            per_gpu.append(
                patterns.interleave([graph, lookups, frontier], rng)
            )
        phases.append(per_gpu)

    return WorkloadTrace(
        name="bfs",
        num_gpus=num_gpus,
        footprint_pages=total_pages,
        streams=merge_phase_streams(phases),
        spec=SPEC,
        metadata={"levels": NUM_LEVELS, "graph_pages": graph_pages_count},
    )

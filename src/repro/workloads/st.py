"""ST — Stencil 2D (SHOC; Table II).

Adjacent pattern where virtually every page is shared read-write: each
GPU owns a band of rows, re-reads and re-writes it every iteration, and
reads wide boundary regions of both neighbours.  The time structure
follows Figures 5(b)/8/10: an initial read-only warm-up (intervals with
no writes), a long all-shared read-write middle, and a final stretch
where only one neighbour still reads (the pattern turning PC-shared).
"""

from __future__ import annotations

import numpy as np

from repro.workloads import patterns
from repro.workloads.base import (
    WorkloadSpec,
    WorkloadTrace,
    merge_phase_streams,
)

SPEC = WorkloadSpec(
    name="st",
    full_name="Stencil 2D",
    suite="SHOC",
    access_pattern="Adjacent",
    footprint_mb=33,
)

#: Stencil iterations; the first READ_ONLY_ITERS perform no writes.
NUM_ITERS = 8
READ_ONLY_ITERS = 3
#: Iterations from which only the lower neighbour reads (PC-shaped tail).
ONE_SIDED_FROM = 6


def generate(
    num_gpus: int = 4, scale: float = 1.0, seed: int = 17
) -> WorkloadTrace:
    """Build the ST trace: boundary-sharing stencil sweeps."""
    rng = np.random.default_rng(seed)
    total_pages = max(num_gpus * 32, int(800 * scale))
    chunks = patterns.split_region(0, total_pages, num_gpus)
    # Neighbours re-read most of the band every iteration: that is what
    # makes ~99% of ST's pages shared read-write (Section VI-A).
    boundary = max(2, int(0.85 * min(len(chunk) for chunk in chunks)))

    phases = []
    for iteration in range(NUM_ITERS):
        write_ratio = 0.0 if iteration < READ_ONLY_ITERS else 0.5
        per_gpu = []
        for gpu in range(num_gpus):
            own = patterns.sweep(
                chunks[gpu],
                accesses_per_page=8,
                write_ratio=write_ratio,
                rng=rng,
            )
            streams = [own]
            read_upper = iteration < ONE_SIDED_FROM
            if gpu > 0:
                streams.append(
                    patterns.sweep(
                        chunks[gpu - 1][-boundary:],
                        accesses_per_page=4,
                        write_ratio=0.0,
                    )
                )
            if gpu + 1 < num_gpus and read_upper:
                streams.append(
                    patterns.sweep(
                        chunks[gpu + 1][:boundary],
                        accesses_per_page=4,
                        write_ratio=0.0,
                    )
                )
            per_gpu.append(patterns.concat(streams))
        phases.append(per_gpu)

    return WorkloadTrace(
        name="st",
        num_gpus=num_gpus,
        footprint_pages=total_pages,
        streams=merge_phase_streams(phases),
        spec=SPEC,
        metadata={
            "iterations": NUM_ITERS,
            "read_only_iterations": READ_ONLY_ITERS,
            "boundary_pages": boundary,
        },
    )

"""SC — Simple Convolution (AMDAPPSDK; Table II).

Adjacent pattern, almost entirely private pages, like FIR but with a
wider stencil apron and a read-heavier mix: the image is read-only, the
convolved output is write-dominated.
"""

from __future__ import annotations

import numpy as np

from repro.workloads import patterns
from repro.workloads.base import (
    WorkloadSpec,
    WorkloadTrace,
    merge_phase_streams,
)

SPEC = WorkloadSpec(
    name="sc",
    full_name="Simple Convolution",
    suite="AMDAPPSDK",
    access_pattern="Adjacent",
    footprint_mb=131,
)

#: Convolution apron read from each neighbour per pass.
HALO_PAGES = 8


def generate(
    num_gpus: int = 4, scale: float = 1.0, seed: int = 11
) -> WorkloadTrace:
    """Build the SC trace: read-only image sweeps plus an output band."""
    rng = np.random.default_rng(seed)
    image_pages = max(num_gpus * 16, int(1350 * scale))
    output_pages = max(num_gpus * 8, int(450 * scale))
    iterations = 3
    image_chunks = patterns.split_region(0, image_pages, num_gpus)
    output_chunks = patterns.split_region(image_pages, output_pages, num_gpus)
    total_pages = image_pages + output_pages

    phases = []
    for _ in range(iterations):
        phase = []
        for gpu in range(num_gpus):
            streams = [
                patterns.sweep(
                    image_chunks[gpu], accesses_per_page=10, write_ratio=0.0
                ),
                patterns.sweep(
                    output_chunks[gpu],
                    accesses_per_page=6,
                    write_ratio=0.8,
                    rng=rng,
                ),
            ]
            if gpu + 1 < num_gpus:
                streams.append(
                    patterns.sweep(
                        image_chunks[gpu + 1][:HALO_PAGES],
                        accesses_per_page=2,
                        write_ratio=0.0,
                    )
                )
            if gpu > 0:
                streams.append(
                    patterns.sweep(
                        image_chunks[gpu - 1][-HALO_PAGES:],
                        accesses_per_page=2,
                        write_ratio=0.0,
                    )
                )
            phase.append(patterns.concat(streams))
        phases.append(phase)

    return WorkloadTrace(
        name="sc",
        num_gpus=num_gpus,
        footprint_pages=total_pages,
        streams=merge_phase_streams(phases),
        spec=SPEC,
        metadata={"iterations": iterations, "halo_pages": HALO_PAGES},
    )

"""Workload trace generators for the paper's applications (Table II)."""

from repro.workloads.base import WorkloadSpec, WorkloadTrace
from repro.workloads.registry import (
    APPLICATION_TABLE,
    available_workloads,
    make_workload,
)

__all__ = [
    "WorkloadSpec",
    "WorkloadTrace",
    "APPLICATION_TABLE",
    "available_workloads",
    "make_workload",
]

"""MM — Matrix Multiplication (AMDAPPSDK; Table II).

Scatter-gather like GEMM but with a roughly even private/shared page
split (Figure 4): each GPU stages read-only tiles of the shared input
into private buffers and accumulates into a private output slice, with a
small all-GPU hot input tile drawing most of the shared reads.
"""

from __future__ import annotations

import numpy as np

from repro.workloads import patterns
from repro.workloads.base import (
    WorkloadSpec,
    WorkloadTrace,
    merge_phase_streams,
)

SPEC = WorkloadSpec(
    name="mm",
    full_name="Matrix Multiplication",
    suite="AMDAPPSDK",
    access_pattern="Scatter-Gather",
    footprint_mb=33,
)

NUM_ROUNDS = 2
HOT_FRACTION = 0.05


def generate(
    num_gpus: int = 4, scale: float = 1.0, seed: int = 31
) -> WorkloadTrace:
    """Build the MM trace: even private/shared mix, read-dominant."""
    rng = np.random.default_rng(seed)
    shared_pages_count = max(num_gpus * 16, int(800 * scale))
    staging_pages_per_gpu = max(6, int(120 * scale))
    output_pages_per_gpu = max(4, int(80 * scale))
    shared = patterns.page_range(0, shared_pages_count)
    private_per_gpu = staging_pages_per_gpu + output_pages_per_gpu
    private_chunks = patterns.split_region(
        shared_pages_count, private_per_gpu * num_gpus, num_gpus
    )
    total_pages = shared_pages_count + private_per_gpu * num_gpus
    shared_reads = max(1, int(1400 * scale))

    phases = []
    for _ in range(NUM_ROUNDS):
        per_gpu = []
        for gpu in range(num_gpus):
            inputs = patterns.random_accesses(
                shared,
                count=shared_reads,
                write_ratio=0.0,
                rng=rng,
                hot_fraction=HOT_FRACTION,
                hot_weight=0.6,
                burst_length=2,
            )
            chunk = private_chunks[gpu]
            staging = patterns.sweep(
                chunk[:staging_pages_per_gpu],
                accesses_per_page=10,
                write_ratio=0.0,
            )
            output = patterns.sweep(
                chunk[staging_pages_per_gpu:],
                accesses_per_page=12,
                write_ratio=0.6,
                rng=rng,
            )
            per_gpu.append(
                patterns.interleave([inputs, staging, output], rng)
            )
        phases.append(per_gpu)

    return WorkloadTrace(
        name="mm",
        num_gpus=num_gpus,
        footprint_pages=total_pages,
        streams=merge_phase_streams(phases),
        spec=SPEC,
        metadata={
            "rounds": NUM_ROUNDS,
            "shared_pages": shared_pages_count,
            "hot_fraction": HOT_FRACTION,
        },
    )

"""C2D — 2D Convolution layer pipeline (DNN-Mark; Table II).

Adjacent pattern with producer-consumer (PC) shared pages: activation
buffers are written by one GPU and read by the next a phase later, then
written and read once more (the second round is what makes uniform
duplication collapse and re-duplicate ~half the pages, Section IV-A).
Weights are private and read-heavy.
"""

from __future__ import annotations

import numpy as np

from repro.workloads import patterns
from repro.workloads.base import (
    WorkloadSpec,
    WorkloadTrace,
    merge_phase_streams,
)

SPEC = WorkloadSpec(
    name="c2d",
    full_name="Convolution 2D",
    suite="DNN-Mark",
    access_pattern="Adjacent",
    footprint_mb=94,
)

#: Pipeline phases (batches flowing through the GPU chain).
NUM_PHASES = 8


def generate(
    num_gpus: int = 4, scale: float = 1.0, seed: int = 13
) -> WorkloadTrace:
    """Build the C2D trace: double-round producer-consumer handoffs."""
    buffer_pages = max(8, int(24 * scale))
    weight_pages_per_gpu = max(8, int(220 * scale))
    weight_chunks = patterns.split_region(
        0, weight_pages_per_gpu * num_gpus, num_gpus
    )
    buffer_base = weight_pages_per_gpu * num_gpus
    total_pages = buffer_base + num_gpus * NUM_PHASES * buffer_pages

    def buffer_region(gpu: int, phase: int) -> np.ndarray:
        """Pages of the activation buffer one GPU fills in one phase."""
        start = buffer_base + (gpu * NUM_PHASES + phase) * buffer_pages
        return patterns.page_range(start, buffer_pages)

    phases = []
    for phase in range(NUM_PHASES):
        per_gpu = []
        for gpu in range(num_gpus):
            streams = [
                patterns.sweep(
                    weight_chunks[gpu], accesses_per_page=2, write_ratio=0.0
                )
            ]
            # Produce this phase's batch (round 1 write).
            streams.append(
                patterns.sweep(
                    buffer_region(gpu, phase),
                    accesses_per_page=24,
                    write_ratio=0.9,
                )
            )
            # Re-process the batch the consumer has seen (round 2 write).
            if phase >= 2:
                streams.append(
                    patterns.sweep(
                        buffer_region(gpu, phase - 2),
                        accesses_per_page=24,
                        write_ratio=0.9,
                    )
                )
            if gpu > 0:
                # Consume the upstream GPU's previous batch (round 1 read)
                if phase >= 1:
                    streams.append(
                        patterns.sweep(
                            buffer_region(gpu - 1, phase - 1),
                            accesses_per_page=24,
                            write_ratio=0.0,
                        )
                    )
                # ... and its re-processed batch (round 2 read).
                if phase >= 3:
                    streams.append(
                        patterns.sweep(
                            buffer_region(gpu - 1, phase - 3),
                            accesses_per_page=24,
                            write_ratio=0.0,
                        )
                    )
            per_gpu.append(patterns.concat(streams))
        phases.append(per_gpu)

    return WorkloadTrace(
        name="c2d",
        num_gpus=num_gpus,
        footprint_pages=total_pages,
        streams=merge_phase_streams(phases),
        spec=SPEC,
        metadata={"phases": NUM_PHASES, "buffer_pages": buffer_pages},
    )

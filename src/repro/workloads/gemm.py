"""GEMM — General Matrix Multiplication (AMDAPPSDK; Table II).

Scatter-gather pattern: two input matrices (A, B) are read-shared by all
GPUs — a hot tile subset is re-read constantly while the rest is touched
only a few times — and the output matrix C is block-partitioned so each
GPU reads/writes only its own consecutive slice (the private read-write
pages of Figures 6/7).  Duplication wins among the uniform schemes;
GRIT edges it out by *not* replicating the cold input pages, which
relieves the 70%-capacity oversubscription (Section VI-A).
"""

from __future__ import annotations

import numpy as np

from repro.workloads import patterns
from repro.workloads.base import (
    WorkloadSpec,
    WorkloadTrace,
    merge_phase_streams,
)

SPEC = WorkloadSpec(
    name="gemm",
    full_name="General Matrix Multiplication",
    suite="AMDAPPSDK",
    access_pattern="Scatter-Gather",
    footprint_mb=16,
)

#: Tiling rounds over the input matrices.
NUM_ROUNDS = 2
#: Fraction of the input pages that form the hot, all-GPU-reused tiles.
HOT_FRACTION = 0.08


def generate(
    num_gpus: int = 4, scale: float = 1.0, seed: int = 29
) -> WorkloadTrace:
    """Build the GEMM trace: hot shared input tiles, private output."""
    rng = np.random.default_rng(seed)
    input_pages_count = max(num_gpus * 16, int(1000 * scale))
    output_pages_count = max(num_gpus * 8, int(600 * scale))
    inputs = patterns.page_range(0, input_pages_count)
    output_chunks = patterns.split_region(
        input_pages_count, output_pages_count, num_gpus
    )
    total_pages = input_pages_count + output_pages_count
    hot_reads = max(1, int(2500 * scale))
    cold_reads = max(1, int(500 * scale))

    phases = []
    for _ in range(NUM_ROUNDS):
        per_gpu = []
        for gpu in range(num_gpus):
            shared_reads = patterns.random_accesses(
                inputs,
                count=hot_reads + cold_reads,
                write_ratio=0.0,
                rng=rng,
                hot_fraction=HOT_FRACTION,
                burst_length=2,
                hot_weight=hot_reads / (hot_reads + cold_reads),
            )
            own_output = patterns.sweep(
                output_chunks[gpu],
                accesses_per_page=16,
                write_ratio=0.5,
                rng=rng,
            )
            per_gpu.append(
                patterns.interleave([shared_reads, own_output], rng)
            )
        phases.append(per_gpu)

    return WorkloadTrace(
        name="gemm",
        num_gpus=num_gpus,
        footprint_pages=total_pages,
        streams=merge_phase_streams(phases),
        spec=SPEC,
        metadata={
            "rounds": NUM_ROUNDS,
            "input_pages": input_pages_count,
            "hot_fraction": HOT_FRACTION,
        },
    )

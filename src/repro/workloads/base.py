"""Workload trace containers and generator plumbing.

A :class:`WorkloadTrace` is the engine's input: one access stream per
GPU, each a pair of numpy arrays (4 KB virtual page numbers and write
flags).  Streams are always expressed at 4 KB granularity so the same
trace drives both the 4 KB baseline and the 2 MB large-page study; the
engine folds VPNs to the configured page size.

Generators are deterministic given their seed; the round-robin-fill TB
scheduler of Section III-B is reflected in how generators block-partition
work across GPUs (contiguous chunks per GPU, preserving inter-TB
locality).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import TraceError


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Static description of one application (a Table II row)."""

    name: str
    full_name: str
    suite: str
    access_pattern: str
    footprint_mb: int


@dataclasses.dataclass
class WorkloadTrace:
    """Per-GPU memory access streams plus footprint metadata."""

    name: str
    num_gpus: int
    #: Footprint in 4 KB pages; sizes the per-GPU DRAM budget.
    footprint_pages: int
    #: Per GPU: (vpns int64 array, writes bool array), 4 KB granularity.
    streams: List[Tuple[np.ndarray, np.ndarray]]
    spec: WorkloadSpec | None = None
    metadata: Dict[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise TraceError("trace needs at least one GPU")
        if len(self.streams) != self.num_gpus:
            raise TraceError(
                f"{self.name}: {len(self.streams)} streams for "
                f"{self.num_gpus} GPUs"
            )
        if self.footprint_pages < 1:
            raise TraceError("footprint must be at least one page")
        for gpu, (vpns, writes) in enumerate(self.streams):
            if len(vpns) != len(writes):
                raise TraceError(
                    f"{self.name}: GPU {gpu} stream arrays disagree in length"
                )
            if len(vpns) and (
                int(vpns.min()) < 0 or int(vpns.max()) >= self.footprint_pages
            ):
                raise TraceError(
                    f"{self.name}: GPU {gpu} stream touches pages outside "
                    f"the {self.footprint_pages}-page footprint"
                )

    @property
    def total_accesses(self) -> int:
        """Accesses across all GPU streams."""
        return sum(len(vpns) for vpns, _ in self.streams)

    def iter_all(self):
        """Yield ``(gpu, vpn, is_write)`` in per-GPU stream order.

        Characterization (Figures 4-10) consumes traces directly through
        this iterator without running the simulator.
        """
        for gpu, (vpns, writes) in enumerate(self.streams):
            for vpn, is_write in zip(vpns.tolist(), writes.tolist()):
                yield gpu, vpn, is_write


def merge_phase_streams(
    phases: List[List[Tuple[np.ndarray, np.ndarray]]],
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Concatenate per-phase per-GPU streams into whole-run streams."""
    if not phases:
        raise TraceError("no phases to merge")
    num_gpus = len(phases[0])
    merged: List[Tuple[np.ndarray, np.ndarray]] = []
    for gpu in range(num_gpus):
        vpn_parts = [phase[gpu][0] for phase in phases]
        write_parts = [phase[gpu][1] for phase in phases]
        merged.append(
            (
                np.concatenate(vpn_parts).astype(np.int64),
                np.concatenate(write_parts).astype(bool),
            )
        )
    return merged


def empty_stream() -> Tuple[np.ndarray, np.ndarray]:
    """A zero-length (vpns, writes) stream pair."""
    return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)

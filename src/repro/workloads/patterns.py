"""Access-pattern primitives shared by the workload generators.

All helpers produce ``(vpns, writes)`` numpy pairs at 4 KB granularity.
Generators compose these into per-GPU, per-phase streams matching the
paper's three pattern families: random (BFS, BS), adjacent (C2D, FIR,
SC, ST) and scatter-gather (GEMM, MM).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

Stream = Tuple[np.ndarray, np.ndarray]


def sweep(
    pages: np.ndarray,
    accesses_per_page: int,
    write_ratio: float,
    rng: np.random.Generator | None = None,
) -> Stream:
    """Sequential sweep: each page accessed ``accesses_per_page`` times.

    Consecutive accesses to one page stay adjacent in the stream (the
    inter-TB locality the round-robin-fill scheduler preserves).  A
    ``write_ratio`` fraction of the accesses are writes, scattered
    randomly through each burst when ``rng`` is given (so the *faulting*
    access of a burst is a write with probability ``write_ratio``, as in
    real kernels) and placed at the end of the burst otherwise.
    """
    if accesses_per_page < 1:
        raise ValueError("accesses_per_page must be >= 1")
    if not 0.0 <= write_ratio <= 1.0:
        raise ValueError("write_ratio must be within [0, 1]")
    vpns = np.repeat(np.asarray(pages, dtype=np.int64), accesses_per_page)
    if rng is not None:
        writes = rng.random(len(vpns)) < write_ratio
    else:
        writes_per_page = int(round(accesses_per_page * write_ratio))
        page_pattern = np.zeros(accesses_per_page, dtype=bool)
        if writes_per_page:
            page_pattern[accesses_per_page - writes_per_page:] = True
        writes = np.tile(page_pattern, len(pages))
    return vpns, writes


def random_accesses(
    pages: np.ndarray,
    count: int,
    write_ratio: float,
    rng: np.random.Generator,
    hot_fraction: float = 0.0,
    hot_weight: float = 0.0,
    burst_length: int = 4,
) -> Stream:
    """Random accesses over a page set, optionally skewed toward a hot
    prefix (``hot_fraction`` of the pages drawing ``hot_weight`` of the
    accesses).

    Draws come in bursts of ``burst_length`` consecutive accesses to the
    same page: a thread block that touches a page issues several
    loads/stores to it before moving on, which is what keeps on-touch
    migration from ping-ponging on literally every access.
    """
    pages = np.asarray(pages, dtype=np.int64)
    if count < 0:
        raise ValueError("count must be non-negative")
    if burst_length < 1:
        raise ValueError("burst_length must be >= 1")
    if len(pages) == 0 or count == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
    draws = max(1, count // burst_length)
    if hot_fraction > 0.0 and hot_weight > 0.0:
        hot_count = max(1, int(len(pages) * hot_fraction))
        hot_draws = int(draws * hot_weight)
        hot = rng.choice(pages[:hot_count], size=hot_draws)
        cold = rng.choice(pages, size=draws - hot_draws)
        picks = np.concatenate([hot, cold])
        rng.shuffle(picks)
    else:
        picks = rng.choice(pages, size=draws)
    vpns = np.repeat(picks, burst_length)[:count]
    writes = rng.random(len(vpns)) < write_ratio
    return vpns.astype(np.int64), writes


def strided_partner_accesses(
    base: int,
    num_pages: int,
    stride: int,
    count: int,
    write_ratio: float,
    rng: np.random.Generator,
) -> Stream:
    """Bitonic-style strided pairs: page ``i`` and ``i xor stride``."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    starts = rng.integers(0, num_pages, size=count // 2)
    partners = np.bitwise_xor(starts, stride) % num_pages
    vpns = np.empty(2 * len(starts), dtype=np.int64)
    vpns[0::2] = base + starts
    vpns[1::2] = base + partners
    writes = rng.random(len(vpns)) < write_ratio
    return vpns, writes


def interleave(streams: Sequence[Stream], rng: np.random.Generator) -> Stream:
    """Randomly interleave several streams while preserving each one's
    internal order (concurrent kernels sharing one GPU)."""
    streams = [s for s in streams if len(s[0])]
    if not streams:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
    if len(streams) == 1:
        return streams[0]
    tags = np.concatenate(
        [
            np.full(len(vpns), i, dtype=np.int64)
            for i, (vpns, _) in enumerate(streams)
        ]
    )
    rng.shuffle(tags)
    total = len(tags)
    vpns = np.empty(total, dtype=np.int64)
    writes = np.empty(total, dtype=bool)
    cursors = [0] * len(streams)
    for out_index, tag in enumerate(tags.tolist()):
        svpns, swrites = streams[tag]
        cursor = cursors[tag]
        vpns[out_index] = svpns[cursor]
        writes[out_index] = swrites[cursor]
        cursors[tag] = cursor + 1
    return vpns, writes


def concat(streams: Sequence[Stream]) -> Stream:
    """Concatenate streams back to back (sequential phases)."""
    streams = list(streams)
    if not streams:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
    vpns = np.concatenate([vpns for vpns, _ in streams]).astype(np.int64)
    writes = np.concatenate([writes for _, writes in streams]).astype(bool)
    return vpns, writes


def page_range(start: int, count: int) -> np.ndarray:
    """Contiguous page ids as an int64 array."""
    return np.arange(start, start + count, dtype=np.int64)


def split_region(start: int, count: int, parts: int) -> List[np.ndarray]:
    """Block-partition a contiguous region into ``parts`` chunks."""
    boundaries = np.linspace(start, start + count, parts + 1).astype(np.int64)
    return [
        np.arange(boundaries[i], boundaries[i + 1], dtype=np.int64)
        for i in range(parts)
    ]

"""FIR — Finite Impulse Response filter (Hetero-Mark; Table II).

Adjacent access pattern with almost exclusively private pages: the input
signal is batched and each GPU convolves its own contiguous chunk into
its own output chunk, reading a tiny halo from the neighbouring batch.
Input pages are read-only, output pages write-dominated — the paper's
poster child for on-touch migration (Figures 1, 4, 9).
"""

from __future__ import annotations

import numpy as np

from repro.workloads import patterns
from repro.workloads.base import (
    WorkloadSpec,
    WorkloadTrace,
    merge_phase_streams,
)

SPEC = WorkloadSpec(
    name="fir",
    full_name="Finite Impulse Response",
    suite="Hetero-Mark",
    access_pattern="Adjacent",
    footprint_mb=155,
)

#: Halo pages read from the neighbouring GPU's input chunk each pass.
HALO_PAGES = 4


def generate(
    num_gpus: int = 4, scale: float = 1.0, seed: int = 7
) -> WorkloadTrace:
    """Build the FIR trace: private input/output sweeps with a halo."""
    rng = np.random.default_rng(seed)
    input_pages = max(num_gpus * 16, int(1200 * scale))
    output_pages = max(num_gpus * 8, int(400 * scale))
    iterations = 3
    input_chunks = patterns.split_region(0, input_pages, num_gpus)
    output_chunks = patterns.split_region(input_pages, output_pages, num_gpus)
    total_pages = input_pages + output_pages

    phases = []
    for _ in range(iterations):
        phase = []
        for gpu in range(num_gpus):
            streams = [
                patterns.sweep(
                    input_chunks[gpu], accesses_per_page=12, write_ratio=0.0
                ),
                patterns.sweep(
                    output_chunks[gpu],
                    accesses_per_page=8,
                    write_ratio=0.75,
                    rng=rng,
                ),
            ]
            if gpu + 1 < num_gpus:
                streams.append(
                    patterns.sweep(
                        input_chunks[gpu + 1][:HALO_PAGES],
                        accesses_per_page=2,
                        write_ratio=0.0,
                    )
                )
            if gpu > 0:
                streams.append(
                    patterns.sweep(
                        input_chunks[gpu - 1][-HALO_PAGES:],
                        accesses_per_page=2,
                        write_ratio=0.0,
                    )
                )
            phase.append(patterns.concat(streams))
        phases.append(phase)

    return WorkloadTrace(
        name="fir",
        num_gpus=num_gpus,
        footprint_pages=total_pages,
        streams=merge_phase_streams(phases),
        spec=SPEC,
        metadata={"iterations": iterations, "halo_pages": HALO_PAGES},
    )

"""Workload registry: Table II plus the Section VI-F DNN models."""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import UnknownWorkloadError
from repro.workloads import bfs, bs, c2d, dnn, fir, gemm, mm, sc, st
from repro.workloads.base import WorkloadSpec, WorkloadTrace

GeneratorFn = Callable[..., WorkloadTrace]

_GENERATORS: Dict[str, GeneratorFn] = {
    "bfs": bfs.generate,
    "bs": bs.generate,
    "c2d": c2d.generate,
    "fir": fir.generate,
    "gemm": gemm.generate,
    "mm": mm.generate,
    "sc": sc.generate,
    "st": st.generate,
    "vgg16": dnn.generate_vgg16,
    "resnet18": dnn.generate_resnet18,
}

#: Table II of the paper, as data.
APPLICATION_TABLE: Dict[str, WorkloadSpec] = {
    "bfs": bfs.SPEC,
    "bs": bs.SPEC,
    "c2d": c2d.SPEC,
    "fir": fir.SPEC,
    "gemm": gemm.SPEC,
    "mm": mm.SPEC,
    "sc": sc.SPEC,
    "st": st.SPEC,
}

#: The eight evaluation applications, in the paper's figure order.
PAPER_APPS = tuple(sorted(APPLICATION_TABLE))


def available_workloads() -> list[str]:
    """Names accepted by :func:`make_workload`."""
    return sorted(_GENERATORS)


def make_workload(
    name: str, num_gpus: int = 4, scale: float = 1.0, seed: int | None = None
) -> WorkloadTrace:
    """Generate a trace for a registered workload."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise UnknownWorkloadError(
            f"unknown workload {name!r}; available: {available_workloads()}"
        ) from None
    kwargs: dict[str, object] = {"num_gpus": num_gpus, "scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    return generator(**kwargs)

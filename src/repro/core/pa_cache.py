"""The hardware Page Attribute Cache (PA-Cache, Section V-C).

A 64-entry, 4-way set-associative cache in front of the PA-Table.  The
set index is the lower 4 bits of the VPN; the tag is the remaining upper
bits (the paper's "virtual page tag").  Replacement is LRU, the write
policy is write-allocate + write-back: entries are updated in the cache
and only reach the PA-Table when evicted (or deleted on scheme change).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.core.pa_table import PAEntry, PATable
from repro.errors import ConfigError


class PACache:
    """Set-associative write-back cache over :class:`PATable`."""

    def __init__(
        self, backing: PATable, entries: int = 64, ways: int = 4
    ) -> None:
        if entries <= 0 or ways <= 0 or entries % ways:
            raise ConfigError("PA-Cache entries must be a multiple of ways")
        sets = entries // ways
        if sets & (sets - 1):
            raise ConfigError("PA-Cache set count must be a power of two")
        self.backing = backing
        self.ways = ways
        self._set_mask = sets - 1
        self._sets: List[OrderedDict[int, PAEntry]] = [
            OrderedDict() for _ in range(sets)
        ]
        self.hits = 0
        self.misses = 0
        self.table_fills = 0
        #: Evictions/flushes of entries *modified* since fill — the
        #: write-allocate + write-back traffic the paper accounts for.
        #: Clean victims restore the table copy silently.
        self.writebacks = 0
        #: Entries dropped by :meth:`delete` (scheme changes).
        self.deletes = 0

    def _set_for(self, vpn: int) -> OrderedDict[int, PAEntry]:
        return self._sets[vpn & self._set_mask]

    def access(self, vpn: int) -> tuple[PAEntry, bool]:
        """Look up (allocating as needed) the entry for a faulting page.

        Returns ``(entry, cache_hit)``.  On a miss the PA-Table is
        consulted: a found entry is brought into the cache
        (write-allocate); otherwise a fresh entry is registered directly
        in the cache, to be written back on eviction.
        """
        entries = self._set_for(vpn)
        entry = entries.get(vpn)
        if entry is not None:
            entries.move_to_end(vpn)
            self.hits += 1
            return entry, True
        self.misses += 1
        entry = self.backing.take(vpn)
        if entry is not None:
            self.table_fills += 1
            # Fresh from the backing table: clean until modified.
            entry.dirty = False
        else:
            entry = PAEntry(vpn=vpn)
        self._fill(vpn, entry)
        return entry, False

    def _fill(self, vpn: int, entry: PAEntry) -> None:
        entries = self._set_for(vpn)
        if len(entries) >= self.ways:
            _, victim = entries.popitem(last=False)
            self._writeback(victim)
        entries[vpn] = entry

    def _writeback(self, victim: PAEntry) -> None:
        """Return a victim to the table; count it only when dirty.

        A clean victim matches what the table last saw (or is an
        untouched all-zero entry, which carries no information), so
        restoring it is free — only entries modified since fill are
        write-back traffic.
        """
        if victim.dirty:
            victim.dirty = False
            self.writebacks += 1
        self.backing.insert(victim)

    def delete(self, vpn: int) -> None:
        """Drop an entry from cache *and* table (scheme change fired)."""
        cached = self._set_for(vpn).pop(vpn, None)
        removed = self.backing.remove(vpn)
        if cached is not None or removed is not None:
            self.deletes += 1

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def flush_to_table(self) -> None:
        """Write every cached entry back (used by tests/inspection)."""
        for entries in self._sets:
            while entries:
                _, victim = entries.popitem(last=False)
                self._writeback(victim)

"""The assembled GRIT mechanism (Figure 16).

On every local page fault / page protection fault the UVM driver feeds
GRIT (step 2 in Figure 16).  GRIT updates the PA-Cache/PA-Table in
parallel with the page-table walk, and when the page's fault count
reaches the threshold (step 3) it re-decides the page's scheme from the
PA entry's read/write bit (step 4) and triggers Neighboring-Aware
Prediction to pre-set scheme bits for adjacent pages (step 5).

The mechanism is engine-agnostic: it mutates scheme/group bits in the
centralized page table and reports what changed; the UVM driver applies
the data-consistency consequences (collapsing replicas of pages that
leave duplication) and charges latencies.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.config import GritConfig, LatencyModel
from repro.constants import FaultKind, Scheme
from repro.core.decision import decide_scheme
from repro.core.initiator import FaultAwareInitiator
from repro.core.neighbor import NeighboringAwarePredictor
from repro.memsys.page_table import CentralPageTable


@dataclasses.dataclass(frozen=True)
class SchemeChange:
    """Everything that happened in response to one observed fault."""

    #: Extra cycles the fault spends on the PA path.
    extra_latency: int
    #: True when the fault threshold fired and a decision was made.
    decision_made: bool
    #: The decided scheme (None when no decision was made).
    new_scheme: Scheme | None
    #: True when the decided scheme differs from the page's previous one.
    scheme_changed: bool
    #: Pages (and their prior schemes) rewritten by neighbor propagation.
    propagated: Tuple[Tuple[int, Scheme], ...]
    promotions: int
    degradations: int


_NO_CHANGE = SchemeChange(
    extra_latency=0,
    decision_made=False,
    new_scheme=None,
    scheme_changed=False,
    propagated=(),
    promotions=0,
    degradations=0,
)


class GritMechanism:
    """Fault-Aware Initiator + decision + Neighboring-Aware Prediction."""

    def __init__(
        self,
        config: GritConfig,
        latency: LatencyModel,
        page_table: CentralPageTable,
    ) -> None:
        self.config = config
        self.page_table = page_table
        self.initiator = FaultAwareInitiator(config, latency)
        self.predictor = (
            NeighboringAwarePredictor(
                page_table, max_group_pages=config.max_group_pages
            )
            if config.use_neighbor_prediction
            else None
        )
        self.scheme_changes = 0

    def observe_fault(
        self, vpn: int, kind: FaultKind, is_write: bool | None = None
    ) -> SchemeChange:
        """Feed one fault through GRIT; returns the resulting actions."""
        outcome = self.initiator.observe_fault(vpn, kind, is_write)
        if not outcome.threshold_reached:
            return dataclasses.replace(
                _NO_CHANGE, extra_latency=outcome.extra_latency
            )
        page = self.page_table.get(vpn)
        old_scheme = page.scheme
        new_scheme = decide_scheme(outcome.rw_bit)
        scheme_changed = new_scheme != old_scheme
        if scheme_changed:
            page.scheme = new_scheme
            self.scheme_changes += 1
        propagated: Tuple[Tuple[int, Scheme], ...] = ()
        promotions = 0
        degradations = 0
        if self.predictor is not None:
            neighbor = self.predictor.on_scheme_change(
                vpn, new_scheme, old_scheme
            )
            propagated = neighbor.propagated
            promotions = neighbor.promotions
            degradations = neighbor.degradations
        return SchemeChange(
            extra_latency=outcome.extra_latency,
            decision_made=True,
            new_scheme=new_scheme,
            scheme_changed=scheme_changed,
            propagated=propagated,
            promotions=promotions,
            degradations=degradations,
        )

"""Fault-Aware Initiator (Section V-B).

Counts local page faults and page protection faults per page via the
PA-Cache/PA-Table pair, and signals when a page has reached the fault
threshold so a scheme change should be initiated.  The latency cost of
the PA path is also computed here: with the PA-Cache present, lookups
hide under the page-table walk; without it (the Figure 20 ablation),
every fault pays a PA-Table memory access worth of bandwidth contention.
"""

from __future__ import annotations

import dataclasses

from repro.config import GritConfig, LatencyModel
from repro.constants import FaultKind
from repro.core.pa_cache import PACache
from repro.core.pa_table import PAEntry, PATable


@dataclasses.dataclass(frozen=True)
class InitiatorOutcome:
    """Result of funnelling one fault through the initiator."""

    #: True when the fault counter reached the threshold; the entry has
    #: already been deleted and the caller must re-decide the scheme.
    threshold_reached: bool
    #: The page's read/write bit at decision time (meaningful only when
    #: ``threshold_reached``).
    rw_bit: int
    #: Extra cycles this fault spends on the PA path (not hidden under
    #: the page-table walk).
    extra_latency: int


class FaultAwareInitiator:
    """Per-fault PA bookkeeping and threshold detection."""

    def __init__(self, config: GritConfig, latency: LatencyModel) -> None:
        self.config = config
        self.latency = latency
        self.pa_table = PATable()
        self.pa_cache: PACache | None = (
            PACache(
                self.pa_table,
                entries=config.pa_cache_entries,
                ways=config.pa_cache_ways,
            )
            if config.use_pa_cache
            else None
        )
        self.faults_observed = 0
        self.thresholds_fired = 0

    def observe_fault(
        self, vpn: int, kind: FaultKind, is_write: bool | None = None
    ) -> InitiatorOutcome:
        """Record one local page fault or page protection fault.

        ``is_write`` is the faulting access's type, which is what sets
        the PA entry's read/write bit ("the read/write bit is set as the
        requested page attribute", Section V-C); it defaults to the
        fault kind for callers that don't distinguish.
        """
        self.faults_observed += 1
        if is_write is None:
            is_write = kind is FaultKind.PAGE_PROTECTION_FAULT
        if self.pa_cache is not None:
            entry, hit = self.pa_cache.access(vpn)
            # Cache hits and the single PA-Table access on a miss are
            # both hidden under the 2-3 memory accesses of the page-table
            # walk (Section V-C); only the tiny lookup cost can surface.
            extra = 0 if hit else self.latency.pa_cache_lookup
        else:
            entry = self.pa_table.take(vpn)
            if entry is None:
                entry = PAEntry(vpn=vpn)
            self.pa_table.insert(entry)
            # Without the PA-Cache, each fault's PA-Table read-modify-
            # write contends for memory bandwidth (Figure 20 ablation).
            extra = self.latency.pa_table_memory_access
        entry.record_fault(is_write)
        if entry.fault_counter >= self.config.fault_threshold:
            rw_bit = entry.rw_bit
            self._delete(vpn)
            self.thresholds_fired += 1
            return InitiatorOutcome(
                threshold_reached=True, rw_bit=rw_bit, extra_latency=extra
            )
        return InitiatorOutcome(
            threshold_reached=False, rw_bit=entry.rw_bit, extra_latency=extra
        )

    def _delete(self, vpn: int) -> None:
        if self.pa_cache is not None:
            self.pa_cache.delete(vpn)
        else:
            self.pa_table.remove(vpn)

"""Scheme decision mechanism (Table III and Figure 13).

Table III's full policy-preference matrix is reproduced as data for
documentation and analysis.  The *mechanism* GRIT actually implements is
the collapsed form of Figure 13: a page that reaches the fault threshold
is by construction shared (private pages fault once, migrate, and never
fault again), so the decision only inspects the PA entry's read/write
bit — all-read shared pages switch to duplication, written shared pages
switch to access-counter migration.
"""

from __future__ import annotations

from repro.constants import Scheme

#: Table III — candidate schemes per (read/write, sharing) page class.
#: Values are tuples of acceptable schemes, first entry preferred.
POLICY_PREFERENCE: dict[tuple[str, str], tuple[Scheme, ...]] = {
    ("read", "private"): (Scheme.ON_TOUCH, Scheme.DUPLICATION),
    ("read", "pc-shared"): (Scheme.ON_TOUCH, Scheme.DUPLICATION),
    ("read", "all-shared"): (Scheme.DUPLICATION,),
    ("read-write", "private"): (Scheme.ON_TOUCH,),
    ("read-write", "pc-shared"): (Scheme.ON_TOUCH, Scheme.ACCESS_COUNTER),
    ("read-write", "all-shared"): (Scheme.ACCESS_COUNTER,),
}


def decide_scheme(rw_bit: int) -> Scheme:
    """Pick the new scheme for a page that hit the fault threshold.

    Figure 13: read-only shared pages duplicate; read-write shared pages
    use access-counter migration.
    """
    return Scheme.ACCESS_COUNTER if rw_bit else Scheme.DUPLICATION

"""GRIT core: the paper's contribution (Section V).

* :mod:`repro.core.pa_table` — software Page Attribute Table.
* :mod:`repro.core.pa_cache` — hardware Page Attribute Cache.
* :mod:`repro.core.initiator` — Fault-Aware Initiator.
* :mod:`repro.core.decision` — scheme decision mechanism (Table III).
* :mod:`repro.core.neighbor` — Neighboring-Aware Prediction.
* :mod:`repro.core.grit` — the assembled GRIT mechanism.
"""

from repro.core.decision import POLICY_PREFERENCE, decide_scheme
from repro.core.grit import GritMechanism, SchemeChange
from repro.core.initiator import FaultAwareInitiator, InitiatorOutcome
from repro.core.neighbor import NeighboringAwarePredictor
from repro.core.pa_cache import PACache
from repro.core.pa_table import PAEntry, PATable

__all__ = [
    "POLICY_PREFERENCE",
    "decide_scheme",
    "GritMechanism",
    "SchemeChange",
    "FaultAwareInitiator",
    "InitiatorOutcome",
    "NeighboringAwarePredictor",
    "PACache",
    "PAEntry",
    "PATable",
]

"""Neighboring-Aware Prediction (Section V-D).

Consecutive pages tend to share access attributes (Figures 6-8), so when
one page's scheme changes, GRIT checks its aligned 8-page neighborhood:
if more than half of those pages already use the newly selected scheme,
the scheme is propagated to all eight and they are *promoted* into a
group (group bits "01" on the base page).  Groups recursively combine
8-at-a-time up to 512 pages (one 2 MB page-table page).  A scheme change
inside an existing group *degrades* it back into eight smaller groups,
with the affected subgroup degraded further.

All group state lives in the PTE group bits of each group's base page,
mirrored here in :class:`PageInfo.group`; the checks run in the
background (no latency charge) as the paper specifies.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.constants import GROUP_FANOUT, GroupBits, Scheme
from repro.errors import ConfigError
from repro.memsys.address import AddressSpace
from repro.memsys.page_table import CentralPageTable


@dataclasses.dataclass(frozen=True)
class NeighborOutcome:
    """Effects of one scheme change on the surrounding groups."""

    #: Pages whose scheme bits were rewritten by propagation, with the
    #: scheme they had before (the driver collapses replicas of pages
    #: leaving duplication).
    propagated: Tuple[Tuple[int, Scheme], ...]
    promotions: int
    degradations: int


_EMPTY_OUTCOME = NeighborOutcome(propagated=(), promotions=0, degradations=0)

_STEP_DOWN = {
    GroupBits.GROUP_512: GroupBits.GROUP_64,
    GroupBits.GROUP_64: GroupBits.GROUP_8,
    GroupBits.GROUP_8: GroupBits.SINGLE,
}


class NeighboringAwarePredictor:
    """Group promotion/degradation over the centralized page table."""

    def __init__(
        self, page_table: CentralPageTable, max_group_pages: int = 512
    ) -> None:
        if max_group_pages not in (1, 8, 64, 512):
            raise ConfigError("max_group_pages must be one of 1/8/64/512")
        self._pt = page_table
        self.max_group_pages = max_group_pages

    def on_scheme_change(
        self, vpn: int, new_scheme: Scheme, old_scheme: Scheme
    ) -> NeighborOutcome:
        """React to ``vpn`` switching from ``old_scheme`` to ``new_scheme``.

        When the newly decided scheme equals the previous one (only
        possible for access-counter migration) the paper skips the group
        check entirely to avoid promotion/degradation ping-pong.
        """
        if new_scheme == old_scheme or self.max_group_pages == 1:
            return _EMPTY_OUTCOME
        degradations = self._degrade_containing_group(vpn)
        propagated, promotions = self._try_promote(vpn, new_scheme)
        return NeighborOutcome(
            propagated=tuple(propagated),
            promotions=promotions,
            degradations=degradations,
        )

    def containing_group(self, vpn: int) -> tuple[int, GroupBits]:
        """Base VPN and size of the group currently containing ``vpn``."""
        ladder = (GroupBits.GROUP_512, GroupBits.GROUP_64, GroupBits.GROUP_8)
        for bits in ladder:
            pages = bits.page_count
            if pages > self.max_group_pages:
                continue
            base = AddressSpace.group_base(vpn, pages)
            page = self._pt.peek(base)
            if page is not None and page.group == bits:
                return base, bits
        return vpn, GroupBits.SINGLE

    def group_scheme_of(self, vpn: int) -> Scheme | None:
        """Scheme pre-set for ``vpn`` by a group it belongs to, if any."""
        base, bits = self.containing_group(vpn)
        if bits is GroupBits.SINGLE:
            return None
        page = self._pt.peek(base)
        return page.scheme if page is not None else None

    def _degrade_containing_group(self, vpn: int) -> int:
        """Split any group containing ``vpn`` down to singles around it."""
        _, bits = self.containing_group(vpn)
        if bits is GroupBits.SINGLE:
            return 0
        degradations = 0
        while bits is not GroupBits.SINGLE:
            pages = bits.page_count
            base = AddressSpace.group_base(vpn, pages)
            sub_bits = _STEP_DOWN[bits]
            if sub_bits is GroupBits.SINGLE:
                # An 8-page group with a divergent member: every page
                # becomes a single ("00").
                for member in range(base, base + pages):
                    self._pt.get(member).group = GroupBits.SINGLE
            else:
                sub_pages = sub_bits.page_count
                affected = AddressSpace.group_base(vpn, sub_pages)
                for sub_base in range(base, base + pages, sub_pages):
                    page = self._pt.get(sub_base)
                    # The subgroup containing the divergent page keeps
                    # degrading on the next iteration; the other seven
                    # remain intact groups one rung smaller.
                    page.group = (
                        GroupBits.SINGLE if sub_base == affected else sub_bits
                    )
            degradations += 1
            bits = sub_bits
        return degradations

    def _try_promote(
        self, vpn: int, scheme: Scheme
    ) -> tuple[List[Tuple[int, Scheme]], int]:
        """Promote upward while more than half the neighbors agree."""
        propagated: List[Tuple[int, Scheme]] = []
        promotions = 0
        level_pages = GROUP_FANOUT
        while level_pages <= self.max_group_pages:
            base = AddressSpace.group_base(vpn, level_pages)
            if not self._majority_agrees(base, level_pages, scheme):
                break
            for member in range(base, base + level_pages):
                page = self._pt.get(member)
                if page.scheme != scheme:
                    propagated.append((member, page.scheme))
                    page.scheme = scheme
                page.group = GroupBits.SINGLE
            self._pt.get(base).group = GroupBits.for_page_count(level_pages)
            promotions += 1
            level_pages *= GROUP_FANOUT
        return propagated, promotions

    def _majority_agrees(
        self, base: int, level_pages: int, scheme: Scheme
    ) -> bool:
        """More than half of the 8 members/subgroups match ``scheme``.

        At the 8-page rung the members are individual pages; above it
        they are the 8 subgroups, which only count when they are intact
        groups (correct group bits on their base) using ``scheme``.
        """
        matches = 0
        if level_pages == GROUP_FANOUT:
            for member in range(base, base + level_pages):
                page = self._pt.peek(member)
                if page is not None and page.scheme == scheme:
                    matches += 1
        else:
            sub_pages = level_pages // GROUP_FANOUT
            sub_marker = GroupBits.for_page_count(sub_pages)
            for sub_base in range(base, base + level_pages, sub_pages):
                page = self._pt.peek(sub_base)
                if (
                    page is not None
                    and page.group == sub_marker
                    and page.scheme == scheme
                ):
                    matches += 1
        return matches * 2 > GROUP_FANOUT

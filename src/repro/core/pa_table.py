"""The software Page Attribute Table (PA-Table, Section V-C).

The PA-Table lives in CPU memory and holds, per faulting page, a 48-bit
entry: 45-bit VPN, one read/write bit, and a 2-bit fault counter
initialized to 00.  Entries are created when a page first faults, are
updated on every local page fault / page protection fault, and are
deleted the moment the fault counter reaches the fault threshold and the
page's placement scheme is re-decided.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

#: Entry size per the paper's overhead analysis: 45b VPN + 2b counter
#: + 1b read/write.
ENTRY_BITS = 48

#: Bit layout of the packed 48-bit entry (Figure 12): VPN in the low 45
#: bits, the read/write bit above it, the 2-bit counter on top.
_VPN_BITS = 45
_VPN_MASK = (1 << _VPN_BITS) - 1
_RW_SHIFT = _VPN_BITS
_COUNTER_SHIFT = _VPN_BITS + 1
_COUNTER_MASK = 0b11


@dataclasses.dataclass
class PAEntry:
    """One PA-Table / PA-Cache entry.

    ``rw_bit`` is 0 while the page has only been read and becomes (and
    stays) 1 after the first write of the current scheme lifetime.
    ``fault_counter`` counts local page faults plus page protection
    faults since the entry was (re)created.
    """

    vpn: int
    rw_bit: int = 0
    fault_counter: int = 0
    #: Modified since the PA-Cache last filled or wrote it back; not
    #: part of the architectural 48-bit word (excluded from equality
    #: and :meth:`encode`).
    dirty: bool = dataclasses.field(
        default=False, compare=False, repr=False
    )

    def record_fault(self, is_write: bool) -> None:
        """Apply one fault: bump the counter, make the RW bit sticky."""
        self.fault_counter += 1
        if is_write:
            self.rw_bit = 1
        self.dirty = True

    def encode(self) -> int:
        """Pack into the 48-bit hardware word of Figure 12.

        The fault counter saturates at the 2-bit field's maximum: the
        paper's default threshold of 4 triggers exactly when the "11"
        counter takes one more fault, so nothing above 3 is ever stored.
        """
        counter = min(self.fault_counter, _COUNTER_MASK)
        return (
            (self.vpn & _VPN_MASK)
            | ((self.rw_bit & 1) << _RW_SHIFT)
            | (counter << _COUNTER_SHIFT)
        )

    @classmethod
    def decode(cls, word: int) -> "PAEntry":
        """Unpack a 48-bit word produced by :meth:`encode`."""
        return cls(
            vpn=word & _VPN_MASK,
            rw_bit=(word >> _RW_SHIFT) & 1,
            fault_counter=(word >> _COUNTER_SHIFT) & _COUNTER_MASK,
        )


class PATable:
    """Dict-backed PA-Table with memory-footprint accounting."""

    def __init__(self) -> None:
        self._entries: Dict[int, PAEntry] = {}
        self.lookups = 0
        self.insertions = 0
        self.deletions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    def lookup(self, vpn: int) -> PAEntry | None:
        """Read the entry for the page (None when absent)."""
        self.lookups += 1
        return self._entries.get(vpn)

    def insert(self, entry: PAEntry) -> None:
        """Write an entry back (PA-Cache eviction or direct update)."""
        self.insertions += 1
        self._entries[entry.vpn] = entry

    def remove(self, vpn: int) -> PAEntry | None:
        """Delete the entry after a scheme change (threshold reached)."""
        entry = self._entries.pop(vpn, None)
        if entry is not None:
            self.deletions += 1
        return entry

    def take(self, vpn: int) -> PAEntry | None:
        """Move an entry out of the table (PA-Cache write-allocate fill).

        Unlike :meth:`remove` this does not count as a deletion: the
        entry lives on in the PA-Cache and will be written back later.
        """
        return self._entries.pop(vpn, None)

    def footprint_bits(self) -> int:
        """Current table size in bits (the paper's 0.15% overhead math)."""
        return len(self._entries) * ENTRY_BITS

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — show registered workloads, policies, and figures.
* ``run`` — simulate one (workload, policy) pair and print the summary.
* ``figure`` — regenerate paper figures (text / JSON / CSV, optional
  disk cache).
* ``sweep`` — tabulate a workload x policy matrix through the
  resilient sweep orchestrator (parallel workers, per-task timeout,
  retry with backoff, shared disk cache, crash injection for drills).
* ``report`` — write the full markdown reproduction report (+ SVG
  charts).
* ``characterize`` — print a workload's sharing/RW characterization.
* ``dump-trace`` — export a generated trace as ``.npz``.
* ``trace`` — simulate with observability on and export a Chrome
  trace-event JSON (opens in Perfetto) plus optional metrics.
* ``inspect`` — reconstruct page lifecycles from the structured event
  log (``--vpn N`` for one page, otherwise the busiest pages).
* ``profile`` — wall-time phase profile of the simulator itself.
* ``bench`` — run the figure benchmarks, write ``BENCH_<name>.json``
  baselines, and gate fresh measurements against committed baselines
  (``--compare``).
* ``lint`` — run the simlint static-analysis pass over the simulator.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.analysis import sharing_summary
from repro.config import SystemConfig
from repro.harness.experiment import ExperimentRunner
from repro.harness.figures import FIGURES, run_figure
from repro.harness.report import format_figure, format_table
from repro.policies import available_policies, make_policy
from repro.sim import simulate
from repro.workloads import available_workloads, make_workload


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GRIT reproduction: trace-driven multi-GPU page placement",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, policies, and figures")

    run = sub.add_parser("run", help="simulate one workload under one policy")
    run.add_argument("workload", choices=available_workloads())
    run.add_argument("policy", choices=available_policies())
    run.add_argument("--gpus", type=int, default=4)
    run.add_argument("--scale", type=float, default=0.3)
    run.add_argument("--page-size", type=int, default=4096)
    run.add_argument(
        "--contention",
        choices=["none", "queued"],
        default="none",
        help="timing-kernel mode: 'queued' models link and DRAM "
        "channel occupancy (GRIT_CONTENTION overrides)",
    )
    run.add_argument(
        "--topology",
        default="all-to-all",
        metavar="SPEC",
        help="interconnect fabric shape: all-to-all (default), "
        "nvswitch[:group_size], ring, or multi-node[:nodes] "
        "(GRIT_TOPOLOGY overrides)",
    )
    run.add_argument(
        "--fault-batch",
        type=int,
        default=1,
        metavar="N",
        help="local faults the UVM driver services per batch; 1 (the "
        "default) services every fault inline at the faulting access",
    )
    run.add_argument(
        "--no-fast-path",
        action="store_true",
        help="disable the vectorized steady-state fast path and run "
        "every access through the scalar pipeline (results are "
        "bit-identical either way; GRIT_FAST_PATH overrides)",
    )
    _add_observe_arguments(run)

    trace_cmd = sub.add_parser(
        "trace",
        help="simulate with observability and export a Perfetto trace",
    )
    trace_cmd.add_argument("workload", choices=available_workloads())
    trace_cmd.add_argument("policy", choices=available_policies())
    trace_cmd.add_argument("output", help="Chrome trace-event JSON path")
    trace_cmd.add_argument("--gpus", type=int, default=4)
    trace_cmd.add_argument("--scale", type=float, default=0.3)
    trace_cmd.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="also export the sampled metric series to PATH",
    )
    trace_cmd.add_argument(
        "--metrics-format",
        choices=["jsonl", "csv", "prom"],
        default="jsonl",
    )
    trace_cmd.add_argument(
        "--sample-interval",
        type=int,
        default=None,
        metavar="CYCLES",
        help="simulated cycles between metric samples",
    )

    inspect_cmd = sub.add_parser(
        "inspect",
        help="reconstruct page lifecycles from the simulated event log",
    )
    inspect_cmd.add_argument("workload", choices=available_workloads())
    inspect_cmd.add_argument("policy", choices=available_policies())
    inspect_cmd.add_argument("--gpus", type=int, default=4)
    inspect_cmd.add_argument("--scale", type=float, default=0.3)
    inspect_cmd.add_argument(
        "--vpn",
        type=int,
        default=None,
        help="page to inspect (default: rank the busiest pages)",
    )
    inspect_cmd.add_argument(
        "--limit",
        type=int,
        default=10,
        help="pages shown in the busiest-pages ranking",
    )

    profile_cmd = sub.add_parser(
        "profile",
        help="wall-time phase profile of the simulator itself",
    )
    profile_cmd.add_argument("workload", choices=available_workloads())
    profile_cmd.add_argument("policy", choices=available_policies())
    profile_cmd.add_argument("--gpus", type=int, default=4)
    profile_cmd.add_argument("--scale", type=float, default=0.3)
    profile_cmd.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the phase timings as metrics JSON-lines "
        "('-' for stdout)",
    )

    bench = sub.add_parser(
        "bench",
        help="run the perf benchmarks and gate against baselines",
    )
    bench.add_argument(
        "--cases",
        default=None,
        help="comma-separated case names (default: the full suite)",
    )
    bench.add_argument(
        "--scale",
        type=float,
        default=None,
        help="trace scale (default: $REPRO_BENCH_SCALE or 0.05)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="repetitions per case for the min-of-N estimate",
    )
    bench.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help="write one BENCH_<name>.json baseline per case into DIR",
    )
    bench.add_argument(
        "--compare",
        metavar="DIR",
        default=None,
        help="gate this run against the baselines in DIR; exits "
        "nonzero on regressions",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="relative wall-time slowdown tolerated by --compare "
        "(default 0.25)",
    )
    bench.add_argument(
        "--counters-only",
        action="store_true",
        help="compare deterministic simulator counters only (for "
        "baselines written on different hardware)",
    )
    bench.add_argument(
        "--inject-slowdown",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="gate drill: add SECONDS to every wall sample and verify "
        "--compare fails",
    )

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("name", choices=[*sorted(FIGURES), "all"])
    fig.add_argument("--scale", type=float, default=0.3)
    fig.add_argument(
        "--format",
        choices=["text", "json", "csv"],
        default="text",
        help="output format (text table, JSON, or CSV)",
    )
    fig.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="persist simulation results under DIR and reuse them",
    )
    fig.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="export a trace + metrics file per simulated run into DIR",
    )

    char = sub.add_parser("characterize", help="trace characterization")
    char.add_argument("workload", choices=available_workloads())
    char.add_argument("--gpus", type=int, default=4)
    char.add_argument("--scale", type=float, default=0.3)

    report = sub.add_parser(
        "report", help="regenerate every figure into a markdown report"
    )
    report.add_argument("--output", default="REPORT.md")
    report.add_argument("--scale", type=float, default=0.25)
    report.add_argument(
        "--charts",
        metavar="DIR",
        default=None,
        help="also write an SVG bar chart per figure into DIR",
    )
    report.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="persist simulation results under DIR and reuse them",
    )
    report.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="export a trace + metrics file per simulated run into DIR",
    )
    report.add_argument(
        "--workers",
        type=int,
        default=1,
        help="pre-warm the figure runs over this many sweep workers",
    )

    dump = sub.add_parser(
        "dump-trace", help="generate a workload trace and save it as .npz"
    )
    dump.add_argument("workload", choices=available_workloads())
    dump.add_argument("output")
    dump.add_argument("--gpus", type=int, default=4)
    dump.add_argument("--scale", type=float, default=0.3)

    sweep = sub.add_parser(
        "sweep", help="run a workload x policy matrix and tabulate it"
    )
    sweep.add_argument(
        "--workloads",
        default="all",
        help="comma-separated workload names, or 'all' for Table II",
    )
    sweep.add_argument(
        "--policies",
        default="on_touch,access_counter,duplication,grit",
        help="comma-separated policy names",
    )
    sweep.add_argument("--gpus", type=int, default=4)
    sweep.add_argument("--scale", type=float, default=0.3)
    sweep.add_argument(
        "--baseline",
        default="on_touch",
        help="policy the table is normalized to",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-parallel simulation workers",
    )
    sweep.add_argument(
        "--metric",
        choices=["speedup", "cycles", "faults"],
        default="speedup",
    )
    sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock budget (parallel workers only)",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=2,
        help="re-attempts per task after a crash/timeout/error",
    )
    sweep.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="shared on-disk result cache for the sweep workers",
    )
    sweep.add_argument(
        "--summary-json",
        metavar="PATH",
        default=None,
        help="write the sweep summary (retries, failures, per-key "
        "result digests) as JSON to PATH",
    )
    sweep.add_argument(
        "--inject-crash",
        metavar="WORKLOAD:POLICY",
        default=None,
        help="chaos drill: crash the first attempt of one task and "
        "verify the orchestrator retries it",
    )
    sweep.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="merge every task's spans into one sweep-wide Chrome "
        "trace (one process row per task) at PATH",
    )
    sweep.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="merge every task's counters into one registry export "
        "at PATH",
    )
    sweep.add_argument(
        "--metrics-format",
        choices=["jsonl", "csv", "prom"],
        default="jsonl",
    )
    sweep.add_argument(
        "--telemetry-dir",
        metavar="DIR",
        default=None,
        help="spill oversized per-task telemetry to files in DIR "
        "instead of the result pipe",
    )

    lint = sub.add_parser(
        "lint", help="run the simlint static-analysis rules"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files to lint (default: the whole repro package)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="findings as a text report, a JSON document, or SARIF "
        "2.1.0 for code scanning",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    lint.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only files changed vs `git merge-base HEAD main` "
        "(project-wide rules still see the whole package)",
    )
    lint.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="filter findings recorded in this baseline file "
        "(default: .simlint-baseline.json at the repo root, if it "
        "exists)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from this run's findings and "
        "exit 0",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the content-hash result cache "
        "(.simlint_cache.json)",
    )

    return parser


def _add_observe_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="export a Chrome trace-event JSON of the run to PATH",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="export the sampled metric series to PATH",
    )
    parser.add_argument(
        "--metrics-format",
        choices=["jsonl", "csv", "prom"],
        default="jsonl",
    )
    parser.add_argument(
        "--sample-interval",
        type=int,
        default=None,
        metavar="CYCLES",
        help="simulated cycles between metric samples",
    )


def _cmd_list() -> int:
    print("workloads:", ", ".join(available_workloads()))
    print("policies: ", ", ".join(available_policies()))
    print("figures:  ", ", ".join(sorted(FIGURES)))
    return 0


def _observed_simulate(
    config: SystemConfig,
    workload: str,
    policy: str,
    scale: float,
    sample_interval: int | None,
):
    """Run one observed simulation; returns (result, observation)."""
    from repro.obs import RunObservation
    from repro.obs.run import DEFAULT_SAMPLE_INTERVAL
    from repro.sim.engine import Engine

    trace = make_workload(
        workload, num_gpus=config.num_gpus, scale=scale
    )
    observation = RunObservation(
        sample_interval=sample_interval or DEFAULT_SAMPLE_INTERVAL
    )
    engine = Engine(
        config, trace, make_policy(policy), observation=observation
    )
    return engine.run(), observation


def _write_observation_outputs(
    observation,
    result,
    trace_path: str | None,
    metrics_path: str | None,
    metrics_format: str,
) -> None:
    if trace_path:
        observation.write_trace(
            trace_path,
            metadata={
                "workload": result.workload,
                "policy": result.policy,
            },
        )
        print(f"wrote {trace_path}")
    if metrics_path:
        observation.write_metrics(metrics_path, metrics_format)
        print(f"wrote {metrics_path}")


def _warn_dropped_events(result) -> None:
    dropped = result.details.get("dropped_events", 0)
    if dropped:
        print(
            f"warning: event log saturated, {dropped} events dropped "
            f"(raise EventLog capacity for a complete record)",
            file=sys.stderr,
        )


def _cmd_run(args: argparse.Namespace) -> int:
    config = SystemConfig(
        num_gpus=args.gpus,
        page_size=args.page_size,
        fault_batch_size=args.fault_batch,
        contention=args.contention,
        topology=args.topology,
        fast_path=not args.no_fast_path,
    )
    if args.trace or args.metrics:
        result, observation = _observed_simulate(
            config,
            args.workload,
            args.policy,
            args.scale,
            args.sample_interval,
        )
    else:
        trace = make_workload(
            args.workload, num_gpus=args.gpus, scale=args.scale
        )
        result = simulate(config, trace, make_policy(args.policy))
        observation = None
    rows = {
        key: [value] for key, value in result.summary().items()
    }
    print(format_table(["value"], rows, row_header="metric"))
    if observation is not None:
        _write_observation_outputs(
            observation,
            result,
            args.trace,
            args.metrics,
            args.metrics_format,
        )
    _warn_dropped_events(result)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.trace_schema import validate_trace_file

    config = SystemConfig(num_gpus=args.gpus)
    result, observation = _observed_simulate(
        config,
        args.workload,
        args.policy,
        args.scale,
        args.sample_interval,
    )
    _write_observation_outputs(
        observation, result, args.output, args.metrics, args.metrics_format
    )
    errors = validate_trace_file(args.output)
    if errors:
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        return 1
    tallies = observation.tracer.span_counts()
    total = sum(tallies.values())
    print(f"{total} spans over {result.total_cycles:,} simulated cycles:")
    for name in sorted(tallies):
        print(f"  {name:<24s} {tallies[name]:>8d}")
    if observation.tracer.dropped:
        print(f"  (dropped past capacity: {observation.tracer.dropped})")
    _warn_dropped_events(result)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.obs import busiest_pages, render_lifecycle
    from repro.sim.engine import Engine
    from repro.stats.events import EventLog

    config = SystemConfig(num_gpus=args.gpus)
    trace = make_workload(
        args.workload, num_gpus=args.gpus, scale=args.scale
    )
    event_log = EventLog()
    engine = Engine(
        config, trace, make_policy(args.policy), event_log=event_log
    )
    result = engine.run()
    if args.vpn is not None:
        print(render_lifecycle(event_log, args.vpn))
    else:
        ranked = busiest_pages(event_log, limit=args.limit)
        print(
            f"busiest pages of {args.workload}/{args.policy} "
            f"({len(event_log)} events logged):"
        )
        for vpn, count in ranked:
            print(f"  vpn {vpn:<10d} {count:>6d} events")
        print("re-run with --vpn N for a page's full lifecycle")
    _warn_dropped_events(result)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import profile_run

    profiled = profile_run(
        args.workload,
        args.policy,
        num_gpus=args.gpus,
        scale=args.scale,
    )
    result = profiled.result
    print(
        f"{result.workload}/{result.policy}: "
        f"{result.counters.accesses:,} accesses, "
        f"{result.total_cycles:,} simulated cycles"
    )
    print(profiled.profiler.render())
    if args.json == "-":
        print(profiled.profiler.to_jsonl(), end="")
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(profiled.profiler.to_jsonl())
        print(f"wrote {args.json}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import bench
    from repro.obs.catalog import build_bench_registry

    try:
        cases = bench.select_cases(
            [
                name.strip()
                for name in args.cases.split(",")
                if name.strip()
            ]
            if args.cases
            else None
        )
        scale = (
            args.scale if args.scale is not None else bench.default_scale()
        )
        registry = build_bench_registry()
        results = bench.run_suite(
            cases,
            scale,
            repeats=args.repeats or bench.DEFAULT_REPEATS,
            registry=registry,
            inject_slowdown=args.inject_slowdown,
        )
    except bench.BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for result in results:
        wall = min(result.wall_seconds)
        print(
            f"{result.case.name:<16s} min {wall:7.3f}s of "
            f"{result.repeats}  "
            f"{result.counters['total_cycles']:,} cycles"
        )
    if args.output:
        for result in results:
            path = bench.write_baseline(args.output, result)
            print(f"wrote {path}")
    if not args.compare:
        return 0
    try:
        regressions, notes = bench.compare_suite(
            results,
            args.compare,
            threshold=(
                args.threshold
                if args.threshold is not None
                else bench.DEFAULT_THRESHOLD
            ),
            counters_only=args.counters_only,
            registry=registry,
        )
    except bench.BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for note in notes:
        print(f"note: {note}", file=sys.stderr)
    for finding in regressions:
        print(
            f"regression [{finding.kind}] {finding.case}: "
            f"{finding.message}",
            file=sys.stderr,
        )
    if regressions:
        print(
            f"{len(regressions)} regression(s) against "
            f"{args.compare}",
            file=sys.stderr,
        )
        return 1
    print(f"bench gate passed against {args.compare}")
    return 0


def _build_runner(
    scale: float,
    cache_dir: str | None,
    artifacts_dir: str | None = None,
) -> ExperimentRunner:
    if cache_dir:
        from repro.harness.cache import DiskCachedRunner

        return DiskCachedRunner(
            cache_dir, scale=scale, artifacts_dir=artifacts_dir
        )
    return ExperimentRunner(scale=scale, artifacts_dir=artifacts_dir)


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.harness.serialize import figure_to_csv, figure_to_json

    runner = _build_runner(args.scale, args.cache, args.artifacts)
    names = sorted(FIGURES) if args.name == "all" else [args.name]
    for name in names:
        figure = run_figure(name, runner)
        if args.format == "json":
            print(figure_to_json(figure))
        elif args.format == "csv":
            print(figure_to_csv(figure), end="")
        else:
            print(format_figure(figure))
            print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.harness.reproduce import generate_report

    runner = _build_runner(args.scale, args.cache, args.artifacts)
    text = generate_report(
        scale=args.scale,
        runner=runner,
        charts_dir=args.charts,
        workers=args.workers,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {args.output}")
    return 0


def _cmd_dump_trace(args: argparse.Namespace) -> int:
    from repro.workloads.trace_io import save_trace

    trace = make_workload(args.workload, num_gpus=args.gpus, scale=args.scale)
    save_trace(trace, args.output)
    print(
        f"wrote {args.output}: {trace.total_accesses:,} accesses, "
        f"{trace.footprint_pages:,} pages, {trace.num_gpus} GPUs"
    )
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    trace = make_workload(args.workload, num_gpus=args.gpus, scale=args.scale)
    summary = sharing_summary(trace)
    rows = {
        "total_pages": [summary.total_pages],
        "total_accesses": [summary.total_accesses],
        "private_page_fraction": [summary.private_page_fraction],
        "shared_page_fraction": [summary.shared_page_fraction],
        "private_access_fraction": [summary.private_access_fraction],
        "shared_access_fraction": [summary.shared_access_fraction],
        "read_page_fraction": [summary.read_page_fraction],
        "read_write_page_fraction": [summary.read_write_page_fraction],
        "read_access_fraction": [summary.read_access_fraction],
        "read_write_access_fraction": [summary.read_write_access_fraction],
    }
    print(format_table(["value"], rows, row_header="metric"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.harness.experiment import PAPER_APPS
    from repro.harness.orchestrator import run_sweep

    workloads = (
        list(PAPER_APPS)
        if args.workloads == "all"
        else [
            name.strip()
            for name in args.workloads.split(",")
            if name.strip()
        ]
    )
    policies = [
        name.strip() for name in args.policies.split(",") if name.strip()
    ]
    if args.baseline not in policies:
        policies = [args.baseline, *policies]
    runner = _build_runner(args.scale, args.cache)
    keys = [
        runner.key(workload, policy, num_gpus=args.gpus)
        for workload in workloads
        for policy in policies
    ]
    observe = bool(args.trace or args.metrics)
    summary = run_sweep(
        keys,
        base_config=runner.base_config,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        cache_dir=args.cache,
        injections=_sweep_injections(args, keys),
        progress=lambda line: print(f"  {line}", file=sys.stderr),
        observe=observe,
        telemetry_dir=args.telemetry_dir,
    )
    runner._cache.update(summary.results)
    if observe:
        status = _write_sweep_telemetry(args, summary)
        if status != 0:
            return status
    if args.summary_json:
        with open(args.summary_json, "w", encoding="utf-8") as handle:
            json.dump(summary.to_dict(), handle, indent=2)
        print(f"wrote {args.summary_json}", file=sys.stderr)
    if summary.failed_keys():
        print(summary.render(), file=sys.stderr)
        for key in summary.failed_keys():
            print(
                f"error: {key.workload}/{key.policy} failed after "
                f"retries",
                file=sys.stderr,
            )
        return 1
    rows = {}
    for workload in workloads:
        base = runner.run(
            runner.key(workload, args.baseline, num_gpus=args.gpus)
        )
        cells = []
        for policy in policies:
            result = runner.run(
                runner.key(workload, policy, num_gpus=args.gpus)
            )
            if args.metric == "speedup":
                cells.append(result.speedup_over(base))
            elif args.metric == "cycles":
                cells.append(result.total_cycles)
            else:
                cells.append(result.counters.total_faults)
        rows[workload] = cells
    print(
        format_table(
            policies, rows, row_header=f"{args.metric} @{args.gpus}g"
        )
    )
    print(summary.render(), file=sys.stderr)
    return 0


def _write_sweep_telemetry(args: argparse.Namespace, summary) -> int:
    """Write the merged sweep trace and/or metrics export.

    Runs before the failed-keys check so a partially-failed sweep
    still leaves its successful tasks' telemetry on disk.
    """
    import json

    from repro.obs.aggregate import merge_chrome_trace, merge_registry
    from repro.obs.trace_schema import validate_trace_file

    telemetries = list(summary.telemetry.values())
    if not telemetries:
        print(
            "warning: sweep produced no telemetry (all tasks failed?)",
            file=sys.stderr,
        )
        return 0
    if args.trace:
        document = merge_chrome_trace(
            telemetries,
            metadata={"scale": args.scale, "gpus": args.gpus},
        )
        with open(args.trace, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        errors = validate_trace_file(args.trace)
        if errors:
            for error in errors:
                print(f"error: {error}", file=sys.stderr)
            return 1
        print(
            f"wrote {args.trace} "
            f"({len(document['traceEvents'])} events, "
            f"{len(telemetries)} task processes)"
        )
    if args.metrics:
        registry = merge_registry(telemetries)
        if args.metrics_format == "csv":
            payload = registry.to_csv()
        elif args.metrics_format == "prom":
            payload = registry.to_prometheus()
        else:
            payload = registry.to_jsonl()
        with open(args.metrics, "w", encoding="utf-8") as handle:
            handle.write(payload)
        print(f"wrote {args.metrics}")
    return 0


def _sweep_injections(args: argparse.Namespace, keys):
    """Build the --inject-crash failure map (None when unused)."""
    if not args.inject_crash:
        return None
    import tempfile

    from repro.harness.orchestrator import FaultInjection

    try:
        workload, policy = args.inject_crash.split(":", 1)
    except ValueError:
        raise SystemExit(
            "--inject-crash expects WORKLOAD:POLICY"
        ) from None
    targets = [
        key
        for key in keys
        if key.workload == workload and key.policy == policy
    ]
    if not targets:
        raise SystemExit(
            f"--inject-crash target {args.inject_crash!r} is not in "
            f"the sweep"
        )
    marker_dir = tempfile.mkdtemp(prefix="grit-inject-")
    return {
        targets[0]: FaultInjection(
            marker_path=os.path.join(marker_dir, "fired"), mode="crash"
        )
    }


def _changed_paths(repo_root) -> list:
    """Files changed vs the merge base with main (for --changed-only)."""
    import subprocess

    def _git(*cmd: str) -> str:
        try:
            proc = subprocess.run(
                ["git", *cmd],
                cwd=repo_root,
                capture_output=True,
                text=True,
                check=True,
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            detail = getattr(exc, "stderr", "") or str(exc)
            raise SystemExit(
                f"--changed-only needs git ({detail.strip()})"
            )
        return proc.stdout
    base = _git("merge-base", "HEAD", "main").strip()
    names = _git("diff", "--name-only", base).splitlines()
    changed = []
    for name in names:
        path = repo_root / name.strip()
        if path.suffix == ".py" and path.is_file():
            changed.append(path)
    return changed


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lint import LintEngine, make_rules
    from repro.lint.baseline import (
        DEFAULT_BASELINE_NAME,
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.lint.cache import DEFAULT_CACHE_NAME
    from repro.lint.findings import exit_code
    from repro.lint.report import render_json, render_sarif, render_text

    if args.list_rules:
        for rule in make_rules():
            print(f"{rule.rule_id}  [{rule.severity.name.lower():7s}] "
                  f"{rule.description}")
        return 0
    package_root = Path(__file__).resolve().parent
    repo_root = package_root.parent.parent
    paths = [Path(p) for p in args.paths] or None
    if args.changed_only:
        if paths is not None:
            raise SystemExit(
                "--changed-only and explicit paths are mutually "
                "exclusive"
            )
        changed = _changed_paths(repo_root)
        changed = [
            p for p in changed
            if package_root in p.resolve().parents
        ]
        if not changed:
            print("simlint: no changed files under the package")
            return 0
        paths = changed
    cache_path = None
    if not args.no_cache and paths is None:
        cache_path = repo_root / DEFAULT_CACHE_NAME
    engine = LintEngine(
        package_root, repo_root=repo_root, cache_path=cache_path
    )
    findings = engine.run(paths=paths)
    baseline_path = (
        Path(args.baseline)
        if args.baseline
        else repo_root / DEFAULT_BASELINE_NAME
    )
    if args.update_baseline:
        write_baseline(baseline_path, findings)
        print(
            f"simlint: wrote {len(findings)} finding(s) to "
            f"{baseline_path}"
        )
        return 0
    baselined = 0
    if args.baseline or baseline_path.is_file():
        try:
            entries = load_baseline(baseline_path)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"simlint: {exc}")
        findings, baselined = apply_baseline(findings, entries)
    if args.format == "json":
        print(
            render_json(
                findings,
                extra={
                    "cache": engine.stats.to_dict(),
                    "baselined": baselined,
                },
            )
        )
    elif args.format == "sarif":
        prefix = package_root.relative_to(repo_root).as_posix() + "/"
        print(render_sarif(findings, uri_prefix=prefix))
    else:
        print(render_text(findings))
    return exit_code(findings)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "characterize":
        return _cmd_characterize(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "dump-trace":
        return _cmd_dump_trace(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "inspect":
        return _cmd_inspect(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "lint":
        return _cmd_lint(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

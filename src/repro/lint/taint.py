"""Project-level taint fixpoint: the simflow analysis entry point.

:class:`FlowAnalysis` drives :class:`~repro.lint.dataflow.
FunctionAnalyzer` over every function in the simulation scope until the
function summaries stop changing, then exposes:

* ``value_hits`` — nondeterminism sources reaching result sinks
  (GRIT-F001), each with the full source-to-sink trace;
* ``order_hits`` — unordered sets iterated where the per-file D003
  rule is blind (GRIT-F002);
* ``degradations`` — spots where the analysis lost precision but kept
  going (dynamic attribute names, per-function analysis failures) for
  the GRIT-P001/P002 warnings.

The analysis is memoized per :class:`SymbolTable` instance so the five
flow rules share one fixpoint per lint run.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Tuple

from repro.lint.callgraph import CallGraph, ClassKey, FunctionKey
from repro.lint.dataflow import (
    Degradation,
    FunctionAnalyzer,
    FunctionSummary,
    OrderHit,
    SinkHit,
    Taints,
    _annotation_is_set,
)
from repro.lint.symbols import SymbolTable

#: Directories whose functions the flow passes analyze.  ``obs/`` is
#: excluded deliberately (the profiler reads the wall clock by design,
#: and its outputs never feed simulated results); ``workloads/`` uses
#: seeded RNGs by design and is covered by GRIT-D002.
FLOW_SCOPE: Tuple[str, ...] = (
    "core/",
    "harness/",
    "interconnect/",
    "memsys/",
    "policies/",
    "prefetch/",
    "sim/",
    "stats/",
    "uvm/",
)

#: Fixpoint round cap; summaries converge in 2-3 rounds in practice.
MAX_ROUNDS = 6


def in_flow_scope(relpath: str) -> bool:
    return any(relpath.startswith(prefix) for prefix in FLOW_SCOPE)


class FlowAnalysis:
    """One converged interprocedural analysis over a symbol table."""

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        self.graph = CallGraph.of(symbols)
        self.set_attrs = self._collect_set_attrs()
        self.summaries: Dict[FunctionKey, FunctionSummary] = {}
        self.value_hits: List[SinkHit] = []
        self.order_hits: List[OrderHit] = []
        self.degradations: List[Degradation] = []
        self._run()

    @classmethod
    def of(cls, symbols: SymbolTable) -> "FlowAnalysis":
        cached = getattr(symbols, "_simflow_analysis", None)
        if cached is None:
            cached = cls(symbols)
            symbols._simflow_analysis = cached  # type: ignore[attr-defined]
        return cached

    def _collect_set_attrs(self) -> Dict[str, str]:
        """``attr -> defining class`` for set-annotated class fields."""
        found: Dict[str, str] = {}
        for info in self.symbols.iter_modules():
            if not in_flow_scope(info.relpath):
                continue
            for node in info.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        if _annotation_is_set(stmt.annotation):
                            found.setdefault(
                                stmt.target.id,
                                f"declared on {node.name}",
                            )
        return found

    def _scope_functions(self):
        return [
            fn
            for fn in self.graph.iter_functions()
            if in_flow_scope(fn.relpath)
        ]

    def _run(self) -> None:
        functions = self._scope_functions()
        attr_taints: Dict[Tuple[ClassKey, str], Taints] = {}
        signatures: Dict[FunctionKey, tuple] = {}
        final: Dict[str, List] = {}
        for _ in range(MAX_ROUNDS):
            changed = False
            round_hits: List[SinkHit] = []
            round_order: List[OrderHit] = []
            round_degradations: List[Degradation] = []
            for fn in functions:
                try:
                    analyzer = FunctionAnalyzer(
                        fn,
                        self.graph,
                        self.summaries,
                        attr_taints,
                        self.set_attrs,
                    )
                    summary = analyzer.analyze()
                except Exception as exc:
                    round_degradations.append(
                        Degradation(
                            kind="analysis-failure",
                            path=fn.relpath,
                            line=fn.node.lineno,
                            note=(
                                f"flow analysis of {fn.qualname}() "
                                f"failed ({type(exc).__name__}: {exc}); "
                                "findings in this function may be "
                                "incomplete"
                            ),
                        )
                    )
                    continue
                self.summaries[fn.key] = summary
                signature = summary.signature()
                if signatures.get(fn.key) != signature:
                    signatures[fn.key] = signature
                    changed = True
                round_hits.extend(summary.sink_hits)
                round_order.extend(analyzer.order_hits)
                round_degradations.extend(analyzer.degradations)
            final["hits"] = round_hits
            final["order"] = round_order
            final["degradations"] = round_degradations
            if not changed:
                break
        self.value_hits = self._dedupe_hits(final.get("hits", []))
        self.order_hits = self._dedupe_order(final.get("order", []))
        self.degradations = self._dedupe_degradations(
            final.get("degradations", [])
        )

    @staticmethod
    def _dedupe_hits(hits: List[SinkHit]) -> List[SinkHit]:
        seen: Dict[tuple, SinkHit] = {}
        for hit in hits:
            key = (hit.path, hit.line, hit.label, hit.sink)
            best = seen.get(key)
            if best is None or len(hit.steps) < len(best.steps):
                seen[key] = hit
        return sorted(
            seen.values(), key=lambda h: (h.path, h.line, h.label)
        )

    @staticmethod
    def _dedupe_order(hits: List[OrderHit]) -> List[OrderHit]:
        seen: Dict[tuple, OrderHit] = {}
        for hit in hits:
            key = (hit.path, hit.line)
            if key not in seen:
                seen[key] = hit
        return sorted(seen.values(), key=lambda h: (h.path, h.line))

    @staticmethod
    def _dedupe_degradations(
        degradations: List[Degradation],
    ) -> List[Degradation]:
        seen: Dict[tuple, Degradation] = {}
        for degradation in degradations:
            key = (degradation.kind, degradation.path, degradation.line)
            if key not in seen:
                seen[key] = degradation
        return sorted(
            seen.values(), key=lambda d: (d.path, d.line, d.kind)
        )

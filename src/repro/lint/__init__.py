"""simlint: the GRIT reproduction's own static-analysis pass.

An AST-based rule engine with repo-specific rules in three families —
determinism (no wall clock / unseeded RNG / unordered-set iteration in
the simulation core), hygiene (mutable defaults, bare excepts), and
cross-module consistency (policy registry reachability, EventKind
emission coverage, LatencyCategory-typed charges, documented CLI
subcommands).  Run it via ``grit-repro lint`` or programmatically:

    from pathlib import Path
    from repro.lint import LintEngine

    findings = LintEngine(Path("src/repro"), Path(".")).run()
    assert not findings

See docs/static_analysis.md for the rule catalog and how to add rules.
"""

from repro.lint.engine import (
    LintEngine,
    FileRule,
    ProjectRule,
    Rule,
    check_module,
    lint_source,
    make_rules,
    registered_rules,
    rule,
)
from repro.lint.findings import Finding, Severity, exit_code
from repro.lint.report import render_json, render_text
from repro.lint.symbols import ModuleInfo, SymbolTable

__all__ = [
    "Finding",
    "Severity",
    "exit_code",
    "LintEngine",
    "FileRule",
    "ProjectRule",
    "Rule",
    "check_module",
    "lint_source",
    "make_rules",
    "registered_rules",
    "rule",
    "render_json",
    "render_text",
    "ModuleInfo",
    "SymbolTable",
]

"""simlint: the GRIT reproduction's own static-analysis pass.

An AST-based rule engine with repo-specific rules in four families —
determinism (no wall clock / unseeded RNG / unordered-set iteration in
the simulation core), hygiene (mutable defaults, bare excepts),
cross-module consistency (policy registry reachability, EventKind
emission coverage, LatencyCategory-typed charges, documented CLI
subcommands), and the simflow dataflow passes (cross-module taint
tracking from nondeterminism sources to result sinks, config/CLI
provenance, worker exception safety).  Run it via ``grit-repro lint``
or programmatically:

    from pathlib import Path
    from repro.lint import LintEngine

    findings = LintEngine(Path("src/repro"), Path(".")).run()
    assert not findings

See docs/static_analysis.md for the rule catalog and how to add rules.
"""

from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.cache import AnalysisCache, CacheStats
from repro.lint.callgraph import CallGraph
from repro.lint.engine import (
    LintEngine,
    FileRule,
    ProjectRule,
    Rule,
    check_module,
    lint_source,
    make_rules,
    registered_rules,
    rule,
)
from repro.lint.findings import Finding, Severity, TraceStep, exit_code
from repro.lint.report import render_json, render_sarif, render_text
from repro.lint.suppress import apply_suppressions
from repro.lint.symbols import ModuleInfo, SymbolTable
from repro.lint.taint import FlowAnalysis

__all__ = [
    "AnalysisCache",
    "CacheStats",
    "CallGraph",
    "Finding",
    "FlowAnalysis",
    "Severity",
    "TraceStep",
    "exit_code",
    "LintEngine",
    "FileRule",
    "ProjectRule",
    "Rule",
    "apply_baseline",
    "apply_suppressions",
    "check_module",
    "lint_source",
    "load_baseline",
    "make_rules",
    "registered_rules",
    "rule",
    "render_json",
    "render_sarif",
    "render_text",
    "write_baseline",
    "ModuleInfo",
    "SymbolTable",
]

"""The simlint rule catalog.

Importing this package registers every bundled rule with the engine's
registry (each rule module applies the :func:`repro.lint.engine.rule`
decorator at import time).  Add new rule modules to the import list
below; see docs/static_analysis.md for the recipe.
"""

from repro.lint.rules import consistency, determinism, flow, hygiene

__all__ = ["consistency", "determinism", "flow", "hygiene"]

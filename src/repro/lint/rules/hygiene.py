"""Hygiene rules: Python footguns that bite simulators in particular.

A mutable default argument is one shared object across *every*
simulation a process runs — state leaking between runs looks exactly
like nondeterminism.  A bare ``except:`` swallows ``KeyboardInterrupt``
and masks real engine bugs as silently-wrong results.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileRule, rule
from repro.lint.findings import Finding
from repro.lint.symbols import ModuleInfo

#: Constructor calls that build a fresh mutable container.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
     "Counter", "deque"}
)


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_CONSTRUCTORS:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTABLE_CONSTRUCTORS
        ):
            return True
    return False


@rule
class MutableDefaultRule(FileRule):
    """No mutable default arguments anywhere in the package."""

    rule_id = "GRIT-H001"
    description = (
        "function defaults must not be mutable ([], {}, set(), ...): "
        "the one instance is shared across every call and every run"
    )
    hint = "default to None and create the container inside the function"

    def visit_FunctionDef(
        self, node: ast.FunctionDef, module: ModuleInfo
    ) -> Iterator[Finding]:
        yield from self._check_args(node, node.args, module)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, module: ModuleInfo
    ) -> Iterator[Finding]:
        yield from self._check_args(node, node.args, module)

    def visit_Lambda(
        self, node: ast.Lambda, module: ModuleInfo
    ) -> Iterator[Finding]:
        yield from self._check_args(node, node.args, module)

    def _check_args(
        self, owner: ast.AST, args: ast.arguments, module: ModuleInfo
    ) -> Iterator[Finding]:
        name = getattr(owner, "name", "<lambda>")
        defaults = list(args.defaults) + [
            default for default in args.kw_defaults if default is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                yield self.finding(
                    module,
                    default,
                    f"mutable default argument in {name}()",
                )


@rule
class BareExceptRule(FileRule):
    """No bare ``except:`` handlers anywhere in the package."""

    rule_id = "GRIT-H002"
    description = (
        "bare except: catches KeyboardInterrupt/SystemExit and hides "
        "engine bugs; name the exception types"
    )
    hint = "catch a specific exception (at widest, `except Exception:`)"

    def visit_ExceptHandler(
        self, node: ast.ExceptHandler, module: ModuleInfo
    ) -> Iterator[Finding]:
        if node.type is None:
            yield self.finding(module, node, "bare except handler")

"""simflow rules: cross-module dataflow, provenance, worker safety.

These rules consume the interprocedural analysis in
:mod:`repro.lint.taint` / :mod:`repro.lint.dataflow`:

* **GRIT-F001** — a nondeterminism source (wall clock, environment,
  pid, ``id()``, global/unseeded RNG) flows through calls, returns, or
  attribute writes into a result sink (cycle accounting,
  ``SimulationResult``, metrics/event emission, cache digests).  Each
  finding carries the full source-to-sink trace.
* **GRIT-F002** — an unordered set is iterated where the per-file
  GRIT-D003 rule is blind: the set came out of a helper call, a
  parameter, or a set-annotated attribute, or the code lives outside
  D003's ``sim/``/``uvm/``/``policies/`` scope.
* **GRIT-F003** — config provenance: every config dataclass field must
  be read outside ``config.py`` (directly or through an externally
  used config method), and every ``GRIT_*`` env var must be read via
  ``os.environ`` *and* documented in ``config.py``.
* **GRIT-F004** — CLI provenance: every flag a subcommand parses must
  be read by its handler, and every subcommand must be dispatched.
* **GRIT-F005** — exception safety on worker-reachable code: no
  swallowed ``BaseException``, no pass-only broad handlers, no bare
  ``open()`` outside a ``with`` block.
* **GRIT-P001 / GRIT-P002** — degradation warnings: dynamically built
  attribute names the dataflow cannot see, and per-function analysis
  failures.  The analyzer never crashes or silently skips.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.callgraph import CallGraph, FunctionInfo
from repro.lint.engine import ProjectRule, rule
from repro.lint.findings import Finding, Severity, TraceStep
from repro.lint.rules.determinism import SIMULATION_SCOPE
from repro.lint.symbols import ModuleInfo, SymbolTable
from repro.lint.taint import FlowAnalysis

_ENV_VAR_PATTERN = re.compile(r"^GRIT_[A-Z0-9_]+$")


def _trace(steps) -> Tuple[TraceStep, ...]:
    return tuple(
        TraceStep(path=s.path, line=s.line, note=s.note) for s in steps
    )


@rule
class TaintedSinkRule(ProjectRule):
    """Determinism taint: sources must never reach result sinks."""

    rule_id = "GRIT-F001"
    description = (
        "no nondeterminism source (wall clock, env, pid, id(), global "
        "RNG) may flow into cycle accounting, SimulationResult, "
        "metrics/event emission, or cache digests — even through "
        "helpers"
    )
    hint = (
        "derive the value from simulated state (clocks, counters, "
        "config) instead of the environment"
    )

    def check_project(self, symbols: SymbolTable) -> Iterator[Finding]:
        analysis = FlowAnalysis.of(symbols)
        for hit in analysis.value_hits:
            yield Finding(
                rule_id=self.rule_id,
                severity=self.severity,
                path=hit.path,
                line=hit.line,
                message=f"{hit.label} reaches {hit.sink}",
                hint=self.hint,
                trace=_trace(hit.steps),
            )


@rule
class UnorderedFlowRule(ProjectRule):
    """Unordered-set iteration that per-file D003 cannot see."""

    rule_id = "GRIT-F002"
    description = (
        "no iteration over sets that arrive through helper returns, "
        "parameters, or set-annotated attributes (GRIT-D003's "
        "cross-function blind spots); iteration order leaks into "
        "results"
    )
    hint = "iterate sorted(...) so the order is explicit"

    def check_project(self, symbols: SymbolTable) -> Iterator[Finding]:
        analysis = FlowAnalysis.of(symbols)
        for hit in analysis.order_hits:
            if hit.syntactic and hit.path.startswith(SIMULATION_SCOPE):
                continue  # GRIT-D003 already owns this finding
            yield Finding(
                rule_id=self.rule_id,
                severity=self.severity,
                path=hit.path,
                line=hit.line,
                message=(
                    f"iteration over an unordered set ({hit.note}); "
                    "the order can leak into results"
                ),
                hint=self.hint,
                trace=_trace(hit.steps),
            )


@rule
class ConfigProvenanceRule(ProjectRule):
    """Every config knob must be consumed; env vars must round-trip."""

    rule_id = "GRIT-F003"
    description = (
        "every config dataclass field must be read outside config.py "
        "(directly or via an externally used config method), and every "
        "GRIT_* env var must be read via os.environ and documented in "
        "config.py"
    )
    hint = "wire the knob into the core, or delete it"

    _CONFIG_PATH = "config.py"

    def check_project(self, symbols: SymbolTable) -> Iterator[Finding]:
        info = symbols.module(self._CONFIG_PATH)
        if info is not None:
            yield from self._check_fields(symbols, info)
        yield from self._check_env_vars(symbols, info)

    # -- dataclass fields ---------------------------------------------

    def _check_fields(
        self, symbols: SymbolTable, info: ModuleInfo
    ) -> Iterator[Finding]:
        outside = {
            attr
            for attr, sites in symbols.attribute_loads().items()
            if any(rel != self._CONFIG_PATH for rel, _ in sites)
        }
        internal_reads = self._internal_reads(info)
        read_internally = self._closure(internal_reads, outside)
        for class_name, field, line in self._dataclass_fields(info):
            if field in outside or field in read_internally:
                continue
            yield Finding(
                rule_id=self.rule_id,
                severity=self.severity,
                path=info.relpath,
                line=line,
                message=(
                    f"config field {class_name}.{field} is never read "
                    "outside config.py: the knob is dead"
                ),
                hint=self.hint,
            )

    def _dataclass_fields(
        self, info: ModuleInfo
    ) -> List[Tuple[str, str, int]]:
        fields: List[Tuple[str, str, int]] = []
        for node in info.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._is_dataclass(node):
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                target = stmt.target
                if not isinstance(target, ast.Name):
                    continue
                if target.id.startswith("_"):
                    continue
                if self._is_classvar(stmt.annotation):
                    continue
                fields.append((node.name, target.id, stmt.lineno))
        return fields

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            candidate = decorator
            if isinstance(candidate, ast.Call):
                candidate = candidate.func
            name = None
            if isinstance(candidate, ast.Name):
                name = candidate.id
            elif isinstance(candidate, ast.Attribute):
                name = candidate.attr
            if name == "dataclass":
                return True
        return False

    @staticmethod
    def _is_classvar(annotation: ast.expr) -> bool:
        node = annotation
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id == "ClassVar"
        if isinstance(node, ast.Attribute):
            return node.attr == "ClassVar"
        return False

    @staticmethod
    def _internal_reads(info: ModuleInfo) -> Dict[str, Set[str]]:
        """``method -> self attributes it reads`` inside config.py."""
        reads: Dict[str, Set[str]] = {}
        for node in info.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                attrs = {
                    sub.attr
                    for sub in ast.walk(stmt)
                    if isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                    and isinstance(sub.ctx, ast.Load)
                }
                reads.setdefault(stmt.name, set()).update(attrs)
        return reads

    @staticmethod
    def _closure(
        internal_reads: Dict[str, Set[str]], outside: Set[str]
    ) -> Set[str]:
        """Fields read by config methods that are themselves used.

        ``__post_init__`` validation and other dunders never count as
        consumption — a knob that is only validated is still dead.
        """
        visible = {
            name
            for name in internal_reads
            if not name.startswith("_") and name in outside
        }
        read: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for name in sorted(visible):
                for attr in internal_reads.get(name, ()):
                    if attr not in read:
                        read.add(attr)
                        changed = True
                    if (
                        attr in internal_reads
                        and not attr.startswith("_")
                        and attr not in visible
                    ):
                        visible.add(attr)
                        changed = True
        return read

    # -- GRIT_* environment variables ---------------------------------

    def _check_env_vars(
        self, symbols: SymbolTable, config: ModuleInfo | None
    ) -> Iterator[Finding]:
        occurrences: Dict[str, Tuple[str, int]] = {}
        for info in symbols.iter_modules():
            for node in ast.walk(info.tree):
                if (
                    isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and _ENV_VAR_PATTERN.match(node.value)
                ):
                    occurrences.setdefault(
                        node.value, (info.relpath, node.lineno)
                    )
        if not occurrences:
            return
        read_vars = self._environ_reads(symbols)
        config_source = config.source if config is not None else ""
        for name in sorted(occurrences):
            path, line = occurrences[name]
            if name not in read_vars:
                yield Finding(
                    rule_id=self.rule_id,
                    severity=self.severity,
                    path=path,
                    line=line,
                    message=(
                        f"env var {name} is referenced but never read "
                        "via os.environ: it cannot influence anything"
                    ),
                    hint="read it with os.environ.get, or delete it",
                )
            elif name not in config_source:
                yield Finding(
                    rule_id=self.rule_id,
                    severity=self.severity,
                    path=path,
                    line=line,
                    message=(
                        f"env var {name} does not round-trip through "
                        "config.py: document it next to the config "
                        "flag it mirrors"
                    ),
                    hint="mention the variable in config.py",
                )

    @staticmethod
    def _environ_reads(symbols: SymbolTable) -> Set[str]:
        """Env-var names passed to os.getenv / os.environ reads."""
        read: Set[str] = set()
        for info in symbols.iter_modules():
            constants: Dict[str, str] = {}
            for node in info.tree.body:
                if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Constant
                ):
                    value = node.value.value
                    if isinstance(value, str):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                constants[target.id] = value
            for node in ast.walk(info.tree):
                key: ast.expr | None = None
                if isinstance(node, ast.Call):
                    func = node.func
                    if not isinstance(func, ast.Attribute):
                        continue
                    is_getenv = (
                        func.attr == "getenv"
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "os"
                    )
                    is_environ_get = (
                        func.attr == "get"
                        and isinstance(func.value, ast.Attribute)
                        and func.value.attr == "environ"
                    )
                    if (is_getenv or is_environ_get) and node.args:
                        key = node.args[0]
                elif isinstance(node, ast.Subscript):
                    value = node.value
                    if (
                        isinstance(value, ast.Attribute)
                        and value.attr == "environ"
                    ):
                        key = node.slice
                if key is None:
                    continue
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    read.add(key.value)
                elif isinstance(key, ast.Name) and key.id in constants:
                    read.add(constants[key.id])
        return read


@rule
class CliProvenanceRule(ProjectRule):
    """Every parsed CLI flag must be read by its subcommand handler."""

    rule_id = "GRIT-F004"
    description = (
        "every flag a CLI subcommand parses must be read by its "
        "handler (directly or through helpers it passes args to), and "
        "every subcommand must be dispatched in main()"
    )
    hint = "read the flag in the handler, or delete the argument"

    _CLI_PATH = "cli.py"

    def check_project(self, symbols: SymbolTable) -> Iterator[Finding]:
        info = symbols.module(self._CLI_PATH)
        if info is None:
            return
        functions = {
            node.name: node
            for node in info.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        flags, parser_lines = self._collect_flags(functions)
        handlers = self._collect_handlers(functions)
        for cmd in sorted(parser_lines):
            if cmd not in handlers:
                yield Finding(
                    rule_id=self.rule_id,
                    severity=self.severity,
                    path=info.relpath,
                    line=parser_lines[cmd],
                    message=(
                        f"subcommand {cmd!r} is parsed but never "
                        "dispatched in main()"
                    ),
                    hint="dispatch the subcommand, or delete it",
                )
                continue
            handler, arg_params = handlers[cmd]
            reads, opaque = self._handler_reads(
                functions, handler, arg_params
            )
            if opaque:
                continue  # handler reads args dynamically; trust it
            for dest, line in flags.get(cmd, ()):
                if dest in reads:
                    continue
                yield Finding(
                    rule_id=self.rule_id,
                    severity=self.severity,
                    path=info.relpath,
                    line=line,
                    message=(
                        f"flag --{dest.replace('_', '-')} of "
                        f"subcommand {cmd!r} is parsed but its handler "
                        f"{handler}() never reads args.{dest}"
                    ),
                    hint=self.hint,
                )

    def _collect_flags(
        self, functions: Dict[str, ast.FunctionDef]
    ) -> Tuple[Dict[str, List[Tuple[str, int]]], Dict[str, int]]:
        flags: Dict[str, List[Tuple[str, int]]] = {}
        parser_lines: Dict[str, int] = {}
        parser_vars: Dict[str, Dict[str, str]] = {}
        helper_flags: Dict[
            Tuple[str, str], List[Tuple[str, int]]
        ] = {}
        for fname, fnode in functions.items():
            var_cmd: Dict[str, str] = {}
            params = {
                a.arg
                for a in (
                    *fnode.args.posonlyargs,
                    *fnode.args.args,
                    *fnode.args.kwonlyargs,
                )
            }
            for node in ast.walk(fnode):
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    value = node.value
                elif isinstance(node, ast.Expr):
                    value = node.value
                if not isinstance(value, ast.Call):
                    continue
                func = value.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr == "add_parser"
                    and value.args
                    and isinstance(value.args[0], ast.Constant)
                    and isinstance(value.args[0].value, str)
                ):
                    continue
                cmd = value.args[0].value
                parser_lines.setdefault(cmd, value.lineno)
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            var_cmd[target.id] = cmd
            parser_vars[fname] = var_cmd
            for node in ast.walk(fnode):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr == "add_argument"
                    and isinstance(func.value, ast.Name)
                ):
                    continue
                dest = self._argument_dest(node)
                if dest is None:
                    continue
                owner = func.value.id
                if owner in var_cmd:
                    flags.setdefault(var_cmd[owner], []).append(
                        (dest, node.lineno)
                    )
                elif owner in params:
                    helper_flags.setdefault((fname, owner), []).append(
                        (dest, node.lineno)
                    )
        # Helper functions (``_add_x_arguments(parser)``) attribute
        # their flags to whichever subcommand parser they are passed.
        for fname, fnode in functions.items():
            var_cmd = parser_vars[fname]
            for node in ast.walk(fnode):
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Name):
                    continue
                helper = functions.get(node.func.id)
                if helper is None:
                    continue
                helper_params = [
                    a.arg
                    for a in (
                        *helper.args.posonlyargs,
                        *helper.args.args,
                    )
                ]
                for index, arg in enumerate(node.args):
                    if not isinstance(arg, ast.Name):
                        continue
                    if arg.id not in var_cmd:
                        continue
                    if index >= len(helper_params):
                        continue
                    key = (helper.name, helper_params[index])
                    for dest, line in helper_flags.get(key, ()):
                        flags.setdefault(var_cmd[arg.id], []).append(
                            (dest, line)
                        )
        return flags, parser_lines

    @staticmethod
    def _argument_dest(node: ast.Call) -> str | None:
        for kw in node.keywords:
            if kw.arg == "dest" and isinstance(kw.value, ast.Constant):
                value = kw.value.value
                if isinstance(value, str):
                    return value
        for arg in node.args:
            if not (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
            ):
                continue
            text = arg.value
            if text.startswith("--"):
                return text.lstrip("-").replace("-", "_")
            if text.startswith("-"):
                continue  # short option alone; argparse rejects these
            return text.replace("-", "_")
        return None

    @staticmethod
    def _collect_handlers(
        functions: Dict[str, ast.FunctionDef],
    ) -> Dict[str, Tuple[str, List[str]]]:
        """``cmd -> (handler name, handler params bound to args)``."""
        main = functions.get("main")
        if main is None:
            return {}
        handlers: Dict[str, Tuple[str, List[str]]] = {}
        for node in ast.walk(main):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            if not (
                isinstance(test, ast.Compare)
                and isinstance(test.left, ast.Attribute)
                and test.left.attr == "command"
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Eq)
                and len(test.comparators) == 1
                and isinstance(test.comparators[0], ast.Constant)
            ):
                continue
            cmd = test.comparators[0].value
            if not isinstance(cmd, str):
                continue
            for sub in ast.walk(ast.Module(body=node.body, type_ignores=[])):
                if not isinstance(sub, ast.Call):
                    continue
                if not isinstance(sub.func, ast.Name):
                    continue
                handler = functions.get(sub.func.id)
                if handler is None:
                    continue
                params = [
                    a.arg
                    for a in (
                        *handler.args.posonlyargs,
                        *handler.args.args,
                    )
                ]
                bound = [
                    params[index]
                    for index, arg in enumerate(sub.args)
                    if isinstance(arg, ast.Name)
                    and arg.id == "args"
                    and index < len(params)
                ]
                handlers[cmd] = (handler.name, bound)
                break
        return handlers

    @staticmethod
    def _handler_reads(
        functions: Dict[str, ast.FunctionDef],
        handler: str,
        arg_params: List[str],
    ) -> Tuple[Set[str], bool]:
        """Attributes of ``args`` the handler (transitively) reads."""
        reads: Set[str] = set()
        opaque = False
        stack = [(handler, param) for param in arg_params]
        visited: Set[Tuple[str, str]] = set()
        while stack:
            fname, param = stack.pop()
            if (fname, param) in visited:
                continue
            visited.add((fname, param))
            fnode = functions.get(fname)
            if fnode is None:
                continue
            for node in ast.walk(fnode):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == param
                ):
                    reads.add(node.attr)
                elif isinstance(node, ast.Call):
                    func = node.func
                    if isinstance(func, ast.Name):
                        if func.id == "vars" and any(
                            isinstance(a, ast.Name) and a.id == param
                            for a in node.args
                        ):
                            opaque = True
                        if func.id == "getattr" and node.args and (
                            isinstance(node.args[0], ast.Name)
                            and node.args[0].id == param
                            and len(node.args) > 1
                            and not isinstance(
                                node.args[1], ast.Constant
                            )
                        ):
                            opaque = True
                        callee = functions.get(func.id)
                        if callee is not None:
                            callee_params = [
                                a.arg
                                for a in (
                                    *callee.args.posonlyargs,
                                    *callee.args.args,
                                )
                            ]
                            for index, arg in enumerate(node.args):
                                if (
                                    isinstance(arg, ast.Name)
                                    and arg.id == param
                                    and index < len(callee_params)
                                ):
                                    stack.append(
                                        (
                                            callee.name,
                                            callee_params[index],
                                        )
                                    )
                            for kw in node.keywords:
                                if (
                                    isinstance(kw.value, ast.Name)
                                    and kw.value.id == param
                                    and kw.arg is not None
                                ):
                                    stack.append((callee.name, kw.arg))
        return reads, opaque


@rule
class WorkerSafetyRule(ProjectRule):
    """Exception safety on orchestrator-worker-reachable code."""

    rule_id = "GRIT-F005"
    description = (
        "code reachable from a worker entrypoint (Process/Thread "
        "target) must not swallow BaseException, use pass-only broad "
        "handlers, or open file handles outside a with block"
    )
    hint = (
        "catch Exception (re-raise BaseException after reporting), "
        "handle specific errors, and use `with open(...)`"
    )

    def check_project(self, symbols: SymbolTable) -> Iterator[Finding]:
        graph = CallGraph.of(symbols)
        roots: List[FunctionInfo] = []
        for info in symbols.iter_modules():
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                callable_name = None
                if isinstance(func, ast.Name):
                    callable_name = func.id
                elif isinstance(func, ast.Attribute):
                    callable_name = func.attr
                if callable_name not in ("Process", "Thread"):
                    continue
                for kw in node.keywords:
                    if kw.arg != "target":
                        continue
                    target = graph.resolve_target(
                        kw.value, info.relpath
                    )
                    if target is not None:
                        roots.append(target)
        for fn in graph.reachable(roots):
            yield from self._check_function(fn)

    def _check_function(self, fn: FunctionInfo) -> Iterator[Finding]:
        sanctioned: Set[int] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    sanctioned.add(id(item.context_expr))
        for node in ast.walk(fn.node):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(fn, node)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "open"
                and id(node) not in sanctioned
            ):
                yield Finding(
                    rule_id=self.rule_id,
                    severity=self.severity,
                    path=fn.relpath,
                    line=node.lineno,
                    message=(
                        f"open() outside a with block in worker-"
                        f"reachable {fn.qualname}(): the handle leaks "
                        "when the error path unwinds"
                    ),
                    hint="use `with open(...) as handle:`",
                )

    def _check_handler(
        self, fn: FunctionInfo, handler: ast.ExceptHandler
    ) -> Iterator[Finding]:
        names = self._handler_names(handler.type)
        if names is None:
            return  # bare except is GRIT-H002's finding
        broad = {"Exception", "BaseException"} & names
        if "BaseException" in names and not any(
            isinstance(sub, ast.Raise) for sub in ast.walk(handler)
        ):
            yield Finding(
                rule_id=self.rule_id,
                severity=self.severity,
                path=fn.relpath,
                line=handler.lineno,
                message=(
                    f"worker-reachable {fn.qualname}() swallows "
                    "BaseException without re-raising: cancellation "
                    "(KeyboardInterrupt/SystemExit) dies here and the "
                    "worker reports a clean exit"
                ),
                hint=(
                    "catch Exception, or re-raise after reporting "
                    "the failure"
                ),
            )
        elif broad and self._is_pass_only(handler.body):
            yield Finding(
                rule_id=self.rule_id,
                severity=self.severity,
                path=fn.relpath,
                line=handler.lineno,
                message=(
                    f"worker-reachable {fn.qualname}() silently "
                    f"swallows {sorted(broad)[0]}: the error path "
                    "drops the failure on the floor"
                ),
                hint=(
                    "name the specific exceptions the code can "
                    "actually handle"
                ),
            )

    @staticmethod
    def _handler_names(node: ast.expr | None) -> Set[str] | None:
        if node is None:
            return None
        candidates = (
            node.elts if isinstance(node, ast.Tuple) else [node]
        )
        names: Set[str] = set()
        for candidate in candidates:
            if isinstance(candidate, ast.Name):
                names.add(candidate.id)
            elif isinstance(candidate, ast.Attribute):
                names.add(candidate.attr)
        return names

    @staticmethod
    def _is_pass_only(body: List[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue
            return False
        return True


@rule
class DynamicAttributeRule(ProjectRule):
    """Dynamically built attribute names blind the dataflow pass."""

    rule_id = "GRIT-P001"
    severity = Severity.WARNING
    description = (
        "getattr/setattr with computed names inside the flow-analysis "
        "scope hide dataflow from simflow (degradation warning)"
    )
    hint = (
        "name the attribute statically, or suppress with "
        "`# simlint: ignore[GRIT-P001]` when the dynamism is the point"
    )

    def check_project(self, symbols: SymbolTable) -> Iterator[Finding]:
        analysis = FlowAnalysis.of(symbols)
        for degradation in analysis.degradations:
            if degradation.kind != "dynamic-attr":
                continue
            yield Finding(
                rule_id=self.rule_id,
                severity=self.severity,
                path=degradation.path,
                line=degradation.line,
                message=degradation.note,
                hint=self.hint,
            )


@rule
class AnalysisFailureRule(ProjectRule):
    """The analyzer degrades to a warning instead of crashing."""

    rule_id = "GRIT-P002"
    severity = Severity.WARNING
    description = (
        "a function the flow analysis could not process degrades to "
        "this warning instead of crashing or silently skipping"
    )
    hint = "report the construct so the analyzer learns it"

    def check_project(self, symbols: SymbolTable) -> Iterator[Finding]:
        analysis = FlowAnalysis.of(symbols)
        for degradation in analysis.degradations:
            if degradation.kind != "analysis-failure":
                continue
            yield Finding(
                rule_id=self.rule_id,
                severity=self.severity,
                path=degradation.path,
                line=degradation.line,
                message=degradation.note,
                hint=self.hint,
            )

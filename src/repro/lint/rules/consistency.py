"""Cross-module consistency rules over the project symbol table.

These encode repo-specific wiring contracts that no generic linter
knows: every policy module must be reachable from the registry (or the
CLI silently cannot build it), every :class:`EventKind` member must be
emitted somewhere (or the event log silently under-reports), every
latency charge must name a :class:`LatencyCategory` member (or Figure 3
accounting silently misattributes), and every CLI subcommand must be
documented.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileRule, ProjectRule, rule
from repro.lint.findings import Finding
from repro.lint.symbols import ModuleInfo, SymbolTable

#: Policy modules that are infrastructure, not registrable policies.
_POLICY_INFRA = frozenset({"__init__.py", "base.py", "registry.py"})

_POLICIES_DIR = "policies/"
_REGISTRY_PATH = "policies/registry.py"
_EVENTS_PATH = "stats/events.py"
_CLI_PATH = "cli.py"
_CATALOG_PATH = "obs/catalog.py"
_OBS_DOC = "docs/observability.md"
_POLICIES_BASE_PATH = "policies/base.py"


@rule
class PolicyRegistryRule(ProjectRule):
    """Every policy module is reachable from the policy registry."""

    rule_id = "GRIT-C001"
    description = (
        "every module in policies/ must be imported by "
        "policies/registry.py so its policies are constructible by name"
    )
    hint = "import it in policies/registry.py and add a _FACTORIES entry"

    def check_project(self, symbols: SymbolTable) -> Iterator[Finding]:
        if symbols.module(_REGISTRY_PATH) is None:
            return
        imported = symbols.imported_modules(_REGISTRY_PATH)
        for info in symbols.modules_under(_POLICIES_DIR):
            name = info.relpath[len(_POLICIES_DIR):]
            if "/" in name or name in _POLICY_INFRA:
                continue
            module_name = f"repro.policies.{name[:-3]}"
            if module_name not in imported:
                yield self.finding(
                    info,
                    info.tree,
                    f"policy module {module_name} is not imported by "
                    f"{_REGISTRY_PATH}",
                )


@rule
class EventEmissionRule(ProjectRule):
    """Every EventKind member is emitted (or consumed) somewhere."""

    rule_id = "GRIT-C002"
    description = (
        "every EventKind member must be referenced outside stats/"
        "events.py; an unemitted kind means the event log lies by "
        "omission"
    )
    hint = "emit the event where the machine performs it, or delete it"

    def check_project(self, symbols: SymbolTable) -> Iterator[Finding]:
        events = symbols.module(_EVENTS_PATH)
        if events is None:
            return
        members = symbols.enum_members(_EVENTS_PATH, "EventKind")
        if not members:
            return
        uses = symbols.attribute_uses("EventKind")
        for member, line in members:
            used_elsewhere = any(
                relpath != _EVENTS_PATH for relpath, _ in uses.get(member, ())
            )
            if not used_elsewhere:
                yield Finding(
                    rule_id=self.rule_id,
                    severity=self.severity,
                    path=_EVENTS_PATH,
                    line=line,
                    message=(
                        f"EventKind.{member} is never emitted outside "
                        f"{_EVENTS_PATH}"
                    ),
                    hint=self.hint,
                )


@rule
class LatencyChargeRule(FileRule):
    """Latency charges must name a LatencyCategory member."""

    rule_id = "GRIT-C003"
    description = (
        "the first argument of every .charge(...) call must be a "
        "LatencyCategory member (or a variable holding one), never a "
        "literal"
    )
    hint = "charge(LatencyCategory.<member>, cycles)"

    def visit_Call(
        self, node: ast.Call, module: ModuleInfo
    ) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "charge":
            return
        if not node.args:
            return
        category = node.args[0]
        if isinstance(category, ast.Name):
            return
        if isinstance(category, ast.Attribute):
            return
        if isinstance(category, ast.Subscript) and (
            isinstance(category.value, ast.Name)
            and category.value.id == "LatencyCategory"
        ):
            return
        yield self.finding(
            module,
            category,
            "latency charge with a non-LatencyCategory first argument",
        )


@rule
class MetricCatalogRule(ProjectRule):
    """Every catalog metric is emitted somewhere and documented."""

    rule_id = "GRIT-C005"
    description = (
        "every metric constant in obs/catalog.py must be referenced "
        "outside the catalog (via catalog.<NAME>) and its series name "
        "documented in docs/observability.md"
    )
    hint = (
        "feed the metric from the sampler or an event hook, and list "
        "its name in docs/observability.md"
    )

    def check_project(self, symbols: SymbolTable) -> Iterator[Finding]:
        catalog = symbols.module(_CATALOG_PATH)
        if catalog is None:
            return
        uses = symbols.attribute_uses("catalog")
        obs_doc = symbols.doc_texts.get(_OBS_DOC)
        for node in catalog.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name) or not target.id.isupper():
                continue
            value = node.value
            if not isinstance(value, ast.Constant) or not isinstance(
                value.value, str
            ):
                continue
            name = target.id
            used_elsewhere = any(
                relpath != _CATALOG_PATH
                for relpath, _ in uses.get(name, ())
            )
            if not used_elsewhere:
                yield self.finding(
                    catalog,
                    node,
                    f"metric constant {name} is never referenced outside "
                    f"{_CATALOG_PATH}; the catalog promises a series "
                    f"nothing emits",
                )
            if obs_doc is not None and value.value not in obs_doc:
                yield self.finding(
                    catalog,
                    node,
                    f"metric {value.value!r} is not documented in "
                    f"{_OBS_DOC}",
                )


@rule
class MechanicExecutorRule(ProjectRule):
    """Every Mechanic member has a statically visible executor."""

    rule_id = "GRIT-C006"
    description = (
        "every Mechanic enum member must be registered with an "
        "executor — via an @executes(Mechanic.X) decorator or an "
        "executor.register(Mechanic.X, fn) call — or fault dispatch "
        "raises PolicyError at runtime"
    )
    hint = (
        "add an @executes(Mechanic.<member>) default executor in "
        "uvm/executor.py (or delete the member)"
    )

    def check_project(self, symbols: SymbolTable) -> Iterator[Finding]:
        base = symbols.module(_POLICIES_BASE_PATH)
        if base is None:
            return
        members = symbols.enum_members(_POLICIES_BASE_PATH, "Mechanic")
        if not members:
            return
        registered = set()
        for info in symbols.iter_modules():
            for node in ast.walk(info.tree):
                member = _registered_mechanic(node)
                if member is not None:
                    registered.add(member)
        for member, line in members:
            if member not in registered:
                yield Finding(
                    rule_id=self.rule_id,
                    severity=self.severity,
                    path=_POLICIES_BASE_PATH,
                    line=line,
                    message=(
                        f"Mechanic.{member} has no registered executor "
                        f"(no @executes or .register call names it)"
                    ),
                    hint=self.hint,
                )


def _registered_mechanic(node: ast.AST) -> str | None:
    """Mechanic member name a call registers an executor for, if any."""
    if not isinstance(node, ast.Call) or not node.args:
        return None
    func = node.func
    if isinstance(func, ast.Name):
        if func.id != "executes":
            return None
    elif isinstance(func, ast.Attribute):
        if func.attr not in ("executes", "register"):
            return None
    else:
        return None
    target = node.args[0]
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "Mechanic"
    ):
        return target.attr
    return None


#: LatencyModel fields that price simulated work.  Reading one of
#: these is a cycle charge; charges route through the timing kernel.
_CHARGING_FIELDS = frozenset({
    "nvlink_latency",
    "nvlink_bytes_per_cycle",
    "pcie_latency",
    "pcie_bytes_per_cycle",
    "local_dram_access",
    "remote_dram_access",
    "host_remote_access",
    "host_fault_service",
    "pipeline_flush",
    "invalidation_per_gpu",
    "gps_store_broadcast",
    "pa_table_memory_access",
    "pa_cache_lookup",
})

#: Modules allowed to read raw charging constants: the kernel itself
#: and the resource models it drives.
_KERNEL_MODULES = frozenset({
    "sim/timing.py",
    "interconnect/link.py",
    "interconnect/topology.py",
    "interconnect/routing.py",
    "interconnect/switch.py",
    "memsys/dram.py",
    "config.py",
    "core/initiator.py",
})


@rule
class TimingKernelRoutingRule(FileRule):
    """Cycle charges route through the timing kernel, nowhere else."""

    rule_id = "GRIT-C007"
    description = (
        "no module outside the timing kernel and its resource models "
        "may read a raw charging constant off a LatencyModel (e.g. "
        "latency.pipeline_flush); new costs go through "
        "repro.sim.timing.TimingKernel so contended mode prices them"
    )
    hint = (
        "call the matching TimingKernel method (machine.kernel.<op>) "
        "instead of reading the LatencyModel field"
    )

    def visit_Attribute(
        self, node: ast.Attribute, module: ModuleInfo
    ) -> Iterator[Finding]:
        if node.attr not in _CHARGING_FIELDS:
            return
        if module.relpath in _KERNEL_MODULES:
            return
        base = node.value
        # Only LatencyModel reads: the base expression must itself be
        # a ``latency`` name or attribute (``latency.pipeline_flush``,
        # ``config.latency.pipeline_flush``, ...).  Same-named kernel
        # *methods* (``kernel.pipeline_flush(...)``) stay legal.
        if isinstance(base, ast.Name):
            if base.id != "latency":
                return
        elif isinstance(base, ast.Attribute):
            if base.attr != "latency":
                return
        else:
            return
        yield self.finding(
            module,
            node,
            f"raw charging constant latency.{node.attr} read outside "
            f"the timing kernel",
        )


#: The module that owns StreamCursor and its batch API.
_CURSOR_OWNER = "sim/pipeline.py"


@rule
class CursorBatchApiRule(FileRule):
    """Engine modules consume cursors through the batch API."""

    rule_id = "GRIT-C008"
    description = (
        "no sim/ module outside sim/pipeline.py may call .next() "
        "directly on a stream cursor; per-access next() loops bypass "
        "the peek_batch()/advance() API the steady-state fast path "
        "and the chunked scalar pipeline are built on"
    )
    hint = (
        "go through TranslationStage.next_access for scalar replay, "
        "or peek()/peek_batch() + advance() for batched consumption"
    )
    scope = ("sim/",)

    def visit_Call(
        self, node: ast.Call, module: ModuleInfo
    ) -> Iterator[Finding]:
        if module.relpath == _CURSOR_OWNER:
            return
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "next":
            return
        if _is_cursor_expr(func.value):
            yield self.finding(
                module,
                node,
                "direct cursor .next() call bypasses the stream "
                "cursor's batch API",
            )


def _is_cursor_expr(node: ast.AST) -> bool:
    """True for receivers that name a stream cursor.

    Matches ``cursor``, ``self.cursor``, ``cursors[g]``,
    ``self.cursors[gpu_id]``, ``stage.cursors[g]``, ... — any name or
    attribute whose terminal identifier is ``cursor``/``cursors``
    (optionally subscripted).
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id in ("cursor", "cursors")
    if isinstance(node, ast.Attribute):
        return node.attr in ("cursor", "cursors")
    return False


@rule
class CliDocumentedRule(ProjectRule):
    """Every CLI subcommand appears in README.md or docs/."""

    rule_id = "GRIT-C004"
    description = (
        "every cli.py subcommand (add_parser name) must be mentioned "
        "in README.md or docs/*.md"
    )
    hint = "document the subcommand in README.md or docs/"

    def check_project(self, symbols: SymbolTable) -> Iterator[Finding]:
        cli = symbols.module(_CLI_PATH)
        if cli is None or not symbols.docs_text:
            return
        for node in ast.walk(cli.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr != "add_parser" or not node.args:
                continue
            name_node = node.args[0]
            if not isinstance(name_node, ast.Constant):
                continue
            if not isinstance(name_node.value, str):
                continue
            command = name_node.value
            if command not in symbols.docs_text:
                yield self.finding(
                    cli,
                    node,
                    f"CLI subcommand {command!r} is not documented in "
                    f"README.md or docs/",
                )

"""Determinism rules for the simulation core.

The engine, the UVM driver, and the policies must be bit-reproducible:
a run is a pure function of (config, trace, policy).  Wall-clock reads,
unseeded random number generators, and iteration order of unordered
containers all break that silently — results drift between runs without
a single test failing.  These rules fence the simulation directories
(``sim/``, ``uvm/``, ``policies/``) off from those constructs.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.dataflow import (
    DATETIME_FUNCTIONS as _DATETIME_FUNCTIONS,
    SEEDED_CONSTRUCTORS as _SEEDED_CONSTRUCTORS,
    SET_ATTRIBUTES as _SET_ATTRIBUTES,
    SET_RETURNING_METHODS as _SET_RETURNING_METHODS,
    TIME_FUNCTIONS as _TIME_FUNCTIONS,
    root_name as _root_name,
)
from repro.lint.engine import FileRule, rule
from repro.lint.findings import Finding
from repro.lint.symbols import ModuleInfo

#: Package-relative directories holding simulation state machines.
SIMULATION_SCOPE = ("sim/", "uvm/", "policies/")


@rule
class WallClockRule(FileRule):
    """No wall-clock reads inside the simulation core."""

    rule_id = "GRIT-D001"
    description = (
        "sim/, uvm/, and policies/ must not read the wall clock "
        "(time.time, datetime.now, ...): simulated time is the only time"
    )
    hint = "derive timing from GPU clocks / cycle counts instead"
    scope = SIMULATION_SCOPE

    def visit_Call(
        self, node: ast.Call, module: ModuleInfo
    ) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        root = _root_name(func)
        if root == "time" and func.attr in _TIME_FUNCTIONS:
            yield self.finding(
                module, node, f"wall-clock call time.{func.attr}()"
            )
        elif root == "datetime" and func.attr in _DATETIME_FUNCTIONS:
            yield self.finding(
                module, node, f"wall-clock call datetime.{func.attr}()"
            )

    def visit_ImportFrom(
        self, node: ast.ImportFrom, module: ModuleInfo
    ) -> Iterator[Finding]:
        if node.module != "time" or node.level:
            return
        for alias in node.names:
            if alias.name in _TIME_FUNCTIONS:
                yield self.finding(
                    module,
                    node,
                    f"imports wall-clock function time.{alias.name}",
                )


@rule
class UnseededRngRule(FileRule):
    """Only explicitly seeded RNGs inside the simulation core."""

    rule_id = "GRIT-D002"
    description = (
        "sim/, uvm/, and policies/ must not use the global random state "
        "or unseeded generators; every RNG takes an explicit seed"
    )
    hint = "use random.Random(seed) or numpy.random.default_rng(seed)"
    scope = SIMULATION_SCOPE

    def visit_Call(
        self, node: ast.Call, module: ModuleInfo
    ) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        root = _root_name(func)
        # The global `random.<fn>()` module-level API is one shared,
        # process-wide state; seeded constructor classes are fine.
        if root == "random":
            if func.attr in _SEEDED_CONSTRUCTORS:
                yield from self._require_seed(node, func.attr, module)
            else:
                yield self.finding(
                    module,
                    node,
                    f"global random state call random.{func.attr}()",
                )
            return
        # numpy legacy API: np.random.<fn>() shares numpy's global
        # BitGenerator unless it goes through default_rng/Generator.
        if (
            isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and _root_name(func) in ("np", "numpy")
        ):
            if func.attr in _SEEDED_CONSTRUCTORS:
                yield from self._require_seed(node, func.attr, module)
            else:
                yield self.finding(
                    module,
                    node,
                    f"numpy global random state call "
                    f"numpy.random.{func.attr}()",
                )

    def _require_seed(
        self, node: ast.Call, name: str, module: ModuleInfo
    ) -> Iterator[Finding]:
        if not node.args and not node.keywords:
            yield self.finding(
                module,
                node,
                f"{name}() constructed without a seed",
            )

    def visit_ImportFrom(
        self, node: ast.ImportFrom, module: ModuleInfo
    ) -> Iterator[Finding]:
        if node.module != "random" or node.level:
            return
        for alias in node.names:
            if alias.name not in _SEEDED_CONSTRUCTORS:
                yield self.finding(
                    module,
                    node,
                    f"imports global random state function "
                    f"random.{alias.name}",
                )


#: Statement types that open a new variable scope.
_SCOPE_NODES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
    ast.ClassDef,
)


def _scope_walk(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested scopes.

    Nested function/class statements are yielded (they are part of this
    scope) but their bodies are not — the rule visits each scope once
    through its own ``visit_*`` entry point.
    """
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


@rule
class UnorderedIterationRule(FileRule):
    """No iteration over sets in the simulation core.

    Set iteration order depends on insertion history and (for str keys)
    the process hash seed; when the loop body touches clocks, counters,
    or page state, that order leaks into results.  ``sorted(...)`` makes
    the order explicit and costs nothing at simulation scale.
    """

    rule_id = "GRIT-D003"
    description = (
        "sim/, uvm/, and policies/ must not iterate over sets "
        "(page.replicas, holders(), set expressions); order feeds "
        "cycle accounting"
    )
    hint = "iterate sorted(...) so the order is explicit"
    scope = SIMULATION_SCOPE

    def visit_Module(
        self, node: ast.Module, module: ModuleInfo
    ) -> Iterator[Finding]:
        yield from self._check_scope(node.body, module)

    def visit_FunctionDef(
        self, node: ast.FunctionDef, module: ModuleInfo
    ) -> Iterator[Finding]:
        yield from self._check_scope(node.body, module)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, module: ModuleInfo
    ) -> Iterator[Finding]:
        yield from self._check_scope(node.body, module)

    def visit_ClassDef(
        self, node: ast.ClassDef, module: ModuleInfo
    ) -> Iterator[Finding]:
        yield from self._check_scope(node.body, module)

    def _check_scope(
        self, body: List[ast.stmt], module: ModuleInfo
    ) -> Iterator[Finding]:
        set_names = self._infer_set_names(body)
        for node in _scope_walk(body):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter, set_names):
                    yield self.finding(
                        module,
                        node,
                        "for-loop iterates an unordered set",
                    )
            elif isinstance(node, ast.comprehension):
                if self._is_set_expr(node.iter, set_names):
                    yield self.finding(
                        module,
                        node.iter,
                        "comprehension iterates an unordered set",
                    )

    def _infer_set_names(self, body: List[ast.stmt]) -> Set[str]:
        """Names assigned from set-typed expressions in this scope.

        Two passes reach the fixpoint for simple chains like
        ``a = page.holders(); b = a - {gpu}``.
        """
        set_names: Set[str] = set()
        assignments: List[tuple[ast.expr, ast.expr]] = []
        for node in _scope_walk(body):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    assignments.append((target, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                assignments.append((node.target, node.value))
            elif isinstance(node, ast.AugAssign):
                assignments.append((node.target, node.value))
        for _ in range(2):
            for target, value in assignments:
                if isinstance(target, ast.Name) and self._is_set_expr(
                    value, set_names
                ):
                    set_names.add(target.id)
        return set_names

    def _is_set_expr(self, node: ast.expr, set_names: Set[str]) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Attribute):
            return node.attr in _SET_ATTRIBUTES
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)
        ):
            return self._is_set_expr(node.left, set_names) or (
                self._is_set_expr(node.right, set_names)
            )
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return True
                # tuple()/list()/iter() preserve the set's arbitrary
                # order; sorted() is the sanctioned escape hatch.
                if func.id in ("tuple", "list", "iter") and (
                    len(node.args) == 1
                ):
                    return self._is_set_expr(node.args[0], set_names)
                return False
            if isinstance(func, ast.Attribute):
                if func.attr in _SET_RETURNING_METHODS:
                    return True
                if func.attr == "copy" and self._is_set_expr(
                    func.value, set_names
                ):
                    return True
        return False

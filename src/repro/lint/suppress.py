"""Inline suppressions: ``# simlint: ignore[RULE-ID]``.

A suppression comment silences one rule on one line.  It may sit on
the flagged line itself or on the line directly above it (for lines
that are already at the 79-column budget).  Every suppression must
earn its keep: one that silences nothing is itself reported as a
GRIT-S001 warning, so stale suppressions cannot accumulate.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Iterable, List, Set, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.symbols import ModuleInfo

#: Rule id reported for suppressions that silence nothing.
UNUSED_SUPPRESSION_RULE_ID = "GRIT-S001"

_SUPPRESSION = re.compile(
    r"#\s*simlint:\s*ignore\[(?P<rules>[A-Z0-9,\-\s]+)\]"
)


class Suppression:
    """One ``# simlint: ignore[...]`` comment and the lines it covers."""

    def __init__(
        self, relpath: str, line: int, rule_id: str, own_line: bool
    ) -> None:
        self.relpath = relpath
        self.line = line
        self.rule_id = rule_id
        #: A comment on its own line targets the line below as well.
        self.own_line = own_line
        self.used = False

    def covers(self, finding: Finding) -> bool:
        if finding.rule_id != self.rule_id:
            return False
        if finding.path != self.relpath:
            return False
        if finding.line == self.line:
            return True
        return self.own_line and finding.line == self.line + 1


def collect_suppressions(module: ModuleInfo) -> List[Suppression]:
    """Parse every suppression comment in one module's source.

    Tokenized, not regexed over raw lines, so the marker inside a
    string literal (docs, rule hints) is not a suppression.
    """
    found: List[Suppression] = []
    try:
        tokens = list(
            tokenize.generate_tokens(
                io.StringIO(module.source).readline
            )
        )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return found
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION.search(token.string)
        if match is None:
            continue
        lineno, col = token.start
        own_line = token.line[:col].strip() == ""
        for rule_id in match.group("rules").split(","):
            rule_id = rule_id.strip()
            if rule_id:
                found.append(
                    Suppression(module.relpath, lineno, rule_id, own_line)
                )
    return found


def apply_suppressions(
    findings: Iterable[Finding],
    modules: Iterable[ModuleInfo],
) -> Tuple[List[Finding], List[Finding]]:
    """Filter suppressed findings; flag suppressions that did nothing.

    Returns ``(kept, unused)`` where ``unused`` holds one GRIT-S001
    warning per suppression comment that matched no finding.
    """
    by_path: Dict[str, List[Suppression]] = {}
    for module in modules:
        suppressions = collect_suppressions(module)
        if suppressions:
            by_path[module.relpath] = suppressions
    kept: List[Finding] = []
    for finding in findings:
        matched = False
        for suppression in by_path.get(finding.path, ()):
            if suppression.covers(finding):
                suppression.used = True
                matched = True
        if not matched:
            kept.append(finding)
    unused: List[Finding] = []
    reported: Set[Tuple[str, int, str]] = set()
    for relpath in sorted(by_path):
        for suppression in by_path[relpath]:
            if suppression.used:
                continue
            key = (relpath, suppression.line, suppression.rule_id)
            if key in reported:
                continue
            reported.add(key)
            unused.append(
                Finding(
                    rule_id=UNUSED_SUPPRESSION_RULE_ID,
                    severity=Severity.WARNING,
                    path=relpath,
                    line=suppression.line,
                    message=(
                        f"suppression of {suppression.rule_id} "
                        "silences nothing: the finding it targeted is "
                        "gone"
                    ),
                    hint="delete the stale # simlint: ignore comment",
                )
            )
    return kept, unused

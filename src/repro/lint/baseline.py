"""Finding baselines: adopt simflow on a codebase with known debt.

A baseline file records findings that are accepted for now; ``lint
--baseline FILE`` filters them from the output so new findings fail
the build while the recorded debt does not.  Entries match on
``(rule, path, message)`` — deliberately not on line numbers, so
unrelated edits above a baselined finding do not resurrect it.

``lint --update-baseline`` rewrites the file from the current run,
which is also how entries are retired: fix the code, regenerate, and
the shrunken file documents the progress in review.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.findings import Finding

#: Default baseline location relative to the repo root.
DEFAULT_BASELINE_NAME = ".simlint-baseline.json"

_FORMAT_VERSION = 1


def _key(finding: Finding) -> Tuple[str, str, str]:
    return (finding.rule_id, finding.path, finding.message)


def load_baseline(path: Path) -> List[Dict[str, str]]:
    """Read baseline entries (raises ValueError on a malformed file)."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}")
    if (
        not isinstance(document, dict)
        or document.get("version") != _FORMAT_VERSION
        or not isinstance(document.get("findings"), list)
    ):
        raise ValueError(
            f"baseline {path} is not a simlint baseline "
            f"(expected version {_FORMAT_VERSION})"
        )
    entries: List[Dict[str, str]] = []
    for row in document["findings"]:
        if not isinstance(row, dict):
            raise ValueError(f"baseline {path} has a non-object entry")
        entries.append(
            {
                "rule": str(row.get("rule", "")),
                "path": str(row.get("path", "")),
                "message": str(row.get("message", "")),
            }
        )
    return entries


def apply_baseline(
    findings: List[Finding], entries: List[Dict[str, str]]
) -> Tuple[List[Finding], int]:
    """Drop baselined findings; returns ``(kept, matched_count)``.

    Each baseline entry absorbs at most one finding per run, so a
    defect that multiplies still fails the build.
    """
    budget: Dict[Tuple[str, str, str], int] = {}
    for entry in entries:
        key = (entry["rule"], entry["path"], entry["message"])
        budget[key] = budget.get(key, 0) + 1
    kept: List[Finding] = []
    matched = 0
    for finding in findings:
        key = _key(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched += 1
        else:
            kept.append(finding)
    return kept, matched


def write_baseline(path: Path, findings: List[Finding]) -> None:
    """Write the current findings as the new accepted baseline."""
    document = {
        "version": _FORMAT_VERSION,
        "findings": [
            {
                "rule": finding.rule_id,
                "path": finding.path,
                "message": finding.message,
            }
            for finding in sorted(findings, key=Finding.sort_key)
        ],
    }
    path.write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )

"""Per-function dataflow for the simflow taint analysis.

The determinism contract of the simulator is that a run is a pure
function of (config, trace, policy).  This module defines the taint
domain that enforces it:

* **value taint** — a value derived from a nondeterminism *source*
  (wall clock, environment, pid, ``id()``, global/unseeded RNG) that
  must never reach a *sink* (cycle accounting, ``SimulationResult``,
  metrics/event emission, cache digests);
* **order taint** — an unordered ``set`` whose iteration order would
  leak into results; ``sorted(...)`` is the sanctioned sanitizer.

:class:`FunctionAnalyzer` walks one function body (statement order,
two passes so simple chains converge) and produces a
:class:`FunctionSummary`: the taints a function returns, which of its
parameters flow into sinks, and whether it returns a set.  The
project-level fixpoint lives in :mod:`repro.lint.taint`.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.lint.callgraph import CallGraph, ClassKey, FunctionInfo

#: Wall-clock reading functions of the ``time`` module.
TIME_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock",
    }
)

#: Current-moment constructors of the ``datetime`` module.
DATETIME_FUNCTIONS = frozenset({"now", "utcnow", "today"})

#: ``random``/``numpy.random`` names that are fine *when seeded*.
SEEDED_CONSTRUCTORS = frozenset(
    {"Random", "SystemRandom", "default_rng", "RandomState",
     "SeedSequence", "Generator", "PCG64", "Philox"}
)

#: Set-producing method names on project objects (PageInfo.holders()).
SET_RETURNING_METHODS = frozenset(
    {"holders", "union", "intersection", "difference",
     "symmetric_difference"}
)

#: Attributes known to hold sets (PageInfo.replicas).
SET_ATTRIBUTES = frozenset({"replicas"})

#: Metric-emission method names of the observability registry.
METRIC_METHODS = frozenset(
    {"inc", "set_total", "set_gauge", "observe", "sample"}
)

#: Builtins whose result does not depend on argument iteration order;
#: a comprehension passed straight into one of these is sanitized.
ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set",
     "frozenset"}
)

#: Bounds keeping the taint lattice finite.
MAX_TRACE_STEPS = 16
MAX_TAINTS = 6


def root_name(node: ast.AST) -> str | None:
    """Leftmost ``Name`` of an attribute chain (``a.b.c`` -> ``a``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclasses.dataclass(frozen=True)
class Step:
    """One hop of a taint trace (mirrors findings.TraceStep)."""

    path: str
    line: int
    note: str


@dataclasses.dataclass(frozen=True)
class Taint:
    """One origin flowing through the current expression.

    ``kind`` is ``"source"`` for a concrete nondeterminism source and
    ``"param"`` for a function parameter (composed at call sites).
    ``label`` names the source (or the parameter); ``steps`` is the
    origin-to-here trace.
    """

    kind: str
    label: str
    steps: Tuple[Step, ...]

    def extended(self, step: Step) -> "Taint":
        if len(self.steps) >= MAX_TRACE_STEPS:
            return self
        if self.steps and self.steps[-1] == step:
            return self
        return Taint(self.kind, self.label, self.steps + (step,))


Taints = Tuple[Taint, ...]


@dataclasses.dataclass(frozen=True)
class SinkHit:
    """A tainted value arriving at a sink."""

    kind: str
    label: str
    sink: str
    path: str
    line: int
    steps: Tuple[Step, ...]


@dataclasses.dataclass(frozen=True)
class SetEvidence:
    """Why an expression is believed to be an unordered set.

    ``origin`` is ``"literal"`` / ``"attribute"`` / ``"call"`` /
    ``"param"``; ``syntactic`` is True when the per-file GRIT-D003 rule
    would already see the set-ness without cross-function knowledge
    (its scope then owns the finding).
    """

    origin: str
    note: str
    path: str
    line: int
    syntactic: bool
    steps: Tuple[Step, ...] = ()


@dataclasses.dataclass(frozen=True)
class OrderHit:
    """An unordered set iterated where order can leak into results."""

    path: str
    line: int
    note: str
    syntactic: bool
    steps: Tuple[Step, ...]


@dataclasses.dataclass(frozen=True)
class Degradation:
    """A spot where the analysis lost precision but kept going."""

    kind: str
    path: str
    line: int
    note: str


@dataclasses.dataclass
class FunctionSummary:
    """What the rest of the project needs to know about one function."""

    returns: Taints = ()
    param_sinks: Dict[str, Tuple[SinkHit, ...]] = dataclasses.field(
        default_factory=dict
    )
    returns_set: bool = False
    set_note: str = ""
    sink_hits: Tuple[SinkHit, ...] = ()

    def signature(self) -> tuple:
        """Convergence signature: steps excluded, shape only."""
        return (
            frozenset((t.kind, t.label) for t in self.returns),
            frozenset(
                (name, hit.kind, hit.label, hit.sink, hit.line)
                for name, hits in self.param_sinks.items()
                for hit in hits
            ),
            self.returns_set,
            frozenset(
                (hit.kind, hit.label, hit.sink, hit.line)
                for hit in self.sink_hits
            ),
        )


def match_source(node: ast.expr) -> str | None:
    """Source description when ``node`` reads nondeterministic state."""
    if isinstance(node, ast.Subscript):
        value = node.value
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "environ"
            and root_name(value) == "os"
        ):
            return "environment read os.environ[...]"
        return None
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "id" and node.args:
            return "object address read id()"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    root = root_name(func)
    attr = func.attr
    if root == "time" and attr in TIME_FUNCTIONS:
        return f"wall-clock call time.{attr}()"
    if root == "datetime" and attr in DATETIME_FUNCTIONS:
        return f"wall-clock call datetime.{attr}()"
    if root == "os":
        if attr in ("getpid", "getppid"):
            return f"process id os.{attr}()"
        if attr == "getenv":
            return "environment read os.getenv(...)"
        if attr == "urandom":
            return "entropy read os.urandom(...)"
        if (
            attr == "get"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "environ"
        ):
            return "environment read os.environ.get(...)"
    if root == "uuid" and attr in ("uuid1", "uuid4"):
        return f"random identifier uuid.{attr}()"
    if root == "secrets":
        return f"entropy read secrets.{attr}()"
    if root == "random":
        if attr in SEEDED_CONSTRUCTORS:
            if not node.args and not node.keywords:
                return f"unseeded RNG random.{attr}()"
            return None
        return f"global RNG call random.{attr}()"
    if (
        isinstance(func.value, ast.Attribute)
        and func.value.attr == "random"
        and root in ("np", "numpy")
    ):
        if attr in SEEDED_CONSTRUCTORS:
            if not node.args and not node.keywords:
                return f"unseeded RNG numpy.random.{attr}()"
            return None
        return f"numpy global RNG call numpy.random.{attr}()"
    return None


def match_sink(node: ast.Call) -> str | None:
    """Sink description when ``node``'s arguments feed results."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "SimulationResult":
            return "SimulationResult construction"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    if attr == "SimulationResult":
        return "SimulationResult construction"
    if attr == "charge":
        return "cycle accounting (.charge)"
    if attr in METRIC_METHODS:
        return f"metrics emission (.{attr})"
    if attr == "emit":
        return "event emission (.emit)"
    if root_name(func) == "hashlib":
        return f"cache digest (hashlib.{attr})"
    return None


def _merge(*groups: Iterable[Taint]) -> Taints:
    """Union taint groups, deduplicating by origin, capped."""
    seen: Dict[Tuple[str, str], Taint] = {}
    for group in groups:
        for taint in group:
            key = (taint.kind, taint.label)
            if key not in seen:
                seen[key] = taint
                if len(seen) >= MAX_TAINTS:
                    return tuple(seen.values())
    return tuple(seen.values())


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return text.split("[")[0] in (
            "set", "frozenset", "Set", "FrozenSet", "AbstractSet",
            "MutableSet",
        )
    if isinstance(node, ast.Subscript):
        node = node.value
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    return name in (
        "set", "frozenset", "Set", "FrozenSet", "AbstractSet",
        "MutableSet",
    )


class FunctionAnalyzer:
    """Single-function taint and set-provenance walker."""

    def __init__(
        self,
        fn: FunctionInfo,
        graph: CallGraph,
        summaries: Mapping[tuple, FunctionSummary],
        attr_taints: Dict[Tuple[ClassKey, str], Taints],
        set_attrs: Mapping[str, str],
    ) -> None:
        self.fn = fn
        self.path = fn.relpath
        self.graph = graph
        self.summaries = summaries
        self.attr_taints = attr_taints
        #: project-wide ``attr name -> note`` for set-annotated fields.
        self.set_attrs = set_attrs
        self.env: Dict[str, Taints] = {}
        self.set_vars: Dict[str, SetEvidence] = {}
        #: ``id()`` of comprehensions fed straight into an
        #: order-insensitive builtin; their iteration is sanctioned.
        self._order_exempt: set[int] = set()
        self.local_types = graph._local_constructor_types(fn)
        self.returns: List[Taint] = []
        self.returns_set = False
        self.set_note = ""
        self.param_sinks: Dict[str, List[SinkHit]] = {}
        self.sink_hits: List[SinkHit] = []
        self.order_hits: List[OrderHit] = []
        self.degradations: List[Degradation] = []
        self._init_params()

    def _init_params(self) -> None:
        args = self.fn.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg == "self":
                continue
            self.env[arg.arg] = (Taint("param", arg.arg, ()),)
            if _annotation_is_set(arg.annotation):
                self.set_vars[arg.arg] = SetEvidence(
                    origin="param",
                    note=f"set-typed parameter {arg.arg!r}",
                    path=self.path,
                    line=arg.lineno,
                    syntactic=False,
                )

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def analyze(self) -> FunctionSummary:
        for _ in range(2):
            self.sink_hits.clear()
            self.order_hits.clear()
            self.degradations.clear()
            self.param_sinks.clear()
            self.returns.clear()
            self._walk_block(self.fn.node.body)
        if _annotation_is_set(self.fn.node.returns):
            self.returns_set = True
            self.set_note = (
                f"set-annotated return of {self.fn.qualname}()"
            )
        return FunctionSummary(
            returns=_merge(self.returns),
            param_sinks={
                name: tuple(hits)
                for name, hits in sorted(self.param_sinks.items())
            },
            returns_set=self.returns_set,
            set_note=self.set_note
            or f"set returned by {self.fn.qualname}()",
            sink_hits=tuple(self.sink_hits),
        )

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _walk_block(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested scopes are analyzed through their own entry
        if isinstance(stmt, ast.Assign):
            taints = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, taints, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                taints = self._eval(stmt.value)
                self._assign(stmt.target, taints, stmt.value)
            if isinstance(stmt.target, ast.Name) and _annotation_is_set(
                stmt.annotation
            ):
                self.set_vars.setdefault(
                    stmt.target.id,
                    SetEvidence(
                        origin="literal",
                        note=f"set-annotated {stmt.target.id!r}",
                        path=self.path,
                        line=stmt.lineno,
                        syntactic=False,
                    ),
                )
        elif isinstance(stmt, ast.AugAssign):
            taints = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                taints = _merge(
                    taints, self.env.get(stmt.target.id, ())
                )
            self._assign(stmt.target, taints, stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                step = Step(
                    self.path,
                    stmt.lineno,
                    f"returned from {self.fn.qualname}()",
                )
                for taint in self._eval(stmt.value):
                    self.returns.append(taint.extended(step))
                evidence = self.set_evidence(stmt.value)
                if evidence is not None:
                    self.returns_set = True
                    self.set_note = evidence.note
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._walk_block(stmt.body)
            self._walk_block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_iteration(stmt.iter, stmt.lineno, "for-loop")
            taints = self._eval(stmt.iter)
            self._assign(stmt.target, taints, stmt.iter)
            self._walk_block(stmt.body)
            self._walk_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._walk_block(stmt.body)
            self._walk_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(
                        item.optional_vars, taints, item.context_expr
                    )
            self._walk_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk_block(stmt.body)
            for handler in stmt.handlers:
                self._walk_block(handler.body)
            self._walk_block(stmt.orelse)
            self._walk_block(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
        elif isinstance(stmt, ast.Match):
            self._eval(stmt.subject)
            for case in stmt.cases:
                self._walk_block(case.body)

    def _assign(
        self, target: ast.expr, taints: Taints, value: ast.expr
    ) -> None:
        if isinstance(target, ast.Name):
            if taints:
                self.env[target.id] = _merge(
                    self.env.get(target.id, ()), taints
                )
            evidence = self.set_evidence(value)
            if evidence is not None:
                self.set_vars[target.id] = evidence
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, taints, value)
            return
        if isinstance(target, ast.Attribute):
            if target.attr == "clock" and taints:
                self._record_sinks(
                    taints,
                    "cycle accounting (clock update)",
                    target.lineno,
                )
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.fn.class_name is not None
                and taints
            ):
                class_key = (self.fn.relpath, self.fn.class_name)
                step = Step(
                    self.path,
                    target.lineno,
                    f"stored in self.{target.attr}",
                )
                stored = tuple(t.extended(step) for t in taints)
                slot = (class_key, target.attr)
                self.attr_taints[slot] = _merge(
                    self.attr_taints.get(slot, ()), stored
                )
            return
        if isinstance(target, ast.Subscript):
            base = root_name(target.value)
            if base is not None and taints:
                self.env[base] = _merge(self.env.get(base, ()), taints)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _eval(self, expr: ast.expr) -> Taints:
        if isinstance(expr, ast.Constant):
            return ()
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, ())
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and self.fn.class_name is not None
            ):
                class_key = (self.fn.relpath, self.fn.class_name)
                return self.attr_taints.get((class_key, expr.attr), ())
            return self._eval(expr.value)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Subscript):
            source = match_source(expr)
            if source is not None:
                return (
                    Taint(
                        "source",
                        source,
                        (Step(self.path, expr.lineno, source),),
                    ),
                )
            return self._eval(expr.value)
        if isinstance(expr, ast.BinOp):
            return _merge(self._eval(expr.left), self._eval(expr.right))
        if isinstance(expr, ast.BoolOp):
            return _merge(*(self._eval(v) for v in expr.values))
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand)
        if isinstance(expr, ast.Compare):
            return _merge(
                self._eval(expr.left),
                *(self._eval(c) for c in expr.comparators),
            )
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return _merge(self._eval(expr.body), self._eval(expr.orelse))
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return _merge(*(self._eval(e) for e in expr.elts))
        if isinstance(expr, ast.Dict):
            parts = [self._eval(v) for v in expr.values]
            parts.extend(
                self._eval(k) for k in expr.keys if k is not None
            )
            return _merge(*parts)
        if isinstance(expr, ast.JoinedStr):
            return _merge(
                *(
                    self._eval(v.value)
                    for v in expr.values
                    if isinstance(v, ast.FormattedValue)
                )
            )
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, ast.Await):
            return self._eval(expr.value)
        if isinstance(
            expr,
            (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp),
        ):
            exempt = id(expr) in self._order_exempt
            for comp in expr.generators:
                if not exempt:
                    self._check_iteration(
                        comp.iter, comp.iter.lineno, "comprehension"
                    )
                self._eval(comp.iter)
            parts: List[Taints] = []
            if isinstance(expr, ast.DictComp):
                parts.append(self._eval(expr.key))
                parts.append(self._eval(expr.value))
            else:
                parts.append(self._eval(expr.elt))
            return _merge(*parts)
        if isinstance(expr, ast.Lambda):
            return ()
        parts = [
            self._eval(child)
            for child in ast.iter_child_nodes(expr)
            if isinstance(child, ast.expr)
        ]
        return _merge(*parts)

    def _call(self, call: ast.Call) -> Taints:
        source = match_source(call)
        if source is not None:
            for arg in call.args:
                self._eval(arg)
            return (
                Taint(
                    "source",
                    source,
                    (Step(self.path, call.lineno, source),),
                ),
            )
        self._check_dynamic_attr(call)
        if (
            isinstance(call.func, ast.Name)
            and call.func.id in ORDER_INSENSITIVE_CALLS
        ):
            for arg in call.args:
                self._order_exempt.add(id(arg))
        arg_taints = [self._eval(a) for a in call.args]
        kw_taints = {
            kw.arg: self._eval(kw.value)
            for kw in call.keywords
            if kw.arg is not None
        }
        star_kw = [
            self._eval(kw.value)
            for kw in call.keywords
            if kw.arg is None
        ]
        obj_taints: Taints = ()
        if isinstance(call.func, ast.Attribute):
            obj_taints = self._eval(call.func.value)
        sink = match_sink(call)
        if sink is not None:
            incoming = _merge(*arg_taints, *kw_taints.values(), *star_kw)
            self._record_sinks(incoming, sink, call.lineno)
        callee = self.graph.resolve_call(call, self.fn, self.local_types)
        if callee is not None:
            summary = self.summaries.get(callee.key)
            if summary is not None:
                return self._apply_summary(
                    call, callee, summary, arg_taints, kw_taints,
                    obj_taints,
                )
        # Unresolved calls propagate their inputs: a value computed
        # from a tainted argument is itself tainted.
        if isinstance(call.func, ast.Name) and call.func.id == "sorted":
            pass  # sorting sanitizes order, not value; still propagate
        return _merge(
            *arg_taints, *kw_taints.values(), *star_kw, obj_taints
        )

    def _apply_summary(
        self,
        call: ast.Call,
        callee: FunctionInfo,
        summary: FunctionSummary,
        arg_taints: List[Taints],
        kw_taints: Dict[str, Taints],
        obj_taints: Taints,
    ) -> Taints:
        params = callee.params
        if params and params[0] == "self":
            params = params[1:]
        by_param: Dict[str, Taints] = {}
        for index, taints in enumerate(arg_taints):
            if index < len(params):
                by_param[params[index]] = taints
        for name, taints in kw_taints.items():
            by_param[name] = taints
        call_step = Step(
            self.path,
            call.lineno,
            f"through call to {callee.qualname}()",
        )
        out: List[Taint] = []
        for taint in summary.returns:
            if taint.kind == "source":
                out.append(taint.extended(call_step))
            else:
                for incoming in by_param.get(taint.label, ()):
                    steps = incoming.steps + taint.steps
                    out.append(
                        Taint(
                            incoming.kind,
                            incoming.label,
                            steps[:MAX_TRACE_STEPS],
                        ).extended(call_step)
                    )
        for name, hits in summary.param_sinks.items():
            for incoming in by_param.get(name, ()):
                for hit in hits:
                    steps = (
                        incoming.steps + (call_step,) + hit.steps
                    )[:MAX_TRACE_STEPS]
                    carried = SinkHit(
                        kind=incoming.kind,
                        label=incoming.label,
                        sink=hit.sink,
                        path=hit.path,
                        line=hit.line,
                        steps=steps,
                    )
                    self._store_hit(carried)
        return _merge(out, obj_taints)

    def _record_sinks(
        self, taints: Taints, sink: str, line: int
    ) -> None:
        for taint in taints:
            steps = taint.steps + (
                Step(self.path, line, f"reaches {sink}"),
            )
            self._store_hit(
                SinkHit(
                    kind=taint.kind,
                    label=taint.label,
                    sink=sink,
                    path=self.path,
                    line=line,
                    steps=steps[:MAX_TRACE_STEPS],
                )
            )

    def _store_hit(self, hit: SinkHit) -> None:
        if hit.kind == "source":
            self.sink_hits.append(hit)
        else:
            self.param_sinks.setdefault(hit.label, []).append(hit)

    def _check_dynamic_attr(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Name):
            return
        if func.id not in ("getattr", "setattr", "delattr"):
            return
        if len(call.args) < 2:
            return
        if isinstance(call.args[1], ast.Constant):
            return
        self.degradations.append(
            Degradation(
                kind="dynamic-attr",
                path=self.path,
                line=call.lineno,
                note=(
                    f"{func.id}() with a computed attribute name in "
                    f"{self.fn.qualname}(): dataflow through this "
                    "attribute is invisible to simflow"
                ),
            )
        )

    # ------------------------------------------------------------------
    # order (set) analysis
    # ------------------------------------------------------------------

    def _check_iteration(
        self, iter_expr: ast.expr, line: int, what: str
    ) -> None:
        evidence = self.set_evidence(iter_expr)
        if evidence is None:
            return
        steps = evidence.steps + (
            Step(
                self.path,
                line,
                f"{what} iterates the unordered set",
            ),
        )
        self.order_hits.append(
            OrderHit(
                path=self.path,
                line=line,
                note=evidence.note,
                syntactic=evidence.syntactic,
                steps=steps[:MAX_TRACE_STEPS],
            )
        )

    def set_evidence(self, expr: ast.expr) -> SetEvidence | None:
        """Evidence that ``expr`` evaluates to an unordered set."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return SetEvidence(
                "literal", "a set literal", self.path, expr.lineno, True
            )
        if isinstance(expr, ast.Name):
            return self.set_vars.get(expr.id)
        if isinstance(expr, ast.Attribute):
            if expr.attr in SET_ATTRIBUTES:
                return SetEvidence(
                    "attribute",
                    f"set attribute .{expr.attr}",
                    self.path,
                    expr.lineno,
                    True,
                )
            note = self.set_attrs.get(expr.attr)
            if note is not None:
                return SetEvidence(
                    "attribute",
                    f"set-annotated attribute .{expr.attr} ({note})",
                    self.path,
                    expr.lineno,
                    False,
                )
            return None
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)
        ):
            return self.set_evidence(expr.left) or self.set_evidence(
                expr.right
            )
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return SetEvidence(
                        "literal",
                        f"{func.id}(...) constructor",
                        self.path,
                        expr.lineno,
                        True,
                    )
                if func.id in ("tuple", "list", "iter") and (
                    len(expr.args) == 1
                ):
                    return self.set_evidence(expr.args[0])
                if func.id == "sorted":
                    return None
            if isinstance(func, ast.Attribute):
                if func.attr in SET_RETURNING_METHODS:
                    return SetEvidence(
                        "call",
                        f"set-returning method .{func.attr}()",
                        self.path,
                        expr.lineno,
                        True,
                    )
                if func.attr == "copy":
                    return self.set_evidence(func.value)
            resolved = self.graph.resolve_call(
                expr, self.fn, self.local_types
            )
            if resolved is not None:
                summary = self.summaries.get(resolved.key)
                if summary is not None and summary.returns_set:
                    return SetEvidence(
                        "call",
                        f"set built by {resolved.qualname}() "
                        f"({summary.set_note})",
                        self.path,
                        expr.lineno,
                        False,
                        steps=(
                            Step(
                                resolved.relpath,
                                resolved.node.lineno,
                                f"{resolved.qualname}() returns a set",
                            ),
                        ),
                    )
        return None

"""simlint rule engine: registry, visitor dispatch, and the runner.

Rules come in two shapes:

* :class:`FileRule` — AST-local checks.  A rule declares interest in
  node types by defining ``visit_<NodeType>`` methods; the engine walks
  each file's AST **once** and dispatches every node to the rules that
  care, so adding rules does not add walks.
* :class:`ProjectRule` — cross-module checks over the
  :class:`~repro.lint.symbols.SymbolTable` (registry reachability,
  enum-member coverage, documentation coverage).

Register a rule with the :func:`rule` decorator; the CLI and tests
instantiate the whole catalog through :func:`make_rules`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Tuple, Type

from repro.lint.cache import (
    AnalysisCache,
    CacheStats,
    content_hash,
    project_key,
)
from repro.lint.findings import Finding, Severity
from repro.lint.suppress import apply_suppressions
from repro.lint.symbols import ModuleInfo, SymbolTable, parse_module

#: Rule id reserved for files the engine cannot parse.
PARSE_ERROR_RULE_ID = "GRIT-P000"


class Rule:
    """Base class carrying a rule's identity and scoping."""

    #: Stable identifier reported next to every finding.
    rule_id: str = ""
    #: One-line summary shown by ``lint --list-rules`` and the docs.
    description: str = ""
    #: Default severity of this rule's findings.
    severity: Severity = Severity.ERROR
    #: Default fix hint attached to findings (rules may override per
    #: finding).
    hint: str = ""
    #: Package-relative path prefixes the rule runs on (None = all).
    scope: Tuple[str, ...] | None = None

    def applies_to(self, relpath: str) -> bool:
        """True when the rule should inspect the given module."""
        if self.scope is None:
            return True
        return any(relpath.startswith(prefix) for prefix in self.scope)

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        """Build a finding anchored at ``node`` in ``module``."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint if hint is None else hint,
        )


class FileRule(Rule):
    """AST-local rule; define ``visit_<NodeType>`` methods."""

    def visitor_methods(self) -> Dict[str, object]:
        """Map of AST node type name -> bound visitor method."""
        methods: Dict[str, object] = {}
        for name in dir(self):
            if name.startswith("visit_"):
                methods[name[len("visit_"):]] = getattr(self, name)
        return methods


class ProjectRule(Rule):
    """Whole-project rule over the symbol table."""

    def check_project(self, symbols: SymbolTable) -> Iterator[Finding]:
        """Yield findings for cross-module violations."""
        raise NotImplementedError


_REGISTRY: List[Type[Rule]] = []


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global catalog."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} needs a rule_id")
    if any(existing.rule_id == cls.rule_id for existing in _REGISTRY):
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY.append(cls)
    return cls


def registered_rules() -> List[Type[Rule]]:
    """The rule catalog (importing the bundled rule modules on demand)."""
    # The rules package registers itself on import; imported lazily so
    # rule modules can import this module's base classes.
    import repro.lint.rules  # noqa: F401  (import for side effect)

    return list(_REGISTRY)


def make_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    catalog = sorted(registered_rules(), key=lambda cls: cls.rule_id)
    return [cls() for cls in catalog]


def check_module(module: ModuleInfo, rules: Iterable[Rule]) -> List[Finding]:
    """Run the file-scope rules on one parsed module (single AST walk)."""
    dispatch: Dict[str, List[object]] = {}
    for candidate in rules:
        if not isinstance(candidate, FileRule):
            continue
        if not candidate.applies_to(module.relpath):
            continue
        for node_type, method in candidate.visitor_methods().items():
            dispatch.setdefault(node_type, []).append(method)
    findings: List[Finding] = []
    if not dispatch:
        return findings
    for node in ast.walk(module.tree):
        for method in dispatch.get(type(node).__name__, ()):
            produced = method(node, module)
            if produced:
                findings.extend(produced)
    return findings


def lint_source(
    source: str,
    relpath: str = "module.py",
    rules: Iterable[Rule] | None = None,
) -> List[Finding]:
    """Lint a source snippet as if it lived at ``relpath``.

    This is the unit-test entry point: scoped rules see ``relpath``, so
    fixtures can opt in or out of the simulation-only determinism rules.
    Only file-scope rules run (there is no project to cross-check).
    """
    tree = ast.parse(source, filename=relpath)
    module = ModuleInfo(
        relpath=relpath, path=Path(relpath), source=source, tree=tree
    )
    active = list(rules) if rules is not None else make_rules()
    findings = check_module(module, active)
    findings.sort(key=Finding.sort_key)
    return findings


class LintEngine:
    """Runs the full rule catalog over one package tree."""

    def __init__(
        self,
        package_root: Path,
        repo_root: Path | None = None,
        rules: Iterable[Rule] | None = None,
        cache_path: Path | None = None,
    ) -> None:
        self.package_root = package_root
        self.repo_root = repo_root
        self.rules = list(rules) if rules is not None else make_rules()
        # A custom rule set would poison cached results, so the cache
        # only engages for the full default catalog.
        self._cache = (
            AnalysisCache(cache_path)
            if cache_path is not None and rules is None
            else None
        )
        #: Cache behavior of the most recent :meth:`run`.
        self.stats = CacheStats()

    def run(self, paths: Iterable[Path] | None = None) -> List[Finding]:
        """Lint the package (or just ``paths``) and return findings.

        Project-wide rules always see the whole package; explicit
        ``paths`` narrow only the file-scope rules (and may point at
        files outside the package, e.g. violation fixtures — those are
        checked by every unscoped rule).  The result cache only
        engages on whole-package runs.
        """
        self.stats = CacheStats()
        use_cache = self._cache is not None and paths is None
        file_hashes: Dict[str, str] = {}
        run_key = ""
        if use_cache:
            assert self._cache is not None
            for path in sorted(self.package_root.rglob("*.py")):
                relpath = path.relative_to(self.package_root).as_posix()
                file_hashes[relpath] = content_hash(path)
            hashes = dict(file_hashes)
            for doc in self._doc_paths():
                hashes[f"doc:{doc.name}"] = content_hash(doc)
            run_key = project_key(hashes)
            self.stats.modules = len(file_hashes)
            cached = self._cache.project_findings(run_key)
            if cached is not None:
                # Fully warm: raw bytes matched, so the stored result
                # is the answer — no parse, no rules.
                self.stats.project_hit = True
                self.stats.module_hits = len(file_hashes)
                return cached
        symbols = SymbolTable.scan(self.package_root, self.repo_root)
        findings: List[Finding] = [
            Finding(
                rule_id=PARSE_ERROR_RULE_ID,
                severity=Severity.ERROR,
                path=relpath,
                line=line,
                message=f"file does not parse: {message}",
                hint="fix the syntax error",
            )
            for relpath, line, message in symbols.parse_failures
        ]
        suppressible: Dict[str, ModuleInfo] = dict(symbols.modules)
        processed = 0
        for module in self._select_modules(symbols, paths):
            if isinstance(module, Finding):
                findings.append(module)
                continue
            processed += 1
            suppressible[module.relpath] = module
            rows: List[Finding] | None = None
            sha = file_hashes.get(module.relpath)
            if use_cache and sha is not None:
                assert self._cache is not None
                rows = self._cache.module_findings(module.relpath, sha)
                if rows is not None:
                    self.stats.module_hits += 1
            if rows is None:
                rows = check_module(module, self.rules)
                if use_cache and sha is not None:
                    assert self._cache is not None
                    self._cache.store_module(module.relpath, sha, rows)
            findings.extend(rows)
        if not use_cache:
            self.stats.modules = processed
        for candidate in self.rules:
            if isinstance(candidate, ProjectRule):
                findings.extend(candidate.check_project(symbols))
        kept, unused = apply_suppressions(
            findings, suppressible.values()
        )
        findings = kept + unused
        findings.sort(key=Finding.sort_key)
        if use_cache:
            assert self._cache is not None
            self._cache.store_project(run_key, findings)
            self._cache.save()
        return findings

    def _doc_paths(self) -> List[Path]:
        """Prose files the documentation rules read (part of the key)."""
        if self.repo_root is None:
            return []
        docs: List[Path] = []
        readme = self.repo_root / "README.md"
        if readme.is_file():
            docs.append(readme)
        docs_dir = self.repo_root / "docs"
        if docs_dir.is_dir():
            docs.extend(sorted(docs_dir.glob("*.md")))
        return docs

    def _select_modules(
        self, symbols: SymbolTable, paths: Iterable[Path] | None
    ) -> List["ModuleInfo | Finding"]:
        if paths is None:
            return list(symbols.iter_modules())
        selected: List[ModuleInfo | Finding] = []
        for path in paths:
            resolved = path.resolve()
            if resolved.is_dir():
                for file in sorted(resolved.rglob("*.py")):
                    selected.append(self._load_path(symbols, file))
            else:
                selected.append(self._load_path(symbols, resolved))
        return selected

    def _load_path(
        self, symbols: SymbolTable, path: Path
    ) -> "ModuleInfo | Finding":
        """Map a filesystem path onto a parsed module.

        Files inside the package reuse the symbol table's parse; outside
        files (fixtures) are parsed ad hoc and addressed by file name,
        which keeps them visible to every unscoped rule.  Unparsable
        files come back as a parse-error finding.
        """
        try:
            relpath = path.relative_to(self.package_root.resolve()).as_posix()
        except ValueError:
            relpath = path.name
        cached = symbols.module(relpath)
        if cached is not None:
            return cached
        try:
            return parse_module(path, relpath)
        except SyntaxError as exc:
            return Finding(
                rule_id=PARSE_ERROR_RULE_ID,
                severity=Severity.ERROR,
                path=relpath,
                line=exc.lineno or 1,
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error",
            )
        except OSError as exc:
            return Finding(
                rule_id=PARSE_ERROR_RULE_ID,
                severity=Severity.ERROR,
                path=relpath,
                line=1,
                message=f"cannot read file: {exc.strerror or exc}",
                hint="check the path passed to `lint`",
            )

"""Content-hash result cache for repeated lint runs.

The cache keys every result on content hashes, never on timestamps:

* a **rules key** — one hash over every source file of the lint
  package itself, so editing any rule or the engine invalidates
  everything;
* a **per-module entry** — the file-rule findings of one module,
  keyed by the module's content hash;
* a **project entry** — the final post-suppression findings of a
  whole-package run, keyed by the hashes of every module *and* every
  prose file the documentation rules read.

A fully warm run matches the project entry from raw file bytes alone
— no parsing, no symbol table, no rule execution — which is where the
order-of-magnitude speedup on unchanged trees comes from.  The cache
file lives at the repo root (``.simlint_cache.json``, gitignored) and
a corrupt or version-skewed file degrades to a cold run, never to an
error.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Dict, List

from repro.lint.findings import Finding

#: Default cache location relative to the repo root.
DEFAULT_CACHE_NAME = ".simlint_cache.json"

_FORMAT_VERSION = 1

_rules_key_memo: Dict[str, str] = {}


def rules_fingerprint() -> str:
    """Hash of the lint package's own sources (rule-change detector)."""
    package_dir = Path(__file__).resolve().parent
    memoized = _rules_key_memo.get(str(package_dir))
    if memoized is not None:
        return memoized
    digest = hashlib.sha256()
    for path in sorted(package_dir.rglob("*.py")):
        digest.update(path.relative_to(package_dir).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    key = digest.hexdigest()
    _rules_key_memo[str(package_dir)] = key
    return key


def content_hash(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def project_key(file_hashes: Dict[str, str]) -> str:
    """One hash over every (path, content-hash) pair of a run."""
    digest = hashlib.sha256()
    for relpath in sorted(file_hashes):
        digest.update(relpath.encode())
        digest.update(b"\0")
        digest.update(file_hashes[relpath].encode())
        digest.update(b"\0")
    return digest.hexdigest()


@dataclasses.dataclass
class CacheStats:
    """What the cache did for one run (reported by ``--format json``)."""

    modules: int = 0
    module_hits: int = 0
    project_hit: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "modules": self.modules,
            "module_hits": self.module_hits,
            "project_hit": self.project_hit,
        }


class AnalysisCache:
    """Load/store layer over the on-disk cache document."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.rules_key = rules_fingerprint()
        self._modules: Dict[str, Dict[str, object]] = {}
        self._project: Dict[str, object] | None = None
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(document, dict):
            return
        if document.get("version") != _FORMAT_VERSION:
            return
        if document.get("rules_key") != self.rules_key:
            return
        modules = document.get("modules")
        if isinstance(modules, dict):
            for relpath, entry in modules.items():
                if (
                    isinstance(entry, dict)
                    and isinstance(entry.get("sha"), str)
                    and isinstance(entry.get("findings"), list)
                ):
                    self._modules[str(relpath)] = entry
        project = document.get("project")
        if (
            isinstance(project, dict)
            and isinstance(project.get("key"), str)
            and isinstance(project.get("findings"), list)
        ):
            self._project = project

    # -- per-module file-rule findings --------------------------------

    def module_findings(
        self, relpath: str, sha: str
    ) -> List[Finding] | None:
        entry = self._modules.get(relpath)
        if entry is None or entry.get("sha") != sha:
            return None
        try:
            return [
                Finding.from_dict(row)
                for row in entry["findings"]  # type: ignore[index]
            ]
        except (KeyError, TypeError, ValueError):
            return None

    def store_module(
        self, relpath: str, sha: str, findings: List[Finding]
    ) -> None:
        self._modules[relpath] = {
            "sha": sha,
            "findings": [finding.to_dict() for finding in findings],
        }
        self._dirty = True

    # -- whole-run findings -------------------------------------------

    def project_findings(self, key: str) -> List[Finding] | None:
        if self._project is None or self._project.get("key") != key:
            return None
        try:
            return [
                Finding.from_dict(row)
                for row in self._project["findings"]  # type: ignore[index]
            ]
        except (KeyError, TypeError, ValueError):
            return None

    def store_project(self, key: str, findings: List[Finding]) -> None:
        self._project = {
            "key": key,
            "findings": [finding.to_dict() for finding in findings],
        }
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the cache (best effort: IO errors pass)."""
        if not self._dirty:
            return
        document = {
            "version": _FORMAT_VERSION,
            "rules_key": self.rules_key,
            "modules": self._modules,
            "project": self._project,
        }
        try:
            tmp = self.path.with_suffix(".tmp")
            tmp.write_text(
                json.dumps(document, indent=1) + "\n", encoding="utf-8"
            )
            tmp.replace(self.path)
        except OSError:
            return
        self._dirty = False

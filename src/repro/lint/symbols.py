"""Lightweight project symbol table for cross-module lint rules.

The consistency rules need a whole-project view: which modules exist
under a package directory, what each imports, where enum members are
defined, and where ``Base.MEMBER`` attribute references appear.  The
:class:`SymbolTable` scans the package once, parses every module, and
answers those questions from cached ASTs — no imports are executed.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Dict, Iterator, List, Tuple


@dataclasses.dataclass
class ModuleInfo:
    """One parsed source module."""

    relpath: str
    path: Path
    source: str
    tree: ast.Module


def parse_module(path: Path, relpath: str) -> ModuleInfo:
    """Read and parse one source file (raises SyntaxError on bad code)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return ModuleInfo(relpath=relpath, path=path, source=source, tree=tree)


class SymbolTable:
    """Parsed view of every module under one package root."""

    def __init__(
        self,
        modules: Dict[str, ModuleInfo],
        docs_text: str = "",
        doc_texts: Dict[str, str] | None = None,
        parse_failures: Tuple[Tuple[str, int, str], ...] = (),
    ) -> None:
        self.modules = modules
        #: Concatenated README + docs/*.md text ("" when unavailable).
        self.docs_text = docs_text
        #: Per-file prose, keyed by repo-relative path ("README.md",
        #: "docs/observability.md", ...) — for rules that require a
        #: mention in one *specific* document.
        self.doc_texts: Dict[str, str] = doc_texts or {}
        #: ``(relpath, line, message)`` for files that failed to parse.
        self.parse_failures = parse_failures
        self._attribute_uses: Dict[
            str, Dict[str, List[Tuple[str, int]]]
        ] = {}
        self._attribute_loads: Dict[str, List[Tuple[str, int]]] | None = (
            None
        )

    @classmethod
    def scan(
        cls, package_root: Path, repo_root: Path | None = None
    ) -> "SymbolTable":
        """Parse every ``.py`` file under ``package_root``.

        ``repo_root`` locates prose to search (``README.md`` and
        ``docs/*.md``) for documentation-coverage rules; when None or
        missing those rules degrade to no-ops.
        """
        modules: Dict[str, ModuleInfo] = {}
        failures: List[Tuple[str, int, str]] = []
        for path in sorted(package_root.rglob("*.py")):
            relpath = path.relative_to(package_root).as_posix()
            try:
                modules[relpath] = parse_module(path, relpath)
            except SyntaxError as exc:
                failures.append((relpath, exc.lineno or 1, str(exc.msg)))
        docs_text = ""
        doc_texts: Dict[str, str] = {}
        if repo_root is not None:
            sources = [repo_root / "README.md"]
            docs_dir = repo_root / "docs"
            if docs_dir.is_dir():
                sources.extend(sorted(docs_dir.glob("*.md")))
            for candidate in sources:
                if not candidate.is_file():
                    continue
                relpath = candidate.relative_to(repo_root).as_posix()
                doc_texts[relpath] = candidate.read_text(encoding="utf-8")
            docs_text = "\n".join(doc_texts.values())
        return cls(
            modules,
            docs_text=docs_text,
            doc_texts=doc_texts,
            parse_failures=tuple(failures),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def module(self, relpath: str) -> ModuleInfo | None:
        """Fetch one parsed module by package-relative path."""
        return self.modules.get(relpath)

    def iter_modules(self) -> Iterator[ModuleInfo]:
        """All parsed modules, in sorted path order."""
        for relpath in sorted(self.modules):
            yield self.modules[relpath]

    def modules_under(self, prefix: str) -> List[ModuleInfo]:
        """Modules whose relative path starts with ``prefix``."""
        return [
            info
            for relpath, info in sorted(self.modules.items())
            if relpath.startswith(prefix)
        ]

    def imported_modules(self, relpath: str) -> set[str]:
        """Absolute module names imported by one module.

        Both ``import a.b`` and ``from a.b import c`` contribute
        ``a.b``; relative imports are ignored (the project uses absolute
        imports throughout).
        """
        info = self.module(relpath)
        if info is None:
            return set()
        imported: set[str] = set()
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imported.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module and not node.level:
                    imported.add(node.module)
        return imported

    def enum_members(
        self, relpath: str, class_name: str
    ) -> List[Tuple[str, int]]:
        """``(member, line)`` pairs of one enum class definition.

        Members are the class-body assignments whose target is a plain
        uppercase-style name; dunders and lowercase helpers are skipped.
        """
        info = self.module(relpath)
        if info is None:
            return []
        for node in info.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name != class_name:
                continue
            members: List[Tuple[str, int]] = []
            for stmt in node.body:
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and not (
                        target.id.startswith("_")
                    ):
                        members.append((target.id, stmt.lineno))
            return members
        return []

    def attribute_uses(
        self, base_name: str
    ) -> Dict[str, List[Tuple[str, int]]]:
        """Where ``base_name.<attr>`` appears, per attribute.

        Returns ``{attr: [(relpath, line), ...]}`` across every module.
        Results are cached per base name.
        """
        cached = self._attribute_uses.get(base_name)
        if cached is not None:
            return cached
        uses: Dict[str, List[Tuple[str, int]]] = {}
        for info in self.iter_modules():
            for node in ast.walk(info.tree):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == base_name
                ):
                    uses.setdefault(node.attr, []).append(
                        (info.relpath, node.lineno)
                    )
        self._attribute_uses[base_name] = uses
        return uses

    def attribute_loads(self) -> Dict[str, List[Tuple[str, int]]]:
        """Where ``<anything>.<attr>`` is *read*, per attribute name.

        Returns ``{attr: [(relpath, line), ...]}`` for every attribute
        access in load context across every module, regardless of the
        base expression.  The config-provenance pass uses this to decide
        whether a config field is consumed anywhere; tolerating name
        collisions between unrelated objects keeps the pass free of
        false positives at the cost of missing collided dead fields.
        """
        if self._attribute_loads is not None:
            return self._attribute_loads
        loads: Dict[str, List[Tuple[str, int]]] = {}
        for info in self.iter_modules():
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Load
                ):
                    loads.setdefault(node.attr, []).append(
                        (info.relpath, node.lineno)
                    )
        self._attribute_loads = loads
        return loads

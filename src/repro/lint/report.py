"""Finding reporters: text, JSON, and SARIF for code scanning."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.engine import PARSE_ERROR_RULE_ID, make_rules
from repro.lint.findings import Finding, Severity
from repro.lint.suppress import UNUSED_SUPPRESSION_RULE_ID

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(findings: List[Finding]) -> str:
    """GCC-style ``file:line:col: rule [severity] message`` listing."""
    if not findings:
        return "simlint: no findings"
    lines = [finding.render() for finding in findings]
    errors = sum(
        1 for finding in findings if finding.severity is Severity.ERROR
    )
    warnings = len(findings) - errors
    summary = f"simlint: {errors} error(s), {warnings} warning(s)"
    return "\n".join([*lines, summary])


def render_json(
    findings: List[Finding], extra: Dict[str, object] | None = None
) -> str:
    """JSON document with one row per finding plus totals.

    ``extra`` entries (cache statistics, baseline counts) are merged
    into the top-level document.
    """
    document: Dict[str, object] = {
        "findings": [finding.to_dict() for finding in findings],
        "errors": sum(
            1
            for finding in findings
            if finding.severity is Severity.ERROR
        ),
        "warnings": sum(
            1
            for finding in findings
            if finding.severity is Severity.WARNING
        ),
    }
    if extra:
        document.update(extra)
    return json.dumps(document, indent=2)


def _sarif_rules() -> List[Dict[str, object]]:
    catalog: List[Dict[str, object]] = []
    for candidate in make_rules():
        catalog.append(
            {
                "id": candidate.rule_id,
                "shortDescription": {"text": candidate.description},
                "help": {"text": candidate.hint or candidate.description},
                "defaultConfiguration": {
                    "level": candidate.severity.value
                },
            }
        )
    catalog.append(
        {
            "id": PARSE_ERROR_RULE_ID,
            "shortDescription": {"text": "file does not parse"},
            "help": {"text": "fix the syntax error"},
            "defaultConfiguration": {"level": "error"},
        }
    )
    catalog.append(
        {
            "id": UNUSED_SUPPRESSION_RULE_ID,
            "shortDescription": {
                "text": "a # simlint: ignore comment silences nothing"
            },
            "help": {"text": "delete the stale suppression"},
            "defaultConfiguration": {"level": "warning"},
        }
    )
    catalog.sort(key=lambda row: str(row["id"]))
    return catalog


def _sarif_location(
    path: str, line: int, col: int, uri_prefix: str
) -> Dict[str, object]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": uri_prefix + path},
            "region": {
                "startLine": max(line, 1),
                "startColumn": col + 1,
            },
        }
    }


def render_sarif(
    findings: List[Finding], uri_prefix: str = ""
) -> str:
    """SARIF 2.1.0 document (GitHub code-scanning compatible).

    ``uri_prefix`` maps package-relative finding paths onto
    repo-relative artifact URIs (e.g. ``"src/repro/"``).  Taint traces
    become SARIF ``codeFlows`` so the code-scanning UI renders the
    full source-to-sink path.
    """
    results: List[Dict[str, object]] = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule_id,
            "level": finding.severity.value,
            "message": {"text": finding.message},
            "locations": [
                _sarif_location(
                    finding.path, finding.line, finding.col, uri_prefix
                )
            ],
        }
        if finding.trace:
            result["codeFlows"] = [
                {
                    "threadFlows": [
                        {
                            "locations": [
                                {
                                    "location": {
                                        **_sarif_location(
                                            step.path,
                                            step.line,
                                            0,
                                            uri_prefix,
                                        ),
                                        "message": {"text": step.note},
                                    }
                                }
                                for step in finding.trace
                            ]
                        }
                    ]
                }
            ]
        results.append(result)
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": (
                            "docs/static_analysis.md in this repository"
                        ),
                        "rules": _sarif_rules(),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)

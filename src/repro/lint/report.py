"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import List

from repro.lint.findings import Finding, Severity


def render_text(findings: List[Finding]) -> str:
    """GCC-style ``file:line:col: rule [severity] message`` listing."""
    if not findings:
        return "simlint: no findings"
    lines = [finding.render() for finding in findings]
    errors = sum(
        1 for finding in findings if finding.severity is Severity.ERROR
    )
    warnings = len(findings) - errors
    summary = f"simlint: {errors} error(s), {warnings} warning(s)"
    return "\n".join([*lines, summary])


def render_json(findings: List[Finding]) -> str:
    """JSON document with one row per finding plus totals."""
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in findings],
            "errors": sum(
                1
                for finding in findings
                if finding.severity is Severity.ERROR
            ),
            "warnings": sum(
                1
                for finding in findings
                if finding.severity is Severity.WARNING
            ),
        },
        indent=2,
    )

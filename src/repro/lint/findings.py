"""Finding records produced by simlint rules.

A :class:`Finding` pins one rule violation to a ``file:line`` location
with a severity and an actionable fix hint.  Findings are value objects:
reporters (text, JSON, SARIF) and the CLI exit code are derived from
them, and tests compare them directly.  Flow findings additionally carry
a :class:`TraceStep` chain — the source-to-sink path the interprocedural
analysis walked to convict the sink.
"""

from __future__ import annotations

import dataclasses
import enum


class Severity(enum.Enum):
    """How seriously a finding should be taken.

    ``ERROR`` findings fail the lint run (nonzero exit); ``WARNING``
    findings are reported but do not gate.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclasses.dataclass(frozen=True)
class TraceStep:
    """One hop of a source-to-sink dataflow trace."""

    path: str
    line: int
    note: str

    def to_dict(self) -> dict[str, object]:
        return {"path": self.path, "line": self.line, "note": self.note}


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    message: str
    col: int = 0
    hint: str = ""
    #: Source-to-sink path for dataflow findings (empty otherwise).
    trace: tuple[TraceStep, ...] = ()

    @property
    def location(self) -> str:
        """The clickable ``file:line`` anchor of the finding."""
        return f"{self.path}:{self.line}"

    def sort_key(self) -> tuple[str, int, int, str]:
        """Stable ordering: by file, then line, column, and rule id."""
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly representation (the JSON reporter's rows)."""
        data: dict[str, object] = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }
        if self.trace:
            data["trace"] = [step.to_dict() for step in self.trace]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output (cache files)."""
        trace = tuple(
            TraceStep(
                path=str(step["path"]),
                line=int(step["line"]),  # type: ignore[arg-type]
                note=str(step["note"]),
            )
            for step in data.get("trace", ())  # type: ignore[union-attr]
        )
        return cls(
            rule_id=str(data["rule"]),
            severity=Severity(str(data["severity"])),
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            message=str(data["message"]),
            col=int(data.get("col", 0)),  # type: ignore[arg-type]
            hint=str(data.get("hint", "")),
            trace=trace,
        )

    def render(self) -> str:
        """One text-reporter block for this finding."""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )
        if self.hint:
            text += f"\n    hint: {self.hint}"
        if self.trace:
            text += "\n    trace:"
            for index, step in enumerate(self.trace, start=1):
                text += (
                    f"\n      {index}. {step.note}"
                    f" ({step.path}:{step.line})"
                )
        return text


def exit_code(findings: list[Finding]) -> int:
    """CLI exit code for a finding list (1 when any error, else 0)."""
    if any(f.severity is Severity.ERROR for f in findings):
        return 1
    return 0

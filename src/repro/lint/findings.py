"""Finding records produced by simlint rules.

A :class:`Finding` pins one rule violation to a ``file:line`` location
with a severity and an actionable fix hint.  Findings are value objects:
reporters (text, JSON) and the CLI exit code are derived from them, and
tests compare them directly.
"""

from __future__ import annotations

import dataclasses
import enum


class Severity(enum.Enum):
    """How seriously a finding should be taken.

    ``ERROR`` findings fail the lint run (nonzero exit); ``WARNING``
    findings are reported but do not gate.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    message: str
    col: int = 0
    hint: str = ""

    @property
    def location(self) -> str:
        """The clickable ``file:line`` anchor of the finding."""
        return f"{self.path}:{self.line}"

    def sort_key(self) -> tuple[str, int, int, str]:
        """Stable ordering: by file, then line, column, and rule id."""
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly representation (the JSON reporter's rows)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        """One text-reporter line for this finding."""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def exit_code(findings: list[Finding]) -> int:
    """CLI exit code for a finding list (1 when any error, else 0)."""
    if any(f.severity is Severity.ERROR for f in findings):
        return 1
    return 0

"""Project-wide call graph over the simlint symbol table.

The flow rules need to follow a value through helper calls: which
function does ``helper()`` on line 40 of ``uvm/driver.py`` actually
name?  :class:`CallGraph` indexes every module-level function and every
method of every top-level class, then resolves call expressions with a
deliberately conservative set of strategies:

* ``f(...)`` — a function defined in the same module, or imported via
  ``from mod import f``;
* ``mod.f(...)`` — ``mod`` bound by ``import pkg.mod as mod`` (or a
  dotted chain matching a known module path);
* ``self.m(...)`` — a method of the enclosing class or its project
  bases;
* ``self.attr.m(...)`` / ``var.m(...)`` — when ``attr``/``var`` was
  assigned a project-class constructor call, the method of that class.

Anything else resolves to ``None``: guessing by method name alone would
confuse ``dict.get`` with a project ``get`` and poison the analysis
with false positives.  Unresolved calls are treated conservatively by
the taint pass instead.  Import cycles are harmless here — resolution
is purely syntactic and :meth:`reachable` carries a visited set.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

from repro.lint.symbols import ModuleInfo, SymbolTable

#: (relpath, qualname) — the stable identity of a function.
FunctionKey = Tuple[str, str]

#: (relpath, class name) — the stable identity of a class.
ClassKey = Tuple[str, str]


@dataclasses.dataclass
class FunctionInfo:
    """One module-level function or method of a top-level class."""

    relpath: str
    qualname: str
    name: str
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    module: ModuleInfo

    @property
    def key(self) -> FunctionKey:
        return (self.relpath, self.qualname)

    @property
    def params(self) -> List[str]:
        """Declared parameter names, in call order (without *args)."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs]
        names.extend(a.arg for a in args.args)
        names.extend(a.arg for a in args.kwonlyargs)
        return names

    @property
    def location(self) -> str:
        return f"{self.relpath}:{self.node.lineno}"


class CallGraph:
    """Function index plus conservative call resolution."""

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        #: FunctionKey -> FunctionInfo for every indexed function.
        self.functions: Dict[FunctionKey, FunctionInfo] = {}
        #: ClassKey -> {method name -> FunctionKey}.
        self._methods: Dict[ClassKey, Dict[str, FunctionKey]] = {}
        #: ClassKey -> base class names (resolved lazily by name).
        self._bases: Dict[ClassKey, List[str]] = {}
        #: class name -> ClassKey (first definition wins; the project
        #: keeps class names unique so collisions are theoretical).
        self._class_by_name: Dict[str, ClassKey] = {}
        #: relpath -> {local name -> ("module", relpath) or
        #: ("symbol", relpath, name)} from the module's imports.
        self._imports: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        #: (ClassKey, attr) -> ClassKey for ``self.attr = Class(...)``
        #: constructor assignments and class-body annotations.
        self._attr_types: Dict[Tuple[ClassKey, str], ClassKey] = {}
        self._module_paths: Dict[str, str] = {}
        self._pending_annotations: List[
            Tuple[ClassKey, str, ast.expr, ModuleInfo]
        ] = []
        self._index()

    @classmethod
    def of(cls, symbols: SymbolTable) -> "CallGraph":
        """Build (or reuse) the graph for one symbol table instance."""
        cached = getattr(symbols, "_simflow_callgraph", None)
        if cached is None:
            cached = cls(symbols)
            symbols._simflow_callgraph = cached  # type: ignore[attr-defined]
        return cached

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------

    def _index(self) -> None:
        package = ""
        for info in self.symbols.iter_modules():
            if not package:
                # The scanned tree is a package: imports name modules
                # as "<package>.<relpath dots>", so both spellings are
                # indexed ("sim.engine" and "repro.sim.engine").
                depth = info.relpath.count("/")
                package = info.path.resolve().parents[depth].name
            dotted = info.relpath[: -len(".py")].replace("/", ".")
            if dotted == "__init__":
                if package:
                    self._module_paths.setdefault(package, info.relpath)
                continue
            if dotted.endswith(".__init__"):
                dotted = dotted[: -len(".__init__")]
            self._module_paths.setdefault(dotted, info.relpath)
            if package:
                self._module_paths.setdefault(
                    f"{package}.{dotted}", info.relpath
                )
        for info in self.symbols.iter_modules():
            self._imports[info.relpath] = self._scan_imports(info)
            for node in info.tree.body:
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    self._add_function(info, node, None)
                elif isinstance(node, ast.ClassDef):
                    self._add_class(info, node)
        # Attribute typing needs the class index complete, so both the
        # annotation-declared and constructor-assigned attribute types
        # resolve in a final pass over the fully built index.
        for class_key, attr, annotation, info in self._pending_annotations:
            typed = self._annotation_class(info, annotation)
            if typed is not None:
                self._attr_types.setdefault((class_key, attr), typed)
        for class_key, methods in sorted(self._methods.items()):
            for method_key in sorted(methods.values()):
                fn = self.functions[method_key]
                self._scan_attr_types(class_key, fn)

    def _add_function(
        self,
        info: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> None:
        qualname = (
            node.name if class_name is None
            else f"{class_name}.{node.name}"
        )
        fn = FunctionInfo(
            relpath=info.relpath,
            qualname=qualname,
            name=node.name,
            class_name=class_name,
            node=node,
            module=info,
        )
        self.functions.setdefault(fn.key, fn)
        if class_name is not None:
            class_key = (info.relpath, class_name)
            self._methods.setdefault(class_key, {}).setdefault(
                node.name, fn.key
            )

    def _add_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        class_key = (info.relpath, node.name)
        self._methods.setdefault(class_key, {})
        self._class_by_name.setdefault(node.name, class_key)
        bases: List[str] = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                bases.append(base.attr)
        self._bases[class_key] = bases
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, stmt, node.name)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                self._pending_annotations.append(
                    (class_key, stmt.target.id, stmt.annotation, info)
                )

    def _scan_imports(
        self, info: ModuleInfo
    ) -> Dict[str, Tuple[str, ...]]:
        bound: Dict[str, Tuple[str, ...]] = {}
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = self._module_paths.get(alias.name)
                    if target is None:
                        continue
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.asname or "." not in alias.name:
                        bound[local] = ("module", target)
            elif isinstance(node, ast.ImportFrom):
                if not node.module or node.level:
                    continue
                target = self._module_paths.get(node.module)
                for alias in node.names:
                    local = alias.asname or alias.name
                    submodule = self._module_paths.get(
                        f"{node.module}.{alias.name}"
                    )
                    if submodule is not None:
                        bound[local] = ("module", submodule)
                    elif target is not None:
                        bound[local] = ("symbol", target, alias.name)
        return bound

    def _annotation_class(
        self, info: ModuleInfo, annotation: ast.expr
    ) -> ClassKey | None:
        """Class key named by a plain ``Name`` annotation, if a project
        class."""
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            name = annotation.value.strip().split("[")[0]
        elif isinstance(annotation, ast.Name):
            name = annotation.id
        else:
            return None
        return self._named_class(info.relpath, name)

    def _named_class(self, relpath: str, name: str) -> ClassKey | None:
        """Resolve a class name as seen from ``relpath``."""
        local = (relpath, name)
        if local in self._methods:
            return local
        binding = self._imports.get(relpath, {}).get(name)
        if binding is not None and binding[0] == "symbol":
            imported = (binding[1], binding[2])
            if imported in self._methods:
                return imported
        return self._class_by_name.get(name)

    def _scan_attr_types(
        self, class_key: ClassKey, fn: FunctionInfo
    ) -> None:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            ctor = node.value.func
            if not isinstance(ctor, ast.Name):
                continue
            typed = self._named_class(fn.relpath, ctor.id)
            if typed is None:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self._attr_types.setdefault(
                        (class_key, target.attr), typed
                    )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for key in sorted(self.functions):
            yield self.functions[key]

    def function(
        self, relpath: str, qualname: str
    ) -> FunctionInfo | None:
        return self.functions.get((relpath, qualname))

    def project_class(self, relpath: str, name: str) -> ClassKey | None:
        """Public wrapper over named-class resolution (for type hints)."""
        return self._named_class(relpath, name)

    def method(
        self, class_key: ClassKey, name: str
    ) -> FunctionInfo | None:
        """Look a method up on a class, walking project base classes."""
        seen: set[ClassKey] = set()
        stack = [class_key]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            found = self._methods.get(current, {}).get(name)
            if found is not None:
                return self.functions[found]
            for base in self._bases.get(current, ()):
                base_key = self._named_class(current[0], base)
                if base_key is not None:
                    stack.append(base_key)
        return None

    def attr_type(
        self, class_key: ClassKey, attr: str
    ) -> ClassKey | None:
        return self._attr_types.get((class_key, attr))

    def resolve_name(
        self, relpath: str, name: str
    ) -> FunctionInfo | None:
        """Resolve a bare function name as seen from one module."""
        local = self.functions.get((relpath, name))
        if local is not None:
            return local
        binding = self._imports.get(relpath, {}).get(name)
        if binding is not None and binding[0] == "symbol":
            return self.functions.get((binding[1], binding[2]))
        return None

    def resolve_call(
        self,
        call: ast.Call,
        caller: FunctionInfo,
        local_types: Mapping[str, ClassKey] | None = None,
    ) -> FunctionInfo | None:
        """Resolve one call expression from inside ``caller``."""
        return self.resolve_target(
            call.func, caller.module.relpath, caller, local_types
        )

    def resolve_target(
        self,
        func: ast.expr,
        relpath: str,
        caller: FunctionInfo | None = None,
        local_types: Mapping[str, ClassKey] | None = None,
    ) -> FunctionInfo | None:
        """Resolve a callable expression (``f``, ``mod.f``, ``self.m``,
        ``obj.m``) to a project function, or ``None``."""
        local_types = local_types or {}
        if isinstance(func, ast.Name):
            resolved = self.resolve_name(relpath, func.id)
            if resolved is not None:
                return resolved
            # A class name used as a callable: its constructor.
            class_key = self._named_class(relpath, func.id)
            if class_key is not None:
                return self.method(class_key, "__init__")
            return None
        if not isinstance(func, ast.Attribute):
            return None
        value = func.value
        if isinstance(value, ast.Name):
            if value.id == "self" and caller is not None and (
                caller.class_name is not None
            ):
                class_key = (caller.relpath, caller.class_name)
                return self.method(class_key, func.attr)
            if value.id in local_types:
                return self.method(local_types[value.id], func.attr)
            binding = self._imports.get(relpath, {}).get(value.id)
            if binding is not None and binding[0] == "module":
                return self.functions.get((binding[1], func.attr))
            return None
        if isinstance(value, ast.Attribute):
            # ``self.attr.m()`` through a constructor-typed attribute.
            if (
                isinstance(value.value, ast.Name)
                and value.value.id == "self"
                and caller is not None
                and caller.class_name is not None
            ):
                class_key = (caller.relpath, caller.class_name)
                typed = self.attr_type(class_key, value.attr)
                if typed is not None:
                    return self.method(typed, func.attr)
                return None
            # ``pkg.mod.f()`` dotted module chains.
            chain = self._dotted_chain(value)
            if chain is not None:
                target = self._module_paths.get(chain)
                if target is not None:
                    return self.functions.get((target, func.attr))
        return None

    def _dotted_chain(self, node: ast.expr) -> str | None:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    def reachable(
        self, roots: Iterable[FunctionInfo]
    ) -> List[FunctionInfo]:
        """Every function transitively callable from ``roots``.

        Breadth-first with a visited set, so mutually recursive
        functions and import cycles terminate.  Calls that cannot be
        resolved are simply not followed.
        """
        seen: set[FunctionKey] = set()
        order: List[FunctionInfo] = []
        queue: List[FunctionInfo] = list(roots)
        while queue:
            fn = queue.pop(0)
            if fn.key in seen:
                continue
            seen.add(fn.key)
            order.append(fn)
            local_types = self._local_constructor_types(fn)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = self.resolve_call(node, fn, local_types)
                if callee is not None and callee.key not in seen:
                    queue.append(callee)
        return order

    def _local_constructor_types(
        self, fn: FunctionInfo
    ) -> Dict[str, ClassKey]:
        """``var -> class`` for ``var = Class(...)`` local assignments."""
        types: Dict[str, ClassKey] = {}
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            ctor = node.value.func
            if not isinstance(ctor, ast.Name):
                continue
            typed = self._named_class(fn.relpath, ctor.id)
            if typed is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    types.setdefault(target.id, typed)
        return types

"""Virtual address helpers.

Workload traces are expressed as virtual page numbers (VPNs) of the
baseline 4 KB page.  :class:`AddressSpace` converts between byte
addresses, 4 KB VPNs, configured-page-size VPNs (for the 2 MB large-page
study of Section VI-B3), access-counter groups, and neighboring-aware
page groups.
"""

from __future__ import annotations

import dataclasses

from repro.constants import PAGE_SIZE_4K
from repro.errors import ConfigError


def _log2_exact(value: int, what: str) -> int:
    if value <= 0 or value & (value - 1):
        raise ConfigError(f"{what} must be a positive power of two")
    return value.bit_length() - 1


@dataclasses.dataclass(frozen=True)
class AddressSpace:
    """Address arithmetic for a given configured page size.

    The simulator's unit of placement is the *configured* page
    (``page_size``); traces always arrive at 4 KB granularity so the same
    trace can drive both the 4 KB and 2 MB configurations.
    """

    page_size: int = PAGE_SIZE_4K

    def __post_init__(self) -> None:
        shift = _log2_exact(self.page_size, "page size")
        if self.page_size < PAGE_SIZE_4K:
            raise ConfigError("page size must be at least 4 KB")
        object.__setattr__(self, "_page_shift", shift)
        base_shift = _log2_exact(PAGE_SIZE_4K, "base page size")
        object.__setattr__(self, "_fold_shift", shift - base_shift)

    @property
    def page_shift(self) -> int:
        """log2 of the configured page size."""
        return self._page_shift  # type: ignore[attr-defined]

    @property
    def base_pages_per_page(self) -> int:
        """4 KB pages folded into one configured page."""
        return 1 << self._fold_shift  # type: ignore[attr-defined]

    def vpn_of_address(self, address: int) -> int:
        """Configured-page VPN containing a byte address."""
        return address >> self._page_shift  # type: ignore[attr-defined]

    def address_of_vpn(self, vpn: int) -> int:
        """First byte address of a configured page."""
        return vpn << self._page_shift  # type: ignore[attr-defined]

    def fold_base_vpn(self, base_vpn: int) -> int:
        """Map a 4 KB VPN to the configured-page VPN containing it."""
        return base_vpn >> self._fold_shift  # type: ignore[attr-defined]

    def counter_group(self, vpn: int, group_bytes: int) -> int:
        """Access-counter group id for a configured-page VPN."""
        pages = max(1, group_bytes // self.page_size)
        return vpn // pages

    @staticmethod
    def group_base(vpn: int, group_pages: int) -> int:
        """Base VPN of the aligned neighbor group containing ``vpn``.

        Implements the paper's base-page formula
        ``VPN_base = VPN - (VPN % GroupSize)`` (Section V-D).
        """
        if group_pages <= 0:
            raise ConfigError("group size must be positive")
        return vpn - (vpn % group_pages)

    @staticmethod
    def group_members(vpn: int, group_pages: int) -> range:
        """VPN range of the aligned group containing ``vpn``."""
        base = AddressSpace.group_base(vpn, group_pages)
        return range(base, base + group_pages)

"""Page-table entry bit layout (Figure 14 of the paper).

GRIT repurposes previously-unused PTE bits:

* bits 9-10 — the *scheme bits* selecting the page placement scheme
  (Table IV: 01 on-touch, 10 access-counter, 11 duplication);
* bits 52-53 — the *group bits* giving the neighboring-aware group size
  of the base page (Table V: 00 single, 01 eight, 10 sixty-four,
  11 five-hundred-twelve pages).

The simulator mostly manipulates decoded :class:`PageInfo` objects, but
this module provides a faithful pack/unpack of the 64-bit entry so tests
can assert the layout and so the PA-Table/PTE interplay matches the
paper's description bit-for-bit.
"""

from __future__ import annotations

import dataclasses

from repro.constants import GroupBits, Scheme

_VALID_BIT = 0
_US_BIT = 1
_RW_BIT = 2
_PWT_BIT = 3
_PCD_BIT = 4
_ACCESSED_BIT = 5
_DIRTY_BIT = 6
_PAT_BIT = 7
_GLOBAL_BIT = 8
_SCHEME_SHIFT = 9
_SCHEME_MASK = 0b11
_PFN_SHIFT = 12
_PFN_MASK = (1 << 40) - 1
_GROUP_SHIFT = 52
_GROUP_MASK = 0b11
_XD_BIT = 63


@dataclasses.dataclass
class PageTableEntry:
    """Decoded x86-style 4 KB PTE with GRIT's scheme and group bits."""

    pfn: int = 0
    valid: bool = False
    writable: bool = False
    user: bool = True
    accessed: bool = False
    dirty: bool = False
    scheme: Scheme | None = None
    group: GroupBits = GroupBits.SINGLE
    no_execute: bool = False

    def encode(self) -> int:
        """Pack into the 64-bit layout of Figure 14."""
        word = 0
        if self.valid:
            word |= 1 << _VALID_BIT
        if self.user:
            word |= 1 << _US_BIT
        if self.writable:
            word |= 1 << _RW_BIT
        if self.accessed:
            word |= 1 << _ACCESSED_BIT
        if self.dirty:
            word |= 1 << _DIRTY_BIT
        if self.scheme is not None:
            word |= (int(self.scheme) & _SCHEME_MASK) << _SCHEME_SHIFT
        word |= (self.pfn & _PFN_MASK) << _PFN_SHIFT
        word |= (int(self.group) & _GROUP_MASK) << _GROUP_SHIFT
        if self.no_execute:
            word |= 1 << _XD_BIT
        return word

    @classmethod
    def decode(cls, word: int) -> "PageTableEntry":
        """Unpack a 64-bit entry produced by :meth:`encode`."""
        scheme_bits = (word >> _SCHEME_SHIFT) & _SCHEME_MASK
        return cls(
            pfn=(word >> _PFN_SHIFT) & _PFN_MASK,
            valid=bool(word & (1 << _VALID_BIT)),
            writable=bool(word & (1 << _RW_BIT)),
            user=bool(word & (1 << _US_BIT)),
            accessed=bool(word & (1 << _ACCESSED_BIT)),
            dirty=bool(word & (1 << _DIRTY_BIT)),
            scheme=Scheme(scheme_bits) if scheme_bits else None,
            group=GroupBits((word >> _GROUP_SHIFT) & _GROUP_MASK),
            no_execute=bool(word & (1 << _XD_BIT)),
        )

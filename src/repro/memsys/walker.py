"""GMMU page-table walker with a shared page-walk cache.

Table I configures 8 shared walkers, a 100-cycle latency per page-table
level, a 128-entry page-walk cache, and a 64-entry walk queue.  In the
trace-driven engine each GPU processes one access at a time, so walker
*throughput* contention shows up as queueing latency: we model it as an
additive penalty when many walks are outstanding within a short window,
and the walk cache as skipping the upper levels of the radix walk on a
hit (a standard PWC idealization).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.config import WalkerConfig


class PageWalkCache:
    """LRU cache over upper-level page-table nodes, keyed by PT page.

    A hit means the upper ``levels - 1`` levels are cached and only the
    leaf level must be fetched; a miss walks the full radix depth.  The
    key is the VPN's page-table-page index (VPN / 512 for 8-byte PTEs in
    a 4 KB PT page), which is how consecutive pages share PWC entries.
    """

    #: 4 KB page-table page holds 512 8-byte entries.
    ENTRIES_PER_PT_PAGE = 512

    def __init__(self, entries: int) -> None:
        self.capacity = entries
        self._entries: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def probe(self, vpn: int) -> bool:
        """Look up (and on miss, install) the PT page covering ``vpn``."""
        key = vpn // self.ENTRIES_PER_PT_PAGE
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[key] = None
        return False

    def __len__(self) -> int:
        return len(self._entries)


class PageTableWalker:
    """Latency model for local page-table walks of one GPU."""

    def __init__(self, config: WalkerConfig) -> None:
        self.config = config
        self.walk_cache = PageWalkCache(config.walk_cache_entries)
        self.walks = 0
        #: Sliding window of recent walk "slots" used to model queueing
        #: behind the 8 shared walkers.
        self._recent_walks = 0
        self._window_anchor = 0
        #: Window width (cycles) over which concurrent walks contend.
        self._window = config.full_walk_latency

    def walk(self, vpn: int, now: int) -> int:
        """Return the latency of a local page-table walk started at ``now``."""
        self.walks += 1
        if self.walk_cache.probe(vpn):
            latency = self.config.cached_walk_latency
        else:
            latency = self.config.full_walk_latency
        latency += self._queue_penalty(now)
        return latency

    def _queue_penalty(self, now: int) -> int:
        """Queueing delay when walks pile up faster than walkers drain."""
        if now - self._window_anchor > self._window:
            self._window_anchor = now
            self._recent_walks = 0
        self._recent_walks += 1
        overflow = self._recent_walks - self.config.walkers
        if overflow <= 0:
            return 0
        # Each excess walk waits behind one walker's leaf fetch.
        penalty = overflow * self.config.latency_per_level
        beyond_queue = overflow - self.config.walk_queue_entries
        if beyond_queue > 0:
            # The 64-entry walk queue is full too: late arrivals stall
            # until a whole walk drains, not just a leaf fetch.
            penalty += beyond_queue * self.config.full_walk_latency
        return penalty

"""Memory-system substrate: addresses, TLBs, page tables, DRAM, counters."""

from repro.memsys.address import AddressSpace
from repro.memsys.access_counter import AccessCounterFile
from repro.memsys.dram import DramDirectory, EvictionResult
from repro.memsys.page import PageInfo
from repro.memsys.page_table import CentralPageTable, LocalPageTable
from repro.memsys.pte import PageTableEntry
from repro.memsys.tlb import SetAssociativeTLB, TLBHierarchy
from repro.memsys.walker import PageWalkCache, PageTableWalker

__all__ = [
    "AddressSpace",
    "AccessCounterFile",
    "DramDirectory",
    "EvictionResult",
    "PageInfo",
    "CentralPageTable",
    "LocalPageTable",
    "PageTableEntry",
    "SetAssociativeTLB",
    "TLBHierarchy",
    "PageWalkCache",
    "PageTableWalker",
]

"""Per-GPU DRAM directory: frame budget, residency, and eviction.

Table I sizes GPU memory to 70% of the application's footprint, so
placement schemes that keep many copies (duplication, GPS) run out of
frames and evict — the oversubscription behaviour Sections II-B3 and
VI-C2 lean on.  The directory tracks which VPNs occupy frames and picks
victims (LRU by default, FIFO and seeded-random available for the
replacement-policy ablation); the engine charges the transfer/write-back
costs.
"""

from __future__ import annotations

import dataclasses
import random
from collections import OrderedDict

from repro.constants import EvictionPolicy


@dataclasses.dataclass(frozen=True)
class EvictionResult:
    """Outcome of making room for one page."""

    evicted_vpn: int
    was_dirty: bool


class DramDirectory:
    """Tracks page residency in one GPU's DRAM."""

    def __init__(
        self,
        gpu_id: int,
        capacity_frames: int,
        policy: EvictionPolicy = EvictionPolicy.LRU,
        seed: int = 0,
    ) -> None:
        if capacity_frames < 1:
            raise ValueError("DRAM needs at least one frame")
        self.gpu_id = gpu_id
        self.capacity = capacity_frames
        self.policy = policy
        self._rng = random.Random(seed + gpu_id)
        self._resident: OrderedDict[int, bool] = OrderedDict()
        self.evictions = 0
        self.installs = 0

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._resident

    @property
    def full(self) -> bool:
        """True when every frame is occupied."""
        return len(self._resident) >= self.capacity

    def touch(self, vpn: int) -> None:
        """Record a data access so LRU ordering tracks recency."""
        if self.policy is EvictionPolicy.LRU and vpn in self._resident:
            self._resident.move_to_end(vpn)

    def mark_dirty(self, vpn: int) -> None:
        """Flag a resident page as modified (write-back on eviction)."""
        if vpn in self._resident:
            self._resident[vpn] = True
            if self.policy is EvictionPolicy.LRU:
                self._resident.move_to_end(vpn)

    def install(self, vpn: int, dirty: bool = False) -> EvictionResult | None:
        """Place a page in a frame, evicting a victim if needed.

        Returns the eviction performed to make room, or None if there
        was a free frame (or the page was already resident).
        """
        self.installs += 1
        if vpn in self._resident:
            self._resident[vpn] = self._resident[vpn] or dirty
            if self.policy is EvictionPolicy.LRU:
                self._resident.move_to_end(vpn)
            return None
        evicted = None
        if len(self._resident) >= self.capacity:
            victim_vpn = self._pick_victim()
            victim_dirty = self._resident.pop(victim_vpn)
            self.evictions += 1
            evicted = EvictionResult(victim_vpn, victim_dirty)
        self._resident[vpn] = dirty
        return evicted

    def _pick_victim(self) -> int:
        """Choose the frame to free per the configured policy.

        LRU and FIFO both take the OrderedDict's head (LRU refreshes
        order on touch, FIFO never does, so the head is the right
        victim for both); RANDOM picks uniformly.
        """
        if self.policy is EvictionPolicy.RANDOM:
            return self._rng.choice(list(self._resident))
        return next(iter(self._resident))

    def release(self, vpn: int) -> bool:
        """Free a frame (page migrated away or replica collapsed)."""
        return self._resident.pop(vpn, None) is not None

    def resident_vpns(self) -> list[int]:
        """VPNs currently occupying frames."""
        return list(self._resident)


class DramChannel:
    """One node's DRAM channel as a contended timing resource.

    The directory above answers *where* pages live; the channel answers
    *when* the memory can serve another request.  Each reservation
    queues behind the channel's ``busy_until`` horizon and then holds
    it for one service period, so concurrent remote readers of the same
    node's memory observe queueing delay instead of the flat
    latency-model cost.  Used only by the timing kernel
    (:mod:`repro.sim.timing`) in ``contention="queued"`` mode; in the
    default flat mode the channel is never consulted.
    """

    def __init__(self, name: str, service_cycles: int) -> None:
        if service_cycles < 1:
            raise ValueError("DRAM service time must be >= 1 cycle")
        self.name = name
        #: Effective cycles one access occupies the channel (the local
        #: DRAM latency after the MLP divisor — the already-overlapped
        #: per-request service the flat model charges).
        self.service_cycles = service_cycles
        self.busy_until = 0
        #: Accesses that reserved the channel.
        self.accesses = 0
        #: Cumulative cycles accesses spent queued behind earlier ones.
        self.wait_cycles = 0
        #: Largest backlog (``busy_until - now``) any access observed
        #: on arrival.
        self.peak_occupancy = 0

    def reserve(self, now: int) -> int:
        """Reserve one access arriving at ``now``; returns its wait."""
        self.accesses += 1
        wait = self.busy_until - now
        if wait <= 0:
            wait = 0
        else:
            self.wait_cycles += wait
            if wait > self.peak_occupancy:
                self.peak_occupancy = wait
        self.busy_until = now + wait + self.service_cycles
        return wait

    def reset_stats(self) -> None:
        """Zero the occupancy state and contention counters."""
        self.busy_until = 0
        self.accesses = 0
        self.wait_cycles = 0
        self.peak_occupancy = 0

"""Host-side page state tracked by the centralized page table."""

from __future__ import annotations

import dataclasses

from repro.constants import HOST_NODE, GroupBits, Scheme


@dataclasses.dataclass
class PageInfo:
    """Authoritative state of one virtual page, as the UVM driver sees it.

    ``owner`` is the node holding the authoritative copy (a GPU id, or
    :data:`~repro.constants.HOST_NODE` before first touch).  ``replicas``
    are GPUs holding read-only duplicates (page duplication / GPS).
    ``scheme`` and ``group`` mirror the PTE scheme/group bits that GRIT
    maintains (Figure 14); uniform policies simply never change them.
    """

    vpn: int
    owner: int = HOST_NODE
    replicas: set[int] = dataclasses.field(default_factory=set)
    scheme: Scheme = Scheme.ON_TOUCH
    group: GroupBits = GroupBits.SINGLE
    #: Set once any GPU writes the page (clears on scheme-change epochs
    #: only through the PA-Table, not here; this is the whole-run view).
    ever_written: bool = False
    #: Dirty relative to the host's copy (write-back cost on eviction).
    dirty: bool = False

    @property
    def placed(self) -> bool:
        """True once the page has left the host (first touch happened)."""
        return self.owner != HOST_NODE

    def holders(self) -> set[int]:
        """All GPUs with a readable copy (owner + replicas)."""
        nodes = set(self.replicas)
        if self.owner != HOST_NODE:
            nodes.add(self.owner)
        return nodes

    def is_local_to(self, gpu: int) -> bool:
        """True if ``gpu`` can satisfy reads from its own DRAM."""
        return self.owner == gpu or gpu in self.replicas

"""Set-associative TLB models with LRU replacement.

Geometry follows Table I: a 32-entry fully-associative L1 TLB (1-cycle
lookup) and a 512-entry 16-way L2 TLB (10-cycle lookup) shared by the
GPU's compute units.  Entries cache the *local* page-table translation,
so a TLB hit still distinguishes local from remote data locations and
read-only duplicate mappings (writes to those raise protection faults
even on a TLB hit).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.config import TLBConfig
from repro.memsys.page_table import LocalPTE


class SetAssociativeTLB:
    """One TLB level: per-set LRU over :class:`LocalPTE` payloads."""

    def __init__(self, config: TLBConfig) -> None:
        self.config = config
        self._sets: List[OrderedDict[int, LocalPTE]] = [
            OrderedDict() for _ in range(config.sets)
        ]
        self._set_mask = config.sets - 1
        self.hits = 0
        self.misses = 0

    def _set_for(self, vpn: int) -> OrderedDict[int, LocalPTE]:
        return self._sets[vpn & self._set_mask]

    def lookup(self, vpn: int) -> LocalPTE | None:
        """Probe the TLB; promotes the entry to MRU on a hit."""
        entries = self._set_for(vpn)
        entry = entries.get(vpn)
        if entry is None:
            self.misses += 1
            return None
        entries.move_to_end(vpn)
        self.hits += 1
        return entry

    def peek(self, vpn: int) -> LocalPTE | None:
        """Probe without touching LRU order or hit/miss counters.

        The steady-state fast path uses this to *verify* that a run of
        accesses would hit before committing to batch pricing; the
        statistical effects of the verified hits are applied afterwards
        in bulk (``hits`` bump plus :meth:`promote` per unique page).
        """
        return self._set_for(vpn).get(vpn)

    def promote(self, vpn: int) -> None:
        """MRU-promote an entry known to be resident (bulk fast path).

        Raises ``KeyError`` when the entry is absent — callers must
        have verified residency with :meth:`peek` first.
        """
        self._set_for(vpn).move_to_end(vpn)

    def insert(self, vpn: int, pte: LocalPTE) -> None:
        """Fill an entry, evicting the set's LRU victim if full."""
        entries = self._set_for(vpn)
        if vpn in entries:
            entries.move_to_end(vpn)
            entries[vpn] = pte
            return
        if len(entries) >= self.config.ways:
            entries.popitem(last=False)
        entries[vpn] = pte

    def invalidate(self, vpn: int) -> bool:
        """Shootdown of one translation; True if it was cached."""
        return self._set_for(vpn).pop(vpn, None) is not None

    def flush(self) -> None:
        """Full flush (pipeline drain during migration/collapse)."""
        for entries in self._sets:
            entries.clear()

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._sets)


class TLBHierarchy:
    """L1 + L2 TLB pair for one GPU with combined lookup accounting."""

    def __init__(self, l1: TLBConfig, l2: TLBConfig) -> None:
        self.l1 = SetAssociativeTLB(l1)
        self.l2 = SetAssociativeTLB(l2)

    def lookup(self, vpn: int) -> tuple[LocalPTE | None, int, bool]:
        """Probe L1 then L2.

        Returns ``(pte, latency, l2_missed)`` where ``pte`` is None on a
        full miss and ``l2_missed`` flags that a page-table walk is
        needed (the event Figure 19 buckets scheme usage by).
        """
        latency = self.l1.config.lookup_latency
        pte = self.l1.lookup(vpn)
        if pte is not None:
            return pte, latency, False
        latency += self.l2.config.lookup_latency
        pte = self.l2.lookup(vpn)
        if pte is not None:
            self.l1.insert(vpn, pte)
            return pte, latency, False
        return None, latency, True

    def fill(self, vpn: int, pte: LocalPTE) -> None:
        """Install a translation in both levels after a walk/fault."""
        self.l2.insert(vpn, pte)
        self.l1.insert(vpn, pte)

    def invalidate(self, vpn: int) -> None:
        """Shootdown of one translation in both levels."""
        self.l1.invalidate(vpn)
        self.l2.invalidate(vpn)

    def flush(self) -> None:
        """Full flush of both levels."""
        self.l1.flush()
        self.l2.flush()

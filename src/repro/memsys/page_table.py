"""Local (per-GPU) and centralized (host) page tables.

Each GPU keeps a *local page table* translating VPNs it has faulted on;
an entry points either at local memory or — under access-counter style
schemes — at a remote GPU's memory.  The UVM driver keeps the
*centralized page table* with the authoritative :class:`PageInfo` for
every page (Section II-A).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator

from repro.constants import Scheme
from repro.memsys.page import PageInfo


@dataclasses.dataclass
class LocalPTE:
    """One translation in a GPU's local page table.

    ``location`` is the node whose DRAM the translation points at (the
    GPU itself for local pages and replicas, another GPU for remote
    mappings).  ``writable`` is false for read-only duplicates, so a
    write raises a page protection fault (Section II-B3).
    """

    location: int
    writable: bool


class LocalPageTable:
    """Per-GPU page table with O(1) dict-backed lookup."""

    def __init__(self, gpu_id: int) -> None:
        self.gpu_id = gpu_id
        self._entries: Dict[int, LocalPTE] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    def lookup(self, vpn: int) -> LocalPTE | None:
        """Return the translation for ``vpn`` or None (local page fault)."""
        return self._entries.get(vpn)

    def map(self, vpn: int, location: int, writable: bool) -> None:
        """Install or update a translation."""
        self._entries[vpn] = LocalPTE(location=location, writable=writable)

    def invalidate(self, vpn: int) -> bool:
        """Drop a translation; returns True if one was present."""
        return self._entries.pop(vpn, None) is not None

    def mapped_vpns(self) -> Iterator[int]:
        """Iterate the VPNs with live translations."""
        return iter(self._entries)


class CentralPageTable:
    """The UVM driver's authoritative page table.

    Pages are materialized lazily on first touch with the policy's
    initial scheme; ``default_scheme`` is what a fresh PTE's scheme bits
    carry before any GRIT decision.
    """

    def __init__(self, default_scheme: Scheme = Scheme.ON_TOUCH) -> None:
        self.default_scheme = default_scheme
        self._pages: Dict[int, PageInfo] = {}

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._pages

    def get(self, vpn: int) -> PageInfo:
        """Fetch (creating on first touch) the page record for ``vpn``."""
        page = self._pages.get(vpn)
        if page is None:
            page = PageInfo(vpn=vpn, scheme=self.default_scheme)
            self._pages[vpn] = page
        return page

    def peek(self, vpn: int) -> PageInfo | None:
        """Fetch without materializing — used by neighbor prediction."""
        return self._pages.get(vpn)

    def pages(self) -> Iterator[PageInfo]:
        """Iterate every materialized page record."""
        return iter(self._pages.values())

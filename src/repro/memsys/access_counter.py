"""Hardware access counters for counter-based migration (Section II-B2).

Volta-style GPUs count *remote* accesses at a 64 KB page-group
granularity; when a group's counter reaches the static threshold (256),
the GPU requests migration of the group's pages from the UVM driver.
Counters are per requesting GPU and reset when the tracked pages
migrate (the remote mapping they counted no longer exists).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class AccessCounterFile:
    """Per-GPU remote-access counters, grouped by 64 KB page group."""

    def __init__(self, threshold: int, pages_per_group: int) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if pages_per_group < 1:
            raise ValueError("pages_per_group must be >= 1")
        self.threshold = threshold
        self.pages_per_group = pages_per_group
        #: group id -> {gpu id -> remote access count}
        self._groups: Dict[int, Dict[int, int]] = {}
        self.migrations_triggered = 0

    def group_of(self, vpn: int) -> int:
        """Counter-group id covering the page."""
        return vpn // self.pages_per_group

    def record_remote_access(self, gpu: int, vpn: int) -> bool:
        """Count one remote access; True when the threshold fires.

        Firing clears the group's counters — the UVM driver is expected
        to migrate the group's pages toward ``gpu`` in response.
        """
        group = self.group_of(vpn)
        per_gpu = self._groups.setdefault(group, {})
        count = per_gpu.get(gpu, 0) + 1
        if count >= self.threshold:
            del self._groups[group]
            self.migrations_triggered += 1
            return True
        per_gpu[gpu] = count
        return False

    def reset_group(self, vpn: int) -> None:
        """Clear all GPUs' counters for the group containing ``vpn``."""
        self._groups.pop(self.group_of(vpn), None)

    def count(self, gpu: int, vpn: int) -> int:
        """Current remote-access count for (gpu, group of vpn)."""
        per_gpu = self._groups.get(self.group_of(vpn))
        if per_gpu is None:
            return 0
        return per_gpu.get(gpu, 0)

    def iter_counts(self) -> Iterator[Tuple[int, int, int]]:
        """Yield every live counter as ``(group, gpu, count)``.

        Deterministically ordered; used by the machine-state sanitizer
        to assert no stored count ever reaches the threshold (reaching
        it must fire a migration and clear the group).
        """
        for group in sorted(self._groups):
            per_gpu = self._groups[group]
            for gpu in sorted(per_gpu):
                yield group, gpu, per_gpu[gpu]

    def __len__(self) -> int:
        """Number of page groups with at least one live counter."""
        return len(self._groups)

"""Policy registry: build any evaluated policy by name."""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import UnknownPolicyError
from repro.policies.access_counter import AccessCounterPolicy
from repro.policies.base import PlacementPolicy
from repro.policies.duplication import DuplicationPolicy
from repro.policies.first_touch import FirstTouchPolicy
from repro.policies.gps import GpsPolicy
from repro.policies.griffin import GriffinPolicy
from repro.policies.grit_policy import GritPolicy, make_grit_variant
from repro.policies.ideal import IdealPolicy
from repro.policies.on_touch import OnTouchPolicy
from repro.policies.transfw import GriffinTransFwPolicy, GritTransFwPolicy


def _grit_acud() -> PlacementPolicy:
    # The ACUD flush discount is resolved from the latency model at bind
    # time, so GRIT+ACUD and Griffin use the same knob.
    return make_grit_variant(acud=True)


_FACTORIES: Dict[str, Callable[[], PlacementPolicy]] = {
    "on_touch": OnTouchPolicy,
    "access_counter": AccessCounterPolicy,
    "duplication": DuplicationPolicy,
    "first_touch": FirstTouchPolicy,
    "ideal": IdealPolicy,
    "grit": GritPolicy,
    "grit_acud": _grit_acud,
    "griffin_dpc": lambda: GriffinPolicy(acud=False),
    "griffin": lambda: GriffinPolicy(acud=True),
    "griffin_dpc_transfw": GriffinTransFwPolicy,
    "grit_transfw": GritTransFwPolicy,
    "gps": GpsPolicy,
}


def available_policies() -> list[str]:
    """Names accepted by :func:`make_policy`."""
    return sorted(_FACTORIES)


def make_policy(name: str) -> PlacementPolicy:
    """Instantiate a fresh policy by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise UnknownPolicyError(
            f"unknown policy {name!r}; available: {available_policies()}"
        ) from None
    return factory()

"""Placement-policy interface.

A policy decides *which mechanic* resolves each page's faults and may
react to fault/interval events.  The UVM driver owns the mechanics
themselves (migration, remote mapping, duplication, collapse); policies
are pure decision logic, which is what lets GRIT, the uniform schemes,
and the comparators share one simulator.
"""

from __future__ import annotations

import abc
import dataclasses
import enum
from typing import TYPE_CHECKING, FrozenSet, Tuple

from repro.constants import FaultKind, Scheme

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memsys.page import PageInfo
    from repro.uvm.executor import MechanicExecutor
    from repro.uvm.machine import MachineState


class Mechanic(enum.Enum):
    """How the driver resolves faults for a page.

    The first three correspond to the paper's schemes (Section II-B).
    ``PEER_REMOTE`` pins the page where it was first touched and serves
    other GPUs through remote mappings forever (first-touch, and the
    substrate under Griffin's delayed migration).  ``GPS`` is
    publish-subscribe replication with write broadcast.  ``IDEAL`` is
    the paper's optimization-potential upper bound.
    """

    ON_TOUCH = "on_touch"
    ACCESS_COUNTER = "access_counter"
    DUPLICATION = "duplication"
    PEER_REMOTE = "peer_remote"
    GPS = "gps"
    IDEAL = "ideal"


#: Mechanic implementing each of the paper's PTE scheme encodings.
SCHEME_MECHANIC = {
    Scheme.ON_TOUCH: Mechanic.ON_TOUCH,
    Scheme.ACCESS_COUNTER: Mechanic.ACCESS_COUNTER,
    Scheme.DUPLICATION: Mechanic.DUPLICATION,
}


@dataclasses.dataclass(frozen=True)
class FaultObservation:
    """What a policy did in response to observing a fault."""

    #: Extra cycles to charge this fault (PA path, tracking structures).
    extra_latency: int = 0
    #: Pages that must drop replicas *with* charged invalidations
    #: (a direct scheme change away from duplication).
    collapse_charged: Tuple[int, ...] = ()
    #: Pages that must drop replicas in the background (neighbor
    #: propagation; the paper charges no latency for these).
    collapse_background: Tuple[int, ...] = ()


NO_OBSERVATION = FaultObservation()


class PlacementPolicy(abc.ABC):
    """Decision logic plugged into the UVM driver."""

    #: Registry name; subclasses override.
    name: str = "base"
    #: Writes to replicated pages broadcast instead of collapsing (GPS).
    gps_semantics: bool = False
    #: Replicated pages keep read-only mappings so a write faults and
    #: collapses.  GPS (store broadcast) and the Ideal bound relax this;
    #: the machine-state sanitizer keys its replica checks off it.
    enforces_replica_protection: bool = True
    #: Scale on UVM fault-service latency (Trans-FW forwarding < 1.0).
    fault_service_scale: float = 1.0
    #: Scale on pipeline-flush/invalidation latency (ACUD < 1.0).
    flush_scale: float = 1.0
    #: Period (cycles) of :meth:`on_interval` callbacks; None disables.
    interval_cycles: int | None = None
    #: Mechanics :meth:`mechanic_for` may return.  The driver checks at
    #: construction time that each one has a registered executor, so a
    #: missing registration fails fast instead of surfacing as a
    #: :class:`~repro.errors.PolicyError` deep inside a simulation.
    mechanics: FrozenSet[Mechanic] = frozenset()

    def __init__(self) -> None:
        self.machine: "MachineState | None" = None

    def bind(self, machine: "MachineState") -> None:
        """Attach to a machine; called once by the engine at setup."""
        self.machine = machine

    def register_mechanics(self, executor: "MechanicExecutor") -> None:
        """Hook to override or extend the mechanic dispatch registry.

        The driver calls this once, before any fault is serviced.  The
        built-in mechanics are pre-registered; a policy that implements
        a custom mechanic (or swaps an implementation for an ablation)
        registers it here with ``executor.register(mechanic, fn)``.
        """

    def initial_scheme(self) -> Scheme:
        """Scheme bits a freshly materialized PTE carries."""
        return Scheme.ON_TOUCH

    @abc.abstractmethod
    def mechanic_for(self, page: "PageInfo") -> Mechanic:
        """Mechanic the driver must use to resolve this page's faults."""

    def on_fault_observed(
        self, gpu: int, vpn: int, kind: FaultKind, is_write: bool
    ) -> FaultObservation:
        """Hook run for every local/protection fault (GRIT's PA path).

        ``is_write`` is the faulting access's type (what sets the PA
        entry's read/write bit), independent of the fault kind.
        """
        return NO_OBSERVATION

    def on_remote_access(self, gpu: int, vpn: int) -> None:
        """Hook run for every remote data access (Griffin's tracking)."""

    def on_interval(self, now: int) -> None:
        """Periodic hook (Griffin's delayed page classification)."""

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return self.name

"""Uniform access-counter-based migration (Section II-B2).

Remote faults establish remote mappings; hardware counters track remote
accesses per 64 KB page group and migration only happens when a group's
counter reaches the static threshold (256 on Volta).
"""

from __future__ import annotations

from repro.constants import Scheme
from repro.memsys.page import PageInfo
from repro.policies.base import Mechanic, PlacementPolicy


class AccessCounterPolicy(PlacementPolicy):
    """Remote-map on fault, migrate at the counter threshold."""

    name = "access_counter"
    mechanics = frozenset({Mechanic.ACCESS_COUNTER})

    def initial_scheme(self) -> Scheme:
        """Fresh PTEs carry the AC scheme bits."""
        return Scheme.ACCESS_COUNTER

    def mechanic_for(self, page: PageInfo) -> Mechanic:
        """Every fault resolves by remote mapping + counters."""
        return Mechanic.ACCESS_COUNTER

    def describe(self) -> str:
        """Report-friendly one-liner."""
        return "uniform access-counter-based migration"

"""Trans-FW comparator (Li et al., HPCA 2023; Section VI-C3).

Trans-FW short-circuits page-table walks on faults by forwarding
translations between GPUs, cutting the host fault-service latency.  It
is orthogonal to what pages get placed where, so it is modelled as a
fault-service scale factor that can be stacked on another policy —
the paper evaluates Griffin-DPC + Trans-FW.
"""

from __future__ import annotations

from repro.policies.base import PlacementPolicy
from repro.policies.griffin import GriffinPolicy
from repro.policies.grit_policy import GritPolicy
from repro.uvm.machine import MachineState


def apply_transfw(policy: PlacementPolicy) -> PlacementPolicy:
    """Stack Trans-FW's fault-service reduction onto a policy.

    The scale is taken from the machine's latency model at bind time so
    a single knob (``transfw_discount``) controls the whole study.
    """
    original_bind = policy.bind

    def bind_with_transfw(machine: MachineState) -> None:
        """Original bind plus the Trans-FW fault-service scale."""
        original_bind(machine)
        policy.fault_service_scale = machine.config.latency.transfw_discount

    policy.bind = bind_with_transfw  # type: ignore[method-assign]
    policy.name = f"{policy.name}_transfw"
    return policy


class GritTransFwPolicy(GritPolicy):
    """GRIT stacked with Trans-FW (an extension the paper's related-work
    framing invites: GRIT is orthogonal to fault-service acceleration)."""

    name = "grit_transfw"

    def __init__(self) -> None:
        super().__init__()
        self.name = "grit_transfw"

    def bind(self, machine: MachineState) -> None:
        """GRIT bind plus the Trans-FW fault-service scale."""
        super().bind(machine)
        self.fault_service_scale = machine.config.latency.transfw_discount

    def describe(self) -> str:
        """Report-friendly one-liner."""
        return "GRIT + Trans-FW translation forwarding"


class GriffinTransFwPolicy(GriffinPolicy):
    """Griffin-DPC combined with Trans-FW (the Figure 28 comparator)."""

    name = "griffin_dpc_transfw"

    def __init__(self) -> None:
        super().__init__(acud=False)
        self.name = "griffin_dpc_transfw"

    def bind(self, machine: MachineState) -> None:
        """Griffin bind plus the Trans-FW fault-service scale."""
        super().bind(machine)
        self.fault_service_scale = machine.config.latency.transfw_discount

    def describe(self) -> str:
        """Report-friendly one-liner."""
        return "Griffin-DPC + Trans-FW translation forwarding"

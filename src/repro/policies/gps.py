"""GPS comparator (Muthukrishnan et al., MICRO 2021; Section VI-C2).

GPS tracks the *subscribers* of each page (GPUs that accessed it) and
proactively broadcasts fine-grained stores to every subscriber's local
replica, so reads are always local and writes never collapse.  The cost
the paper highlights is memory oversubscription: nearly every shared
page ends up replicated in every subscriber, blowing through the 70%
DRAM budget and causing evictions + re-subscriptions.
"""

from __future__ import annotations

from repro.constants import Scheme
from repro.memsys.page import PageInfo
from repro.policies.base import Mechanic, PlacementPolicy


class GpsPolicy(PlacementPolicy):
    """Publish-subscribe replication with store broadcast."""

    name = "gps"
    mechanics = frozenset({Mechanic.GPS})
    gps_semantics = True
    # Subscribers keep writable replicas; stores broadcast, never fault.
    enforces_replica_protection = False

    def initial_scheme(self) -> Scheme:
        """Replicated pages carry duplication scheme bits."""
        return Scheme.DUPLICATION

    def mechanic_for(self, page: PageInfo) -> Mechanic:
        """Every fault subscribes the requester."""
        return Mechanic.GPS

    def describe(self) -> str:
        """Report-friendly one-liner."""
        return "GPS publish-subscribe with fine-grained store broadcast"

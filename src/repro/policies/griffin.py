"""Griffin comparator (Baruah et al., HPCA 2020; paper Section VI-C1).

Griffin has two parts:

* **DPC** (Dynamic Page Classification): pages are pinned first-touch
  and served remotely; at a fixed time interval the runtime classifies
  pages by their observed accesses and migrates pages whose dominant
  accessor is remote.  The cost the paper highlights — and this model
  reproduces — is that remote accesses accumulate for a whole interval
  before the migration happens.
* **ACUD** (Asynchronous Compute Unit Draining): overlaps pipeline
  draining with migration, modelled as a scale factor on flush and
  invalidation latencies (``acud_discount`` in the latency model).
"""

from __future__ import annotations

from typing import Dict

from repro.constants import Scheme
from repro.memsys.page import PageInfo
from repro.policies.base import Mechanic, PlacementPolicy
from repro.uvm.machine import MachineState
from repro.uvm.migration import MigrationEngine

#: Default classification interval, in cycles.
DEFAULT_DPC_INTERVAL = 200_000

#: Remote accesses within one interval a page needs before DPC considers
#: migrating it (filters one-off touches).
DEFAULT_DPC_MIN_ACCESSES = 8


class GriffinPolicy(PlacementPolicy):
    """Griffin-DPC, optionally with ACUD."""

    name = "griffin_dpc"
    mechanics = frozenset({Mechanic.PEER_REMOTE})

    def __init__(
        self,
        acud: bool = False,
        interval_cycles: int = DEFAULT_DPC_INTERVAL,
        min_accesses: int = DEFAULT_DPC_MIN_ACCESSES,
    ) -> None:
        super().__init__()
        self.interval_cycles = interval_cycles
        self.min_accesses = min_accesses
        self._acud = acud
        if acud:
            self.name = "griffin"
        #: vpn -> {gpu -> remote accesses in the current interval}
        self._interval_counts: Dict[int, Dict[int, int]] = {}
        self._migration: MigrationEngine | None = None
        self.dpc_migrations = 0

    def bind(self, machine: MachineState) -> None:
        """Resolve the ACUD discount and build the migration engine."""
        super().bind(machine)
        if self._acud:
            self.flush_scale = machine.config.latency.acud_discount
        self._migration = MigrationEngine(machine)

    def initial_scheme(self) -> Scheme:
        """Remote mappings behave like AC PTEs."""
        return Scheme.ACCESS_COUNTER

    def mechanic_for(self, page: PageInfo) -> Mechanic:
        """Faults pin/peer-map; DPC migrates at interval boundaries."""
        return Mechanic.PEER_REMOTE

    def on_remote_access(self, gpu: int, vpn: int) -> None:
        """Per-interval access tracking for DPC."""
        per_gpu = self._interval_counts.setdefault(vpn, {})
        per_gpu[gpu] = per_gpu.get(gpu, 0) + 1

    def on_interval(self, now: int) -> None:
        """DPC step: migrate pages toward their dominant remote accessor."""
        assert self.machine is not None and self._migration is not None
        machine = self.machine
        for vpn, per_gpu in self._interval_counts.items():
            dominant = max(per_gpu, key=per_gpu.get)
            count = per_gpu[dominant]
            if count < self.min_accesses:
                continue
            page = machine.central_pt.get(vpn)
            if page.owner == dominant:
                continue
            cycles = self._migration.migrate(
                page, dominant, flush_scale=self.flush_scale, now=now
            )
            # Delayed migrations run alongside execution; the receiving
            # GPU absorbs the transfer/invalidation time.
            machine.gpus[dominant].clock += cycles
            self.dpc_migrations += 1
        self._interval_counts.clear()

    def describe(self) -> str:
        """Report-friendly one-liner."""
        suffix = " + ACUD" if self._acud else ""
        return (
            f"Griffin-DPC (interval={self.interval_cycles} cycles, "
            f"min-accesses={self.min_accesses}){suffix}"
        )

"""Uniform on-touch migration (Section II-B1) — the paper's baseline."""

from __future__ import annotations

from repro.constants import Scheme
from repro.memsys.page import PageInfo
from repro.policies.base import Mechanic, PlacementPolicy


class OnTouchPolicy(PlacementPolicy):
    """Always migrate a faulting page to the requesting GPU."""

    name = "on_touch"
    mechanics = frozenset({Mechanic.ON_TOUCH})

    def initial_scheme(self) -> Scheme:
        """On-touch pages start (and stay) with OT scheme bits."""
        return Scheme.ON_TOUCH

    def mechanic_for(self, page: PageInfo) -> Mechanic:
        """Every fault migrates the page to the requester."""
        return Mechanic.ON_TOUCH

    def describe(self) -> str:
        """Report-friendly one-liner."""
        return "uniform on-touch page migration"

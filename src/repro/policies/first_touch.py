"""First-touch migration (Section VI-D).

Pins each page on the GPU that touches it first and serves every other
GPU through peer load/store remote mappings — no migrations ever.
"""

from __future__ import annotations

from repro.constants import Scheme
from repro.memsys.page import PageInfo
from repro.policies.base import Mechanic, PlacementPolicy


class FirstTouchPolicy(PlacementPolicy):
    """Pin on first touch; remote peer access afterwards."""

    name = "first_touch"
    mechanics = frozenset({Mechanic.PEER_REMOTE})

    def initial_scheme(self) -> Scheme:
        """Remote mappings behave like AC PTEs (sans counters)."""
        return Scheme.ACCESS_COUNTER

    def mechanic_for(self, page: PageInfo) -> Mechanic:
        """Every fault pins on first touch, then peer-maps."""
        return Mechanic.PEER_REMOTE

    def describe(self) -> str:
        """Report-friendly one-liner."""
        return "first-touch pinning with peer remote access"

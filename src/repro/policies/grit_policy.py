"""GRIT as a placement policy (Section V, Figure 16).

Starts every page at on-touch migration (the paper's choice of starting
baseline), feeds every fault through the GRIT mechanism, and resolves
faults with whatever scheme the page's PTE scheme bits currently carry —
whether set directly by a threshold decision or pre-set for neighbors by
Neighboring-Aware Prediction.
"""

from __future__ import annotations

from repro.config import GritConfig
from repro.constants import FaultKind, Scheme
from repro.core.grit import GritMechanism
from repro.memsys.page import PageInfo
from repro.policies.base import (
    SCHEME_MECHANIC,
    FaultObservation,
    Mechanic,
    PlacementPolicy,
)
from repro.uvm.machine import MachineState


class GritPolicy(PlacementPolicy):
    """Fine-grained dynamic page placement."""

    name = "grit"
    # GRIT dispatches on the PTE's scheme bits, so every scheme's
    # mechanic must have an executor (the PA path can flip a page to
    # any of the three mid-run).
    mechanics = frozenset(SCHEME_MECHANIC.values())

    def __init__(
        self,
        grit_config: GritConfig | None = None,
        acud: bool = False,
    ) -> None:
        super().__init__()
        self._grit_config = grit_config
        self._acud = acud
        self.mechanism: GritMechanism | None = None
        if acud:
            self.name = "grit_acud"

    def bind(self, machine: MachineState) -> None:
        """Build the GRIT mechanism over the central page table."""
        super().bind(machine)
        if self._acud:
            self.flush_scale = machine.config.latency.acud_discount
        config = self._grit_config or machine.config.grit
        self.mechanism = GritMechanism(
            config=config,
            latency=machine.config.latency,
            page_table=machine.central_pt,
        )

    def initial_scheme(self) -> Scheme:
        """GRIT starts every page at on-touch (Section VI-A)."""
        return Scheme.ON_TOUCH

    def mechanic_for(self, page: PageInfo) -> Mechanic:
        """Resolve faults with whatever the PTE scheme bits say."""
        return SCHEME_MECHANIC[page.scheme]

    def on_fault_observed(
        self, gpu: int, vpn: int, kind: FaultKind, is_write: bool
    ) -> FaultObservation:
        """Feed the fault through GRIT and translate its decisions
        into driver actions and statistics."""
        assert self.mechanism is not None, "policy used before bind()"
        assert self.machine is not None
        change = self.mechanism.observe_fault(vpn, kind, is_write)
        counters = self.machine.counters
        counters.group_promotions += change.promotions
        counters.group_degradations += change.degradations
        collapse_charged: tuple[int, ...] = ()
        collapse_background: list[int] = []
        event_log = self.machine.event_log
        if event_log is not None and (
            change.promotions or change.degradations
        ):
            from repro.stats.events import EventKind

            if change.promotions:
                event_log.emit(
                    EventKind.GROUP_PROMOTION,
                    vpn,
                    gpu,
                    detail=change.promotions,
                )
            if change.degradations:
                event_log.emit(
                    EventKind.GROUP_DEGRADATION,
                    vpn,
                    gpu,
                    detail=change.degradations,
                )
        if change.scheme_changed:
            counters.scheme_changes += 1
            if event_log is not None:
                from repro.stats.events import EventKind

                event_log.emit(
                    EventKind.SCHEME_CHANGE,
                    vpn,
                    gpu,
                    detail=int(change.new_scheme),
                )
            if change.new_scheme is not Scheme.DUPLICATION:
                # The page itself is leaving duplication (or was never
                # duplicated — drop_replicas is then a no-op).
                collapse_charged = (vpn,)
        for propagated_vpn, old_scheme in change.propagated:
            counters.scheme_changes += 1
            if old_scheme is Scheme.DUPLICATION:
                collapse_background.append(propagated_vpn)
        return FaultObservation(
            extra_latency=change.extra_latency,
            collapse_charged=collapse_charged,
            collapse_background=tuple(collapse_background),
        )

    def describe(self) -> str:
        """Report-friendly one-liner naming the active knobs."""
        parts = ["GRIT"]
        config = (
            self.mechanism.config
            if self.mechanism is not None
            else self._grit_config
        )
        if config is not None:
            parts.append(f"threshold={config.fault_threshold}")
            if not config.use_pa_cache:
                parts.append("no-PA-Cache")
            if not config.use_neighbor_prediction:
                parts.append("no-NAP")
        if self.flush_scale < 1.0:
            parts.append("ACUD")
        return " ".join(parts)


def make_grit_variant(
    fault_threshold: int = 4,
    use_pa_cache: bool = True,
    use_neighbor_prediction: bool = True,
    acud: bool = False,
) -> GritPolicy:
    """Build the GRIT variants the evaluation sweeps (Figures 20/21/26)."""
    config = GritConfig(
        fault_threshold=fault_threshold,
        use_pa_cache=use_pa_cache,
        use_neighbor_prediction=use_neighbor_prediction,
    )
    return GritPolicy(grit_config=config, acud=acud)

"""Placement policies: the three uniform schemes, GRIT, and comparators."""

from repro.policies.base import Mechanic, PlacementPolicy
from repro.policies.registry import available_policies, make_policy

__all__ = [
    "Mechanic",
    "PlacementPolicy",
    "available_policies",
    "make_policy",
]

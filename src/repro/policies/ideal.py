"""The paper's Ideal bound (Section I).

Every read except the first cold touch of a page hits local memory, and
writes complete with zero NUMA latency.  Not realizable — used only to
show optimization headroom in Figures 1 and 17.
"""

from __future__ import annotations

from repro.constants import Scheme
from repro.memsys.page import PageInfo
from repro.policies.base import Mechanic, PlacementPolicy


class IdealPolicy(PlacementPolicy):
    """Upper bound: free replication, free writes."""

    name = "ideal"
    mechanics = frozenset({Mechanic.IDEAL})
    # The bound replicates for free with writable mappings everywhere.
    enforces_replica_protection = False

    def initial_scheme(self) -> Scheme:
        """Scheme bits are irrelevant to the Ideal mechanics."""
        return Scheme.ON_TOUCH

    def mechanic_for(self, page: PageInfo) -> Mechanic:
        """Every fault resolves with the free Ideal mechanics."""
        return Mechanic.IDEAL

    def describe(self) -> str:
        """Report-friendly one-liner."""
        return "ideal bound (local reads, zero-NUMA writes)"

"""Uniform page duplication (Section II-B3).

Read faults replicate the page locally; writes to shared pages trigger
page write collapse through protection faults.
"""

from __future__ import annotations

from repro.constants import Scheme
from repro.memsys.page import PageInfo
from repro.policies.base import Mechanic, PlacementPolicy


class DuplicationPolicy(PlacementPolicy):
    """Replicate on read fault, collapse on write."""

    name = "duplication"
    mechanics = frozenset({Mechanic.DUPLICATION})

    def initial_scheme(self) -> Scheme:
        """Fresh PTEs carry the duplication scheme bits."""
        return Scheme.DUPLICATION

    def mechanic_for(self, page: PageInfo) -> Mechanic:
        """Every fault resolves by replicate-or-collapse."""
        return Mechanic.DUPLICATION

    def describe(self) -> str:
        """Report-friendly one-liner."""
        return "uniform page duplication with write collapse"

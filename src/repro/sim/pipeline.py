"""Engine-side stages of the fault-service pipeline.

The access path is an explicit four-stage pipeline:

1. **Translation** (:class:`TranslationStage`): pull the next access
   off the GPU's stream cursor, fold it to the configured page size,
   and walk the translation path (L1 TLB -> L2 TLB -> page-table
   walk), producing a typed :class:`AccessOutcome`.
2. **Fault buffering** (:class:`~repro.uvm.faults.FaultBuffer`):
   accesses whose translation is missing deposit a fault; with
   ``fault_batch_size == 1`` the deposit services immediately
   (the classic inline path), otherwise it parks.
3. **Fault service** (:class:`~repro.uvm.fault_service.FaultService`):
   the driver drains one GPU's buffer as a batch, coalescing
   duplicates and amortizing the host round trip.
4. **Data access**: the engine charges the data-access latency by
   where the page actually lives, priced by the timing kernel
   (:mod:`repro.sim.timing`) — flat :class:`AccessCosts` charges in
   the default mode, plus routed link and DRAM channel queueing in
   ``contention="queued"`` mode.

Stream cursors iterate the trace arrays in bounded chunks instead of
materializing whole per-GPU streams up front, which keeps the
simulator's memory at one trace copy plus a small window.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from repro.constants import LatencyCategory
from repro.sim.timing import AccessCosts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memsys.address import AddressSpace
    from repro.memsys.page import PageInfo
    from repro.memsys.page_table import LocalPTE
    from repro.sim.gpu import GpuNode
    from repro.uvm.machine import MachineState
    from repro.workloads.base import WorkloadTrace

__all__ = [
    "AccessCosts",
    "AccessOutcome",
    "StreamCursor",
    "TranslationStage",
    "CURSOR_CHUNK",
]

#: Stream-cursor window: how many trace entries are materialized as
#: plain Python scalars at a time.  Scalar indexing into numpy arrays
#: is slow on the per-access hot path, so the cursor converts one
#: bounded chunk at a time — fast iteration without the 2x trace
#: memory of a full ``tolist()``.
CURSOR_CHUNK = 8192


@dataclasses.dataclass(slots=True)
class AccessOutcome:
    """What the translation stage produced for one access.

    ``pte is None`` means the access needs a local page fault serviced
    before it can proceed; ``l2_missed`` records whether the TLB
    hierarchy must be refilled once a translation exists.
    """

    vpn: int
    is_write: bool
    cycles: int
    pte: "LocalPTE | None"
    l2_missed: bool
    #: Central-page-table entry the walk already fetched for the
    #: Figure 19 scheme tally.  The fault path reuses it instead of
    #: consulting the central table a second time (it is the same
    #: live object — pages mutate in place and are never replaced).
    page: "PageInfo | None" = None


class StreamCursor:
    """Chunked cursor over one GPU's (vpns, writes) trace arrays."""

    __slots__ = (
        "_vpns",
        "_writes",
        "length",
        "position",
        "_chunk_vpns",
        "_chunk_writes",
        "_chunk_base",
    )

    def __init__(self, vpns: np.ndarray, writes: np.ndarray) -> None:
        self._vpns = vpns
        self._writes = writes
        self.length = len(vpns)
        self.position = 0
        self._chunk_vpns: List[int] = []
        self._chunk_writes: List[bool] = []
        self._chunk_base = 0
        if self.length:
            self._load_chunk(0)

    def __len__(self) -> int:
        return self.length

    @property
    def exhausted(self) -> bool:
        """True once every access has been consumed."""
        return self.position >= self.length

    def _load_chunk(self, base: int) -> None:
        end = min(base + CURSOR_CHUNK, self.length)
        self._chunk_base = base
        self._chunk_vpns = self._vpns[base:end].tolist()
        self._chunk_writes = self._writes[base:end].tolist()

    def next(self) -> Tuple[int, bool]:
        """Consume and return the next ``(vpn, is_write)`` pair."""
        position = self.position
        if position >= self.length:
            raise IndexError("stream cursor exhausted")
        offset = position - self._chunk_base
        if offset >= len(self._chunk_vpns):
            self._load_chunk(position)
            offset = 0
        self.position = position + 1
        return self._chunk_vpns[offset], self._chunk_writes[offset]

    def peek(self) -> Tuple[int, bool]:
        """The next ``(vpn, is_write)`` pair without consuming it."""
        position = self.position
        if position >= self.length:
            raise IndexError("stream cursor exhausted")
        offset = position - self._chunk_base
        if offset >= len(self._chunk_vpns):
            self._load_chunk(position)
            offset = 0
        return self._chunk_vpns[offset], self._chunk_writes[offset]

    def peek_batch(
        self, limit: int = CURSOR_CHUNK
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(vpns, writes)`` window of upcoming accesses.

        Returns numpy views over the trace arrays starting at the
        cursor position, at most ``limit`` entries long.  This is the
        batch entry point of the steady-state fast path (see
        :mod:`repro.sim.fastpath`); consume the verified prefix with
        :meth:`advance`.
        """
        start = self.position
        end = min(start + limit, self.length)
        return self._vpns[start:end], self._writes[start:end]

    def advance(self, count: int) -> None:
        """Consume ``count`` accesses previously seen via peek_batch."""
        position = self.position + count
        if count < 0 or position > self.length:
            raise IndexError("advance past the end of the stream")
        self.position = position
        # The scalar chunk is refilled lazily: next()/peek() reload it
        # when the new position falls outside the materialized window.


class TranslationStage:
    """Stage 1: stream cursors plus the TLB/walk translation path."""

    def __init__(
        self,
        machine: "MachineState",
        trace: "WorkloadTrace",
        address_space: "AddressSpace",
    ) -> None:
        self.machine = machine
        self.fold_shift = (
            address_space.base_pages_per_page.bit_length() - 1
        )
        self.cursors = [
            StreamCursor(vpns, writes) for vpns, writes in trace.streams
        ]

    def next_access(self, gpu_id: int) -> Tuple[int, int, bool]:
        """Next ``(base_vpn, folded_vpn, is_write)`` of one GPU."""
        base_vpn, is_write = self.cursors[gpu_id].next()
        return base_vpn, base_vpn >> self.fold_shift, is_write

    def lookup(
        self, node: "GpuNode", vpn: int, is_write: bool, now: int
    ) -> AccessOutcome:
        """Walk the translation path for one access.

        L1/L2 TLB lookup, then on an L2 miss a page-table walk (the
        walk also tallies the touched page's current scheme for the
        Figure 19 breakdown) and a local-page-table lookup whose
        ``None`` result signals a page fault to the fault stages.
        """
        machine = self.machine
        pte, cycles, l2_missed = node.tlbs.lookup(vpn)
        page = None
        if l2_missed:
            walk = node.walker.walk(vpn, now)
            cycles += walk
            machine.breakdown.charge(LatencyCategory.LOCAL, walk)
            page = machine.central_pt.get(vpn)
            machine.counters.record_scheme_usage(page.scheme)
            pte = node.page_table.lookup(vpn)
        return AccessOutcome(vpn, is_write, cycles, pte, l2_missed, page)

"""Thread-block scheduler model (Section III-B).

The paper's scheduler assigns thread blocks round-robin across the CUs
of one GPU and only spills to the next GPU when the current one is full,
which preserves inter-TB locality: consecutive thread blocks (and the
consecutive data they touch) land on the same GPU.  For trace generation
that behaviour reduces to *block partitioning* of the TB index space;
:func:`round_robin_fill` exposes the fill order itself for tests and
finer-grained generators.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigError


def partition_blocks(num_items: int, num_gpus: int) -> List[range]:
    """Split ``num_items`` contiguous indices into per-GPU chunks.

    Chunks differ by at most one item; earlier GPUs get the larger
    chunks, matching fill-first-then-spill scheduling.
    """
    if num_gpus < 1:
        raise ConfigError("need at least one GPU")
    if num_items < 0:
        raise ConfigError("item count must be non-negative")
    base = num_items // num_gpus
    extra = num_items % num_gpus
    chunks: List[range] = []
    start = 0
    for gpu in range(num_gpus):
        size = base + (1 if gpu < extra else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


def round_robin_fill(
    num_blocks: int, num_gpus: int, blocks_per_gpu: int
) -> List[int]:
    """GPU assignment for each thread block under fill-first scheduling.

    The scheduler keeps dispatching to one GPU until ``blocks_per_gpu``
    blocks are resident, then moves on; once every GPU is full the
    pattern wraps (modelling wave-by-wave execution).
    """
    if blocks_per_gpu < 1:
        raise ConfigError("blocks_per_gpu must be positive")
    if num_gpus < 1:
        raise ConfigError("need at least one GPU")
    wave = num_gpus * blocks_per_gpu
    assignment: List[int] = []
    for block in range(num_blocks):
        assignment.append((block % wave) // blocks_per_gpu)
    return assignment

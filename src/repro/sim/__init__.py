"""Trace-driven multi-GPU simulation engine."""

from repro.sim.engine import Engine, simulate
from repro.sim.gpu import GpuNode
from repro.sim.result import SimulationResult
from repro.sim.scheduler import partition_blocks, round_robin_fill

__all__ = [
    "Engine",
    "simulate",
    "GpuNode",
    "SimulationResult",
    "partition_blocks",
    "round_robin_fill",
]

"""Simulation results and cross-run comparison helpers."""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.stats.counters import EventCounters
from repro.stats.latency import LatencyBreakdown


@dataclasses.dataclass
class SimulationResult:
    """Outcome of one (workload, policy, config) simulation."""

    workload: str
    policy: str
    #: Execution time: the slowest GPU's finish cycle.
    total_cycles: int
    per_gpu_cycles: List[int]
    counters: EventCounters
    breakdown: LatencyBreakdown
    num_gpus: int
    page_size: int
    #: Free-form extras (PA-Cache hit rates, link traffic, ...).
    details: Dict[str, object] = dataclasses.field(default_factory=dict)

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Relative performance vs a baseline run (paper's normalization:
        baseline cycles / this run's cycles; >1 means faster)."""
        if self.total_cycles <= 0:
            raise ValueError("result has no simulated cycles")
        return baseline.total_cycles / self.total_cycles

    def fault_ratio_vs(self, baseline: "SimulationResult") -> float:
        """Total GPU page faults relative to a baseline (Figure 18)."""
        base = baseline.counters.total_faults
        if base == 0:
            return 0.0 if self.counters.total_faults == 0 else float("inf")
        return self.counters.total_faults / base

    def summary(self) -> Dict[str, object]:
        """Flat dict for tabular reports."""
        data: Dict[str, object] = {
            "workload": self.workload,
            "policy": self.policy,
            "total_cycles": self.total_cycles,
            "num_gpus": self.num_gpus,
            "page_size": self.page_size,
        }
        data.update(self.counters.as_dict())
        data.update(
            {
                f"latency_{label.lower().replace('-', '_')}": cycles
                for label, cycles in self.breakdown.as_dict().items()
            }
        )
        if "dropped_events" in self.details:
            data["dropped_events"] = self.details["dropped_events"]
        return data

"""The vectorized steady-state fast path of the access engine.

The overwhelmingly common access in every workload's steady phase is
*boring*: it hits the L1 TLB, the page is resident locally, no fault
fires, no policy boundary is due.  The scalar pipeline still pays a
full Python trip for each one.  This module batches those runs the way
GRIT's own evaluation substrate (MGPUSim) does — model the interesting
accesses precisely, price the uninteresting ones in bulk.

An access is **steady** for GPU ``g`` when all of:

* its folded page hits ``g``'s L1 TLB (``peek`` — no LRU mutation
  until the run is committed),
* the cached translation is local (``pte.location == g``) — remote
  and host locations take the far-access path with driver hooks,
* a write finds the PTE writable (otherwise a protection fault) and
  the policy has no GPS store semantics (GPS writes broadcast),
* no fault is parked in ``g``'s replayable buffer (batch mode), and
* the engine is in flat contention mode (``contention="queued"``
  prices each access against live link/DRAM occupancy, which is
  order-sensitive — the engine never builds a FastPath there).

One steady access then costs exactly ``l1_lookup + local_access``
cycles and advances the GPU's clock by that plus the issue gap; its
only side effects are per-GPU L1/DRAM LRU promotion, the global
access counters, and a timeline cell bump — all either per-GPU-local
or commutative.  Steady accesses of *different* GPUs therefore
commute, which is what lets :meth:`FastPath.round` batch every GPU's
verified steady prefix in one step instead of degenerating to
one-access runs under the engine's lockstep lowest-clock scheduling.

A round works in three moves:

1. **Verify**: per active GPU, probe the next access alone (one L1
   ``peek``), then scan a zero-copy window off its stream cursor
   (:meth:`~repro.sim.pipeline.StreamCursor.peek_batch`) with an
   early-exit loop that memoizes one (read_ok, write_ok) verdict per
   folded page — the scan's cost is proportional to the run it finds.
   The window grows adaptively (64 entries up to
   :data:`~repro.sim.pipeline.CURSOR_CHUNK`) so fault-heavy phases
   pay for short windows and steady phases verify in big gulps.  The
   verified-but-unconsumed remainder is cached per GPU: fast rounds
   never mutate translation or residency state, so a cache entry
   survives until the engine runs anything scalar — then
   :meth:`invalidate` drops the acting GPU's entry (its cursor moved)
   and epoch-stamps the rest, which cheaply *revalidate* at their
   next use by re-probing just the pages in their memo.
2. **Bound**: the joint horizon ``H`` is the lexicographic minimum of
   ``(t, gpu)`` over every GPU's first unverified-or-unsteady access
   time, further capped by the next policy-interval and observation
   boundaries.  Every access strictly before ``H`` in the engine's
   ``(clock, gpu_id)`` scheduling order would have been replayed
   before anything interesting happens, so it is safe to batch.
3. **Commit**: per GPU, price its sub-``H`` prefix in one step — bulk
   counter sums, one ``hits`` bump, L1/DRAM LRU promotion per unique
   page in last-access order, grouped timeline records, and a single
   clock advance through the timing kernel's bulk charge API.

The moment anything interesting happens — an L2 miss, a fault, a
protection fault, an interval/observation boundary, a pending drain —
the detector stops the run there and the engine falls back to the
scalar pipeline for that access.  Results are bit-for-bit identical
with the fast path on or off; ``tests/sim/test_fastpath.py`` and the
golden/bench gates in CI hold that line.

Enable/disable with ``SystemConfig(fast_path=...)``, the
``--no-fast-path`` CLI flag, or the ``GRIT_FAST_PATH`` environment
variable (the same global-override pattern as ``GRIT_CONTENTION``).
"""

from __future__ import annotations

import heapq
import os
from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.sim.pipeline import CURSOR_CHUNK

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config import SystemConfig
    from repro.sim.engine import Engine
    from repro.sim.gpu import GpuNode

__all__ = ["FAST_PATH_ENV_VAR", "FastPath", "fast_path_enabled"]

#: Environment variable globally overriding ``config.fast_path``
#: (``1`` forces the fast path on, ``0`` forces it off).
FAST_PATH_ENV_VAR = "GRIT_FAST_PATH"

#: Smallest verification window; fault-heavy phases settle here so a
#: run cut short by the next fault wastes little verification work.
_MIN_WINDOW = 64

#: Runs at or below this length commit through a plain Python replay
#: of the per-access side effects; above it the numpy bulk commit's
#: fixed overhead amortizes and wins.
_SCALAR_COMMIT = 64

#: Sentinel horizon for a GPU whose verified run reaches the end of
#: its stream: nothing after it can constrain the other GPUs.
_NO_HORIZON = float("inf")


def fast_path_enabled(config: "SystemConfig") -> bool:
    """Resolve the effective fast-path setting for one run.

    The environment variable wins over the config field, mirroring
    ``GRIT_CONTENTION``/``GRIT_SANITIZE``/``GRIT_TRACE``.
    """
    raw = os.environ.get(FAST_PATH_ENV_VAR, "")
    if raw:
        if raw == "1":
            return True
        if raw == "0":
            return False
        raise ConfigError(
            f"{FAST_PATH_ENV_VAR}={raw!r} must be '0' or '1'"
        )
    return config.fast_path


class FastPath:
    """Per-run steady-state batcher bound to one engine's state."""

    def __init__(self, engine: "Engine") -> None:
        machine = engine.machine
        if machine.kernel.queued:
            raise ConfigError(
                "the steady-state fast path requires flat contention "
                "mode; queued-mode accesses are order-sensitive"
            )
        self.gpus = machine.gpus
        self.counters = machine.counters
        self.kernel = machine.kernel
        self.timeline = engine.timeline
        self.cursors = engine.stage.cursors
        self.service = engine.fault_service
        self.inline = engine.fault_service.inline
        self.fold_shift = engine.stage.fold_shift
        self.gps_writes = engine.policy.gps_semantics
        l1_latency = engine.config.l1_tlb.lookup_latency
        issue_gap = engine.config.issue_gap
        #: Clock advance of one steady access: L1 hit + local data
        #: access + the inter-instruction issue gap.
        self.advance = (
            l1_latency
            + self.kernel.local_access_bulk(0, 1, 0)
            + issue_gap
        )
        #: Non-data share of the advance (charged outside the kernel).
        self.overhead = l1_latency + issue_gap
        #: gpu_id -> [stamp, n_ok, reaches_end, unsteady, memo]: the
        #: GPU's cached verification (see _plan for the slot meanings).
        self._state: Dict[int, list] = {}
        #: Bumped whenever scalar activity may have mutated TLB /
        #: page-table / residency state; states carrying an older
        #: stamp must revalidate their memo before being trusted.
        self._epoch = 0
        #: gpu_id -> next verification window size (adaptive).
        self._window: Dict[int, int] = {}

    def invalidate(self, gpu_id: int) -> None:
        """Note scalar activity initiated by ``gpu_id``.

        The engine calls this before each scalar access (and its
        boundary hooks) — the only things that can mutate TLB,
        page-table, or residency state, or consume trace accesses.
        The acting GPU's cached verification is dropped outright (its
        cursor is about to move); every other GPU's survives with a
        stale stamp and is *revalidated* at its next plan by
        re-probing just the unique pages its run touches — far
        cheaper than re-scanning the run access by access.
        """
        self._epoch += 1
        self._state.pop(gpu_id, None)

    # -- detection -----------------------------------------------------

    def _verify(self, gpu_id: int) -> list:
        """Measure one GPU's steady prefix off the cursor.

        Builds and caches the state record
        ``[stamp, n_ok, reaches_end, unsteady, memo]``:

        * ``n_ok`` — verified steady accesses not yet consumed;
        * ``reaches_end`` — the verified run extends to the end of
          the stream (nothing after it can constrain other GPUs);
        * ``unsteady`` — the *next* access is known not steady (the
          verdict holds until scalar activity invalidates it);
        * ``memo`` — folded page -> (read_ok, write_ok) for every
          page the scan probed, the basis for cheap revalidation.

        The scan stops at the first unsteady access, so its cost is
        proportional to the run it finds; the adaptive window only
        bounds how much of a long steady stretch is verified per gulp
        — it grows while windows come back fully steady and shrinks
        back toward the measured run length when they do not.
        """
        memo: Dict[int, Tuple[bool, bool]] = {}
        state = [self._epoch, 0, False, False, memo]
        self._state[gpu_id] = state
        if not self.inline and self.service.pending(gpu_id):
            # Parked faults drain (and replay) before the stream may
            # proceed past the batch boundary; never batch over them.
            state[3] = True
            return state
        cursor = self.cursors[gpu_id]
        shift = self.fold_shift
        peek = self.gpus[gpu_id].tlbs.l1.peek
        gps = self.gps_writes
        # Probe the first access alone before any window machinery:
        # unsteady phases pay one peek per scalar access, not a batch.
        vpn, is_write = cursor.peek()
        page = vpn >> shift
        entry = peek(page)
        if entry is None or entry.location != gpu_id:
            flags = (False, False)
        else:
            flags = (True, not gps and entry.writable)
        memo[page] = flags
        if not flags[1 if is_write else 0]:
            state[3] = True
            return state
        window = self._window.get(gpu_id, _MIN_WINDOW)
        vpns, writes = cursor.peek_batch(window)
        n_ok = 0
        for vpn, is_write in zip(vpns.tolist(), writes.tolist()):
            page = vpn >> shift
            flags = memo.get(page)
            if flags is None:
                entry = peek(page)
                if entry is None or entry.location != gpu_id:
                    flags = (False, False)
                else:
                    flags = (True, not gps and entry.writable)
                memo[page] = flags
            if not flags[1 if is_write else 0]:
                break
            n_ok += 1
        if n_ok == len(vpns):
            # Fully steady window: verify in bigger gulps next time.
            self._window[gpu_id] = min(window * 4, CURSOR_CHUNK)
            state[2] = cursor.position + n_ok >= cursor.length
        else:
            self._window[gpu_id] = max(
                _MIN_WINDOW, min(n_ok * 2, CURSOR_CHUNK)
            )
        state[1] = n_ok
        state[3] = n_ok == 0
        return state

    def _revalidate(self, gpu_id: int, state: list) -> bool:
        """Re-probe a stale state's pages; True when still accurate.

        Scalar activity elsewhere can only have changed this GPU's
        view through its L1 entries (its own cursor and fault buffer
        are untouched — the engine drops the acting GPU's state
        outright).  If every page in the memo still probes to the
        same (read_ok, write_ok) verdict, the cached scan would
        reproduce itself exactly, so the state is still good.
        """
        if not self.inline and self.service.pending(gpu_id):
            return False
        peek = self.gpus[gpu_id].tlbs.l1.peek
        gps = self.gps_writes
        for page, flags in state[4].items():
            entry = peek(page)
            if entry is None or entry.location != gpu_id:
                fresh = (False, False)
            else:
                fresh = (True, not gps and entry.writable)
            if fresh != flags:
                return False
        state[0] = self._epoch
        return True

    def _plan(self, gpu_id: int) -> Tuple[int, float]:
        """Steady prefix + horizon for one GPU, via the cache.

        Returns ``(n_ok, horizon)`` where the horizon is the
        simulated time of the GPU's first unverified-or-unsteady
        access — its current clock when the very next access is
        unsteady, infinity when the verified run reaches the end of
        the stream.
        """
        clock = self.gpus[gpu_id].clock
        state = self._state.get(gpu_id)
        if state is not None and state[0] != self._epoch:
            if not self._revalidate(gpu_id, state):
                state = None
        if state is None or (state[1] == 0 and not state[3]):
            # Unknown, stale, or fully consumed by earlier rounds:
            # (re-)verify from the current cursor position — sound,
            # fast rounds mutated nothing since the last scalar step.
            state = self._verify(gpu_id)
        if state[3]:
            return 0, clock
        if state[2]:
            return state[1], _NO_HORIZON
        return state[1], clock + state[1] * self.advance

    # -- the joint round -----------------------------------------------

    def round(
        self,
        heap: List[Tuple[int, int]],
        next_interval: int | None,
        obs_next: int | None,
    ) -> bool:
        """Batch every GPU's steady prefix up to the joint horizon.

        ``heap`` is the engine's ``(clock, gpu_id)`` scheduling heap
        with a fresh top entry; on success it is rebuilt in place with
        the post-run clocks (exhausted GPUs dropped) and True is
        returned.  Returns False — heap untouched, nothing consumed —
        when the scheduled GPU's next access is not steady.
        """
        top_gpu = heap[0][1]
        top_ok, top_until = self._plan(top_gpu)
        if top_ok == 0:
            # The scheduled access is not steady: scalar pipeline.
            # (When it IS steady the round always commits at least
            # that access — every other GPU/boundary bound is strictly
            # later in (clock, gpu_id) order.)
            return False
        plans: List[Tuple[int, int]] = [(top_gpu, top_ok)]
        horizon: Tuple[float, int] = (top_until, top_gpu)
        for _, gpu_id in heap:
            if gpu_id == top_gpu:
                continue
            n_ok, until = self._plan(gpu_id)
            plans.append((gpu_id, n_ok))
            if (until, gpu_id) < horizon:
                horizon = (until, gpu_id)
        if next_interval is not None and (next_interval, -1) < horizon:
            horizon = (next_interval, -1)
        if obs_next is not None and (obs_next, -1) < horizon:
            horizon = (obs_next, -1)
        h_clock, h_id = horizon
        advance = self.advance
        gpus = self.gpus
        total = 0
        for gpu_id, n_ok in plans:
            if n_ok == 0:
                continue
            clock = gpus[gpu_id].clock
            # Batch exactly the accesses scheduled strictly before the
            # horizon in (clock, gpu_id) order: access i of this GPU
            # runs at clock + i*advance and ties break by gpu id.
            limit = h_clock if gpu_id < h_id else h_clock - 1
            if limit < clock:
                continue
            if limit >= clock + (n_ok - 1) * advance:
                # Whole verified prefix fits under the horizon (also
                # the infinite-horizon case: every stream ends steady).
                count = n_ok
            else:
                count = int(limit - clock) // advance + 1
            if count <= 0:
                continue
            self._commit(gpu_id, gpus[gpu_id], clock, count)
            self._state[gpu_id][1] -= count
            total += count
        if total == 0:
            return False
        cursors = self.cursors
        heap[:] = [
            (gpus[gpu_id].clock, gpu_id)
            for _, gpu_id in heap
            if not cursors[gpu_id].exhausted
        ]
        heapq.heapify(heap)
        return True

    # -- committing one run --------------------------------------------

    def _commit(
        self, gpu_id: int, node: "GpuNode", clock: int, count: int
    ) -> None:
        """Apply one verified run's effects in bulk, bit-for-bit.

        Replicates exactly what ``count`` scalar iterations would have
        done: counters, L1 hit stats + MRU order, DRAM LRU/dirty
        state, timeline cells, cursor position, and the clock.
        """
        cursor = self.cursors[gpu_id]
        vpns, writes = cursor.peek_batch(count)
        counters = self.counters
        counters.fastpath_runs += 1
        counters.fastpath_accesses += count
        counters.accesses += count
        l1 = node.tlbs.l1
        l1.hits += count
        dram = node.dram
        if count <= _SCALAR_COMMIT:
            # Short run: plain Python beats numpy's fixed per-call
            # overhead.  Final L1 MRU order and DRAM LRU/dirty state
            # only depend on each unique page's last access, so the
            # run is deduped before touching the structures.
            shift = self.fold_shift
            vl = vpns.tolist()
            wl = writes.tolist()
            nwrites = wl.count(True)
            counters.writes += nwrites
            counters.reads += count - nwrites
            first_page = vl[0] >> shift
            if (min(vl) >> shift) == first_page == (max(vl) >> shift):
                # Single folded page — the typical sweep run shape.
                l1.promote(first_page)
                if nwrites:
                    dram.mark_dirty(first_page)
                else:
                    dram.touch(first_page)
            else:
                # Dict pop+reinsert keeps pages in last-access order
                # and merges the per-page written flag on the way.
                order: Dict[int, bool] = {}
                for vpn, is_write in zip(vl, wl):
                    page = vpn >> shift
                    order[page] = order.pop(page, False) or is_write
                for page, wrote in order.items():
                    l1.promote(page)
                    if wrote:
                        dram.mark_dirty(page)
                    else:
                        dram.touch(page)
            timeline = self.timeline
            if timeline is not None:
                when = clock
                advance = self.advance
                record = timeline.record
                for vpn, is_write in zip(vl, wl):
                    record(when, gpu_id, vpn, is_write)
                    when += advance
            data_cycles = self.kernel.local_access_bulk(
                gpu_id, count, clock
            )
            node.clock = clock + count * self.overhead + data_cycles
            cursor.advance(count)
            return
        writes = writes.astype(bool, copy=False)
        nwrites = int(np.count_nonzero(writes))
        counters.writes += nwrites
        counters.reads += count - nwrites
        folded = vpns >> self.fold_shift
        first_page = int(folded[0])
        if int(folded[-1]) == first_page and (folded == first_page).all():
            # Single-page run (the typical shape: a page's remaining
            # accesses after its install, up to the next page's fault).
            l1.promote(first_page)
            if nwrites:
                dram.mark_dirty(first_page)
            else:
                dram.touch(first_page)
        else:
            # Final L1 MRU order and DRAM LRU/dirty state only depend
            # on each unique page's *last* access in the run: replay
            # uniques in ascending last-position order.
            uniq, first_in_reversed = np.unique(
                folded[::-1], return_index=True
            )
            order = np.argsort(first_in_reversed)[::-1]
            if nwrites == 0:
                for j in order.tolist():
                    page = int(uniq[j])
                    l1.promote(page)
                    dram.touch(page)
            else:
                _, inverse = np.unique(folded, return_inverse=True)
                wrote = (
                    np.bincount(
                        inverse,
                        weights=writes.astype(np.float64),
                        minlength=len(uniq),
                    )
                    > 0
                )
                for j in order.tolist():
                    page = int(uniq[j])
                    l1.promote(page)
                    if wrote[j]:
                        dram.mark_dirty(page)
                    else:
                        dram.touch(page)
        if self.timeline is not None:
            self._record_timeline(gpu_id, clock, count, vpns, writes)
        data_cycles = self.kernel.local_access_bulk(gpu_id, count, clock)
        node.clock = clock + count * self.overhead + data_cycles
        cursor.advance(count)

    def _record_timeline(
        self,
        gpu_id: int,
        clock: int,
        count: int,
        vpns: np.ndarray,
        writes: np.ndarray,
    ) -> None:
        """Grouped timeline records for one run.

        Access ``i`` lands at ``clock + i*advance``; the times are
        monotone, so intervals form contiguous segments and each
        segment groups its ``(vpn, is_write)`` pairs with one
        ``np.unique`` instead of a dict probe per access.
        """
        timeline = self.timeline
        times = clock + self.advance * np.arange(count, dtype=np.int64)
        intervals = times // timeline.interval_length
        seg_intervals, seg_starts = np.unique(
            intervals, return_index=True
        )
        bounds = seg_starts.tolist() + [count]
        base_vpns = vpns.astype(np.int64, copy=False)
        for k, interval in enumerate(seg_intervals.tolist()):
            start, end = bounds[k], bounds[k + 1]
            # Pack (vpn, is_write) into one key; trace vpns are far
            # below 2**62 so the shift cannot overflow.
            keys = (base_vpns[start:end] << 1) | writes[start:end]
            uniq_keys, key_counts = np.unique(keys, return_counts=True)
            for key, tally in zip(
                uniq_keys.tolist(), key_counts.tolist()
            ):
                timeline.record_bulk(
                    interval, gpu_id, key >> 1, bool(key & 1), tally
                )

"""The trace-driven multi-GPU simulation engine.

Each GPU replays its access stream against its own clock; the engine
always advances the GPU that is furthest behind, which interleaves the
streams the way concurrent execution would.  Per access the engine runs
the staged fault-service pipeline (see ``repro.sim.pipeline``):
translation (L1 TLB -> L2 TLB -> page-table walk), fault buffering,
batched fault service, then a data access charged by where the page
actually lives.  With ``fault_batch_size == 1`` (the default) faults
are serviced inline at the faulting access — the classic simulator,
bit-for-bit.  With a larger batch size the faulting access parks in the
GPU's replayable fault buffer while the stream keeps issuing (the other
warps of a real GPU); a full buffer drains as one batch through the UVM
driver and the parked accesses are then replayed.
"""

from __future__ import annotations

import heapq

from typing import TYPE_CHECKING

from repro.config import SystemConfig
from repro.constants import HOST_NODE, LatencyCategory
from repro.errors import SimulationError
from repro.memsys.address import AddressSpace
from repro.obs.run import RunObservation, observe_enabled
from repro.obs.tracer import ENGINE_TRACK
from repro.policies.base import PlacementPolicy
from repro.sim.fastpath import FastPath, fast_path_enabled
from repro.sim.pipeline import TranslationStage
from repro.sim.result import SimulationResult
from repro.stats.timeline import IntervalTimeline
from repro.uvm.driver import UvmDriver
from repro.uvm.machine import MachineState
from repro.workloads.base import WorkloadTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memsys.page_table import LocalPTE
    from repro.prefetch.tree import TreePrefetcher
    from repro.sim.gpu import GpuNode
    from repro.stats.events import EventLog


class Engine:
    """Runs one workload trace under one placement policy."""

    def __init__(
        self,
        config: SystemConfig,
        trace: WorkloadTrace,
        policy: PlacementPolicy,
        prefetcher: "TreePrefetcher | None" = None,
        timeline: IntervalTimeline | None = None,
        event_log: "EventLog | None" = None,
        observation: RunObservation | None = None,
    ) -> None:
        if trace.num_gpus != config.num_gpus:
            raise SimulationError(
                f"trace built for {trace.num_gpus} GPUs, config has "
                f"{config.num_gpus}"
            )
        self.config = config
        self.trace = trace
        self.policy = policy
        self.prefetcher = prefetcher
        self.timeline = timeline
        self.address_space = AddressSpace(config.page_size)
        footprint = max(
            1,
            -(
                -trace.footprint_pages
                // self.address_space.base_pages_per_page
            ),
        )
        self.machine = MachineState.build(
            config, footprint, initial_scheme=policy.initial_scheme()
        )
        self.machine.event_log = event_log
        # Observability binds before the driver is built so the driver
        # sees the tracer and wraps its entry points.
        self.observation = observation
        if self.observation is None and observe_enabled(config):
            self.observation = RunObservation()
        if self.observation is not None:
            self.observation.bind(self.machine, policy)
        self.driver = UvmDriver(self.machine, policy)
        self.fault_service = self.driver.fault_service
        self.stage = TranslationStage(
            self.machine, trace, self.address_space
        )
        self.costs = self.machine.kernel.costs
        # The vectorized steady-state fast path (repro.sim.fastpath):
        # off under contention="queued", where every access is an
        # order-sensitive reservation against live link/DRAM state.
        self.fastpath: FastPath | None = None
        if fast_path_enabled(config) and not self.machine.kernel.queued:
            self.fastpath = FastPath(self)
        if prefetcher is not None:
            prefetcher.bind(self.driver)

    def run(self) -> SimulationResult:
        """Replay the whole trace; returns the aggregated result."""
        machine = self.machine
        counters = machine.counters
        policy = self.policy
        issue_gap = self.config.issue_gap
        interval = policy.interval_cycles
        next_interval = interval if interval else None
        timeline = self.timeline
        observation = self.observation
        obs_next = (
            observation.sample_interval if observation is not None else None
        )

        gpus = machine.gpus
        stage = self.stage
        cursors = stage.cursors
        service = self.fault_service
        inline = service.inline
        fastpath = self.fastpath
        # Scheduling heap: always advance the GPU that is furthest
        # behind, ties broken by lowest id — (clock, gpu_id) tuples
        # order exactly like the old min()-over-list selection without
        # the O(n) scan and list surgery per access.
        heap = [
            (gpus[g].clock, g)
            for g in range(len(cursors))
            if len(cursors[g])
        ]
        heapq.heapify(heap)

        while heap:
            now, gpu_id = heap[0]
            node = gpus[gpu_id]
            if now != node.clock:
                # Stale entry: a policy interval hook advanced this
                # GPU's clock behind the heap's back (clocks only
                # grow, so the refreshed entry re-sorts correctly).
                heapq.heapreplace(heap, (node.clock, gpu_id))
                continue
            boundary = False
            if next_interval is not None and now >= next_interval:
                boundary = True
                policy.on_interval(now)
                if observation is not None:
                    observation.tracer.instant(
                        "policy_interval", ENGINE_TRACK, now
                    )
                # Realign instead of stepping one interval: a drain
                # that jumped the clock past several boundaries fires
                # the hook once (skipped boundaries coalesce) and the
                # next boundary is the first one after ``now`` — the
                # same catch-up rule the observation sampler uses.
                next_interval = (now // interval + 1) * interval
            if obs_next is not None and now >= obs_next:
                boundary = True
                observation.sample(now)
                obs_next = (
                    now // observation.sample_interval + 1
                ) * observation.sample_interval
            # Steady-state fast round: batch every GPU's verified
            # steady prefix up to the joint horizon.  Skipped on a
            # boundary iteration — the hook may have moved clocks, and
            # the scalar path must replay this access with the
            # pre-hook ``now`` exactly like the classic loop.
            if (
                fastpath is not None
                and not boundary
                and fastpath.round(heap, next_interval, obs_next)
            ):
                continue
            heapq.heappop(heap)
            if fastpath is not None:
                # Scalar accesses (and the boundary hooks above) can
                # fault, fill, migrate, or evict — anything the fast
                # path verified against may change, so flag its cached
                # verifications for revalidation before going scalar.
                fastpath.invalidate(gpu_id)
            base_vpn, vpn, is_write = stage.next_access(gpu_id)
            if timeline is not None:
                timeline.record(now, gpu_id, base_vpn, is_write)
            counters.record_access(is_write)

            cycles, parked = self._service_access(
                gpu_id, node, vpn, is_write, now
            )
            node.clock = now + cycles + issue_gap
            if parked and service.should_drain(gpu_id):
                node.clock += self._drain_faults(gpu_id, node, node.clock)
            if cursors[gpu_id].exhausted:
                # End of stream: nothing left to overlap parked faults
                # with, so flush this GPU's partial batch.
                if not inline and service.pending(gpu_id):
                    node.clock += self._drain_faults(
                        gpu_id, node, node.clock
                    )
            else:
                heapq.heappush(heap, (node.clock, gpu_id))

        return self._build_result()

    def _service_access(
        self,
        gpu_id: int,
        node: "GpuNode",
        vpn: int,
        is_write: bool,
        now: int,
    ) -> tuple[int, bool]:
        """Stages 1-2 of one access; returns ``(cycles, parked)``.

        ``parked`` is True when the access deposited a fault into the
        GPU's buffer and its remainder (TLB fill, protection check,
        data access) is deferred to the post-drain replay.
        """
        outcome = self.stage.lookup(node, vpn, is_write, now)
        cycles = outcome.cycles
        pte = outcome.pte
        if outcome.l2_missed:
            if pte is None:
                serviced = self.fault_service.submit(
                    gpu_id, vpn, is_write, now, page=outcome.page
                )
                if serviced is None:
                    return cycles, True
                cycles += serviced
                pte = node.page_table.lookup(vpn)
                if pte is None:
                    raise SimulationError(
                        f"fault on vpn {vpn} left GPU {gpu_id} unmapped"
                    )
                if self.prefetcher is not None:
                    self.prefetcher.on_install(gpu_id, vpn, now + cycles)
            node.fill_translation(vpn, pte)
        cycles += self._finish_access(
            gpu_id, node, vpn, is_write, pte, now + cycles
        )
        return cycles, False

    def _drain_faults(self, gpu_id: int, node: "GpuNode", now: int) -> int:
        """Stage 3 + replay: drain one GPU's buffer, finish accesses."""
        cycles, records = self.fault_service.drain(gpu_id, now)
        for event in records:
            cycles += self._replay_access(
                gpu_id, node, event.vpn, event.is_write, now + cycles
            )
        return cycles

    def _replay_access(
        self,
        gpu_id: int,
        node: "GpuNode",
        vpn: int,
        is_write: bool,
        now: int,
    ) -> int:
        """Finish one parked access after its batch was serviced."""
        cycles = 0
        pte = node.page_table.lookup(vpn)
        if pte is None:
            # A later fault in the same batch evicted this page while
            # being serviced; re-fault it inline.
            cycles += self.driver.handle_local_fault(
                gpu_id, vpn, is_write, now=now
            )
            pte = node.page_table.lookup(vpn)
            if pte is None:
                raise SimulationError(
                    f"fault on vpn {vpn} left GPU {gpu_id} unmapped"
                )
        if self.prefetcher is not None:
            self.prefetcher.on_install(gpu_id, vpn, now + cycles)
        node.fill_translation(vpn, pte)
        return cycles + self._finish_access(
            gpu_id, node, vpn, is_write, pte, now + cycles
        )

    def _finish_access(
        self,
        gpu_id: int,
        node: "GpuNode",
        vpn: int,
        is_write: bool,
        pte: "LocalPTE",
        now: int,
    ) -> int:
        """Stage 4: protection check plus the data access itself.

        ``now`` is the simulated cycle the access reaches the data
        path; the timing kernel prices the access against the routed
        link and DRAM channel occupancy at that instant (a no-op in
        the default flat mode).
        """
        driver = self.driver
        cycles = 0
        if is_write and not pte.writable:
            cycles += driver.handle_protection_fault(gpu_id, vpn, now=now)
            pte = node.page_table.lookup(vpn)
            if pte is None or not pte.writable:
                raise SimulationError(
                    f"collapse on vpn {vpn} left GPU {gpu_id} unwritable"
                )
            node.fill_translation(vpn, pte)
        # Data access: local DRAM, a peer GPU over NVLink, or host
        # memory over PCIe (counter-tracked pages before migration).
        kernel = self.machine.kernel
        breakdown = self.machine.breakdown
        location = pte.location
        if location == gpu_id:
            cycles += kernel.local_access(gpu_id, now + cycles)
            if is_write:
                node.dram.mark_dirty(vpn)
            else:
                node.dram.touch(vpn)
        elif location == HOST_NODE:
            access, penalty = kernel.host_access(
                gpu_id, is_write, now + cycles
            )
            cycles += access
            breakdown.charge(LatencyCategory.REMOTE_ACCESS, penalty)
            cycles += driver.on_remote_access(
                gpu_id, vpn, now=now + cycles
            )
        else:
            access, penalty = kernel.remote_access(
                gpu_id, location, is_write, now + cycles
            )
            cycles += access
            breakdown.charge(LatencyCategory.REMOTE_ACCESS, penalty)
            if is_write:
                self.machine.gpus[location].dram.mark_dirty(vpn)
            cycles += driver.on_remote_access(
                gpu_id, vpn, now=now + cycles
            )
        if self.policy.gps_semantics and is_write:
            cycles += driver.gps_write(gpu_id, vpn)
        return cycles

    def _build_result(self) -> SimulationResult:
        machine = self.machine
        l1_hits = sum(gpu.tlbs.l1.hits for gpu in machine.gpus)
        l1_misses = sum(gpu.tlbs.l1.misses for gpu in machine.gpus)
        l2_hits = sum(gpu.tlbs.l2.hits for gpu in machine.gpus)
        details: dict[str, object] = {
            "nvlink_bytes": machine.topology.total_nvlink_bytes(),
            "pcie_bytes": machine.topology.total_pcie_bytes(),
            "contention": machine.kernel.mode,
            "topology": machine.topology.spec.describe(),
            "link_wait_cycles": machine.topology.total_wait_cycles(),
            "switch_wait_cycles": machine.topology.switch_wait_cycles(),
            "dram_wait_cycles": machine.kernel.dram_wait_cycles(),
            "policy_description": self.policy.describe(),
            "l1_tlb_hit_rate": (
                l1_hits / (l1_hits + l1_misses) if l1_hits + l1_misses else 0.0
            ),
            "l2_tlb_hit_rate": (
                l2_hits / l1_misses if l1_misses else 0.0
            ),
            "page_walks": sum(gpu.walker.walks for gpu in machine.gpus),
            "walk_cache_hit_rate": self._walk_cache_hit_rate(),
        }
        per_gpu_evictions = [gpu.dram.evictions for gpu in machine.gpus]
        details["per_gpu_evictions"] = per_gpu_evictions
        machine.counters.evictions = sum(per_gpu_evictions)
        details["footprint_pages"] = machine.footprint_pages
        details["fault_imbalance"] = machine.counters.fault_imbalance()
        total_cycles = max(gpu.clock for gpu in machine.gpus)
        if machine.event_log is not None:
            details["dropped_events"] = machine.event_log.dropped
        if self.observation is not None:
            self.observation.finalize(total_cycles)
        return SimulationResult(
            workload=self.trace.name,
            policy=self.policy.name,
            total_cycles=total_cycles,
            per_gpu_cycles=[gpu.clock for gpu in machine.gpus],
            counters=machine.counters,
            breakdown=machine.breakdown,
            num_gpus=self.config.num_gpus,
            page_size=self.config.page_size,
            details=details,
        )

    def _walk_cache_hit_rate(self) -> float:
        hits = sum(gpu.walker.walk_cache.hits for gpu in self.machine.gpus)
        misses = sum(
            gpu.walker.walk_cache.misses for gpu in self.machine.gpus
        )
        return hits / (hits + misses) if hits + misses else 0.0


def simulate(
    config: SystemConfig,
    trace: WorkloadTrace,
    policy: PlacementPolicy,
    prefetcher: "TreePrefetcher | None" = None,
    timeline: IntervalTimeline | None = None,
    event_log: "EventLog | None" = None,
    observation: RunObservation | None = None,
) -> SimulationResult:
    """Convenience wrapper: build an :class:`Engine` and run it."""
    engine = Engine(
        config,
        trace,
        policy,
        prefetcher=prefetcher,
        timeline=timeline,
        event_log=event_log,
        observation=observation,
    )
    return engine.run()

"""The trace-driven multi-GPU simulation engine.

Each GPU replays its access stream against its own clock; the engine
always advances the GPU that is furthest behind, which interleaves the
streams the way concurrent execution would.  Per access the engine walks
the translation path (L1 TLB -> L2 TLB -> page-table walk -> fault) and
charges data-access latency by where the page actually lives; the UVM
driver handles every fault according to the active placement policy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import SystemConfig
from repro.constants import HOST_NODE, LatencyCategory
from repro.errors import SimulationError
from repro.memsys.address import AddressSpace
from repro.obs.run import RunObservation, observe_enabled
from repro.obs.tracer import ENGINE_TRACK
from repro.policies.base import PlacementPolicy
from repro.sim.result import SimulationResult
from repro.stats.timeline import IntervalTimeline
from repro.uvm.driver import UvmDriver
from repro.uvm.machine import MachineState
from repro.workloads.base import WorkloadTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.prefetch.tree import TreePrefetcher
    from repro.stats.events import EventLog


class Engine:
    """Runs one workload trace under one placement policy."""

    def __init__(
        self,
        config: SystemConfig,
        trace: WorkloadTrace,
        policy: PlacementPolicy,
        prefetcher: "TreePrefetcher | None" = None,
        timeline: IntervalTimeline | None = None,
        event_log: "EventLog | None" = None,
        observation: RunObservation | None = None,
    ) -> None:
        if trace.num_gpus != config.num_gpus:
            raise SimulationError(
                f"trace built for {trace.num_gpus} GPUs, config has "
                f"{config.num_gpus}"
            )
        self.config = config
        self.trace = trace
        self.policy = policy
        self.prefetcher = prefetcher
        self.timeline = timeline
        self.address_space = AddressSpace(config.page_size)
        footprint = max(
            1,
            -(
                -trace.footprint_pages
                // self.address_space.base_pages_per_page
            ),
        )
        self.machine = MachineState.build(
            config, footprint, initial_scheme=policy.initial_scheme()
        )
        self.machine.event_log = event_log
        # Observability binds before the driver is built so the driver
        # sees the tracer and wraps its entry points.
        self.observation = observation
        if self.observation is None and observe_enabled(config):
            self.observation = RunObservation()
        if self.observation is not None:
            self.observation.bind(self.machine, policy)
        self.driver = UvmDriver(self.machine, policy)
        if prefetcher is not None:
            prefetcher.bind(self.driver)

    def run(self) -> SimulationResult:
        """Replay the whole trace; returns the aggregated result."""
        machine = self.machine
        config = self.config
        latency = config.latency
        counters = machine.counters
        breakdown = machine.breakdown
        central_pt = machine.central_pt
        driver = self.driver
        policy = self.policy
        gps_writes = policy.gps_semantics
        issue_gap = config.issue_gap
        fold_shift = self.address_space.base_pages_per_page.bit_length() - 1
        local_access = latency.scaled_data_access(latency.local_dram_access)
        # Far *writes* are posted (fire-and-forget stores), so they stall
        # the pipeline for roughly half of a far read's round trip.
        remote_access = (
            latency.scaled_remote_access(),
            max(1, latency.scaled_remote_access() // 2),
        )
        host_access = (
            latency.scaled_host_remote_access(),
            max(1, latency.scaled_host_remote_access() // 2),
        )
        remote_penalty = tuple(
            max(0, cost - local_access) for cost in remote_access
        )
        host_penalty = tuple(
            max(0, cost - local_access) for cost in host_access
        )
        interval = policy.interval_cycles
        next_interval = interval if interval else None
        timeline = self.timeline
        observation = self.observation
        obs_next = (
            observation.sample_interval if observation is not None else None
        )

        gpus = machine.gpus
        streams = [
            (vpns.tolist(), writes.tolist())
            for vpns, writes in self.trace.streams
        ]
        heads = [0] * len(streams)
        lengths = [len(vpns) for vpns, _ in streams]
        active = [g for g in range(len(streams)) if lengths[g] > 0]

        while active:
            # Advance the GPU that is furthest behind.
            gpu_id = min(active, key=lambda g: gpus[g].clock)
            node = gpus[gpu_id]
            now = node.clock
            if next_interval is not None and now >= next_interval:
                policy.on_interval(now)
                if observation is not None:
                    observation.tracer.instant(
                        "policy_interval", ENGINE_TRACK, now
                    )
                next_interval += interval
            if obs_next is not None and now >= obs_next:
                observation.sample(now)
                obs_next = (
                    now // observation.sample_interval + 1
                ) * observation.sample_interval
            index = heads[gpu_id]
            base_vpn = streams[gpu_id][0][index]
            is_write = streams[gpu_id][1][index]
            vpn = base_vpn >> fold_shift
            if timeline is not None:
                timeline.record(now, gpu_id, base_vpn, is_write)
            counters.record_access(is_write)

            cycles = self._translate_and_access(
                gpu_id,
                node,
                vpn,
                is_write,
                now,
                local_access,
                remote_access,
                remote_penalty,
                host_access,
                host_penalty,
                central_pt,
                counters,
                breakdown,
                driver,
                gps_writes,
            )
            node.clock = now + cycles + issue_gap

            heads[gpu_id] = index + 1
            if heads[gpu_id] >= lengths[gpu_id]:
                active.remove(gpu_id)

        return self._build_result()

    def _translate_and_access(
        self,
        gpu_id: int,
        node,
        vpn: int,
        is_write: bool,
        now: int,
        local_access: int,
        remote_access: tuple[int, int],
        remote_penalty: tuple[int, int],
        host_access: tuple[int, int],
        host_penalty: tuple[int, int],
        central_pt,
        counters,
        breakdown,
        driver,
        gps_writes: bool,
    ) -> int:
        """One access: translation, faults, data; returns stall cycles.

        The far-access cost pairs are ``(read, write)`` — indexed by the
        access's ``is_write`` flag — because far writes are posted.
        """
        pte, cycles, l2_missed = node.tlbs.lookup(vpn)
        if l2_missed:
            walk = node.walker.walk(vpn, now)
            cycles += walk
            breakdown.charge(LatencyCategory.LOCAL, walk)
            counters.record_scheme_usage(central_pt.get(vpn).scheme)
            pte = node.page_table.lookup(vpn)
            if pte is None:
                cycles += driver.handle_local_fault(gpu_id, vpn, is_write)
                pte = node.page_table.lookup(vpn)
                if pte is None:
                    raise SimulationError(
                        f"fault on vpn {vpn} left GPU {gpu_id} unmapped"
                    )
                if self.prefetcher is not None:
                    self.prefetcher.on_install(gpu_id, vpn)
            node.tlbs.fill(vpn, pte)
        if is_write and not pte.writable:
            cycles += driver.handle_protection_fault(gpu_id, vpn)
            pte = node.page_table.lookup(vpn)
            if pte is None or not pte.writable:
                raise SimulationError(
                    f"collapse on vpn {vpn} left GPU {gpu_id} unwritable"
                )
            node.tlbs.fill(vpn, pte)
        # Data access: local DRAM, a peer GPU over NVLink, or host
        # memory over PCIe (counter-tracked pages before migration).
        location = pte.location
        if location == gpu_id:
            cycles += local_access
            if is_write:
                node.dram.mark_dirty(vpn)
            else:
                node.dram.touch(vpn)
        elif location == HOST_NODE:
            cycles += host_access[is_write]
            breakdown.charge(
                LatencyCategory.REMOTE_ACCESS, host_penalty[is_write]
            )
            cycles += driver.on_remote_access(gpu_id, vpn)
        else:
            cycles += remote_access[is_write]
            breakdown.charge(
                LatencyCategory.REMOTE_ACCESS, remote_penalty[is_write]
            )
            if is_write:
                self.machine.gpus[location].dram.mark_dirty(vpn)
            cycles += driver.on_remote_access(gpu_id, vpn)
        if gps_writes and is_write:
            cycles += driver.gps_write(gpu_id, vpn)
        return cycles

    def _build_result(self) -> SimulationResult:
        machine = self.machine
        l1_hits = sum(gpu.tlbs.l1.hits for gpu in machine.gpus)
        l1_misses = sum(gpu.tlbs.l1.misses for gpu in machine.gpus)
        l2_hits = sum(gpu.tlbs.l2.hits for gpu in machine.gpus)
        details: dict[str, object] = {
            "nvlink_bytes": machine.topology.total_nvlink_bytes(),
            "pcie_bytes": machine.topology.total_pcie_bytes(),
            "policy_description": self.policy.describe(),
            "l1_tlb_hit_rate": (
                l1_hits / (l1_hits + l1_misses) if l1_hits + l1_misses else 0.0
            ),
            "l2_tlb_hit_rate": (
                l2_hits / l1_misses if l1_misses else 0.0
            ),
            "page_walks": sum(gpu.walker.walks for gpu in machine.gpus),
            "walk_cache_hit_rate": self._walk_cache_hit_rate(),
        }
        per_gpu_evictions = [gpu.dram.evictions for gpu in machine.gpus]
        details["per_gpu_evictions"] = per_gpu_evictions
        machine.counters.evictions = sum(per_gpu_evictions)
        details["footprint_pages"] = machine.footprint_pages
        details["fault_imbalance"] = machine.counters.fault_imbalance()
        total_cycles = max(gpu.clock for gpu in machine.gpus)
        if machine.event_log is not None:
            details["dropped_events"] = machine.event_log.dropped
        if self.observation is not None:
            self.observation.finalize(total_cycles)
        return SimulationResult(
            workload=self.trace.name,
            policy=self.policy.name,
            total_cycles=total_cycles,
            per_gpu_cycles=[gpu.clock for gpu in machine.gpus],
            counters=machine.counters,
            breakdown=machine.breakdown,
            num_gpus=self.config.num_gpus,
            page_size=self.config.page_size,
            details=details,
        )

    def _walk_cache_hit_rate(self) -> float:
        hits = sum(gpu.walker.walk_cache.hits for gpu in self.machine.gpus)
        misses = sum(
            gpu.walker.walk_cache.misses for gpu in self.machine.gpus
        )
        return hits / (hits + misses) if hits + misses else 0.0


def simulate(
    config: SystemConfig,
    trace: WorkloadTrace,
    policy: PlacementPolicy,
    prefetcher: "TreePrefetcher | None" = None,
    timeline: IntervalTimeline | None = None,
) -> SimulationResult:
    """Convenience wrapper: build an :class:`Engine` and run it."""
    engine = Engine(
        config, trace, policy, prefetcher=prefetcher, timeline=timeline
    )
    return engine.run()

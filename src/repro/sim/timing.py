"""The contended-resource timing kernel.

Every cycle the simulator charges for data movement — page transfers,
control messages, far data accesses, fault service, flushes, and
invalidations — routes through this module.  The kernel owns the
routed :class:`~repro.interconnect.link.Link` resources (via the
topology) plus one :class:`~repro.memsys.dram.DramChannel` per node,
and prices each charge in one of two modes:

``"none"`` (the default)
    Flat latency-model costs, bit-for-bit identical to the classic
    simulator: a transfer costs fixed latency + serialization, a far
    access costs the MLP-scaled constant, and resources never queue.

``"queued"``
    Links and DRAM channels are stateful resources with a
    ``busy_until`` occupancy horizon.  Every ``topology.transfer`` is
    a timestamped reservation: it waits behind earlier occupants of
    the routed link, then holds the wire for its serialization time.
    Far data accesses additionally queue on the target node's DRAM
    channel, so concurrent migrations, duplications, and remote
    access streams contend the way Section VI-C2's bandwidth
    pressure demands (and the way the UVM studies GPUVM and the SVM
    design-implications paper measure on real hardware).

The simlint rule GRIT-C007 keeps the kernel honest: outside this
module (and the resource models it drives) no simulation code may
read a raw charging constant off the :class:`~repro.config.
LatencyModel` — a new cost either goes through the kernel or fails
the lint build.

Select the mode with ``SystemConfig(contention=...)``, the
``--contention`` CLI flag, or the ``GRIT_CONTENTION`` environment
variable (the same global-override pattern as ``GRIT_SANITIZE`` and
``GRIT_TRACE``).
"""

from __future__ import annotations

import dataclasses
import os
from typing import TYPE_CHECKING, List, Sequence, Tuple

from repro.constants import HOST_NODE
from repro.errors import ConfigError
from repro.memsys.dram import DramChannel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config import LatencyModel, SystemConfig
    from repro.interconnect.topology import Topology

#: Contention modes accepted by ``SystemConfig.contention``.
CONTENTION_MODES = ("none", "queued")

#: Environment variable globally overriding the configured mode
#: (``queued`` or the shorthand ``1`` enable contention; ``none``
#: forces it off).
CONTENTION_ENV_VAR = "GRIT_CONTENTION"

#: Cache-line payload a far data access occupies its link with in
#: queued mode (typical GPU memory transaction granularity).
CACHE_LINE_BYTES = 128


def contention_mode(config: "SystemConfig") -> str:
    """Resolve the effective contention mode for one run.

    The environment variable wins over the config field so a whole
    sweep can be flipped without touching call sites, mirroring
    ``GRIT_SANITIZE``/``GRIT_TRACE``.
    """
    raw = os.environ.get(CONTENTION_ENV_VAR, "")
    if raw:
        if raw == "1":
            return "queued"
        if raw in CONTENTION_MODES:
            return raw
        raise ConfigError(
            f"{CONTENTION_ENV_VAR}={raw!r} is not one of "
            f"{'/'.join(CONTENTION_MODES)}"
        )
    return config.contention


@dataclasses.dataclass(frozen=True)
class AccessCosts:
    """Precomputed per-access latency charges (one per simulation).

    Far-access cost pairs are ``(read, write)`` — indexed by the
    access's ``is_write`` flag — because far writes are posted
    (fire-and-forget stores) and stall for roughly half a read's
    round trip.
    """

    local_access: int
    remote_access: Tuple[int, int]
    remote_penalty: Tuple[int, int]
    host_access: Tuple[int, int]
    host_penalty: Tuple[int, int]

    @classmethod
    def from_latency(cls, latency: "LatencyModel") -> "AccessCosts":
        """Derive the charge table from a config's latency model."""
        local = latency.scaled_data_access(latency.local_dram_access)
        remote = (
            latency.scaled_remote_access(),
            max(1, latency.scaled_remote_access() // 2),
        )
        host = (
            latency.scaled_host_remote_access(),
            max(1, latency.scaled_host_remote_access() // 2),
        )
        return cls(
            local_access=local,
            remote_access=remote,
            remote_penalty=tuple(
                max(0, cost - local) for cost in remote
            ),
            host_access=host,
            host_penalty=tuple(
                max(0, cost - local) for cost in host
            ),
        )


class TimingKernel:
    """Prices every cycle charge against the machine's shared resources.

    All timestamped methods take ``now`` — the charging GPU's current
    simulated cycle — and return stall cycles.  In flat mode ``now``
    is ignored and the returned costs are exactly the classic
    formulas; in queued mode the cost additionally includes the
    queueing delay of the routed link and/or DRAM channel, and the
    reservation advances that resource's ``busy_until`` horizon.
    """

    def __init__(
        self, config: "SystemConfig", topology: "Topology"
    ) -> None:
        self.latency = config.latency
        self.topology = topology
        self.mode = contention_mode(config)
        #: True in ``"queued"`` mode (cached flag for the hot path).
        self.queued = self.mode == "queued"
        self.costs = AccessCosts.from_latency(config.latency)
        service = self.costs.local_access
        #: One DRAM channel per GPU plus one for host memory.
        self.channels: List[DramChannel] = [
            DramChannel(f"dram-gpu{g}", service)
            for g in range(config.num_gpus)
        ]
        self.host_channel = DramChannel("dram-host", service)
        # Per-route flat-mode surcharges, precomputed once: a route's
        # first hop is already priced into the classic constants
        # (remote_dram_access includes the NVLink handshake), so only
        # hops *beyond* the first add cost.  Single-hop fabrics — the
        # 4-GPU all-to-all default — therefore charge exactly the
        # classic formulas, bit for bit.
        far_mlp = self.latency.far_access_mlp
        self._route_hops: dict = {}
        self._far_access_extra: dict = {}
        self._message_extra: dict = {}
        for key, route in topology.route_items():
            extra_hops = route.hops[1:]
            self._route_hops[key] = route.hop_count
            self._far_access_extra[key] = sum(
                max(1, hop.latency // far_mlp) for hop in extra_hops
            )
            self._message_extra[key] = sum(
                hop.latency for hop in extra_hops
            )

    # -- payload movement ----------------------------------------------

    def transfer(self, src: int, dst: int, size_bytes: int, now: int) -> int:
        """Move a payload between two nodes at cycle ``now``."""
        route = self.topology.route(src, dst)
        if self.queued:
            # Shared root-port-style resources first (the payload
            # crosses them without paying latency twice), then each
            # wire hop in order, store-and-forward.
            wait = 0
            for shared in route.shared:
                wait += shared.reserve_access(now + wait, size_bytes)
            total = wait
            arrive = now + wait
            for hop in route.hops:
                cycles = hop.reserve_transfer(arrive, size_bytes)
                total += cycles
                arrive += cycles
            return total
        total = 0
        for hop in route.hops:
            hop.record_transfer(size_bytes)
            total += hop.transfer_cost(size_bytes)
        return total

    def transfer_cost(self, src: int, dst: int, size_bytes: int) -> int:
        """Pure what-if transfer cost: no accounting, no reservation."""
        return sum(
            hop.transfer_cost(size_bytes)
            for hop in self.topology.route(src, dst).hops
        )

    def control_message(self, src: int, dst: int, now: int) -> int:
        """Deliver a payload-free message (fault, invalidation, ack)."""
        route = self.topology.route(src, dst)
        if self.queued:
            total = 0
            arrive = now
            for hop in route.hops:
                cycles = hop.reserve_message(arrive)
                total += cycles
                arrive += cycles
            return total
        total = 0
        for hop in route.hops:
            hop.record_message()
            total += hop.message_cost()
        return total

    # -- data accesses -------------------------------------------------

    def local_access(self, gpu: int, now: int) -> int:
        """One data access to the GPU's own DRAM."""
        cycles = self.costs.local_access
        if self.queued:
            cycles += self.channels[gpu].reserve(now)
        return cycles

    def local_access_bulk(self, gpu: int, count: int, now: int) -> int:
        """Price ``count`` back-to-back local data accesses at once.

        Flat-mode only: local accesses carry no cross-access state
        there, so the bulk charge is exactly ``count`` scalar charges.
        In queued mode each access is a timestamped DRAM-channel
        reservation whose cost depends on its own arrival time, so
        bulk pricing would reorder the queue — the steady-state fast
        path is disabled under ``contention="queued"`` and this method
        refuses to guess.
        """
        if self.queued:
            raise ConfigError(
                "local_access_bulk is flat-mode only; queued-mode "
                "accesses must reserve their DRAM channel one at a time"
            )
        return count * self.costs.local_access

    def remote_access(
        self, gpu: int, owner: int, is_write: bool, now: int
    ) -> Tuple[int, int]:
        """One data access to a peer GPU's DRAM over NVLink.

        Returns ``(cycles, penalty)`` — the total stall and the
        remote-access share of it (what the Figure 19 breakdown
        attributes to remoteness).
        """
        extra = self._far_access_extra[(gpu, owner)]
        cycles = self.costs.remote_access[is_write] + extra
        penalty = self.costs.remote_penalty[is_write] + extra
        if self.queued:
            wait = self._reserve_route_access(gpu, owner, now)
            wait += self.channels[owner].reserve(now + wait)
            cycles += wait
            penalty += wait
        return cycles, penalty

    def host_access(
        self, gpu: int, is_write: bool, now: int
    ) -> Tuple[int, int]:
        """One data access to host memory over PCIe.

        Returns ``(cycles, penalty)`` like :meth:`remote_access`.
        """
        cycles = self.costs.host_access[is_write]
        penalty = self.costs.host_penalty[is_write]
        if self.queued:
            wait = self._reserve_route_access(gpu, HOST_NODE, now)
            wait += self.host_channel.reserve(now + wait)
            cycles += wait
            penalty += wait
        return cycles, penalty

    def _reserve_route_access(self, src: int, dst: int, now: int) -> int:
        """Reserve one cache-line access along a route (queued mode).

        Accesses ascend toward their target, so wire hops reserve
        first and shared root-port resources after — the order the
        classic host-access path used (per-GPU PCIe link, then the
        shared uplink).
        """
        route = self.topology.route(src, dst)
        wait = 0
        for hop in route.hops:
            wait += hop.reserve_access(now + wait, CACHE_LINE_BYTES)
        for shared in route.shared:
            wait += shared.reserve_access(now + wait, CACHE_LINE_BYTES)
        return wait

    # -- driver-side fixed charges -------------------------------------

    def host_service(self, gpu: int, now: int, scale: float = 1.0) -> int:
        """PCIe control hop plus UVM software fault-service time."""
        cycles = self.control_message(gpu, HOST_NODE, now)
        cycles += int(self.latency.host_fault_service * scale)
        return cycles

    def pipeline_flush(self, scale: float = 1.0) -> int:
        """Drain one GPU's pipeline and flush its caches/TLBs."""
        return int(self.latency.pipeline_flush * scale)

    def invalidation(self, count: int, scale: float = 1.0) -> int:
        """Shoot down ``count`` GPUs' PTE/TLB entries (+acks)."""
        return int(count * self.latency.invalidation_per_gpu * scale)

    def collapse_invalidation(
        self, writer: int, holder: int, scale: float = 1.0
    ) -> int:
        """Shoot down one replica ``holder`` during a write collapse.

        The classic per-GPU invalidation charge, plus the control
        latency of any route hops beyond the first between the writer
        and the holder — zero on single-hop fabrics, so the all-to-all
        collapse cost is unchanged.
        """
        return (
            self.invalidation(1, scale)
            + self._message_extra[(writer, holder)]
        )

    def gps_broadcast(self, writer: int, subscribers: Sequence[int]) -> int:
        """GPS fine-grained store broadcast from ``writer``.

        Each subscriber costs the per-store broadcast constant scaled
        by its route's hop count — one hop (the classic all-to-all
        charge) stays bit-for-bit, while switched/ring/cross-node
        subscribers pay proportionally for the longer path.
        """
        per_hop = self.latency.gps_store_broadcast
        return sum(
            per_hop * self._route_hops[(writer, sub)]
            for sub in subscribers
        )

    # -- contention statistics -----------------------------------------

    def dram_channels(self) -> List[DramChannel]:
        """Every DRAM channel (GPUs in id order, then the host)."""
        return [*self.channels, self.host_channel]

    def dram_wait_cycles(self) -> int:
        """Cumulative DRAM queueing delay across all channels."""
        return sum(c.wait_cycles for c in self.dram_channels())

    def dram_accesses(self) -> int:
        """Accesses that reserved any DRAM channel (queued mode)."""
        return sum(c.accesses for c in self.dram_channels())

    def dram_peak_occupancy(self) -> int:
        """Largest backlog any DRAM access observed on arrival."""
        return max(
            (c.peak_occupancy for c in self.dram_channels()), default=0
        )

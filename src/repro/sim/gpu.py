"""Per-GPU architectural state: clock, TLBs, walker, DRAM, page table."""

from __future__ import annotations

from repro.config import SystemConfig
from repro.memsys.dram import DramDirectory
from repro.memsys.page_table import LocalPageTable, LocalPTE
from repro.memsys.tlb import TLBHierarchy
from repro.memsys.walker import PageTableWalker


class GpuNode:
    """One GPU of the multi-GPU system."""

    def __init__(
        self, gpu_id: int, config: SystemConfig, dram_frames: int
    ) -> None:
        self.gpu_id = gpu_id
        self.clock = 0
        self.tlbs = TLBHierarchy(config.l1_tlb, config.l2_tlb)
        self.walker = PageTableWalker(config.walker)
        self.page_table = LocalPageTable(gpu_id)
        self.dram = DramDirectory(
            gpu_id, dram_frames, policy=config.eviction_policy
        )

    def invalidate_translation(self, vpn: int) -> bool:
        """Drop PTE + TLB entries for ``vpn``; True if the PTE existed."""
        had_pte = self.page_table.invalidate(vpn)
        self.tlbs.invalidate(vpn)
        return had_pte

    def fill_translation(self, vpn: int, pte: LocalPTE) -> None:
        """Install a translation into the TLB hierarchy.

        Called at the pipeline's stage boundaries: after a page-table
        walk, after a fault resolution (inline or batch replay), and
        after a protection-fault collapse rewrites the PTE.
        """
        self.tlbs.fill(vpn, pte)

    def flush_pipeline_and_tlbs(self) -> None:
        """Drain in-flight work and flush TLBs (migration/collapse)."""
        self.tlbs.flush()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GpuNode(id={self.gpu_id}, clock={self.clock})"

"""UVM driver substrate: fault handling and page-movement mechanics."""

from repro.uvm.driver import UvmDriver
from repro.uvm.faults import FaultEvent
from repro.uvm.machine import MachineState

__all__ = ["UvmDriver", "FaultEvent", "MachineState"]

"""Shared machine state bundle.

The UVM driver, its mechanics engines, the placement policy, and the
simulation engine all operate on the same collection of architectural
structures; :class:`MachineState` is that collection.  It is built once
per simulation from a :class:`~repro.config.SystemConfig` and the
workload's footprint.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, List

from repro.config import SystemConfig
from repro.constants import Scheme
from repro.interconnect.topology import Topology
from repro.memsys.access_counter import AccessCounterFile
from repro.memsys.page_table import CentralPageTable
from repro.stats.counters import EventCounters
from repro.stats.latency import LatencyBreakdown

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.tracer import SpanTracer
    from repro.sim.gpu import GpuNode
    from repro.sim.timing import TimingKernel
    from repro.stats.events import EventLog


@dataclasses.dataclass
class MachineState:
    """All mutable architectural state for one simulation."""

    config: SystemConfig
    gpus: List["GpuNode"]
    central_pt: CentralPageTable
    topology: Topology
    #: The contended-resource timing kernel every cycle charge routes
    #: through (see repro.sim.timing).
    kernel: "TimingKernel"
    access_counters: AccessCounterFile
    counters: EventCounters
    breakdown: LatencyBreakdown
    #: Application footprint in *configured* pages (bounds prefetching).
    footprint_pages: int = 0
    #: Optional structured event log (attach before simulating).
    event_log: "EventLog | None" = None
    #: Optional span tracer (observability attaches it before the UVM
    #: driver is built; the driver then wraps its entry points).
    tracer: "SpanTracer | None" = None

    @classmethod
    def build(
        cls,
        config: SystemConfig,
        footprint_pages: int,
        initial_scheme: Scheme = Scheme.ON_TOUCH,
    ) -> "MachineState":
        """Construct the full machine for a workload footprint."""
        from repro.interconnect.routing import topology_spec
        from repro.sim.gpu import GpuNode
        from repro.sim.timing import TimingKernel

        frames = config.dram_frames_per_gpu(footprint_pages)
        gpus = [
            GpuNode(gpu_id=g, config=config, dram_frames=frames)
            for g in range(config.num_gpus)
        ]
        topology = Topology(
            config.num_gpus, config.latency, spec=topology_spec(config)
        )
        return cls(
            config=config,
            gpus=gpus,
            central_pt=CentralPageTable(default_scheme=initial_scheme),
            topology=topology,
            kernel=TimingKernel(config, topology),
            access_counters=AccessCounterFile(
                threshold=config.access_counter_threshold,
                pages_per_group=config.pages_per_counter_group,
            ),
            counters=EventCounters(),
            breakdown=LatencyBreakdown(),
            footprint_pages=footprint_pages,
        )

    def check_invariants(
        self, allow_writable_replicas: bool = False
    ) -> List[str]:
        """Sweep the UVM machine-state invariants; returns violations.

        Convenience wrapper over
        :class:`repro.uvm.sanitizer.MachineSanitizer` for tests and
        ad-hoc debugging; the UVM driver runs the same sweep after
        every operation when ``config.sanitize`` / ``GRIT_SANITIZE=1``
        is set.
        """
        from repro.uvm.sanitizer import MachineSanitizer

        sanitizer = MachineSanitizer(
            self, allow_writable_replicas=allow_writable_replicas
        )
        return sanitizer.violations()

    def invalidate_everywhere(self, vpn: int) -> int:
        """Invalidate every GPU's translation for ``vpn``.

        Returns the number of GPUs that actually held a translation,
        which is what invalidation latency scales with.
        """
        invalidated = 0
        for gpu in self.gpus:
            if gpu.invalidate_translation(vpn):
                invalidated += 1
        return invalidated

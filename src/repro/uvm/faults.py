"""Fault records and the per-GPU replayable fault buffer.

Real GPUs do not deliver faults to the host one at a time: the GMMU
deposits every unserviced fault into a *replayable fault buffer* and
the UVM driver drains the buffer in batches, coalescing duplicate
entries before resolving them.  :class:`FaultEvent` is one deposited
fault; :class:`FaultBuffer` is the bounded per-GPU buffer the staged
fault-service pipeline drains (see ``repro.uvm.fault_service``).
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.constants import FaultKind
from repro.errors import SimulationError


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One UVM fault, as delivered to the host driver."""

    kind: FaultKind
    gpu: int
    vpn: int
    is_write: bool
    cycle: int

    def merged_with(self, other: "FaultEvent") -> "FaultEvent":
        """Coalesce a duplicate fault on the same (gpu, vpn).

        The serviced fault is a write if *any* deposit was a write, so
        one resolution installs a mapping every replayed access can
        use; the earliest deposit's cycle is kept.
        """
        if (other.gpu, other.vpn) != (self.gpu, self.vpn):
            raise SimulationError(
                f"cannot coalesce fault on (gpu {other.gpu}, vpn "
                f"{other.vpn}) into (gpu {self.gpu}, vpn {self.vpn})"
            )
        if other.is_write and not self.is_write:
            return dataclasses.replace(self, is_write=True)
        return self


class FaultBuffer:
    """Bounded replayable-fault-buffer model for one GPU.

    Deposits accumulate in arrival order; the driver's fault service
    drains the whole buffer at once.  The bound models the hardware
    buffer's finite size — the engine must drain before depositing
    past capacity, exactly like the real GMMU back-pressures the SMs.
    """

    __slots__ = ("capacity", "_pending")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError("fault buffer needs capacity >= 1")
        self.capacity = capacity
        self._pending: List[FaultEvent] = []

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def full(self) -> bool:
        """True when the next deposit would overflow the buffer."""
        return len(self._pending) >= self.capacity

    def deposit(self, event: FaultEvent) -> None:
        """Append one fault; raises if the buffer is already full."""
        if self.full:
            raise SimulationError(
                f"fault buffer overflow on GPU {event.gpu}: "
                f"{self.capacity} faults already pending"
            )
        self._pending.append(event)

    def drain(self) -> List[FaultEvent]:
        """Remove and return every pending fault, in arrival order."""
        drained = self._pending
        self._pending = []
        return drained

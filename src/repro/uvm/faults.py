"""Fault event record used for logging/inspection hooks."""

from __future__ import annotations

import dataclasses

from repro.constants import FaultKind


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One UVM fault, as delivered to the host driver."""

    kind: FaultKind
    gpu: int
    vpn: int
    is_write: bool
    cycle: int

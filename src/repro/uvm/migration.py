"""Page placement / migration / eviction mechanics (Section II-B1).

Migration follows the paper's sequence: flush the owning GPU's pipeline,
caches, and TLBs; broadcast translation invalidations; move the page;
re-map at the destination.  Placement (first touch from the host) is the
PCIe variant of the same flow without a GPU-side flush.  Evictions model
oversubscription: installing into a full DRAM pops the LRU frame, which
may demote a page back to the host (with a dirty write-back) or drop a
replica.
"""

from __future__ import annotations

from repro.constants import HOST_NODE, LatencyCategory
from repro.stats.events import EventKind
from repro.memsys.dram import EvictionResult
from repro.memsys.page import PageInfo
from repro.uvm.machine import MachineState


class MigrationEngine:
    """Moves authoritative page copies between nodes."""

    def __init__(self, machine: MachineState) -> None:
        self.machine = machine

    def place_from_host(
        self,
        page: PageInfo,
        dest: int,
        category: LatencyCategory,
        flush_scale: float = 1.0,
        writable: bool = True,
        now: int = 0,
    ) -> int:
        """First touch: move the page from host memory to ``dest``.

        ``writable=False`` is duplication's copy-on-write placement: a
        read fault maps the page read-only so the first write raises a
        protection fault and upgrades through the UVM driver.
        """
        m = self.machine
        cycles = m.kernel.transfer(
            HOST_NODE, dest, m.config.page_size, now
        )
        cycles += self.install_frame(
            dest, page.vpn, False, category, flush_scale,
            now=now + cycles,
        )
        page.owner = dest
        page.dirty = False
        m.gpus[dest].page_table.map(page.vpn, dest, writable=writable)
        m.breakdown.charge(category, cycles)
        return cycles

    def migrate(
        self,
        page: PageInfo,
        dest: int,
        category: LatencyCategory = LatencyCategory.PAGE_MIGRATION,
        flush_scale: float = 1.0,
        now: int = 0,
    ) -> int:
        """Move the authoritative copy of ``page`` to GPU ``dest``."""
        m = self.machine
        if page.owner == HOST_NODE:
            m.counters.migrations += 1
            cycles = self.place_from_host(
                page, dest, category, flush_scale, now=now
            )
            if m.event_log is not None:
                m.event_log.emit(
                    EventKind.MIGRATION,
                    page.vpn,
                    HOST_NODE,
                    detail=dest,
                    cycles=cycles,
                )
            return cycles
        if page.owner == dest:
            # Already local; just (re-)establish the mapping.
            m.gpus[dest].page_table.map(
                page.vpn, dest, writable=not page.replicas
            )
            return 0
        kernel = m.kernel
        old_owner = page.owner
        cycles = 0
        # 1. Drain the owning GPU's pipeline and flush caches/TLBs.  The
        # requester waits for it and the owner loses the time too.
        flush = kernel.pipeline_flush(flush_scale)
        m.gpus[old_owner].flush_pipeline_and_tlbs()
        m.gpus[old_owner].clock += flush
        cycles += flush
        # 2. Invalidate every stale translation (remote mappings point at
        # the old owner; replicas are dropped as part of the move).
        for replica in sorted(page.replicas):
            m.gpus[replica].dram.release(page.vpn)
        page.replicas.clear()
        invalidated = m.invalidate_everywhere(page.vpn)
        cycles += kernel.invalidation(invalidated, flush_scale)
        # 3. Transfer the page and install it at the destination.
        m.gpus[old_owner].dram.release(page.vpn)
        cycles += kernel.transfer(
            old_owner, dest, m.config.page_size, now + cycles
        )
        cycles += self.install_frame(
            dest, page.vpn, page.dirty, category, flush_scale,
            now=now + cycles,
        )
        page.owner = dest
        m.gpus[dest].page_table.map(page.vpn, dest, writable=True)
        m.counters.migrations += 1
        m.access_counters.reset_group(page.vpn)
        m.breakdown.charge(category, cycles)
        if m.event_log is not None:
            m.event_log.emit(
                EventKind.MIGRATION,
                page.vpn,
                old_owner,
                detail=dest,
                cycles=cycles,
            )
        return cycles

    def install_frame(
        self,
        gpu: int,
        vpn: int,
        dirty: bool,
        category: LatencyCategory,
        flush_scale: float = 1.0,
        now: int = 0,
    ) -> int:
        """Claim a DRAM frame on ``gpu``, evicting the LRU page if full.

        Returned cycles are *not* charged to the breakdown here; the
        calling mechanic charges its full cost once under ``category``.
        """
        eviction = self.machine.gpus[gpu].dram.install(vpn, dirty)
        if eviction is None:
            return 0
        return self._handle_eviction(gpu, eviction, flush_scale, now)

    def _handle_eviction(
        self,
        gpu: int,
        eviction: EvictionResult,
        flush_scale: float,
        now: int,
    ) -> int:
        """Demote the evicted page and fix up mappings and ownership."""
        m = self.machine
        victim = m.central_pt.peek(eviction.evicted_vpn)
        m.counters.evictions += 1
        if m.event_log is not None:
            m.event_log.emit(
                EventKind.EVICTION, eviction.evicted_vpn, gpu
            )
        cycles = 0
        if victim is None:
            return cycles
        if victim.owner == gpu:
            # Shoot down only the translations that point at the evicted
            # frame (the owner's own mapping and any remote mappings).
            # Replica holders' self-mappings reference their own frames
            # and stay valid — under GPS that keeps them writable.
            invalidated = 0
            for node in m.gpus:
                pte = node.page_table.lookup(victim.vpn)
                if pte is not None and pte.location == gpu:
                    node.invalidate_translation(victim.vpn)
                    invalidated += 1
            cycles += m.kernel.invalidation(invalidated, flush_scale)
            if victim.replicas:
                # Another GPU already holds the data; promote it to
                # owner instead of falling back to the host.
                new_owner = min(victim.replicas)
                victim.replicas.discard(new_owner)
                victim.owner = new_owner
                promoted = m.gpus[new_owner].page_table.lookup(victim.vpn)
                if promoted is None:
                    m.gpus[new_owner].page_table.map(
                        victim.vpn,
                        new_owner,
                        writable=not victim.replicas,
                    )
                elif not victim.replicas and not promoted.writable:
                    # Sole holder now: write permission comes back.
                    promoted.writable = True
                    m.gpus[new_owner].tlbs.invalidate(victim.vpn)
            else:
                victim.owner = HOST_NODE
                if eviction.was_dirty:
                    cycles += m.kernel.transfer(
                        gpu, HOST_NODE, m.config.page_size, now + cycles
                    )
                victim.dirty = False
            m.access_counters.reset_group(victim.vpn)
        elif gpu in victim.replicas:
            victim.replicas.discard(gpu)
            m.gpus[gpu].invalidate_translation(victim.vpn)
            if not victim.replicas and victim.owner != HOST_NODE:
                # Last replica gone: the owner's mapping can be writable
                # again (no more copies to keep coherent).
                owner_pte = m.gpus[victim.owner].page_table.lookup(victim.vpn)
                if owner_pte is not None:
                    owner_pte.writable = True
                    m.gpus[victim.owner].tlbs.invalidate(victim.vpn)
        return cycles

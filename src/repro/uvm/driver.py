"""The UVM driver: centralized fault handling (Figure 16).

Every local page fault and page protection fault travels over PCIe to
the host, where the driver walks the centralized page table, consults
the placement policy (step 2-4 of Figure 16 for GRIT), and resolves the
fault with the mechanic the page's scheme demands: on-touch migration,
remote mapping with access counters, or duplication / write collapse.
First-touch pinning, GPS publish-subscribe, and the Ideal bound are
additional mechanics used by the comparator policies.
"""

from __future__ import annotations

import functools

from repro.constants import (
    HOST_NODE,
    FaultKind,
    LatencyCategory,
)
from repro.errors import PolicyError
from repro.stats.events import EventKind
from repro.memsys.page import PageInfo
from repro.policies.base import Mechanic, PlacementPolicy
from repro.uvm.duplication import DuplicationEngine
from repro.uvm.machine import MachineState
from repro.uvm.migration import MigrationEngine
from repro.uvm.sanitizer import MachineSanitizer, sanitizer_enabled

#: Driver entry points the sanitizer sweeps after (each one is a
#: complete UVM operation; internals may be transiently inconsistent).
_SANITIZED_OPERATIONS = (
    "handle_local_fault",
    "handle_protection_fault",
    "on_remote_access",
    "gps_write",
    "prefetch_page",
)

#: Driver entry points recorded as spans when a tracer is installed
#: (same complete-operation boundaries the sanitizer uses).
_TRACED_OPERATIONS = _SANITIZED_OPERATIONS


class UvmDriver:
    """Host-side memory manager tying mechanics to the active policy."""

    def __init__(self, machine: MachineState, policy: PlacementPolicy) -> None:
        self.machine = machine
        self.policy = policy
        self.migration = MigrationEngine(machine)
        self.duplication = DuplicationEngine(machine, self.migration)
        self.sanitizer: MachineSanitizer | None = None
        if sanitizer_enabled(machine.config):
            self.sanitizer = MachineSanitizer(
                machine,
                allow_writable_replicas=(
                    not policy.enforces_replica_protection
                ),
            )
            self._install_sanitizer_hooks()
        if machine.tracer is not None:
            self._install_trace_hooks()
        policy.bind(machine)

    def _install_sanitizer_hooks(self) -> None:
        """Wrap every public entry point with a post-operation sweep.

        Instance-level wrapping keeps the fast path free of checks when
        the sanitizer is off (no per-call flag test at all).
        """
        for name in _SANITIZED_OPERATIONS:
            setattr(self, name, self._sanitized(getattr(self, name), name))

    def _sanitized(self, operation, name: str):
        sanitizer = self.sanitizer

        @functools.wraps(operation)
        def wrapper(*args, **kwargs):
            result = operation(*args, **kwargs)
            described = ", ".join(
                [*map(repr, args)]
                + [f"{key}={value!r}" for key, value in kwargs.items()]
            )
            sanitizer.check(f"{name}({described})")
            return result

        return wrapper

    def _install_trace_hooks(self) -> None:
        """Wrap every public entry point with span recording.

        Same instance-level wrapping as the sanitizer: with no tracer
        installed the fast path does not even test a flag.  Installed
        after the sanitizer hooks so a span covers the operation plus
        its consistency sweep.
        """
        for name in _TRACED_OPERATIONS:
            setattr(self, name, self._traced(getattr(self, name), name))

    def _traced(self, operation, name: str):
        tracer = self.machine.tracer
        gpus = self.machine.gpus

        @functools.wraps(operation)
        def wrapper(gpu, vpn, *args, **kwargs):
            tracer.op_begin(name, gpu, gpus[gpu].clock)
            result = operation(gpu, vpn, *args, **kwargs)
            # prefetch_page returns bool (a subclass of int); only true
            # cycle counts become span durations.
            duration = result if type(result) is int else 0
            tracer.op_end(duration, vpn=vpn)
            return result

        return wrapper

    # ------------------------------------------------------------------
    # fault entry points
    # ------------------------------------------------------------------

    def handle_local_fault(self, gpu: int, vpn: int, is_write: bool) -> int:
        """Resolve a local page fault; returns cycles the access stalls."""
        m = self.machine
        page = m.central_pt.get(vpn)
        if self.policy.mechanic_for(page) is Mechanic.IDEAL:
            return self._resolve_ideal(gpu, page, is_write)
        m.counters.record_fault(FaultKind.LOCAL_PAGE_FAULT, gpu)
        cycles = self._host_service(gpu)
        cycles += self._observe_fault(
            gpu, vpn, FaultKind.LOCAL_PAGE_FAULT, is_write
        )
        cycles += self._resolve(gpu, page, is_write)
        if m.event_log is not None:
            m.event_log.emit(
                EventKind.LOCAL_FAULT, vpn, gpu, detail=int(is_write),
                cycles=cycles,
            )
        return cycles

    def handle_protection_fault(self, gpu: int, vpn: int) -> int:
        """Resolve a write that hit a read-only (duplicated) translation."""
        m = self.machine
        m.counters.record_fault(FaultKind.PAGE_PROTECTION_FAULT, gpu)
        page = m.central_pt.get(vpn)
        cycles = self._host_service(gpu)
        cycles += self._observe_fault(
            gpu, vpn, FaultKind.PAGE_PROTECTION_FAULT, True
        )
        cycles += self.duplication.collapse_to_writer(
            page, gpu, flush_scale=self.policy.flush_scale
        )
        if m.event_log is not None:
            m.event_log.emit(
                EventKind.PROTECTION_FAULT, vpn, gpu, cycles=cycles
            )
        return cycles

    def on_remote_access(self, gpu: int, vpn: int) -> int:
        """Account one remote data access; may fire a counter migration."""
        m = self.machine
        m.counters.remote_accesses += 1
        self.policy.on_remote_access(gpu, vpn)
        page = m.central_pt.get(vpn)
        if self.policy.mechanic_for(page) is not Mechanic.ACCESS_COUNTER:
            return 0
        if not m.access_counters.record_remote_access(gpu, vpn):
            return 0
        # Threshold reached: the driver broadcasts invalidations and
        # migrates the page toward the counting GPU (Section II-B2).
        cycles = self._host_service(gpu)
        cycles += self.migration.migrate(
            page, gpu, flush_scale=self.policy.flush_scale
        )
        return cycles

    def gps_write(self, gpu: int, vpn: int) -> int:
        """GPS store to a subscribed page: broadcast to all subscribers."""
        m = self.machine
        page = m.central_pt.get(vpn)
        page.dirty = True
        page.ever_written = True
        subscribers = page.holders() - {gpu}
        if not subscribers:
            return 0
        cycles = len(subscribers) * m.config.latency.gps_store_broadcast
        m.breakdown.charge(LatencyCategory.REMOTE_ACCESS, cycles)
        return cycles

    def prefetch_page(self, gpu: int, vpn: int) -> bool:
        """Background prefetch of an un-placed page toward ``gpu``.

        Only pages still resident on the host are prefetched (pulling a
        page out from under another GPU would be a migration, which the
        tree prefetcher does not do).  Background transfers charge no
        stall cycles but do consume frames and link bandwidth.
        """
        m = self.machine
        if vpn >= m.footprint_pages:
            return False
        page = m.central_pt.get(vpn)
        if page.owner != HOST_NODE:
            return False
        m.topology.transfer(HOST_NODE, gpu, m.config.page_size)
        self.migration.install_frame(
            gpu, vpn, False, LatencyCategory.PAGE_MIGRATION
        )
        page.owner = gpu
        m.gpus[gpu].page_table.map(vpn, gpu, writable=True)
        m.counters.prefetches += 1
        if m.event_log is not None:
            m.event_log.emit(EventKind.PREFETCH, vpn, gpu)
        return True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _host_service(self, gpu: int) -> int:
        """PCIe hop plus UVM software service time, charged to Host."""
        m = self.machine
        cycles = m.topology.control_message(gpu, HOST_NODE)
        cycles += int(
            m.config.latency.host_fault_service
            * self.policy.fault_service_scale
        )
        m.breakdown.charge(LatencyCategory.HOST, cycles)
        return cycles

    def _observe_fault(
        self, gpu: int, vpn: int, kind: FaultKind, is_write: bool
    ) -> int:
        """Run the policy's fault hook (GRIT's PA path) and apply any
        scheme-transition consistency work it requests."""
        observation = self.policy.on_fault_observed(gpu, vpn, kind, is_write)
        cycles = observation.extra_latency
        if cycles:
            self.machine.breakdown.charge(LatencyCategory.HOST, cycles)
        for changed_vpn in observation.collapse_charged:
            page = self.machine.central_pt.get(changed_vpn)
            cycles += self._charge_collapse(page)
        for changed_vpn in observation.collapse_background:
            page = self.machine.central_pt.get(changed_vpn)
            # Neighbor-propagated transitions happen in the background;
            # consistency work is done but not charged to this fault.
            self.duplication.drop_replicas(
                page, flush_scale=self.policy.flush_scale
            )
        return cycles

    def _charge_collapse(self, page: PageInfo) -> int:
        cycles = self.duplication.drop_replicas(
            page, flush_scale=self.policy.flush_scale
        )
        self.machine.breakdown.charge(LatencyCategory.WRITE_COLLAPSE, cycles)
        return cycles

    def _resolve(self, gpu: int, page: PageInfo, is_write: bool) -> int:
        """Apply the page's mechanic to resolve a local fault."""
        mechanic = self.policy.mechanic_for(page)
        flush_scale = self.policy.flush_scale
        if mechanic is Mechanic.ON_TOUCH:
            cycles = self.migration.migrate(page, gpu, flush_scale=flush_scale)
            if is_write:
                page.dirty = True
                page.ever_written = True
                self.machine.gpus[gpu].dram.mark_dirty(page.vpn)
            return cycles
        if mechanic is Mechanic.ACCESS_COUNTER:
            # Counter-based migration never migrates eagerly: even a
            # first touch maps the page where it lives (host memory) and
            # lets the access counters earn the migration (Section
            # II-B2).
            return self._resolve_remote_map(
                gpu, page, is_write, flush_scale, place_on_first_touch=False
            )
        if mechanic is Mechanic.PEER_REMOTE:
            # First-touch pins the page at its first toucher.
            return self._resolve_remote_map(
                gpu, page, is_write, flush_scale, place_on_first_touch=True
            )
        if mechanic is Mechanic.DUPLICATION:
            return self._resolve_duplication(gpu, page, is_write, flush_scale)
        if mechanic is Mechanic.GPS:
            return self._resolve_gps(gpu, page, is_write, flush_scale)
        if mechanic is Mechanic.IDEAL:
            return self._resolve_ideal(gpu, page, is_write)
        raise PolicyError(f"unknown mechanic {mechanic!r}")

    def _resolve_remote_map(
        self,
        gpu: int,
        page: PageInfo,
        is_write: bool,
        flush_scale: float,
        place_on_first_touch: bool,
    ) -> int:
        """AC / first-touch: establish a (possibly remote) mapping."""
        if page.owner == HOST_NODE and place_on_first_touch:
            if is_write:
                page.dirty = True
                page.ever_written = True
            cycles = self.migration.place_from_host(
                page, gpu, LatencyCategory.PAGE_MIGRATION, flush_scale
            )
            if is_write:
                self.machine.gpus[gpu].dram.mark_dirty(page.vpn)
            return cycles
        if page.replicas:
            # Stale replicas from a previous duplication lifetime would
            # break coherence under remote write mappings; drop them.
            self._charge_collapse(page)
        self.machine.gpus[gpu].page_table.map(
            page.vpn, page.owner, writable=True
        )
        if is_write:
            page.ever_written = True
            if page.owner != HOST_NODE:
                page.dirty = True
                self.machine.gpus[page.owner].dram.mark_dirty(page.vpn)
        return 0

    def _resolve_duplication(
        self, gpu: int, page: PageInfo, is_write: bool, flush_scale: float
    ) -> int:
        if page.owner == HOST_NODE:
            if is_write:
                page.dirty = True
                page.ever_written = True
            # Copy-on-write: read placements map read-only so a later
            # write raises a protection fault (Section II-B3).
            cycles = self.migration.place_from_host(
                page,
                gpu,
                LatencyCategory.PAGE_DUPLICATION,
                flush_scale,
                writable=is_write,
            )
            if is_write:
                self.machine.gpus[gpu].dram.mark_dirty(page.vpn)
            return cycles
        if is_write:
            # Faulting write by a GPU with no copy: collapse-with-move.
            return self.duplication.collapse_to_writer(
                page, gpu, flush_scale=flush_scale
            )
        return self.duplication.duplicate(page, gpu, flush_scale=flush_scale)

    def _resolve_gps(
        self, gpu: int, page: PageInfo, is_write: bool, flush_scale: float
    ) -> int:
        if page.owner == HOST_NODE:
            if is_write:
                page.dirty = True
                page.ever_written = True
            cycles = self.migration.place_from_host(
                page, gpu, LatencyCategory.PAGE_DUPLICATION, flush_scale
            )
            if is_write:
                self.machine.gpus[gpu].dram.mark_dirty(page.vpn)
            return cycles
        # Subscribe: a writable replica.  The write broadcast itself is
        # charged uniformly by the engine for every GPS write.
        return self.duplication.duplicate(
            page, gpu, writable_replica=True, flush_scale=flush_scale
        )

    def _resolve_ideal(self, gpu: int, page: PageInfo, is_write: bool) -> int:
        """The paper's Ideal: only the first cold touch pays anything."""
        m = self.machine
        cycles = 0
        if page.owner == HOST_NODE:
            # The one cost Ideal pays: the first cold touch of a page.
            cycles = self._host_service(gpu)
            transfer = m.topology.transfer(HOST_NODE, gpu, m.config.page_size)
            m.breakdown.charge(LatencyCategory.PAGE_MIGRATION, transfer)
            cycles += transfer
            page.owner = gpu
        else:
            page.replicas.add(gpu)
        if is_write:
            page.dirty = True
            page.ever_written = True
        m.gpus[gpu].page_table.map(page.vpn, gpu, writable=True)
        return cycles

"""The UVM driver: centralized fault handling (Figure 16).

Every local page fault and page protection fault travels over PCIe to
the host, where the driver walks the centralized page table, consults
the placement policy (step 2-4 of Figure 16 for GRIT), and resolves the
fault with the mechanic the page's scheme demands.  Mechanic selection
goes through the :class:`~repro.uvm.executor.MechanicExecutor` dispatch
registry (on-touch migration, remote mapping with access counters,
duplication / write collapse, plus the comparator policies' first-touch
pinning, GPS publish-subscribe, and the Ideal bound).

Faults arrive through two entry points: :meth:`handle_local_fault`
services one fault synchronously (the classic inline path), and
:meth:`service_fault_batch` drains one GPU's replayable fault buffer —
one amortized host-service charge per batch, duplicate (gpu, vpn)
entries coalesced — which is how real drivers win back fault-service
latency.  The :class:`~repro.uvm.fault_service.FaultService` built by
the driver decides which path each fault takes.
"""

from __future__ import annotations

import functools

from typing import Sequence

from repro.constants import (
    HOST_NODE,
    FaultKind,
    LatencyCategory,
)
from repro.errors import PolicyError
from repro.stats.events import EventKind
from repro.memsys.page import PageInfo
from repro.policies.base import Mechanic, PlacementPolicy
from repro.uvm.duplication import DuplicationEngine
from repro.uvm.executor import MechanicExecutor
from repro.uvm.fault_service import FaultService
from repro.uvm.faults import FaultEvent
from repro.uvm.machine import MachineState
from repro.uvm.migration import MigrationEngine
from repro.uvm.sanitizer import MachineSanitizer, sanitizer_enabled

#: Driver entry points the sanitizer sweeps after (each one is a
#: complete UVM operation; internals may be transiently inconsistent).
#: These are the stage boundaries of the fault pipeline: inline fault
#: service, batched fault service, and the remote-access/GPS/prefetch
#: side doors.
_SANITIZED_OPERATIONS = (
    "handle_local_fault",
    "handle_protection_fault",
    "service_fault_batch",
    "on_remote_access",
    "gps_write",
    "prefetch_page",
)

#: Driver entry points recorded as spans when a tracer is installed
#: (same complete-operation boundaries the sanitizer uses).
_TRACED_OPERATIONS = _SANITIZED_OPERATIONS


class UvmDriver:
    """Host-side memory manager tying mechanics to the active policy."""

    def __init__(self, machine: MachineState, policy: PlacementPolicy) -> None:
        self.machine = machine
        self.policy = policy
        self.migration = MigrationEngine(machine)
        self.duplication = DuplicationEngine(machine, self.migration)
        self.mechanics = MechanicExecutor(self)
        policy.register_mechanics(self.mechanics)
        missing = policy.mechanics - self.mechanics.registered()
        if missing:
            names = ", ".join(sorted(m.name for m in missing))
            raise PolicyError(
                f"policy {policy.name!r} declares mechanics with no "
                f"registered executor: {names}"
            )
        self.fault_service = FaultService(
            self, batch_size=machine.config.fault_batch_size
        )
        self.sanitizer: MachineSanitizer | None = None
        if sanitizer_enabled(machine.config):
            self.sanitizer = MachineSanitizer(
                machine,
                allow_writable_replicas=(
                    not policy.enforces_replica_protection
                ),
            )
            self._install_sanitizer_hooks()
        if machine.tracer is not None:
            self._install_trace_hooks()
        policy.bind(machine)

    def _install_sanitizer_hooks(self) -> None:
        """Wrap every public entry point with a post-operation sweep.

        Instance-level wrapping keeps the fast path free of checks when
        the sanitizer is off (no per-call flag test at all).
        """
        for name in _SANITIZED_OPERATIONS:
            # simlint: ignore[GRIT-P001]  (hook install is the point)
            setattr(self, name, self._sanitized(getattr(self, name), name))

    def _sanitized(self, operation, name: str):
        sanitizer = self.sanitizer

        @functools.wraps(operation)
        def wrapper(*args, **kwargs):
            result = operation(*args, **kwargs)
            described = ", ".join(
                [*map(repr, args)]
                + [f"{key}={value!r}" for key, value in kwargs.items()]
            )
            sanitizer.check(f"{name}({described})")
            return result

        return wrapper

    def _install_trace_hooks(self) -> None:
        """Wrap every public entry point with span recording.

        Same instance-level wrapping as the sanitizer: with no tracer
        installed the fast path does not even test a flag.  Installed
        after the sanitizer hooks so a span covers the operation plus
        its consistency sweep.
        """
        for name in _TRACED_OPERATIONS:
            # simlint: ignore[GRIT-P001]  (hook install is the point)
            setattr(self, name, self._traced(getattr(self, name), name))

    def _traced(self, operation, name: str):
        tracer = self.machine.tracer
        gpus = self.machine.gpus

        @functools.wraps(operation)
        def wrapper(gpu, target, *args, **kwargs):
            tracer.op_begin(name, gpu, gpus[gpu].clock)
            result = operation(gpu, target, *args, **kwargs)
            # prefetch_page returns bool (a subclass of int); only true
            # cycle counts become span durations.
            duration = result if type(result) is int else 0
            # Per-page operations carry the vpn; batch operations (the
            # target is the fault sequence) carry the batch size.
            if isinstance(target, int):
                tracer.op_end(duration, vpn=target)
            else:
                tracer.op_end(duration, faults=len(target))
            return result

        return wrapper

    # ------------------------------------------------------------------
    # fault entry points
    # ------------------------------------------------------------------

    def handle_local_fault(
        self,
        gpu: int,
        vpn: int,
        is_write: bool,
        now: int = 0,
        page: PageInfo | None = None,
    ) -> int:
        """Resolve a local page fault; returns cycles the access stalls.

        ``page`` lets the inline path reuse the central-page-table
        entry the translation stage already fetched for the scheme
        tally (pages are stable, in-place-mutated objects, so the
        stage's entry is the driver's entry); without it the driver
        consults the central table itself.
        """
        m = self.machine
        if page is None:
            page = m.central_pt.get(vpn)
        if self.policy.mechanic_for(page) is Mechanic.IDEAL:
            return self.mechanics.execute(
                Mechanic.IDEAL, gpu, page, is_write, now
            )
        m.counters.record_fault(FaultKind.LOCAL_PAGE_FAULT, gpu)
        cycles = self.host_service(gpu, now)
        cycles += self._observe_fault(
            gpu, vpn, FaultKind.LOCAL_PAGE_FAULT, is_write
        )
        # The policy hook may have rewritten the page's scheme bits
        # (GRIT's PA path), so the mechanic is re-read after it runs.
        cycles += self.mechanics.execute(
            self.policy.mechanic_for(page), gpu, page, is_write,
            now + cycles,
        )
        if m.event_log is not None:
            m.event_log.emit(
                EventKind.LOCAL_FAULT, vpn, gpu, detail=int(is_write),
                cycles=cycles,
            )
        return cycles

    def service_fault_batch(
        self, gpu: int, batch: Sequence[FaultEvent], now: int = 0
    ) -> int:
        """Drain one GPU's fault buffer as a single driver batch.

        Duplicate (gpu, vpn) deposits coalesce into one serviced fault
        (a write anywhere in the batch services as a write), and the
        PCIe round trip plus UVM software service time is charged once
        for the whole batch — the amortization real drivers get from
        batched buffer drains.  Returns the total stall cycles.
        """
        m = self.machine
        coalesced: dict[int, FaultEvent] = {}
        for record in batch:
            prior = coalesced.get(record.vpn)
            if prior is None:
                coalesced[record.vpn] = record
            else:
                coalesced[record.vpn] = prior.merged_with(record)
                m.counters.coalesced_faults += 1
        m.counters.fault_batches += 1
        cycles = self.host_service(gpu, now)
        for record in coalesced.values():
            page = m.central_pt.get(record.vpn)
            if self.policy.mechanic_for(page) is Mechanic.IDEAL:
                cycles += self.mechanics.execute(
                    Mechanic.IDEAL, gpu, page, record.is_write,
                    now + cycles,
                )
                continue
            m.counters.record_fault(FaultKind.LOCAL_PAGE_FAULT, gpu)
            fault_cycles = self._observe_fault(
                gpu, record.vpn, FaultKind.LOCAL_PAGE_FAULT, record.is_write
            )
            # Re-read after the policy hook: it may rewrite scheme bits.
            fault_cycles += self.mechanics.execute(
                self.policy.mechanic_for(page), gpu, page, record.is_write,
                now + cycles + fault_cycles,
            )
            cycles += fault_cycles
            if m.event_log is not None:
                m.event_log.emit(
                    EventKind.LOCAL_FAULT,
                    record.vpn,
                    gpu,
                    detail=int(record.is_write),
                    cycles=fault_cycles,
                )
        return cycles

    def handle_protection_fault(
        self, gpu: int, vpn: int, now: int = 0
    ) -> int:
        """Resolve a write that hit a read-only (duplicated) translation."""
        m = self.machine
        m.counters.record_fault(FaultKind.PAGE_PROTECTION_FAULT, gpu)
        page = m.central_pt.get(vpn)
        cycles = self.host_service(gpu, now)
        cycles += self._observe_fault(
            gpu, vpn, FaultKind.PAGE_PROTECTION_FAULT, True
        )
        cycles += self.duplication.collapse_to_writer(
            page,
            gpu,
            flush_scale=self.policy.flush_scale,
            now=now + cycles,
        )
        if m.event_log is not None:
            m.event_log.emit(
                EventKind.PROTECTION_FAULT, vpn, gpu, cycles=cycles
            )
        return cycles

    def on_remote_access(self, gpu: int, vpn: int, now: int = 0) -> int:
        """Account one remote data access; may fire a counter migration."""
        m = self.machine
        m.counters.remote_accesses += 1
        self.policy.on_remote_access(gpu, vpn)
        page = m.central_pt.get(vpn)
        if self.policy.mechanic_for(page) is not Mechanic.ACCESS_COUNTER:
            return 0
        if not m.access_counters.record_remote_access(gpu, vpn):
            return 0
        # Threshold reached: the driver broadcasts invalidations and
        # migrates the page toward the counting GPU (Section II-B2).
        cycles = self.host_service(gpu, now)
        cycles += self.migration.migrate(
            page,
            gpu,
            flush_scale=self.policy.flush_scale,
            now=now + cycles,
        )
        return cycles

    def gps_write(self, gpu: int, vpn: int) -> int:
        """GPS store to a subscribed page: broadcast to all subscribers."""
        m = self.machine
        page = m.central_pt.get(vpn)
        page.dirty = True
        page.ever_written = True
        subscribers = page.holders() - {gpu}
        if not subscribers:
            return 0
        cycles = m.kernel.gps_broadcast(gpu, sorted(subscribers))
        m.breakdown.charge(LatencyCategory.REMOTE_ACCESS, cycles)
        return cycles

    def prefetch_page(self, gpu: int, vpn: int, now: int = 0) -> bool:
        """Background prefetch of an un-placed page toward ``gpu``.

        Only pages still resident on the host are prefetched (pulling a
        page out from under another GPU would be a migration, which the
        tree prefetcher does not do).  Background transfers charge no
        stall cycles but do consume frames and link bandwidth.
        """
        m = self.machine
        if vpn >= m.footprint_pages:
            return False
        page = m.central_pt.get(vpn)
        if page.owner != HOST_NODE:
            return False
        # The pull is free to the faulting stream but still consumes
        # link occupancy, so in queued mode foreground transfers queue
        # behind it.
        m.kernel.transfer(HOST_NODE, gpu, m.config.page_size, now)
        self.migration.install_frame(
            gpu, vpn, False, LatencyCategory.PAGE_MIGRATION, now=now
        )
        page.owner = gpu
        m.gpus[gpu].page_table.map(vpn, gpu, writable=True)
        m.counters.prefetches += 1
        if m.event_log is not None:
            m.event_log.emit(EventKind.PREFETCH, vpn, gpu)
        return True

    # ------------------------------------------------------------------
    # shared charges (used by the executors and the entry points)
    # ------------------------------------------------------------------

    def host_service(self, gpu: int, now: int = 0) -> int:
        """PCIe hop plus UVM software service time, charged to Host."""
        m = self.machine
        cycles = m.kernel.host_service(
            gpu, now, self.policy.fault_service_scale
        )
        m.breakdown.charge(LatencyCategory.HOST, cycles)
        return cycles

    def charge_collapse(self, page: PageInfo) -> int:
        """Drop a page's replicas, charging the invalidation latency."""
        cycles = self.duplication.drop_replicas(
            page, flush_scale=self.policy.flush_scale
        )
        self.machine.breakdown.charge(LatencyCategory.WRITE_COLLAPSE, cycles)
        return cycles

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _observe_fault(
        self, gpu: int, vpn: int, kind: FaultKind, is_write: bool
    ) -> int:
        """Run the policy's fault hook (GRIT's PA path) and apply any
        scheme-transition consistency work it requests."""
        observation = self.policy.on_fault_observed(gpu, vpn, kind, is_write)
        cycles = observation.extra_latency
        if cycles:
            self.machine.breakdown.charge(LatencyCategory.HOST, cycles)
        for changed_vpn in observation.collapse_charged:
            page = self.machine.central_pt.get(changed_vpn)
            cycles += self.charge_collapse(page)
        for changed_vpn in observation.collapse_background:
            page = self.machine.central_pt.get(changed_vpn)
            # Neighbor-propagated transitions happen in the background;
            # consistency work is done but not charged to this fault.
            self.duplication.drop_replicas(
                page, flush_scale=self.policy.flush_scale
            )
        return cycles

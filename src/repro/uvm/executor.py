"""Mechanic dispatch: how the driver resolves a fault, by registry.

The UVM driver used to pick fault-resolution mechanics through an
if/elif ladder; this module replaces it with an explicit dispatch
registry.  Each built-in :class:`~repro.policies.base.Mechanic` member
registers its executor at import time with the :func:`executes`
decorator, and every :class:`MechanicExecutor` instance starts from
that default table.  Policies may override or extend the table through
:meth:`~repro.policies.base.PlacementPolicy.register_mechanics` — the
hook the driver calls before the first fault is serviced — which is
what lets an experiment swap one mechanic's implementation without
touching the driver.

The simlint rule GRIT-C006 statically checks that every ``Mechanic``
enum member has a registered executor, so a new member cannot silently
turn into a runtime :class:`~repro.errors.PolicyError`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, FrozenSet

from repro.constants import HOST_NODE, LatencyCategory
from repro.errors import PolicyError
from repro.memsys.page import PageInfo
from repro.policies.base import Mechanic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.uvm.driver import UvmDriver

#: An executor resolves one local fault with one mechanic; it receives
#: the driver (for the mechanics engines and machine state) plus the
#: simulated cycle the fault reaches resolution, and returns the stall
#: cycles the faulting access pays.
ExecutorFn = Callable[["UvmDriver", int, PageInfo, bool, int], int]

#: Default executor table every :class:`MechanicExecutor` starts from.
DEFAULT_EXECUTORS: Dict[Mechanic, ExecutorFn] = {}


def executes(mechanic: Mechanic) -> Callable[[ExecutorFn], ExecutorFn]:
    """Register ``fn`` as the default executor for ``mechanic``."""

    def decorator(fn: ExecutorFn) -> ExecutorFn:
        DEFAULT_EXECUTORS[mechanic] = fn
        return fn

    return decorator


class MechanicExecutor:
    """Per-driver dispatch table from mechanic to executor."""

    def __init__(self, driver: "UvmDriver") -> None:
        self.driver = driver
        self._handlers: Dict[Mechanic, ExecutorFn] = dict(DEFAULT_EXECUTORS)

    def register(self, mechanic: Mechanic, handler: ExecutorFn) -> None:
        """Install (or override) the executor for one mechanic."""
        self._handlers[mechanic] = handler

    def registered(self) -> FrozenSet[Mechanic]:
        """Mechanics that currently have an executor."""
        return frozenset(self._handlers)

    def execute(
        self,
        mechanic: Mechanic,
        gpu: int,
        page: PageInfo,
        is_write: bool,
        now: int = 0,
    ) -> int:
        """Resolve one fault on ``page`` for ``gpu``; returns cycles."""
        handler = self._handlers.get(mechanic)
        if handler is None:
            raise PolicyError(f"no executor registered for {mechanic!r}")
        return handler(self.driver, gpu, page, is_write, now)


# ----------------------------------------------------------------------
# default executors (one per Mechanic member; see GRIT-C006)
# ----------------------------------------------------------------------


@executes(Mechanic.ON_TOUCH)
def execute_on_touch(
    driver: "UvmDriver", gpu: int, page: PageInfo, is_write: bool, now: int
) -> int:
    """Migrate the faulting page to the requester (Section II-B1)."""
    cycles = driver.migration.migrate(
        page, gpu, flush_scale=driver.policy.flush_scale, now=now
    )
    if is_write:
        page.dirty = True
        page.ever_written = True
        driver.machine.gpus[gpu].dram.mark_dirty(page.vpn)
    return cycles


@executes(Mechanic.ACCESS_COUNTER)
def execute_access_counter(
    driver: "UvmDriver", gpu: int, page: PageInfo, is_write: bool, now: int
) -> int:
    """Map the page where it lives; counters earn the migration.

    Counter-based migration never migrates eagerly: even a first touch
    maps the page where it lives (host memory) and lets the access
    counters earn the migration (Section II-B2).
    """
    return _remote_map(
        driver, gpu, page, is_write, now, place_on_first_touch=False
    )


@executes(Mechanic.PEER_REMOTE)
def execute_peer_remote(
    driver: "UvmDriver", gpu: int, page: PageInfo, is_write: bool, now: int
) -> int:
    """First-touch pins the page at its first toucher; others map it."""
    return _remote_map(
        driver, gpu, page, is_write, now, place_on_first_touch=True
    )


def _remote_map(
    driver: "UvmDriver",
    gpu: int,
    page: PageInfo,
    is_write: bool,
    now: int,
    place_on_first_touch: bool,
) -> int:
    """AC / first-touch: establish a (possibly remote) mapping."""
    machine = driver.machine
    flush_scale = driver.policy.flush_scale
    if page.owner == HOST_NODE and place_on_first_touch:
        if is_write:
            page.dirty = True
            page.ever_written = True
        cycles = driver.migration.place_from_host(
            page, gpu, LatencyCategory.PAGE_MIGRATION, flush_scale,
            now=now,
        )
        if is_write:
            machine.gpus[gpu].dram.mark_dirty(page.vpn)
        return cycles
    if page.replicas:
        # Stale replicas from a previous duplication lifetime would
        # break coherence under remote write mappings; drop them.
        driver.charge_collapse(page)
    machine.gpus[gpu].page_table.map(page.vpn, page.owner, writable=True)
    if is_write:
        page.ever_written = True
        if page.owner != HOST_NODE:
            page.dirty = True
            machine.gpus[page.owner].dram.mark_dirty(page.vpn)
    return 0


@executes(Mechanic.DUPLICATION)
def execute_duplication(
    driver: "UvmDriver", gpu: int, page: PageInfo, is_write: bool, now: int
) -> int:
    """Replicate reads, collapse writes (Section II-B3)."""
    machine = driver.machine
    flush_scale = driver.policy.flush_scale
    if page.owner == HOST_NODE:
        if is_write:
            page.dirty = True
            page.ever_written = True
        # Copy-on-write: read placements map read-only so a later
        # write raises a protection fault (Section II-B3).
        cycles = driver.migration.place_from_host(
            page,
            gpu,
            LatencyCategory.PAGE_DUPLICATION,
            flush_scale,
            writable=is_write,
            now=now,
        )
        if is_write:
            machine.gpus[gpu].dram.mark_dirty(page.vpn)
        return cycles
    if is_write:
        # Faulting write by a GPU with no copy: collapse-with-move.
        return driver.duplication.collapse_to_writer(
            page, gpu, flush_scale=flush_scale, now=now
        )
    return driver.duplication.duplicate(
        page, gpu, flush_scale=flush_scale, now=now
    )


@executes(Mechanic.GPS)
def execute_gps(
    driver: "UvmDriver", gpu: int, page: PageInfo, is_write: bool, now: int
) -> int:
    """Subscribe the requester with a writable replica (GPS)."""
    machine = driver.machine
    flush_scale = driver.policy.flush_scale
    if page.owner == HOST_NODE:
        if is_write:
            page.dirty = True
            page.ever_written = True
        cycles = driver.migration.place_from_host(
            page, gpu, LatencyCategory.PAGE_DUPLICATION, flush_scale,
            now=now,
        )
        if is_write:
            machine.gpus[gpu].dram.mark_dirty(page.vpn)
        return cycles
    # Subscribe: a writable replica.  The write broadcast itself is
    # charged uniformly by the engine for every GPS write.
    return driver.duplication.duplicate(
        page, gpu, writable_replica=True, flush_scale=flush_scale, now=now
    )


@executes(Mechanic.IDEAL)
def execute_ideal(
    driver: "UvmDriver", gpu: int, page: PageInfo, is_write: bool, now: int
) -> int:
    """The paper's Ideal: only the first cold touch pays anything."""
    machine = driver.machine
    cycles = 0
    if page.owner == HOST_NODE:
        # The one cost Ideal pays: the first cold touch of a page.
        cycles = driver.host_service(gpu, now)
        transfer = machine.kernel.transfer(
            HOST_NODE, gpu, machine.config.page_size, now + cycles
        )
        machine.breakdown.charge(LatencyCategory.PAGE_MIGRATION, transfer)
        cycles += transfer
        page.owner = gpu
    else:
        page.replicas.add(gpu)
    if is_write:
        page.dirty = True
        page.ever_written = True
    machine.gpus[gpu].page_table.map(page.vpn, gpu, writable=True)
    return cycles

"""Batched fault servicing: the driver-side stage of the pipeline.

The :class:`FaultService` sits between the engine's translation stage
and the driver's resolution mechanics.  It owns one bounded
:class:`~repro.uvm.faults.FaultBuffer` per GPU and decides *when*
faults are serviced:

* ``batch_size == 1`` (the default) reproduces the classic inline
  path bit-for-bit — every fault is submitted and serviced in the same
  call, through the driver's ``handle_local_fault`` entry point, so
  the sanitizer sweeps and tracer spans are byte-identical to the
  pre-pipeline simulator.
* ``batch_size > 1`` models the real driver: faults park in the
  faulting GPU's replayable buffer while other warps keep issuing;
  once ``batch_size`` deposits accumulate (or the stream ends) the
  buffer drains through ``service_fault_batch``, which charges one
  host-service round trip for the whole batch and coalesces duplicate
  (gpu, vpn) entries before resolving them.

The engine replays the parked accesses (TLB fill, protection check,
data access) after a drain; see ``repro.sim.engine``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.constants import FaultKind
from repro.uvm.faults import FaultBuffer, FaultEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memsys.page import PageInfo
    from repro.uvm.driver import UvmDriver


class FaultService:
    """Drains per-GPU fault buffers in batches through the driver."""

    def __init__(self, driver: "UvmDriver", batch_size: int) -> None:
        self.driver = driver
        self.batch_size = batch_size
        num_gpus = driver.machine.config.num_gpus
        self.buffers: List[FaultBuffer] = [
            FaultBuffer(capacity=batch_size) for _ in range(num_gpus)
        ]

    @property
    def inline(self) -> bool:
        """True when every fault forms its own batch (classic path)."""
        return self.batch_size == 1

    def pending(self, gpu: int) -> int:
        """Faults currently parked in ``gpu``'s buffer."""
        return len(self.buffers[gpu])

    def should_drain(self, gpu: int) -> bool:
        """True when ``gpu``'s buffer has filled to one batch."""
        return self.buffers[gpu].full

    def submit(
        self,
        gpu: int,
        vpn: int,
        is_write: bool,
        now: int,
        page: "PageInfo | None" = None,
    ) -> int | None:
        """Hand one local fault to the service.

        Returns the stall cycles when the fault was serviced inline
        (``batch_size == 1``); returns ``None`` when the fault was
        parked in the GPU's buffer for a later drain.  ``page`` is the
        central-page-table entry the translation stage already fetched
        (inline path only — parked faults are resolved much later, by
        which time the batch drain re-reads the table anyway).
        """
        if self.batch_size == 1:
            return self.driver.handle_local_fault(
                gpu, vpn, is_write, now, page=page
            )
        self.buffers[gpu].deposit(
            FaultEvent(FaultKind.LOCAL_PAGE_FAULT, gpu, vpn, is_write, now)
        )
        return None

    def drain(self, gpu: int, now: int = 0) -> Tuple[int, List[FaultEvent]]:
        """Service everything parked in ``gpu``'s buffer as one batch.

        Returns ``(cycles, records)``: the stall cycles the batch
        charges the draining GPU, and the deposited records (in
        arrival order, duplicates included) the engine must replay.
        ``now`` is the draining GPU's clock at the drain.
        """
        records = self.buffers[gpu].drain()
        if not records:
            return 0, []
        cycles = self.driver.service_fault_batch(gpu, records, now)
        return cycles, records

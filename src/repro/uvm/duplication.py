"""Page duplication and write-collapse mechanics (Section II-B3).

Duplication replicates a page into a reading GPU's memory so later reads
are local; every copy's translation is read-only while replicas exist.
A write then raises a page protection fault and the UVM driver performs
a *write collapse*: every other holder drains its pipeline, flushes
TLBs/caches, invalidates the PTE, and drops its copy; the writer ends up
as the sole (writable) owner.  GPS reuses the replication half with
write-broadcast instead of collapse.
"""

from __future__ import annotations

from repro.constants import HOST_NODE, LatencyCategory
from repro.stats.events import EventKind
from repro.memsys.page import PageInfo
from repro.uvm.machine import MachineState
from repro.uvm.migration import MigrationEngine


class DuplicationEngine:
    """Replicates pages and collapses replicas on writes."""

    def __init__(
        self, machine: MachineState, migration: MigrationEngine
    ) -> None:
        self.machine = machine
        self.migration = migration

    def duplicate(
        self,
        page: PageInfo,
        dest: int,
        writable_replica: bool = False,
        flush_scale: float = 1.0,
        now: int = 0,
    ) -> int:
        """Copy ``page`` into ``dest``'s memory as a read replica.

        ``writable_replica`` is GPS semantics: subscribers keep writable
        mappings because stores are broadcast rather than collapsed.
        """
        m = self.machine
        if page.is_local_to(dest):
            m.gpus[dest].page_table.map(
                page.vpn,
                dest,
                writable=writable_replica
                or (page.owner == dest and not page.replicas),
            )
            return 0
        if page.owner == HOST_NODE:
            # Nothing to replicate yet: first touch places the page.
            return self.migration.place_from_host(
                page,
                dest,
                LatencyCategory.PAGE_DUPLICATION,
                flush_scale,
                now=now,
            )
        src = page.owner
        cycles = m.kernel.transfer(src, dest, m.config.page_size, now)
        cycles += self.migration.install_frame(
            dest,
            page.vpn,
            False,
            LatencyCategory.PAGE_DUPLICATION,
            flush_scale,
            now=now + cycles,
        )
        page.replicas.add(dest)
        m.gpus[dest].page_table.map(page.vpn, dest, writable=writable_replica)
        if not writable_replica:
            self._downgrade_writable_mappings(page)
        m.counters.duplications += 1
        m.breakdown.charge(LatencyCategory.PAGE_DUPLICATION, cycles)
        if m.event_log is not None:
            m.event_log.emit(
                EventKind.DUPLICATION, page.vpn, dest, cycles=cycles
            )
        return cycles

    def _downgrade_writable_mappings(self, page: PageInfo) -> None:
        """Make every translation of the page read-only so writes fault.

        The owner's local mapping is the common case, but GPUs that
        mapped the page remotely (to the owner's copy) before it entered
        duplication hold writable translations too; leaving any of them
        writable would let a store bypass the protection fault and
        silently diverge the replicas.
        """
        m = self.machine
        for gpu in m.gpus:
            pte = gpu.page_table.lookup(page.vpn)
            if pte is not None and pte.writable:
                pte.writable = False
                # The cached TLB copy may still claim write permission.
                gpu.tlbs.invalidate(page.vpn)

    def collapse_to_writer(
        self,
        page: PageInfo,
        writer: int,
        flush_scale: float = 1.0,
        charge: bool = True,
        now: int = 0,
    ) -> int:
        """Resolve a write to a duplicated page: writer becomes sole owner.

        Covers both the protection-fault path (writer already holds a
        read-only copy) and a faulting write by a GPU with no copy (the
        data is transferred as part of the collapse).
        """
        m = self.machine
        kernel = m.kernel
        cycles = 0
        writer_has_copy = page.is_local_to(writer)
        # Every other holder drains, flushes, and drops its copy.
        losers = page.holders() - {writer}
        for loser in sorted(losers):
            flush = kernel.pipeline_flush(flush_scale)
            m.gpus[loser].flush_pipeline_and_tlbs()
            m.gpus[loser].clock += flush
            m.gpus[loser].invalidate_translation(page.vpn)
            m.gpus[loser].dram.release(page.vpn)
            cycles += flush + kernel.collapse_invalidation(
                writer, loser, flush_scale
            )
        if not writer_has_copy:
            src = page.owner if page.owner != HOST_NODE else HOST_NODE
            cycles += kernel.transfer(
                src, writer, m.config.page_size, now + cycles
            )
            cycles += self.migration.install_frame(
                writer,
                page.vpn,
                True,
                LatencyCategory.WRITE_COLLAPSE,
                flush_scale,
                now=now + cycles,
            )
        page.replicas.clear()
        page.owner = writer
        page.dirty = True
        page.ever_written = True
        m.gpus[writer].dram.mark_dirty(page.vpn)
        m.gpus[writer].page_table.map(page.vpn, writer, writable=True)
        # The writer's own TLBs may cache the stale read-only entry.
        m.gpus[writer].tlbs.invalidate(page.vpn)
        m.counters.write_collapses += 1
        if charge:
            m.breakdown.charge(LatencyCategory.WRITE_COLLAPSE, cycles)
        if m.event_log is not None:
            m.event_log.emit(
                EventKind.WRITE_COLLAPSE,
                page.vpn,
                writer,
                detail=len(losers),
                cycles=cycles,
            )
        return cycles

    def drop_replicas(self, page: PageInfo, flush_scale: float = 1.0) -> int:
        """Remove all replicas of a page that is leaving duplication.

        Used when GRIT resets a page's scheme away from duplication
        (Section V-F): the UVM driver removes the replicas and
        invalidates the corresponding PTEs/TLBs for consistency.
        """
        m = self.machine
        cycles = 0
        for replica in sorted(page.replicas):
            m.gpus[replica].invalidate_translation(page.vpn)
            m.gpus[replica].dram.release(page.vpn)
            cycles += m.kernel.invalidation(1, flush_scale)
        page.replicas.clear()
        if page.owner != HOST_NODE:
            owner_pte = m.gpus[page.owner].page_table.lookup(page.vpn)
            if owner_pte is not None and not owner_pte.writable:
                owner_pte.writable = True
                m.gpus[page.owner].tlbs.invalidate(page.vpn)
        return cycles

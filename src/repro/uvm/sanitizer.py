"""Machine-state sanitizer: UVM invariants checked after every driver op.

The UVM driver mutates four coupled structures — the centralized page
table, per-GPU local page tables, per-GPU DRAM directories, and the
access-counter file — and a bug that lets them drift apart corrupts
results without failing any test.  The sanitizer re-derives the
contracts between them and raises :class:`~repro.errors.SanitizerError`
the moment one breaks, naming the driver operation that broke it.

Enable it with ``SystemConfig(sanitize=True)`` or ``GRIT_SANITIZE=1``
in the environment; the cost is a full state sweep per driver
operation, so it is a debugging tool, not a default.

Invariants checked (see docs/static_analysis.md for the catalog):

* **ownership** — owners and replicas are valid nodes, the owner is
  never its own replica, and replicas imply a GPU owner;
* **translation** — every local PTE points at a node that actually
  holds the page;
* **replica protection** — while replicas exist every mapping of the
  page is read-only, so writes fault and collapse (policies with GPS or
  Ideal semantics opt out via ``enforces_replica_protection``);
* **residency** — every VPN occupying a DRAM frame is a holder of that
  page per the central page table;
* **groups** — Neighboring-Aware Prediction group markers are aligned
  to their 1/8/64/512 span and never nest;
* **access counters** — no stored remote-access count ever reaches the
  threshold (reaching it must fire a migration and clear the group).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, List

from repro.config import SystemConfig
from repro.constants import HOST_NODE, GroupBits
from repro.errors import SanitizerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memsys.page import PageInfo
    from repro.uvm.machine import MachineState

#: Environment variable that force-enables the sanitizer everywhere.
SANITIZE_ENV_VAR = "GRIT_SANITIZE"


def sanitizer_enabled(config: SystemConfig) -> bool:
    """True when the config flag or the environment enables sanitizing."""
    if config.sanitize:
        return True
    return os.environ.get(SANITIZE_ENV_VAR, "") == "1"


class MachineSanitizer:
    """Validates a :class:`MachineState` against the UVM invariants."""

    def __init__(
        self,
        machine: "MachineState",
        allow_writable_replicas: bool = False,
    ) -> None:
        self.machine = machine
        #: GPS broadcasts stores and the Ideal bound replicates for
        #: free; both keep writable replica mappings legitimately.
        self.allow_writable_replicas = allow_writable_replicas
        #: Total sweeps performed (observability for tests/benchmarks).
        self.checks_run = 0

    def check(self, operation: str = "driver operation") -> None:
        """Sweep the machine; raise on the first batch of violations."""
        found = self.violations()
        if found:
            detail = "; ".join(found)
            raise SanitizerError(
                f"machine-state invariants broken after {operation}: "
                f"{detail}"
            )

    def violations(self) -> List[str]:
        """Every broken invariant, as human-readable descriptions."""
        self.checks_run += 1
        found: List[str] = []
        self._check_pages(found)
        self._check_translations(found)
        self._check_residency(found)
        self._check_groups(found)
        self._check_access_counters(found)
        return found

    # ------------------------------------------------------------------
    # individual invariants
    # ------------------------------------------------------------------

    def _valid_gpu(self, node: int) -> bool:
        return 0 <= node < len(self.machine.gpus)

    def _check_pages(self, found: List[str]) -> None:
        """Ownership: owner/replica fields form a coherent holder set."""
        for page in self.machine.central_pt.pages():
            if page.owner != HOST_NODE and not self._valid_gpu(page.owner):
                found.append(
                    f"page {page.vpn}: owner {page.owner} is not a node"
                )
            if page.owner in page.replicas:
                found.append(
                    f"page {page.vpn}: owner {page.owner} listed as its "
                    f"own replica"
                )
            for replica in sorted(page.replicas):
                if not self._valid_gpu(replica):
                    found.append(
                        f"page {page.vpn}: replica {replica} is not a GPU"
                    )
            if page.replicas and page.owner == HOST_NODE:
                found.append(
                    f"page {page.vpn}: replicas {sorted(page.replicas)} "
                    f"without a GPU owner"
                )

    def _check_translations(self, found: List[str]) -> None:
        """Translation: local PTEs point at nodes that hold the page."""
        central = self.machine.central_pt
        for gpu in self.machine.gpus:
            for vpn in sorted(gpu.page_table.mapped_vpns()):
                pte = gpu.page_table.lookup(vpn)
                assert pte is not None  # mapped_vpns() yielded it
                page = central.peek(vpn)
                if page is None:
                    found.append(
                        f"gpu {gpu.gpu_id}: translation for vpn {vpn} "
                        f"with no central page-table entry"
                    )
                    continue
                holders = page.holders()
                if pte.location == HOST_NODE:
                    # Counter-tracked pages are served from system
                    # memory, and those mappings deliberately survive a
                    # later counter-fired migration (the stable-remote-
                    # mapping deviation documented in EXPERIMENTS.md),
                    # so a host-pointing PTE is always legal and exempt
                    # from replica write-protection.
                    continue
                if pte.location not in holders:
                    found.append(
                        f"gpu {gpu.gpu_id}: vpn {vpn} mapped to "
                        f"{pte.location}, which holds no copy "
                        f"(holders: {sorted(holders)})"
                    )
                if (
                    page.replicas
                    and pte.writable
                    and not self.allow_writable_replicas
                ):
                    found.append(
                        f"gpu {gpu.gpu_id}: writable mapping of vpn "
                        f"{vpn} while replicas {sorted(page.replicas)} "
                        f"exist (writes must fault and collapse)"
                    )

    def _check_residency(self, found: List[str]) -> None:
        """Residency: DRAM frames only hold pages the GPU is party to."""
        central = self.machine.central_pt
        for gpu in self.machine.gpus:
            for vpn in gpu.dram.resident_vpns():
                page = central.peek(vpn)
                if page is None:
                    found.append(
                        f"gpu {gpu.gpu_id}: DRAM frame holds vpn {vpn} "
                        f"with no central page-table entry"
                    )
                elif gpu.gpu_id not in page.holders():
                    found.append(
                        f"gpu {gpu.gpu_id}: DRAM frame holds vpn {vpn} "
                        f"but the page's holders are "
                        f"{sorted(page.holders())}"
                    )

    def _check_groups(self, found: List[str]) -> None:
        """Groups: ladder markers are aligned and never nest."""
        marked: List["PageInfo"] = [
            page
            for page in self.machine.central_pt.pages()
            if page.group is not GroupBits.SINGLE
        ]
        for page in marked:
            span = page.group.page_count
            if page.vpn % span != 0:
                found.append(
                    f"page {page.vpn}: group marker {page.group.name} "
                    f"not aligned to its {span}-page span"
                )
        spans = {
            page.vpn: page.group.page_count
            for page in marked
            if page.vpn % page.group.page_count == 0
        }
        for page in marked:
            for base, span in spans.items():
                if base != page.vpn and base <= page.vpn < base + span:
                    found.append(
                        f"page {page.vpn}: group marker "
                        f"{page.group.name} nested inside the "
                        f"{span}-page group at {base}"
                    )

    def _check_access_counters(self, found: List[str]) -> None:
        """Counters: stored counts stay strictly below the threshold."""
        counters = self.machine.access_counters
        for group, gpu, count in counters.iter_counts():
            if count >= counters.threshold:
                found.append(
                    f"access counter (group {group}, gpu {gpu}) at "
                    f"{count} >= threshold {counters.threshold} without "
                    f"firing a migration"
                )

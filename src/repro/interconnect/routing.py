"""Declarative topology specs and multi-hop route construction.

The paper evaluates a 4-GPU all-to-all NVLink box; scaling the
reproduction past that shape needs the interconnect to be a parameter,
not a hard-coded mesh.  A :class:`TopologySpec` names one of four
fabric shapes and :func:`build_fabric` turns it into concrete
:class:`~repro.interconnect.link.Link` resources plus one
:class:`Route` per node pair:

``all-to-all``
    The classic shape: one NVLink per GPU pair, one PCIe link per GPU,
    one shared host root port.  Every route is a single hop, so the
    timing kernel's charges are bit-for-bit the pre-routing simulator.

``nvswitch`` / ``nvswitch:<group_size>``
    GPUs attach in groups of ``group_size`` (default 4) to one
    :class:`~repro.interconnect.switch.NVSwitch` each; switches connect
    all-to-all over trunk links.  Intra-group routes cross two ports,
    cross-group routes add the trunk (three hops).

``ring``
    Each GPU links only to its neighbours; routes walk the shorter
    direction around the ring (ties resolve by building each pair's
    route once and mirroring it, so ``route(a, b)`` and ``route(b, a)``
    always traverse the same links).

``multi-node`` / ``multi-node:<nodes>``
    GPUs split into ``nodes`` (default 2) all-to-all NVLink islands;
    each node has its own host root port, and cross-node traffic
    crosses both PCIe endpoints plus a host-side inter-node bridge
    (sharing both nodes' root ports, the existing root-port model).

Select the shape with ``SystemConfig(topology=...)``, the
``--topology`` CLI flag, or the ``GRIT_TOPOLOGY`` environment variable
(the same global-override pattern as ``GRIT_CONTENTION``).
"""

from __future__ import annotations

import dataclasses
import os
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.constants import HOST_NODE
from repro.errors import ConfigError
from repro.interconnect.link import Link
from repro.interconnect.switch import NVSwitch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config import LatencyModel, SystemConfig

#: Fabric shapes accepted by ``SystemConfig.topology``.
TOPOLOGY_KINDS = ("all-to-all", "nvswitch", "ring", "multi-node")

#: Environment variable globally overriding the configured topology
#: spec (same precedence pattern as ``GRIT_CONTENTION``).
TOPOLOGY_ENV_VAR = "GRIT_TOPOLOGY"

#: Default GPUs per switch group (DGX-style quad).
DEFAULT_GROUP_SIZE = 4

#: Default host-bridged island count for ``multi-node``.
DEFAULT_NODES = 2


@dataclasses.dataclass(frozen=True)
class TopologySpec:
    """One parsed, validated fabric shape."""

    kind: str = "all-to-all"
    #: GPUs per switch group (``nvswitch`` only).
    group_size: int = DEFAULT_GROUP_SIZE
    #: Host-bridged island count (``multi-node`` only).
    nodes: int = DEFAULT_NODES

    @classmethod
    def parse(cls, text: str, num_gpus: int) -> "TopologySpec":
        """Parse ``kind[:param]`` and validate it against ``num_gpus``."""
        if not isinstance(text, str) or not text:
            raise ConfigError(f"topology spec must be a string, got {text!r}")
        kind, _, param = text.partition(":")
        if kind not in TOPOLOGY_KINDS:
            raise ConfigError(
                f"unknown topology {kind!r}; expected one of "
                f"{'/'.join(TOPOLOGY_KINDS)}"
            )
        if param and kind not in ("nvswitch", "multi-node"):
            raise ConfigError(
                f"topology {kind!r} takes no parameter, got {text!r}"
            )
        value = 0
        if param:
            try:
                value = int(param)
            except ValueError:
                raise ConfigError(
                    f"topology parameter in {text!r} must be an integer"
                ) from None
        if kind == "nvswitch":
            group_size = value or min(DEFAULT_GROUP_SIZE, num_gpus)
            if group_size < 1:
                raise ConfigError("nvswitch group size must be >= 1")
            if group_size > num_gpus:
                raise ConfigError(
                    f"nvswitch group size {group_size} exceeds "
                    f"{num_gpus} GPUs"
                )
            if num_gpus % group_size:
                raise ConfigError(
                    f"{num_gpus} GPUs do not divide into nvswitch "
                    f"groups of {group_size}"
                )
            return cls(kind="nvswitch", group_size=group_size)
        if kind == "multi-node":
            nodes = value or DEFAULT_NODES
            if nodes < 2:
                raise ConfigError("multi-node needs at least 2 nodes")
            if num_gpus % nodes:
                raise ConfigError(
                    f"{num_gpus} GPUs do not split evenly across "
                    f"{nodes} nodes"
                )
            return cls(kind="multi-node", nodes=nodes)
        return cls(kind=kind)

    def describe(self) -> str:
        """Canonical spec string (parses back to an equal spec)."""
        if self.kind == "nvswitch":
            return f"nvswitch:{self.group_size}"
        if self.kind == "multi-node":
            return f"multi-node:{self.nodes}"
        return self.kind


def topology_spec(config: "SystemConfig") -> TopologySpec:
    """Resolve the effective topology spec for one run.

    The environment variable wins over the config field so a whole
    sweep can be reshaped without touching call sites, mirroring
    ``GRIT_CONTENTION``/``GRIT_FAST_PATH``.
    """
    raw = os.environ.get(TOPOLOGY_ENV_VAR, "")
    text = raw if raw else config.topology
    try:
        return TopologySpec.parse(text, config.num_gpus)
    except ConfigError as exc:
        if raw:
            raise ConfigError(f"{TOPOLOGY_ENV_VAR}: {exc}") from None
        raise


@dataclasses.dataclass(frozen=True)
class Route:
    """One node pair's path through the fabric.

    ``hops`` are the wire links the payload crosses in traversal
    order; ``shared`` are root-port-style resources the payload also
    occupies without paying their latency twice (reserved in queued
    contention mode only, exactly like the classic host uplink).
    """

    hops: Tuple[Link, ...]
    shared: Tuple[Link, ...] = ()

    @property
    def hop_count(self) -> int:
        return len(self.hops)

    def reversed(self) -> "Route":
        """The mirror route (same links, opposite traversal order)."""
        return Route(
            hops=tuple(reversed(self.hops)),
            shared=tuple(reversed(self.shared)),
        )


@dataclasses.dataclass
class Fabric:
    """Concrete links, switches, and routes built from one spec."""

    spec: TopologySpec
    #: Direct GPU-GPU links keyed by ``(low, high)`` GPU ids
    #: (all-to-all meshes, ring segments, intra-node islands).
    nvlinks: Dict[Tuple[int, int], Link]
    #: Per-GPU host links, indexed by GPU id.
    pcie: List[Link]
    #: Shared host root ports, one per host island.
    host_uplinks: List[Link]
    #: Switch planes (``nvswitch`` fabrics only).
    switches: List[NVSwitch]
    #: Host-side inter-node bridges (``multi-node`` only).
    bridges: List[Link]
    #: GPU id -> host island (index into ``host_uplinks``).
    node_of: List[int]
    #: ``(src, dst)`` -> route, for every ordered GPU pair plus every
    #: GPU <-> ``HOST_NODE`` pair.  No self routes.
    routes: Dict[Tuple[int, int], Route]


def _nvlink(latency: "LatencyModel", name: str) -> Link:
    return Link(
        name=name,
        latency=latency.nvlink_latency,
        bytes_per_cycle=latency.nvlink_bytes_per_cycle,
    )


def _pcie_link(latency: "LatencyModel", name: str) -> Link:
    return Link(
        name=name,
        latency=latency.pcie_latency,
        bytes_per_cycle=latency.pcie_bytes_per_cycle,
    )


def build_fabric(
    spec: TopologySpec, num_gpus: int, latency: "LatencyModel"
) -> Fabric:
    """Instantiate links and precompute every route for one spec."""
    if num_gpus < 1:
        raise ConfigError("topology needs at least one GPU")
    # Re-validate so directly-constructed specs can't skip the
    # divisibility rules.
    spec = TopologySpec.parse(spec.describe(), num_gpus)
    pcie = [_pcie_link(latency, f"pcie-{g}") for g in range(num_gpus)]
    builder = _BUILDERS[spec.kind]
    fabric = builder(spec, num_gpus, latency, pcie)
    _add_host_routes(fabric)
    _mirror_routes(fabric)
    return fabric


def _add_host_routes(fabric: Fabric) -> None:
    """GPU <-> host: the per-GPU PCIe hop plus the shared root port."""
    for gpu, pcie in enumerate(fabric.pcie):
        uplink = fabric.host_uplinks[fabric.node_of[gpu]]
        fabric.routes[(gpu, HOST_NODE)] = Route(
            hops=(pcie,), shared=(uplink,)
        )


def _mirror_routes(fabric: Fabric) -> None:
    """Fill in every reverse route as the mirror of its forward twin.

    Building one direction and reflecting it guarantees the route
    symmetry invariant (``route(b, a)`` traverses exactly
    ``route(a, b)``'s links, reversed) for every spec, including ring
    ties at the halfway point.
    """
    for key in list(fabric.routes):
        reverse = (key[1], key[0])
        if reverse not in fabric.routes:
            fabric.routes[reverse] = fabric.routes[key].reversed()


def _build_all_to_all(
    spec: TopologySpec,
    num_gpus: int,
    latency: "LatencyModel",
    pcie: List[Link],
) -> Fabric:
    nvlinks: Dict[Tuple[int, int], Link] = {}
    routes: Dict[Tuple[int, int], Route] = {}
    for a in range(num_gpus):
        for b in range(a + 1, num_gpus):
            link = _nvlink(latency, f"nvlink-{a}-{b}")
            nvlinks[(a, b)] = link
            routes[(a, b)] = Route(hops=(link,))
    return Fabric(
        spec=spec,
        nvlinks=nvlinks,
        pcie=pcie,
        host_uplinks=[_pcie_link(latency, "pcie-host")],
        switches=[],
        bridges=[],
        node_of=[0] * num_gpus,
        routes=routes,
    )


def _build_nvswitch(
    spec: TopologySpec,
    num_gpus: int,
    latency: "LatencyModel",
    pcie: List[Link],
) -> Fabric:
    group = spec.group_size
    switches = [
        NVSwitch(f"nvswitch-{i}") for i in range(num_gpus // group)
    ]
    for gpu in range(num_gpus):
        plane = switches[gpu // group]
        plane.add_port(
            gpu, _nvlink(latency, f"{plane.name}-port-{gpu}")
        )
    trunks: Dict[Tuple[int, int], Link] = {}
    for i in range(len(switches)):
        for j in range(i + 1, len(switches)):
            trunk = _nvlink(latency, f"nvswitch-trunk-{i}-{j}")
            trunks[(i, j)] = trunk
            switches[i].add_trunk(trunk)
    routes: Dict[Tuple[int, int], Route] = {}
    for a in range(num_gpus):
        for b in range(a + 1, num_gpus):
            plane_a, plane_b = a // group, b // group
            if plane_a == plane_b:
                hops = (
                    switches[plane_a].port(a),
                    switches[plane_a].port(b),
                )
            else:
                hops = (
                    switches[plane_a].port(a),
                    trunks[(plane_a, plane_b)],
                    switches[plane_b].port(b),
                )
            routes[(a, b)] = Route(hops=hops)
    return Fabric(
        spec=spec,
        nvlinks={},
        pcie=pcie,
        host_uplinks=[_pcie_link(latency, "pcie-host")],
        switches=switches,
        bridges=[],
        node_of=[0] * num_gpus,
        routes=routes,
    )


def _build_ring(
    spec: TopologySpec,
    num_gpus: int,
    latency: "LatencyModel",
    pcie: List[Link],
) -> Fabric:
    nvlinks: Dict[Tuple[int, int], Link] = {}
    if num_gpus > 1:
        for g in range(num_gpus):
            a, b = sorted((g, (g + 1) % num_gpus))
            if (a, b) not in nvlinks:
                nvlinks[(a, b)] = _nvlink(latency, f"ring-{a}-{b}")

    def segment(a: int, b: int) -> Link:
        return nvlinks[tuple(sorted((a, b)))]  # type: ignore[index]

    routes: Dict[Tuple[int, int], Route] = {}
    for a in range(num_gpus):
        for b in range(a + 1, num_gpus):
            forward = b - a
            if 2 * forward <= num_gpus:
                stops = list(range(a, b + 1))
            else:
                backward = num_gpus - forward
                stops = [
                    g % num_gpus
                    for g in range(a, a - backward - 1, -1)
                ]
            hops = tuple(
                segment(x, y) for x, y in zip(stops, stops[1:])
            )
            routes[(a, b)] = Route(hops=hops)
    return Fabric(
        spec=spec,
        nvlinks=nvlinks,
        pcie=pcie,
        host_uplinks=[_pcie_link(latency, "pcie-host")],
        switches=[],
        bridges=[],
        node_of=[0] * num_gpus,
        routes=routes,
    )


def _build_multi_node(
    spec: TopologySpec,
    num_gpus: int,
    latency: "LatencyModel",
    pcie: List[Link],
) -> Fabric:
    nodes = spec.nodes
    per_node = num_gpus // nodes
    node_of = [g // per_node for g in range(num_gpus)]
    host_uplinks = [
        _pcie_link(latency, f"pcie-host-{n}") for n in range(nodes)
    ]
    nvlinks: Dict[Tuple[int, int], Link] = {}
    bridges: Dict[Tuple[int, int], Link] = {}
    for i in range(nodes):
        for j in range(i + 1, nodes):
            bridges[(i, j)] = _pcie_link(
                latency, f"node-bridge-{i}-{j}"
            )
    routes: Dict[Tuple[int, int], Route] = {}
    for a in range(num_gpus):
        for b in range(a + 1, num_gpus):
            na, nb = node_of[a], node_of[b]
            if na == nb:
                link = _nvlink(latency, f"nvlink-{a}-{b}")
                nvlinks[(a, b)] = link
                routes[(a, b)] = Route(hops=(link,))
            else:
                # Cross-node: out over the source GPU's PCIe, across
                # the host-side bridge, in over the destination's PCIe
                # — occupying both nodes' root ports on the way.
                routes[(a, b)] = Route(
                    hops=(pcie[a], bridges[(na, nb)], pcie[b]),
                    shared=(host_uplinks[na], host_uplinks[nb]),
                )
    return Fabric(
        spec=spec,
        nvlinks=nvlinks,
        pcie=pcie,
        host_uplinks=host_uplinks,
        switches=[],
        bridges=list(bridges.values()),
        node_of=node_of,
        routes=routes,
    )


_BUILDERS = {
    "all-to-all": _build_all_to_all,
    "nvswitch": _build_nvswitch,
    "ring": _build_ring,
    "multi-node": _build_multi_node,
}

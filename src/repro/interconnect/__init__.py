"""Interconnect models: NVLink mesh between GPUs, PCIe to the host."""

from repro.interconnect.link import Link
from repro.interconnect.topology import Topology

__all__ = ["Link", "Topology"]

"""System topology: all-to-all NVLink between GPUs, PCIe to the host.

DGX-style systems connect every GPU pair with NVLink and each GPU to the
CPU over PCIe (Figure 2).  We model one logical NVLink per direction
pair and one PCIe link per GPU; the engine asks the topology for
transfer costs and the topology routes to the right link.
"""

from __future__ import annotations

from repro.config import LatencyModel
from repro.constants import HOST_NODE
from repro.errors import ConfigError
from repro.interconnect.link import Link


class Topology:
    """All-to-all GPU fabric plus per-GPU host links."""

    def __init__(self, num_gpus: int, latency: LatencyModel) -> None:
        if num_gpus < 1:
            raise ConfigError("topology needs at least one GPU")
        self.num_gpus = num_gpus
        self._nvlinks: dict[tuple[int, int], Link] = {}
        for a in range(num_gpus):
            for b in range(a + 1, num_gpus):
                self._nvlinks[(a, b)] = Link(
                    name=f"nvlink-{a}-{b}",
                    latency=latency.nvlink_latency,
                    bytes_per_cycle=latency.nvlink_bytes_per_cycle,
                )
        self._pcie: list[Link] = [
            Link(
                name=f"pcie-{g}",
                latency=latency.pcie_latency,
                bytes_per_cycle=latency.pcie_bytes_per_cycle,
            )
            for g in range(num_gpus)
        ]
        #: Shared host root port: every host-bound payload crosses it in
        #: addition to its per-GPU PCIe link.  Per-GPU links serialize
        #: one GPU's own traffic; the uplink is where *different* GPUs'
        #: host transfers collide (contended "queued" mode only — the
        #: flat mode never reserves it).
        self.host_uplink = Link(
            name="pcie-host",
            latency=latency.pcie_latency,
            bytes_per_cycle=latency.pcie_bytes_per_cycle,
        )

    def _nvlink(self, src: int, dst: int) -> Link:
        key = (src, dst) if src < dst else (dst, src)
        try:
            return self._nvlinks[key]
        except KeyError:
            raise ConfigError(
                f"no NVLink between GPU {src} and GPU {dst}"
            ) from None

    def link_between(self, src: int, dst: int) -> Link:
        """Resolve the link between two nodes (HOST_NODE for the CPU)."""
        if src == dst:
            raise ConfigError("no link from a node to itself")
        if src == HOST_NODE:
            return self._pcie[dst]
        if dst == HOST_NODE:
            return self._pcie[src]
        return self._nvlink(src, dst)

    def transfer(self, src: int, dst: int, size_bytes: int) -> int:
        """Cycles to move a payload between two nodes."""
        return self.link_between(src, dst).transfer_cycles(size_bytes)

    def control_message(self, src: int, dst: int) -> int:
        """Cycles for a payload-free message (fault, invalidation, ack)."""
        return self.link_between(src, dst).message_cycles()

    def links(self) -> list[Link]:
        """Every link of the fabric (NVLinks, per-GPU PCIe, uplink)."""
        return [*self._nvlinks.values(), *self._pcie, self.host_uplink]

    def total_nvlink_bytes(self) -> int:
        """Total GPU-to-GPU traffic moved so far."""
        return sum(link.bytes_transferred for link in self._nvlinks.values())

    def total_pcie_bytes(self) -> int:
        """Total host-GPU traffic moved so far."""
        return sum(link.bytes_transferred for link in self._pcie)

    def total_messages(self) -> int:
        """Total messages (control + transfers) across every link."""
        return sum(link.messages for link in self.links())

    def total_wait_cycles(self) -> int:
        """Cumulative link queueing delay (contended mode only)."""
        return sum(link.wait_cycles for link in self.links())

    def peak_occupancy(self) -> int:
        """Largest backlog any link reservation observed on arrival."""
        return max(
            (link.peak_occupancy for link in self.links()), default=0
        )

"""System topology: a routed fabric between GPUs and the host.

The default shape reproduces Figure 2's DGX-style box — every GPU pair
connected with NVLink, each GPU on PCIe to the CPU behind one shared
root port — and stays bit-for-bit identical to the pre-routing
simulator.  Scale-out shapes (``nvswitch`` switch groups, ``ring``,
host-bridged ``multi-node``) come from a
:class:`~repro.interconnect.routing.TopologySpec`: every node pair
resolves to a precomputed multi-hop :class:`~repro.interconnect.
routing.Route` and the timing kernel charges (and, in queued mode,
reserves) each hop along it.
"""

from __future__ import annotations

from typing import Dict, ItemsView, List, Tuple

from repro.config import LatencyModel
from repro.errors import ConfigError
from repro.interconnect.link import Link
from repro.interconnect.routing import Route, TopologySpec, build_fabric
from repro.interconnect.switch import NVSwitch


class Topology:
    """A routed GPU fabric plus per-GPU host links."""

    def __init__(
        self,
        num_gpus: int,
        latency: LatencyModel,
        spec: TopologySpec | None = None,
    ) -> None:
        if num_gpus < 1:
            raise ConfigError("topology needs at least one GPU")
        self.num_gpus = num_gpus
        self.spec = spec if spec is not None else TopologySpec()
        fabric = build_fabric(self.spec, num_gpus, latency)
        self._nvlinks: Dict[Tuple[int, int], Link] = fabric.nvlinks
        self._pcie: List[Link] = fabric.pcie
        self._host_uplinks: List[Link] = fabric.host_uplinks
        self.switches: List[NVSwitch] = fabric.switches
        self._bridges: List[Link] = fabric.bridges
        self._node_of: List[int] = fabric.node_of
        self._routes: Dict[Tuple[int, int], Route] = fabric.routes

    @property
    def host_uplink(self) -> Link:
        """The first host root port (the only one on single-host specs).

        Kept for the classic all-to-all surface; route-aware code
        should use ``route(...).shared`` so multi-node traffic charges
        the right node's port.
        """
        return self._host_uplinks[0]

    # -- routing -------------------------------------------------------

    def route(self, src: int, dst: int) -> Route:
        """The route between two nodes (HOST_NODE for the CPU)."""
        if src == dst:
            raise ConfigError("no route from a node to itself")
        try:
            return self._routes[(src, dst)]
        except KeyError:
            raise ConfigError(
                f"no route between node {src} and node {dst}"
            ) from None

    def route_items(self) -> ItemsView[Tuple[int, int], Route]:
        """Every ``(src, dst) -> route`` entry of the fabric."""
        return self._routes.items()

    def link_between(self, src: int, dst: int) -> Link:
        """Resolve a *direct* link between two nodes.

        Classic single-hop surface: the GPU pair's NVLink on direct
        fabrics, the GPU's own PCIe link toward the host.  Multi-hop
        pairs (switched, ring-distant, cross-node) have no direct link
        — use :meth:`route`.
        """
        route = self.route(src, dst)
        if route.hop_count != 1:
            raise ConfigError(
                f"no direct link between node {src} and node {dst} "
                f"on topology {self.spec.describe()!r}; the route "
                f"has {route.hop_count} hops"
            )
        return route.hops[0]

    def transfer(self, src: int, dst: int, size_bytes: int) -> int:
        """Cycles to move a payload between two nodes (flat, accounted)."""
        return sum(
            hop.transfer_cycles(size_bytes)
            for hop in self.route(src, dst).hops
        )

    def control_message(self, src: int, dst: int) -> int:
        """Cycles for a payload-free message (fault, invalidation, ack)."""
        return sum(
            hop.message_cycles() for hop in self.route(src, dst).hops
        )

    # -- link inventory ------------------------------------------------

    def links(self) -> List[Link]:
        """Every link of the fabric (GPU fabric, PCIe, bridges, roots)."""
        return [
            *self._gpu_fabric_links(),
            *self._pcie,
            *self._bridges,
            *self._host_uplinks,
        ]

    def _gpu_fabric_links(self) -> List[Link]:
        """Direct GPU-GPU links plus every switch port and trunk."""
        return [*self._nvlinks.values(), *self.switch_links()]

    def switch_links(self) -> List[Link]:
        """Every switch port and trunk (empty on switchless fabrics)."""
        links: List[Link] = []
        for switch in self.switches:
            links.extend(switch.links())
        return links

    # -- traffic rollups -----------------------------------------------

    def total_nvlink_bytes(self) -> int:
        """GPU-fabric traffic moved so far (multi-hop counts per hop)."""
        return sum(
            link.bytes_transferred for link in self._gpu_fabric_links()
        )

    def total_pcie_bytes(self) -> int:
        """Host-GPU traffic moved so far (bridge hops included)."""
        return sum(
            link.bytes_transferred
            for link in [*self._pcie, *self._bridges]
        )

    def total_messages(self) -> int:
        """Total messages (control + transfers) across every link."""
        return sum(link.messages for link in self.links())

    def total_wait_cycles(self) -> int:
        """Cumulative link queueing delay (contended mode only)."""
        return sum(link.wait_cycles for link in self.links())

    def peak_occupancy(self) -> int:
        """Largest backlog any link reservation observed on arrival."""
        return max(
            (link.peak_occupancy for link in self.links()), default=0
        )

    # -- switch rollups (the ``interconnect.switch.*`` series) ---------

    def switch_wait_cycles(self) -> int:
        """Cycles reservations queued on switch ports and trunks."""
        return sum(switch.wait_cycles() for switch in self.switches)

    def switch_messages(self) -> int:
        """Transfers + control messages carried through any switch."""
        return sum(switch.messages() for switch in self.switches)

    def switch_peak_occupancy(self) -> int:
        """Largest backlog any switch port/trunk reservation observed."""
        return max(
            (switch.peak_occupancy() for switch in self.switches),
            default=0,
        )

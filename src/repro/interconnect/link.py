"""Latency + bandwidth link model with occupancy state.

A transfer costs a fixed per-message latency plus a serialization
component (bytes / bandwidth).  Links also track cumulative traffic so
experiments can report interconnect pressure (used by the GPS
oversubscription analysis in Section VI-C2).

Cost computation and traffic accounting are separate: the pure
``transfer_cost``/``message_cost`` queries never mutate the counters,
so a policy's what-if lookahead cannot inflate ``bytes_transferred``.
The side-effecting ``record_*`` methods do the accounting, and the
``reserve_*`` methods additionally treat the link as a contended
resource: each reservation waits behind the link's ``busy_until``
horizon, then occupies the wire for its serialization time (the fixed
latency is propagation delay and pipelines with other messages).  The
timing kernel (:mod:`repro.sim.timing`) picks between the flat and the
reserved paths based on ``SystemConfig.contention``.
"""

from __future__ import annotations

import math


class Link:
    """Point-to-point (or shared-bus) link with occupancy accounting."""

    def __init__(
        self, name: str, latency: int, bytes_per_cycle: float
    ) -> None:
        if latency < 0:
            raise ValueError("link latency must be non-negative")
        if bytes_per_cycle <= 0:
            raise ValueError("link bandwidth must be positive")
        self.name = name
        self.latency = latency
        self.bytes_per_cycle = bytes_per_cycle
        self.bytes_transferred = 0
        self.messages = 0
        #: Cycle until which the wire is occupied by earlier
        #: reservations (contended "queued" mode only).
        self.busy_until = 0
        #: Cumulative cycles reservations spent queued behind earlier
        #: occupants.
        self.wait_cycles = 0
        #: Largest backlog (``busy_until - now``) any reservation ever
        #: observed on arrival — the link's peak queue depth in cycles.
        self.peak_occupancy = 0

    # -- pure cost queries (no side effects) ---------------------------

    def transfer_cost(self, size_bytes: int) -> int:
        """Uncontended cycles to move ``size_bytes``; pure what-if."""
        if size_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        return self.latency + self.serialization_cycles(size_bytes)

    def message_cost(self) -> int:
        """Uncontended cycles for a payload-free control message."""
        return self.latency

    def serialization_cycles(self, size_bytes: int) -> int:
        """Cycles the payload occupies the wire (bytes / bandwidth)."""
        return math.ceil(size_bytes / self.bytes_per_cycle)

    # -- traffic accounting (side effects, no cost) --------------------

    def record_transfer(self, size_bytes: int) -> None:
        """Account one payload transfer in the traffic counters."""
        if size_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        self.bytes_transferred += size_bytes
        self.messages += 1

    def record_message(self) -> None:
        """Account one control message in the traffic counters."""
        self.messages += 1

    # -- combined convenience (classic flat-cost path) -----------------

    def transfer_cycles(self, size_bytes: int) -> int:
        """Cycles to move ``size_bytes`` over this link, with accounting."""
        self.record_transfer(size_bytes)
        return self.transfer_cost(size_bytes)

    def message_cycles(self) -> int:
        """Cycles for a payload-free control message, with accounting."""
        self.record_message()
        return self.message_cost()

    # -- contended reservations (timestamped; "queued" mode) -----------

    def _wait(self, now: int) -> int:
        """Queueing delay behind the current occupancy horizon."""
        wait = self.busy_until - now
        if wait <= 0:
            return 0
        self.wait_cycles += wait
        if wait > self.peak_occupancy:
            self.peak_occupancy = wait
        return wait

    def reserve_transfer(self, now: int, size_bytes: int) -> int:
        """Reserve the wire for a payload transfer arriving at ``now``.

        Returns the total cycles the transfer takes from the caller's
        perspective: queueing wait + fixed latency + serialization.
        The wire is occupied for the serialization component only.
        """
        self.record_transfer(size_bytes)
        wait = self._wait(now)
        serialization = self.serialization_cycles(size_bytes)
        self.busy_until = now + wait + serialization
        return wait + self.latency + serialization

    def reserve_message(self, now: int) -> int:
        """Reserve delivery of a control message arriving at ``now``.

        Control messages queue behind in-flight transfers but carry no
        payload, so they do not extend the occupancy horizon.
        """
        self.record_message()
        return self._wait(now) + self.latency

    def reserve_access(self, now: int, size_bytes: int) -> int:
        """Reserve one cache-line data access arriving at ``now``.

        Returns only the *extra* cycles contention adds (queueing wait)
        — the flat far-access cost already prices the line's movement.
        Accesses occupy the wire for their serialization time so bulk
        transfers behind a hot access stream queue up, but they are not
        counted as page traffic (``bytes_transferred`` stays the page
        migration/duplication volume the figures report).
        """
        wait = self._wait(now)
        self.busy_until = now + wait + self.serialization_cycles(size_bytes)
        return wait

    def reset_stats(self) -> None:
        """Zero the traffic and contention counters."""
        self.bytes_transferred = 0
        self.messages = 0
        self.busy_until = 0
        self.wait_cycles = 0
        self.peak_occupancy = 0

"""Latency + bandwidth link model.

A transfer costs a fixed per-message latency plus a serialization
component (bytes / bandwidth).  Links also track cumulative traffic so
experiments can report interconnect pressure (used by the GPS
oversubscription analysis in Section VI-C2).
"""

from __future__ import annotations

import math


class Link:
    """Point-to-point (or shared-bus) link with occupancy accounting."""

    def __init__(
        self, name: str, latency: int, bytes_per_cycle: float
    ) -> None:
        if latency < 0:
            raise ValueError("link latency must be non-negative")
        if bytes_per_cycle <= 0:
            raise ValueError("link bandwidth must be positive")
        self.name = name
        self.latency = latency
        self.bytes_per_cycle = bytes_per_cycle
        self.bytes_transferred = 0
        self.messages = 0

    def transfer_cycles(self, size_bytes: int) -> int:
        """Cycles to move ``size_bytes`` over this link, with accounting."""
        if size_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        self.bytes_transferred += size_bytes
        self.messages += 1
        return self.latency + math.ceil(size_bytes / self.bytes_per_cycle)

    def message_cycles(self) -> int:
        """Cycles for a payload-free control message."""
        self.messages += 1
        return self.latency

    def reset_stats(self) -> None:
        """Zero the traffic counters."""
        self.bytes_transferred = 0
        self.messages = 0

"""NVSwitch-style switching elements for hierarchical fabrics.

An :class:`NVSwitch` is a crossbar whose GPU-facing ports and
switch-to-switch trunks are ordinary contended
:class:`~repro.interconnect.link.Link` resources.  A payload crossing
the switch pays each port's latency + serialization, so a switched hop
is strictly more expensive than a direct NVLink — which is exactly the
scale-out trade the topology sweep measures.  In ``queued`` contention
mode every port reservation advances that port's ``busy_until``
horizon, so two GPUs bursting into the same destination port queue
behind each other (the ``interconnect.switch.*`` metrics report that
pressure).

Trunk links connect switch pairs; each trunk is registered with
exactly one of its two endpoint switches so topology-wide rollups
never double-count it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.interconnect.link import Link


class NVSwitch:
    """One switch plane: GPU ports plus trunks toward peer switches."""

    def __init__(self, name: str) -> None:
        self.name = name
        #: GPU id -> the port link that GPU attaches with.
        self.ports: Dict[int, Link] = {}
        #: Trunks owned by this switch (registered once per pair).
        self.trunks: List[Link] = []

    def add_port(self, gpu: int, link: Link) -> None:
        """Attach ``gpu`` to this switch through ``link``."""
        if gpu in self.ports:
            raise ValueError(
                f"{self.name}: GPU {gpu} already has a port"
            )
        self.ports[gpu] = link

    def add_trunk(self, link: Link) -> None:
        """Register a switch-to-switch trunk owned by this switch."""
        self.trunks.append(link)

    def port(self, gpu: int) -> Link:
        """The port link GPU ``gpu`` attaches with."""
        return self.ports[gpu]

    def links(self) -> List[Link]:
        """Every link of this switch: ports in GPU order, then trunks."""
        ports = [self.ports[gpu] for gpu in sorted(self.ports)]
        return [*ports, *self.trunks]

    # -- occupancy rollups ---------------------------------------------

    def wait_cycles(self) -> int:
        """Cycles reservations queued on this switch's ports/trunks."""
        return sum(link.wait_cycles for link in self.links())

    def messages(self) -> int:
        """Transfers + control messages carried through this switch."""
        return sum(link.messages for link in self.links())

    def peak_occupancy(self) -> int:
        """Largest backlog any port/trunk reservation observed."""
        return max(
            (link.peak_occupancy for link in self.links()), default=0
        )

"""Architectural constants shared across the GRIT reproduction.

Values mirror Table I, Table IV, and Table V of the paper where the paper
pins them down; everything else is a documented modeling choice (see
DESIGN.md section 5).
"""

from __future__ import annotations

import enum

#: Base (small) page size in bytes — the paper's default configuration.
PAGE_SIZE_4K = 4 * 1024

#: Large page size evaluated in Section VI-B3.
PAGE_SIZE_2M = 2 * 1024 * 1024

#: Access counters operate at a 64 KB page-group granularity (Section II-B2).
ACCESS_COUNTER_GROUP_BYTES = 64 * 1024

#: Static remote-access threshold that triggers counter-based migration
#: (256 remote accesses, NVIDIA Volta default cited by the paper).
ACCESS_COUNTER_THRESHOLD = 256

#: Default fault threshold of the Fault-Aware Initiator (Section V-B).
DEFAULT_FAULT_THRESHOLD = 4

#: Logical node id used for the host (CPU) in ownership fields.
HOST_NODE = -1


class Scheme(enum.IntEnum):
    """Page placement schemes, encoded as the PTE scheme bits of Table IV.

    The integer values are exactly the paper's two scheme bits, so a PTE
    round-trip through :mod:`repro.memsys.pte` preserves them.
    """

    ON_TOUCH = 0b01
    ACCESS_COUNTER = 0b10
    DUPLICATION = 0b11

    @property
    def short_name(self) -> str:
        """Two-letter abbreviation used in the paper's figures (OT/AC/D)."""
        return _SCHEME_SHORT_NAMES[self]


_SCHEME_SHORT_NAMES = {
    Scheme.ON_TOUCH: "OT",
    Scheme.ACCESS_COUNTER: "AC",
    Scheme.DUPLICATION: "D",
}


class GroupBits(enum.IntEnum):
    """Neighboring-aware page-group sizes, encoded per Table V."""

    SINGLE = 0b00
    GROUP_8 = 0b01
    GROUP_64 = 0b10
    GROUP_512 = 0b11

    @property
    def page_count(self) -> int:
        """Number of 4 KB pages covered by a group of this size."""
        return _GROUP_PAGE_COUNTS[self]

    @classmethod
    def for_page_count(cls, count: int) -> "GroupBits":
        """Inverse of :attr:`page_count`; raises for unsupported sizes."""
        for bits, pages in _GROUP_PAGE_COUNTS.items():
            if pages == count:
                return bits
        raise ValueError(f"no group encoding for {count} pages")


_GROUP_PAGE_COUNTS = {
    GroupBits.SINGLE: 1,
    GroupBits.GROUP_8: 8,
    GroupBits.GROUP_64: 64,
    GroupBits.GROUP_512: 512,
}

#: Promotion ladder used by Neighboring-Aware Prediction (Section V-D):
#: singles combine 8-at-a-time into 8-page groups, then 64, then 512.
GROUP_LADDER = (
    GroupBits.SINGLE,
    GroupBits.GROUP_8,
    GroupBits.GROUP_64,
    GroupBits.GROUP_512,
)

#: Fan-out between consecutive rungs of the ladder (8 smaller groups form
#: the next larger group).
GROUP_FANOUT = 8


class EvictionPolicy(enum.Enum):
    """DRAM victim selection when a full memory takes another page.

    Table I's experiments use LRU; FIFO and seeded RANDOM exist for the
    replacement-policy ablation.
    """

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"


class AccessType(enum.IntEnum):
    """Memory access kinds carried by workload traces."""

    READ = 0
    WRITE = 1


class FaultKind(enum.IntEnum):
    """UVM fault kinds observed by the Fault-Aware Initiator."""

    #: Translation missing from the local page table.
    LOCAL_PAGE_FAULT = 0
    #: Write hit a read-only (duplicated) translation.
    PAGE_PROTECTION_FAULT = 1


class LatencyCategory(enum.IntEnum):
    """The six page-handling latency categories of Figure 3."""

    LOCAL = 0
    HOST = 1
    PAGE_MIGRATION = 2
    REMOTE_ACCESS = 3
    PAGE_DUPLICATION = 4
    WRITE_COLLAPSE = 5

    @property
    def label(self) -> str:
        """Figure 3 legend label for this category."""
        return _CATEGORY_LABELS[self]


_CATEGORY_LABELS = {
    LatencyCategory.LOCAL: "Local",
    LatencyCategory.HOST: "Host",
    LatencyCategory.PAGE_MIGRATION: "Page-migration",
    LatencyCategory.REMOTE_ACCESS: "Remote-access",
    LatencyCategory.PAGE_DUPLICATION: "Page-duplication",
    LatencyCategory.WRITE_COLLAPSE: "Write-collapse",
}

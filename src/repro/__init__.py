"""GRIT reproduction: fine-grained dynamic page placement for multi-GPUs.

A trace-driven reproduction of *GRIT: Enhancing Multi-GPU Performance
with Fine-Grained Dynamic Page Placement* (HPCA 2024): the GRIT
mechanism (Fault-Aware Initiator, PA-Table/PA-Cache, Neighboring-Aware
Prediction), the three uniform placement schemes it competes with, the
comparator systems (Griffin, GPS, Trans-FW, first-touch, tree
prefetching), the multi-GPU UVM substrate they all run on, workload
generators for the paper's eight applications, and a harness that
regenerates every evaluation figure.

Quickstart::

    from repro import make_policy, make_workload, simulate
    from repro.config import BASELINE_CONFIG

    trace = repro.make_workload("gemm", num_gpus=4)
    base = simulate(BASELINE_CONFIG, trace, make_policy("on_touch"))
    grit = simulate(
        BASELINE_CONFIG, make_workload("gemm"), make_policy("grit")
    )
    print(f"GRIT speedup: {grit.speedup_over(base):.2f}x")
"""

from repro.config import (
    BASELINE_CONFIG,
    GritConfig,
    LatencyModel,
    SystemConfig,
)
from repro.constants import GroupBits, Scheme
from repro.policies import available_policies, make_policy
from repro.sim import SimulationResult, simulate
from repro.workloads import available_workloads, make_workload

__version__ = "1.0.0"

__all__ = [
    "BASELINE_CONFIG",
    "GritConfig",
    "LatencyModel",
    "SystemConfig",
    "GroupBits",
    "Scheme",
    "available_policies",
    "make_policy",
    "SimulationResult",
    "simulate",
    "available_workloads",
    "make_workload",
    "__version__",
]

"""Workload characterization (Section IV-B).

These functions consume traces directly — no simulation needed — using a
round-robin merge of the per-GPU streams as the time axis (a stand-in
for the paper's one-million-cycle sampling intervals).

* :func:`sharing_summary` — the Figure 4 / Figure 9 splits.
* :func:`build_timeline` — per-interval per-page per-GPU tallies.
* :func:`page_interval_profile` — one page's access distribution over
  time (Figures 5 and 10).
* :func:`classify_shared_pages` — PC-shared vs all-shared (Figure 5's
  two categories).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.stats.sharing import PageAccessLedger, SharingSummary
from repro.stats.timeline import IntervalTimeline
from repro.workloads.base import WorkloadTrace


def _merged_accesses(
    trace: WorkloadTrace,
) -> Iterator[Tuple[int, int, int, bool]]:
    """Yield ``(time, gpu, vpn, is_write)`` in round-robin merge order."""
    streams = [
        (vpns.tolist(), writes.tolist()) for vpns, writes in trace.streams
    ]
    lengths = [len(vpns) for vpns, _ in streams]
    time = 0
    for index in range(max(lengths, default=0)):
        for gpu, (vpns, writes) in enumerate(streams):
            if index < lengths[gpu]:
                yield time, gpu, vpns[index], writes[index]
                time += 1


def sharing_summary(trace: WorkloadTrace) -> SharingSummary:
    """Whole-run private/shared and read/read-write splits (Figs 4, 9)."""
    ledger = PageAccessLedger()
    for gpu, vpn, is_write in trace.iter_all():
        ledger.record(gpu, vpn, is_write)
    return ledger.summary()


def build_timeline(
    trace: WorkloadTrace, num_intervals: int = 50
) -> IntervalTimeline:
    """Bucket the merged trace into ``num_intervals`` equal intervals."""
    if num_intervals < 1:
        raise ValueError("need at least one interval")
    total = trace.total_accesses
    interval_length = max(1, -(-total // num_intervals))
    timeline = IntervalTimeline(trace.num_gpus, interval_length)
    for time, gpu, vpn, is_write in _merged_accesses(trace):
        timeline.record(time, gpu, vpn, is_write)
    return timeline


def page_interval_profile(
    timeline: IntervalTimeline, vpn: int
) -> List[Dict[str, object]]:
    """One page's per-interval GPU and read/write distribution.

    Each row holds the interval id, per-GPU access shares, and the
    read/write counts — the data behind Figures 5 and 10.
    """
    rows: List[Dict[str, object]] = []
    for interval, sample in enumerate(timeline.page_timeline(vpn)):
        if sample is None:
            rows.append(
                {
                    "interval": interval,
                    "accesses": 0,
                    "per_gpu": tuple(0.0 for _ in range(timeline.num_gpus)),
                    "reads": 0,
                    "writes": 0,
                }
            )
            continue
        total = sample.reads + sample.writes
        rows.append(
            {
                "interval": interval,
                "accesses": total,
                "per_gpu": tuple(
                    count / total for count in sample.per_gpu_accesses
                ),
                "reads": sample.reads,
                "writes": sample.writes,
            }
        )
    return rows


def classify_shared_pages(
    timeline: IntervalTimeline,
    dominance: float = 0.75,
) -> Dict[str, List[int]]:
    """Split shared pages into PC-shared and all-shared (Figure 5).

    A page is *PC-shared* when, in (almost) every interval where it is
    touched, a single GPU dominates its accesses — different GPUs in
    different intervals.  It is *all-shared* when multiple GPUs access
    it within the same intervals.
    """
    pc_shared: List[int] = []
    all_shared: List[int] = []
    for vpn in timeline.touched_pages():
        touchers_union = 0
        dominated_intervals = 0
        active_intervals = 0
        for sample in timeline.page_timeline(vpn):
            if sample is None:
                continue
            active_intervals += 1
            total = sample.reads + sample.writes
            peak = max(sample.per_gpu_accesses)
            for gpu, count in enumerate(sample.per_gpu_accesses):
                if count:
                    touchers_union |= 1 << gpu
            if total and peak / total >= dominance:
                dominated_intervals += 1
        if bin(touchers_union).count("1") <= 1:
            continue  # private page: not shared at all
        if active_intervals and dominated_intervals / active_intervals >= 0.8:
            pc_shared.append(vpn)
        else:
            all_shared.append(vpn)
    return {"pc_shared": pc_shared, "all_shared": all_shared}

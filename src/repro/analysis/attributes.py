"""Page-attribute maps over time (Figures 6, 7 and 8).

The paper samples the attributes of consecutive pages across 50
execution intervals and plots them as 2-D maps: private vs shared
(Figures 6, 8) and read vs read-write (Figure 7).  These functions
produce the same matrices from a trace, with integer codes suitable for
plotting or for asserting neighbor-similarity in tests.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.characterize import build_timeline
from repro.workloads.base import WorkloadTrace

#: Cell codes in the attribute matrices.
UNTOUCHED = 0
PRIVATE = 1
SHARED = 2
READ = 1
READ_WRITE = 2


@dataclasses.dataclass
class AttributeMap:
    """Attribute matrices: rows are intervals, columns are pages."""

    pages: np.ndarray
    #: (num_intervals, num_pages) with UNTOUCHED/PRIVATE/SHARED codes.
    sharing: np.ndarray
    #: (num_intervals, num_pages) with UNTOUCHED/READ/READ_WRITE codes.
    read_write: np.ndarray

    @property
    def num_intervals(self) -> int:
        """Number of sampled execution intervals (matrix rows)."""
        return self.sharing.shape[0]

    def neighbor_agreement(self, matrix: np.ndarray) -> float:
        """Fraction of touched adjacent-page pairs with equal attributes.

        This is the quantitative form of the paper's observation that
        neighbouring pages exhibit similar attributes (Section IV-C);
        values near 1.0 justify Neighboring-Aware Prediction.
        """
        left = matrix[:, :-1]
        right = matrix[:, 1:]
        touched = (left != UNTOUCHED) & (right != UNTOUCHED)
        if not touched.any():
            return 0.0
        return float((left[touched] == right[touched]).mean())


def attribute_map(
    trace: WorkloadTrace,
    num_intervals: int = 50,
    max_pages: int | None = 4000,
) -> AttributeMap:
    """Build the Figure 6/7/8 matrices for ``trace``.

    ``max_pages`` caps the page axis (the paper samples 4,000
    consecutive pages); pass None for the full footprint.
    """
    timeline = build_timeline(trace, num_intervals=num_intervals)
    page_limit = trace.footprint_pages
    if max_pages is not None:
        page_limit = min(page_limit, max_pages)
    pages = np.arange(page_limit, dtype=np.int64)
    intervals = timeline.num_intervals
    sharing = np.zeros((intervals, page_limit), dtype=np.int8)
    read_write = np.zeros((intervals, page_limit), dtype=np.int8)
    for interval in range(intervals):
        for vpn in timeline.pages_in_interval(interval):
            if vpn >= page_limit:
                continue
            sample = timeline.sample(interval, vpn)
            if sample is None:
                continue
            touchers = sum(1 for count in sample.per_gpu_accesses if count)
            sharing[interval, vpn] = SHARED if touchers > 1 else PRIVATE
            read_write[interval, vpn] = (
                READ_WRITE if sample.writes else READ
            )
    return AttributeMap(pages=pages, sharing=sharing, read_write=read_write)
